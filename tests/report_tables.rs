//! The regenerated tables and figures themselves: structure, spot
//! values, and CSV well-formedness.

use std::sync::OnceLock;

use c240_sim::SimConfig;
use macs_core::ChimeConfig;
use macs_experiments::{figures, tables, worked_example, Suite};

fn suite() -> &'static Suite {
    static SUITE: OnceLock<Suite> = OnceLock::new();
    SUITE.get_or_init(Suite::run)
}

#[test]
fn table1_matches_spec_rows() {
    let t = tables::table1(&SimConfig::c240());
    assert_eq!(t.len(), 8);
    let text = t.render();
    for needle in ["vector load", "2.00", "4.00", "21.00", "1.35", "12.00"] {
        assert!(text.contains(needle), "missing {needle} in:\n{text}");
    }
}

#[test]
fn table2_shows_mac_deltas_only_where_they_differ() {
    let t = tables::table2(suite());
    assert_eq!(t.len(), 10);
    let csv = tables::table2(suite()).to_csv();
    let lfk3_row: Vec<&str> = csv
        .lines()
        .find(|l| l.starts_with("3,"))
        .expect("LFK3 row")
        .split(',')
        .collect();
    // LFK3 has no MAC inflation: every delta column is a dash.
    assert_eq!(&lfk3_row[5..9], &["-", "-", "-", "-"]);
    let lfk1_row: Vec<&str> = csv
        .lines()
        .find(|l| l.starts_with("1,"))
        .expect("LFK1 row")
        .split(',')
        .collect();
    assert_eq!(lfk1_row[7], "3"); // l' = 3 where l = 2
}

#[test]
fn table3_contains_the_paper_bound_grid() {
    let text = tables::table3(suite()).render();
    for needle in ["10.50", "11.55", "20.95", "6.26", "4.20"] {
        assert!(text.contains(needle), "missing {needle} in:\n{text}");
    }
}

#[test]
fn table4_footer_has_avg_and_mflops() {
    let t = tables::table4(suite());
    assert_eq!(t.len(), 12); // 10 kernels + AVG + MFLOPS
    let text = t.render();
    assert!(text.contains("AVG"));
    assert!(text.contains("MFLOPS"));
    assert!(text.contains("0.840"));
}

#[test]
fn table5_has_overlap_column() {
    let text = tables::table5(suite()).render();
    assert!(text.contains("overlap"));
    assert!(text.contains("t^f_MACS"));
}

#[test]
fn csv_outputs_are_rectangular() {
    for t in [
        tables::table1(&SimConfig::c240()),
        tables::table2(suite()),
        tables::table3(suite()),
        tables::table4(suite()),
        tables::table5(suite()),
    ] {
        let csv = t.to_csv();
        // Quote-aware field count (Table 1's format column contains
        // commas inside quoted cells).
        let fields = |line: &str| {
            let mut n = 1;
            let mut quoted = false;
            for c in line.chars() {
                match c {
                    '"' => quoted = !quoted,
                    ',' if !quoted => n += 1,
                    _ => {}
                }
            }
            n
        };
        let widths: Vec<usize> = csv.lines().map(fields).collect();
        assert!(!widths.is_empty());
        assert!(
            widths.windows(2).all(|w| w[0] == w[1]),
            "ragged CSV for {}: {widths:?}",
            t.title()
        );
    }
}

#[test]
fn fig1_renders_every_kernel() {
    let text = figures::fig1(suite());
    for id in lfk_suite::IDS {
        assert!(text.contains(&format!("LFK{id}")), "missing LFK{id}");
    }
    assert!(text.contains("MERGE"));
    assert!(text.contains("MAX"));
}

#[test]
fn fig3_bars_render() {
    let bars = figures::fig3_bars(suite());
    assert!(bars.contains("LFK1"));
    assert!(bars.contains("CPF"));
}

#[test]
fn worked_example_text_is_complete() {
    let w = worked_example(&SimConfig::c240(), &ChimeConfig::c240());
    let text = w.to_string();
    for needle in ["chime 1", "chime 4", "527", "537.54", "4.200", "0.840"] {
        assert!(text.contains(needle), "missing {needle} in:\n{text}");
    }
}
