//! Cross-validation of the vectorizing compiler against the IR
//! interpreter: compiled code run on the simulator must compute exactly
//! what the kernel IR means.

use std::collections::BTreeMap;

use c240_sim::{Cpu, SimConfig};
use macs_compiler::{
    compile, con, load, load_strided, param, CompileOptions, CompiledKernel, Kernel,
    ReductionStyle, ScheduleStrategy,
};

/// Binds a kernel's arrays into simulator memory per the compiled
/// layout, runs, and returns the final array images.
fn run_compiled(
    compiled: &CompiledKernel,
    kernel: &Kernel,
    data: &BTreeMap<String, Vec<f64>>,
) -> (BTreeMap<String, Vec<f64>>, BTreeMap<String, f64>) {
    let mut cpu = Cpu::new(SimConfig::c240());
    for decl in kernel.arrays() {
        let base = compiled.layout.base_word(&decl.name).expect("laid out");
        for (i, &v) in data[&decl.name].iter().enumerate() {
            cpu.mem_mut().poke(base + i as u64, v);
        }
    }
    cpu.run(&compiled.program).expect("compiled kernel runs");
    let mut out = BTreeMap::new();
    for decl in kernel.arrays() {
        let base = compiled.layout.base_word(&decl.name).expect("laid out");
        out.insert(
            decl.name.clone(),
            (0..decl.len).map(|i| cpu.mem().peek(base + i)).collect(),
        );
    }
    let mut accs = BTreeMap::new();
    for (name, reg) in &compiled.reduction_regs {
        accs.insert(name.clone(), cpu.sreg_fp(*reg));
    }
    (out, accs)
}

fn data_for(kernel: &Kernel, seed: u64) -> BTreeMap<String, Vec<f64>> {
    let mut state = seed | 1;
    let mut next = || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        0.5 + (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64
    };
    kernel
        .arrays()
        .iter()
        .map(|a| (a.name.clone(), (0..a.len).map(|_| next()).collect()))
        .collect()
}

fn check_equiv(kernel: &Kernel, n: u64, options: CompileOptions, tol: f64) {
    let compiled = compile(kernel, n, options).expect("kernel compiles");
    let data = data_for(kernel, 42 + n);
    let (sim_arrays, sim_accs) = run_compiled(&compiled, kernel, &data);

    let mut ref_data = data.clone();
    let ref_params = kernel.interpret(&mut ref_data, n);

    for (name, expected) in &ref_data {
        let got = &sim_arrays[name];
        for (i, (g, e)) in got.iter().zip(expected).enumerate() {
            assert!(
                (g - e).abs() <= tol * e.abs().max(1.0),
                "{name}[{i}]: simulated {g} vs interpreted {e} ({options:?})"
            );
        }
    }
    for (name, got) in &sim_accs {
        let expected = ref_params[name];
        assert!(
            (got - expected).abs() <= tol * expected.abs().max(1.0),
            "accumulator {name}: simulated {got} vs interpreted {expected}"
        );
    }
}

#[test]
fn triad_compiles_and_matches_interpreter() {
    let k = Kernel::new("triad")
        .array("x", 2000)
        .array("y", 2000)
        .array("z", 2000)
        .param("a", 3.0)
        .store("x", 0, load("y", 0) + param("a") * load("z", 0));
    for schedule in [ScheduleStrategy::Interleaved, ScheduleStrategy::LoadsFirst] {
        check_equiv(
            &k,
            1000,
            CompileOptions {
                schedule,
                ..CompileOptions::default()
            },
            1e-13,
        );
    }
}

#[test]
fn lfk1_ir_compiles_and_matches_interpreter() {
    let k = lfk_suite::by_id(1).unwrap().ir().expect("LFK1 has IR");
    check_equiv(&k, 1001, CompileOptions::default(), 1e-13);
}

#[test]
fn stencil_with_division_and_negation() {
    let k = Kernel::new("oddops")
        .array("x", 2000)
        .array("y", 2100)
        .store(
            "x",
            0,
            -(load("y", 0) / load("y", 3)) + con(2.0) * load("y", 1),
        );
    check_equiv(&k, 1000, CompileOptions::default(), 1e-13);
}

#[test]
fn dot_product_both_reduction_styles() {
    let k = Kernel::new("dot")
        .array("p", 2000)
        .array("q", 2000)
        .param("acc", 0.25)
        .reduce("acc", false, load("p", 0) * load("q", 0));
    for reduction in [ReductionStyle::Elementwise, ReductionStyle::PerStrip] {
        check_equiv(
            &k,
            777,
            CompileOptions {
                reduction,
                ..CompileOptions::default()
            },
            1e-9,
        );
    }
}

#[test]
fn strided_kernel_matches() {
    let k = Kernel::new("strided")
        .array("px", 26000)
        .array("out", 2000)
        .store(
            "out",
            0,
            load_strided("px", 4, 25) - load_strided("px", 7, 25),
        );
    check_equiv(&k, 1000, CompileOptions::default(), 1e-13);
}

#[test]
fn stepped_kernel_matches() {
    let k = Kernel::new("evens")
        .array("a", 2100)
        .array("b", 2100)
        .step(2)
        .store("b", 0, load("a", 0) + load("a", 1));
    check_equiv(&k, 1000, CompileOptions::default(), 1e-13);
}

#[test]
fn subtract_accumulator_matches() {
    let k = Kernel::new("negdot")
        .array("p", 1500)
        .param("acc", 100.0)
        .reduce("acc", true, load("p", 0) * con(0.5));
    check_equiv(&k, 1400, CompileOptions::default(), 1e-9);
}

#[test]
fn spilled_arrays_still_compute_correctly() {
    let mut k = Kernel::new("many").array("o", 1500);
    let mut expr = load("in0", 0);
    k = k.array("in0", 1500);
    for i in 1..8 {
        let name = format!("in{i}");
        k = k.array(&name, 1500);
        expr = expr + load(&name, 0);
    }
    let k = k.store("o", 0, expr);
    let compiled = compile(&k, 1000, CompileOptions::default()).expect("compiles with spills");
    assert!(!compiled.spilled_arrays.is_empty());
    check_equiv(&k, 1000, CompileOptions::default(), 1e-13);
}
