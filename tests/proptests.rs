//! Property-based tests over the core invariants:
//!
//! * assembler/disassembler round-trip,
//! * chime-partition structure (every vector instruction in exactly one
//!   chime, per-chime port limits respected),
//! * `t_MA ≤ t_MAC ≤ t_MACS` for compiler-generated programs,
//! * compiled code computes exactly what the IR interpreter computes,
//! * simulated time is monotone under added work and added contention.
//!
//! The container this repo builds in has no network access, so instead
//! of the `proptest` crate these properties run on a small deterministic
//! xorshift generator (`tests/prop_support.rs`): every case is seeded,
//! so a failure message's seed reproduces the exact inputs.

mod prop_support;

use std::collections::BTreeMap;

use prop_support::Rng;

use c240_isa::asm::assemble;
use c240_isa::{Instruction, MemRef, Program, VOperand};
use c240_mem::ContentionConfig;
use c240_sim::{Cpu, SimConfig};
use macs_compiler::{compile, CompileOptions, Expr, Kernel};
use macs_core::{partition_chimes, ChimeConfig, KernelBounds};

fn vreg(i: u8) -> c240_isa::VReg {
    c240_isa::VReg::new(i % 8).unwrap()
}

fn sreg(i: u8) -> c240_isa::SReg {
    c240_isa::SReg::new(i % 8).unwrap()
}

fn areg(i: u8) -> c240_isa::AReg {
    c240_isa::AReg::new(i % 8).unwrap()
}

fn voperand(rng: &mut Rng) -> VOperand {
    if rng.bool() {
        VOperand::V(vreg(rng.u8()))
    } else {
        VOperand::S(sreg(rng.u8()))
    }
}

fn memref(rng: &mut Rng) -> MemRef {
    let base = rng.u8();
    let off = rng.range_i64(-64, 64) * 8;
    let stride = if rng.bool() { 1 } else { rng.range_i64(2, 32) };
    MemRef::new(areg(base), off).with_stride(stride)
}

/// Random instructions covering every variant the assembler prints.
fn instruction(rng: &mut Rng) -> Instruction {
    match rng.range_u64(0, 11) {
        0 => Instruction::VLoad {
            addr: memref(rng),
            dst: vreg(rng.u8()),
        },
        1 => Instruction::VStore {
            src: vreg(rng.u8()),
            addr: memref(rng),
        },
        2 => Instruction::VAdd {
            a: VOperand::V(vreg(rng.u8())),
            b: voperand(rng),
            dst: vreg(rng.u8()),
        },
        3 => Instruction::VSub {
            a: VOperand::V(vreg(rng.u8())),
            b: voperand(rng),
            dst: vreg(rng.u8()),
        },
        4 => Instruction::VMul {
            a: voperand(rng),
            b: VOperand::V(vreg(rng.u8())),
            dst: vreg(rng.u8()),
        },
        5 => Instruction::VNeg {
            src: vreg(rng.u8()),
            dst: vreg(rng.u8()),
        },
        6 => Instruction::VSum {
            src: vreg(rng.u8()),
            dst: sreg(rng.u8()),
        },
        7 => Instruction::VRAdd {
            src: vreg(rng.u8()),
            acc: sreg(rng.u8()),
        },
        8 => Instruction::SMovImm {
            value: c240_isa::ScalarValue::Int(rng.next() as i64),
            dst: c240_isa::ScalarReg::S(sreg(rng.u8())),
        },
        9 => Instruction::SLoad {
            addr: memref(rng),
            dst: c240_isa::ScalarReg::A(areg(rng.u8())),
        },
        _ => Instruction::Nop,
    }
}

fn instruction_vec(rng: &mut Rng, min: usize, max: usize) -> Vec<Instruction> {
    let n = rng.range_usize(min, max);
    (0..n).map(|_| instruction(rng)).collect()
}

#[test]
fn assembler_roundtrip() {
    for seed in 0..64u64 {
        let mut rng = Rng::new(seed);
        let instrs = instruction_vec(&mut rng, 1, 40);
        let program = Program::new(instrs, Default::default()).unwrap();
        let text = program.to_string();
        let reassembled = assemble(&text).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{text}"));
        assert_eq!(program, reassembled, "seed {seed}");
    }
}

#[test]
fn chime_partition_covers_each_vector_instruction_once() {
    for seed in 0..64u64 {
        let mut rng = Rng::new(1000 + seed);
        let instrs = instruction_vec(&mut rng, 1, 40);
        let config = ChimeConfig::c240();
        let part = partition_chimes(&instrs, &config);
        // Every vector instruction appears in exactly one chime.
        let mut seen = vec![0u32; instrs.len()];
        for chime in part.chimes() {
            assert!(!chime.members.is_empty(), "seed {seed}");
            for &m in &chime.members {
                seen[m] += 1;
            }
            // Port limits hold within the chime.
            let mut pipes = [0u8; 3];
            let mut reads = [0u8; 4];
            let mut writes = [0u8; 4];
            for &m in &chime.members {
                let ins = &instrs[m];
                let slot = match ins.pipe().unwrap() {
                    c240_isa::Pipe::LoadStore => 0,
                    c240_isa::Pipe::Add => 1,
                    c240_isa::Pipe::Multiply => 2,
                };
                pipes[slot] += 1;
                let (r, w) = ins.pair_usage();
                for p in 0..4 {
                    reads[p] += r[p];
                    writes[p] += w[p];
                }
            }
            assert!(
                pipes.iter().all(|&c| c <= 1),
                "seed {seed}: pipe reuse in a chime"
            );
            assert!(
                reads.iter().all(|&c| c <= 2),
                "seed {seed}: pair read limit"
            );
            assert!(
                writes.iter().all(|&c| c <= 1),
                "seed {seed}: pair write limit"
            );
            // Cost is at least one element sweep.
            assert!(chime.cost(config.vl) >= f64::from(config.vl), "seed {seed}");
        }
        for (i, ins) in instrs.iter().enumerate() {
            let expected = u32::from(ins.is_vector());
            assert_eq!(seen[i], expected, "seed {seed}: instruction {i} coverage");
        }
        // Refresh never shrinks the cost.
        assert!(part.cycles() >= part.raw_cycles() - 1e-9, "seed {seed}");
    }
}

#[test]
fn sim_time_grows_with_iterations() {
    let program = |n: i64| {
        let mut b = c240_isa::ProgramBuilder::new();
        b.set_vl_imm(128);
        b.mov_int(n, "s0");
        b.label("L");
        b.vload("a1", 0, "v0");
        b.vadd("v0", "v0", "v1");
        b.int_op_imm("sub", 1, "s0");
        b.cmp_imm("lt", 0, "s0");
        b.branch_true("L");
        b.halt();
        b.build().unwrap()
    };
    let mut cpu = Cpu::new(SimConfig::c240());
    for strips in 1i64..20 {
        let short = cpu.run(&program(strips)).unwrap().cycles;
        let long = cpu.run(&program(strips + 1)).unwrap().cycles;
        assert!(long > short, "strips {strips}: {long} <= {short}");
    }
}

#[test]
fn contention_never_speeds_up_memory_loops() {
    let strides = [3u64, 7, 11];
    let program = {
        let mut b = c240_isa::ProgramBuilder::new();
        b.set_vl_imm(128);
        b.mov_int(10, "s0");
        b.label("L");
        b.vload("a1", 0, "v0");
        b.vload("a1", 8192, "v1");
        b.int_op_imm("add", 1024, "a1");
        b.int_op_imm("sub", 1, "s0");
        b.cmp_imm("lt", 0, "s0");
        b.branch_true("L");
        b.halt();
        b.build().unwrap()
    };
    let quiet = Cpu::new(SimConfig::c240()).run(&program).unwrap().cycles;
    for seed in 0..24u64 {
        let mut rng = Rng::new(2000 + seed);
        let phase = rng.range_u64(0, 32);
        let stride = strides[rng.range_usize(0, 3)];
        let busy_cfg = SimConfig {
            mem: SimConfig::c240()
                .mem
                .with_contention(ContentionConfig::idle().with_stream(
                    c240_mem::ContentionStream {
                        stride,
                        phase,
                        duty_num: 1,
                        duty_den: 2,
                    },
                )),
            ..SimConfig::c240()
        };
        let busy = Cpu::new(busy_cfg).run(&program).unwrap().cycles;
        assert!(
            busy + 1e-9 >= quiet,
            "seed {seed}: busy {busy} < quiet {quiet}"
        );
    }
}

/// Random (but well-formed) kernels for the compiler properties.
fn expr(rng: &mut Rng, depth: u32) -> Expr {
    let leaf = |rng: &mut Rng| match rng.range_u64(0, 3) {
        0 => {
            let name = ["a", "b", "c"][rng.range_usize(0, 3)];
            macs_compiler::load(name, rng.range_i64(0, 4))
        }
        1 => macs_compiler::param("p"),
        _ => macs_compiler::con(rng.range_i64(1, 9) as f64 / 4.0),
    };
    if depth == 0 {
        return leaf(rng);
    }
    // Weighted choice mirroring the original strategy: 4 add, 3 mul,
    // 2 sub, 1 neg — and leaves become likelier as depth shrinks.
    if rng.range_u64(0, 4) == 0 {
        return leaf(rng);
    }
    match rng.range_u64(0, 10) {
        0..=3 => expr(rng, depth - 1) + expr(rng, depth - 1),
        4..=6 => expr(rng, depth - 1) * expr(rng, depth - 1),
        7..=8 => expr(rng, depth - 1) - expr(rng, depth - 1),
        _ => -expr(rng, depth - 1),
    }
}

fn kernel(rng: &mut Rng) -> Kernel {
    let e = expr(rng, 3);
    Kernel::new("random")
        .array("a", 1200)
        .array("b", 1200)
        .array("c", 1200)
        .array("o", 1200)
        .param("p", 1.5)
        .store("o", 0, e)
}

#[test]
fn bounds_hierarchy_monotone_for_random_kernels() {
    for seed in 0..32u64 {
        let mut rng = Rng::new(3000 + seed);
        let k = kernel(&mut rng);
        let Ok(compiled) = compile(&k, 1000, CompileOptions::default()) else {
            // Register pressure or a scalar-only store — fine to skip.
            continue;
        };
        let ma = macs_compiler::analyze_ma(&k);
        if ma.f_a + ma.f_m == 0 {
            continue;
        }
        let bounds = KernelBounds::compute("random", ma, &compiled.program, &ChimeConfig::c240());
        assert!(
            bounds.is_monotone(),
            "seed {seed}: MA {} MAC {} MACS {}\n{}",
            bounds.t_ma_cpl(),
            bounds.t_mac_cpl(),
            bounds.t_macs_cpl(),
            compiled.program
        );
    }
}

#[test]
fn compiled_kernels_match_interpreter() {
    for seed in 0..32u64 {
        let mut rng = Rng::new(4000 + seed);
        let k = kernel(&mut rng);
        let n = rng.range_u64(100, 400);
        let Ok(compiled) = compile(&k, n, CompileOptions::default()) else {
            continue;
        };
        // Bind data, run, compare against the interpreter.
        let mut data: BTreeMap<String, Vec<f64>> = BTreeMap::new();
        for (i, decl) in k.arrays().iter().enumerate() {
            data.insert(
                decl.name.clone(),
                (0..decl.len)
                    .map(|j| 0.5 + ((j * 7 + i as u64 * 13) % 11) as f64 / 11.0)
                    .collect(),
            );
        }
        let mut cpu = Cpu::new(SimConfig::c240());
        for decl in k.arrays() {
            let base = compiled.layout.base_word(&decl.name).unwrap();
            for (j, &v) in data[&decl.name].iter().enumerate() {
                cpu.mem_mut().poke(base + j as u64, v);
            }
        }
        cpu.run(&compiled.program).unwrap();

        let mut expected = data.clone();
        k.interpret(&mut expected, n);

        let base = compiled.layout.base_word("o").unwrap();
        for j in 0..n {
            let got = cpu.mem().peek(base + j);
            let want = expected["o"][j as usize];
            let rel = (got - want).abs() / want.abs().max(1.0);
            assert!(rel < 1e-10, "seed {seed}: o[{j}]: {got} vs {want}");
        }
    }
}

/// The assembler never panics on arbitrary input — it returns a
/// structured error with a line number instead.
#[test]
fn assembler_never_panics() {
    for seed in 0..256u64 {
        let mut rng = Rng::new(5000 + seed);
        let source = rng.ascii_string(0, 200);
        match assemble(&source) {
            Ok(program) => {
                // Whatever parsed must render and re-parse identically.
                let text = program.to_string();
                let again = assemble(&text).unwrap();
                assert_eq!(program, again, "seed {seed}");
            }
            Err(e) => {
                assert!(!e.to_string().is_empty(), "seed {seed}");
            }
        }
    }
}

/// Near-miss assembly (valid mnemonics, scrambled operands) also fails
/// cleanly.
#[test]
fn assembler_rejects_near_misses() {
    let mnemonics = [
        "ld.l", "st.l", "add.d", "mul.d", "mov", "sum.d", "jbrs.t", "halt",
    ];
    for seed in 0..256u64 {
        let mut rng = Rng::new(6000 + seed);
        let mnemonic = mnemonics[rng.range_usize(0, mnemonics.len())];
        let operands = rng.string_from(b"abcdefghijklmnopqrstuvwxyz0123456789#(),:.-", 0, 24);
        let source = format!("{mnemonic} {operands}");
        let _ = assemble(&source); // must not panic
    }
}

/// Memory grants are monotone: asking later never gets an earlier grant,
/// and the same access pattern is deterministic.
#[test]
fn memory_grants_are_monotone_and_deterministic() {
    use c240_mem::{MemConfig, MemorySystem};
    for seed in 0..48u64 {
        let mut rng = Rng::new(7000 + seed);
        let addrs: Vec<u64> = (0..rng.range_usize(1, 64))
            .map(|_| rng.range_u64(0, 4096))
            .collect();
        let delay = rng.range_u64(0, 16);
        let mut early = MemorySystem::new(MemConfig::c240());
        let mut late = MemorySystem::new(MemConfig::c240());
        let mut t_early = 0.0;
        let mut t_late = delay as f64;
        for &a in &addrs {
            let (g1, _) = early.read(a, t_early);
            let (g2, _) = late.read(a, t_late);
            assert!(
                g2 + 1e-9 >= g1,
                "seed {seed}: later request granted earlier"
            );
            t_early = g1 + 1.0;
            t_late = g2 + 1.0;
        }
        // Determinism.
        let mut again = MemorySystem::new(MemConfig::c240());
        let mut t = 0.0;
        let mut grants = Vec::new();
        for &a in &addrs {
            let (g, _) = again.read(a, t);
            grants.push(g);
            t = g + 1.0;
        }
        let mut once_more = MemorySystem::new(MemConfig::c240());
        let mut t2 = 0.0;
        for (&a, &g) in addrs.iter().zip(&grants) {
            let (gg, _) = once_more.read(a, t2);
            assert_eq!(gg, g, "seed {seed}");
            t2 = gg + 1.0;
        }
    }
}

/// The rescheduler output is always a permutation of its input.
#[test]
fn rescheduler_permutes() {
    use macs_core::reschedule_for_chimes;
    for seed in 0..64u64 {
        let mut rng = Rng::new(8000 + seed);
        let instrs = instruction_vec(&mut rng, 1, 24);
        let out = reschedule_for_chimes(&instrs, &ChimeConfig::c240());
        assert_eq!(out.len(), instrs.len(), "seed {seed}");
        let mut a: Vec<String> = instrs.iter().map(|i| i.to_string()).collect();
        let mut b: Vec<String> = out.iter().map(|i| i.to_string()).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b, "seed {seed}");
        // And never worse under the chime model.
        let before = partition_chimes(&instrs, &ChimeConfig::c240()).cycles();
        let after = partition_chimes(&out, &ChimeConfig::c240()).cycles();
        assert!(after <= before + 1e-9, "seed {seed}");
    }
}
