//! Property-based tests over the core invariants:
//!
//! * assembler/disassembler round-trip,
//! * chime-partition structure (every vector instruction in exactly one
//!   chime, per-chime port limits respected),
//! * `t_MA ≤ t_MAC ≤ t_MACS` for compiler-generated programs,
//! * compiled code computes exactly what the IR interpreter computes,
//! * simulated time is monotone under added work and added contention.

use std::collections::BTreeMap;

use proptest::prelude::*;

use c240_isa::asm::assemble;
use c240_isa::{Instruction, MemRef, Program, VOperand};
use c240_mem::ContentionConfig;
use c240_sim::{Cpu, SimConfig};
use macs_compiler::{compile, CompileOptions, Expr, Kernel};
use macs_core::{partition_chimes, ChimeConfig, KernelBounds};

fn vreg(i: u8) -> c240_isa::VReg {
    c240_isa::VReg::new(i % 8).unwrap()
}

fn sreg(i: u8) -> c240_isa::SReg {
    c240_isa::SReg::new(i % 8).unwrap()
}

fn areg(i: u8) -> c240_isa::AReg {
    c240_isa::AReg::new(i % 8).unwrap()
}

fn voperand() -> impl Strategy<Value = VOperand> {
    prop_oneof![
        any::<u8>().prop_map(|i| VOperand::V(vreg(i))),
        any::<u8>().prop_map(|i| VOperand::S(sreg(i))),
    ]
}

fn memref() -> impl Strategy<Value = MemRef> {
    (any::<u8>(), -64i64..64, prop_oneof![Just(1i64), 2..32i64])
        .prop_map(|(base, off, stride)| MemRef::new(areg(base), off * 8).with_stride(stride))
}

/// Random instructions covering every variant the assembler prints.
fn instruction() -> impl Strategy<Value = Instruction> {
    prop_oneof![
        (memref(), any::<u8>()).prop_map(|(addr, d)| Instruction::VLoad { addr, dst: vreg(d) }),
        (memref(), any::<u8>()).prop_map(|(addr, s)| Instruction::VStore { src: vreg(s), addr }),
        (any::<u8>(), voperand(), any::<u8>()).prop_map(|(a, b, d)| Instruction::VAdd {
            a: VOperand::V(vreg(a)),
            b,
            dst: vreg(d)
        }),
        (any::<u8>(), voperand(), any::<u8>()).prop_map(|(a, b, d)| Instruction::VSub {
            a: VOperand::V(vreg(a)),
            b,
            dst: vreg(d)
        }),
        (voperand(), any::<u8>(), any::<u8>()).prop_map(|(a, b, d)| Instruction::VMul {
            a,
            b: VOperand::V(vreg(b)),
            dst: vreg(d)
        }),
        (any::<u8>(), any::<u8>()).prop_map(|(s, d)| Instruction::VNeg {
            src: vreg(s),
            dst: vreg(d)
        }),
        (any::<u8>(), any::<u8>()).prop_map(|(s, d)| Instruction::VSum {
            src: vreg(s),
            dst: sreg(d)
        }),
        (any::<u8>(), any::<u8>()).prop_map(|(s, d)| Instruction::VRAdd {
            src: vreg(s),
            acc: sreg(d)
        }),
        (any::<i64>(), any::<u8>()).prop_map(|(v, d)| Instruction::SMovImm {
            value: c240_isa::ScalarValue::Int(v),
            dst: c240_isa::ScalarReg::S(sreg(d))
        }),
        (memref(), any::<u8>()).prop_map(|(addr, d)| Instruction::SLoad {
            addr,
            dst: c240_isa::ScalarReg::A(areg(d))
        }),
        Just(Instruction::Nop),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn assembler_roundtrip(instrs in proptest::collection::vec(instruction(), 1..40)) {
        let program = Program::new(instrs, Default::default()).unwrap();
        let text = program.to_string();
        let reassembled = assemble(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        prop_assert_eq!(program, reassembled);
    }

    #[test]
    fn chime_partition_covers_each_vector_instruction_once(
        instrs in proptest::collection::vec(instruction(), 1..40)
    ) {
        let config = ChimeConfig::c240();
        let part = partition_chimes(&instrs, &config);
        // Every vector instruction appears in exactly one chime.
        let mut seen = vec![0u32; instrs.len()];
        for chime in part.chimes() {
            prop_assert!(!chime.members.is_empty());
            for &m in &chime.members {
                seen[m] += 1;
            }
            // Port limits hold within the chime.
            let mut pipes = [0u8; 3];
            let mut reads = [0u8; 4];
            let mut writes = [0u8; 4];
            for &m in &chime.members {
                let ins = &instrs[m];
                let slot = match ins.pipe().unwrap() {
                    c240_isa::Pipe::LoadStore => 0,
                    c240_isa::Pipe::Add => 1,
                    c240_isa::Pipe::Multiply => 2,
                };
                pipes[slot] += 1;
                let (r, w) = ins.pair_usage();
                for p in 0..4 {
                    reads[p] += r[p];
                    writes[p] += w[p];
                }
            }
            prop_assert!(pipes.iter().all(|&c| c <= 1), "pipe reuse in a chime");
            prop_assert!(reads.iter().all(|&c| c <= 2), "pair read limit");
            prop_assert!(writes.iter().all(|&c| c <= 1), "pair write limit");
            // Cost is at least one element sweep.
            prop_assert!(chime.cost(config.vl) >= f64::from(config.vl));
        }
        for (i, ins) in instrs.iter().enumerate() {
            let expected = u32::from(ins.is_vector());
            prop_assert_eq!(seen[i], expected, "instruction {} coverage", i);
        }
        // Refresh never shrinks the cost.
        prop_assert!(part.cycles() >= part.raw_cycles() - 1e-9);
    }

    #[test]
    fn sim_time_grows_with_iterations(strips in 1i64..20) {
        let program = |n: i64| {
            let mut b = c240_isa::ProgramBuilder::new();
            b.set_vl_imm(128);
            b.mov_int(n, "s0");
            b.label("L");
            b.vload("a1", 0, "v0");
            b.vadd("v0", "v0", "v1");
            b.int_op_imm("sub", 1, "s0");
            b.cmp_imm("lt", 0, "s0");
            b.branch_true("L");
            b.halt();
            b.build().unwrap()
        };
        let mut cpu = Cpu::new(SimConfig::c240());
        let short = cpu.run(&program(strips)).unwrap().cycles;
        let long = cpu.run(&program(strips + 1)).unwrap().cycles;
        prop_assert!(long > short);
    }

    #[test]
    fn contention_never_speeds_up_memory_loops(phase in 0u64..32, stride in 0usize..3) {
        let strides = [3u64, 7, 11];
        let program = {
            let mut b = c240_isa::ProgramBuilder::new();
            b.set_vl_imm(128);
            b.mov_int(10, "s0");
            b.label("L");
            b.vload("a1", 0, "v0");
            b.vload("a1", 8192, "v1");
            b.int_op_imm("add", 1024, "a1");
            b.int_op_imm("sub", 1, "s0");
            b.cmp_imm("lt", 0, "s0");
            b.branch_true("L");
            b.halt();
            b.build().unwrap()
        };
        let quiet = Cpu::new(SimConfig::c240()).run(&program).unwrap().cycles;
        let busy_cfg = SimConfig {
            mem: SimConfig::c240().mem.with_contention(
                ContentionConfig::idle().with_stream(c240_mem::ContentionStream {
                    stride: strides[stride],
                    phase,
                    duty_num: 1,
                    duty_den: 2,
                }),
            ),
            ..SimConfig::c240()
        };
        let busy = Cpu::new(busy_cfg).run(&program).unwrap().cycles;
        prop_assert!(busy + 1e-9 >= quiet, "busy {} < quiet {}", busy, quiet);
    }
}

/// Random (but well-formed) kernels for the compiler properties.
fn expr(depth: u32) -> BoxedStrategy<Expr> {
    let leaf = prop_oneof![
        (0u8..3, 0i64..4).prop_map(|(a, o)| {
            let name = ["a", "b", "c"][a as usize];
            macs_compiler::load(name, o)
        }),
        Just(macs_compiler::param("p")),
        (1u32..9).prop_map(|c| macs_compiler::con(f64::from(c) / 4.0)),
    ];
    if depth == 0 {
        leaf.boxed()
    } else {
        let sub = expr(depth - 1);
        prop_oneof![
            4 => (sub.clone(), sub.clone()).prop_map(|(x, y)| x + y),
            3 => (sub.clone(), sub.clone()).prop_map(|(x, y)| x * y),
            2 => (sub.clone(), sub.clone()).prop_map(|(x, y)| x - y),
            1 => sub.prop_map(|x| -x),
        ]
        .boxed()
    }
}

fn kernel() -> impl Strategy<Value = Kernel> {
    expr(3).prop_map(|e| {
        Kernel::new("random")
            .array("a", 1200)
            .array("b", 1200)
            .array("c", 1200)
            .array("o", 1200)
            .param("p", 1.5)
            .store("o", 0, e)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn bounds_hierarchy_monotone_for_random_kernels(k in kernel()) {
        let Ok(compiled) = compile(&k, 1000, CompileOptions::default()) else {
            // Register pressure or a scalar-only store — fine to skip.
            return Ok(());
        };
        let ma = macs_compiler::analyze_ma(&k);
        if ma.f_a + ma.f_m == 0 {
            return Ok(());
        }
        let bounds = KernelBounds::compute("random", ma, &compiled.program, &ChimeConfig::c240());
        prop_assert!(bounds.is_monotone(),
            "MA {} MAC {} MACS {}\n{}",
            bounds.t_ma_cpl(), bounds.t_mac_cpl(), bounds.t_macs_cpl(), compiled.program);
    }

    #[test]
    fn compiled_kernels_match_interpreter(k in kernel(), n in 100u64..400) {
        let Ok(compiled) = compile(&k, n, CompileOptions::default()) else {
            return Ok(());
        };
        // Bind data, run, compare against the interpreter.
        let mut data: BTreeMap<String, Vec<f64>> = BTreeMap::new();
        for (i, decl) in k.arrays().iter().enumerate() {
            data.insert(
                decl.name.clone(),
                (0..decl.len)
                    .map(|j| 0.5 + ((j * 7 + i as u64 * 13) % 11) as f64 / 11.0)
                    .collect(),
            );
        }
        let mut cpu = Cpu::new(SimConfig::c240());
        for decl in k.arrays() {
            let base = compiled.layout.base_word(&decl.name).unwrap();
            for (j, &v) in data[&decl.name].iter().enumerate() {
                cpu.mem_mut().poke(base + j as u64, v);
            }
        }
        cpu.run(&compiled.program).unwrap();

        let mut expected = data.clone();
        k.interpret(&mut expected, n);

        let base = compiled.layout.base_word("o").unwrap();
        for j in 0..n {
            let got = cpu.mem().peek(base + j);
            let want = expected["o"][j as usize];
            let rel = (got - want).abs() / want.abs().max(1.0);
            prop_assert!(rel < 1e-10, "o[{}]: {} vs {}", j, got, want);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The assembler never panics on arbitrary input — it returns a
    /// structured error with a line number instead.
    #[test]
    fn assembler_never_panics(source in "[ -~\n\t]{0,200}") {
        match assemble(&source) {
            Ok(program) => {
                // Whatever parsed must render and re-parse identically.
                let text = program.to_string();
                let again = assemble(&text).unwrap();
                prop_assert_eq!(program, again);
            }
            Err(e) => {
                prop_assert!(!e.to_string().is_empty());
            }
        }
    }

    /// Near-miss assembly (valid mnemonics, scrambled operands) also
    /// fails cleanly.
    #[test]
    fn assembler_rejects_near_misses(
        mnemonic in prop_oneof![
            Just("ld.l"), Just("st.l"), Just("add.d"), Just("mul.d"),
            Just("mov"), Just("sum.d"), Just("jbrs.t"), Just("halt")
        ],
        operands in "[a-z0-9#(),:.\\-]{0,24}",
    ) {
        let source = format!("{mnemonic} {operands}");
        let _ = assemble(&source); // must not panic
    }

    /// Memory grants are monotone: asking later never gets an earlier
    /// grant, and the same access pattern is deterministic.
    #[test]
    fn memory_grants_are_monotone_and_deterministic(
        addrs in proptest::collection::vec(0u64..4096, 1..64),
        delay in 0u64..16,
    ) {
        use c240_mem::{MemConfig, MemorySystem};
        let mut early = MemorySystem::new(MemConfig::c240());
        let mut late = MemorySystem::new(MemConfig::c240());
        let mut t_early = 0.0;
        let mut t_late = delay as f64;
        for &a in &addrs {
            let (g1, _) = early.read(a, t_early);
            let (g2, _) = late.read(a, t_late);
            prop_assert!(g2 + 1e-9 >= g1, "later request granted earlier");
            t_early = g1 + 1.0;
            t_late = g2 + 1.0;
        }
        // Determinism.
        let mut again = MemorySystem::new(MemConfig::c240());
        let mut t = 0.0;
        let mut grants = Vec::new();
        for &a in &addrs {
            let (g, _) = again.read(a, t);
            grants.push(g);
            t = g + 1.0;
        }
        let mut once_more = MemorySystem::new(MemConfig::c240());
        let mut t2 = 0.0;
        for (&a, &g) in addrs.iter().zip(&grants) {
            let (gg, _) = once_more.read(a, t2);
            prop_assert_eq!(gg, g);
            t2 = gg + 1.0;
        }
    }

    /// The rescheduler output is always a permutation of its input.
    #[test]
    fn rescheduler_permutes(instrs in proptest::collection::vec(instruction(), 1..24)) {
        use macs_core::reschedule_for_chimes;
        let out = reschedule_for_chimes(&instrs, &ChimeConfig::c240());
        prop_assert_eq!(out.len(), instrs.len());
        let mut a: Vec<String> = instrs.iter().map(|i| i.to_string()).collect();
        let mut b: Vec<String> = out.iter().map(|i| i.to_string()).collect();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
        // And never worse under the chime model.
        let before = partition_chimes(&instrs, &ChimeConfig::c240()).cycles();
        let after = partition_chimes(&out, &ChimeConfig::c240()).cycles();
        prop_assert!(after <= before + 1e-9);
    }
}
