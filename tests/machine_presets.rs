//! Machine-description presets: exactness and transfer.
//!
//! The declarative [`MachineDescription`] refactor is only allowed to
//! exist because `MachineDescription::c240()` reproduces the historical
//! hard-coded C-240 *bit-identically* — same configuration structs,
//! same statistics, same wait breakdowns, same per-pc telemetry, with
//! fast-forward on and off. The exactness matrix here pins that
//! contract across the whole LFK suite.
//!
//! The non-C-240 presets then demonstrate the paper's §6 claim that the
//! methodology transfers: more banks strictly reduce bank-busy waits,
//! fewer ports shift the multi-CPU contention bands, and the MACS
//! bounds hierarchy stays monotone on machines nobody hand-tuned the
//! model for.

use c240_isa::{MachineDescription, ProgramBuilder, TimingTable, PRESET_NAMES};
use c240_mem::{CacheConfig, ContentionConfig, MemConfig};
use c240_sim::{ConfigError, CounterProbe, Cpu, Machine, RunStats, ScalarTiming, SimConfig};
use macs_core::ChimeConfig;

/// The C-240 configuration as the pre-refactor code spelled it: every
/// constant written out literally, none derived from a description.
/// This is the frozen reference the preset must keep matching.
fn legacy_literal_c240() -> SimConfig {
    SimConfig {
        machine: "c240".into(),
        timing: TimingTable::c240(),
        mem: MemConfig {
            banks: 32,
            bank_busy: 8,
            refresh_period: 400,
            refresh_len: 8,
            refresh_enabled: true,
            words: 1 << 20,
            contention: ContentionConfig::idle(),
        },
        cache: CacheConfig {
            lines: 256,
            line_words: 4,
            hit_latency: 2,
            miss_penalty: 4,
        },
        scalar: ScalarTiming {
            issue: 1.0,
            branch_taken_penalty: 2.0,
            int_latency: 1.0,
            fp_add_latency: 2.0,
            fp_mul_latency: 3.0,
            fp_div_latency: 12.0,
        },
        chaining: true,
        pair_constraint: true,
        trace: false,
        trace_cap: 65_536,
        max_instructions: 200_000_000,
        fast_forward: true,
        cpus: 1,
        ports: 4,
    }
}

#[test]
fn c240_preset_equals_the_legacy_literal_config() {
    let literal = legacy_literal_c240();
    assert_eq!(SimConfig::c240(), literal);
    assert_eq!(SimConfig::for_machine(&MachineDescription::c240()), literal);
    assert_eq!(
        ChimeConfig::for_machine(&MachineDescription::c240()),
        ChimeConfig::c240()
    );
    // The 1.02 refresh factor of §3.2 must come out of the description's
    // integer fields exactly, not as a nearby float.
    assert_eq!(MachineDescription::c240().refresh_factor(), 1.02);
}

/// Runs one kernel and returns everything observable: stats (cycles,
/// instruction classes, wait breakdown), whole-probe telemetry
/// (per-lane accounts and per-pc stall counters), and results check.
fn observe(config: SimConfig, kernel: &dyn lfk_suite::LfkKernel) -> (RunStats, CounterProbe) {
    let mut cpu = Cpu::new(config);
    kernel.setup(&mut cpu);
    let mut probe = CounterProbe::new();
    let stats = cpu
        .run_probed(&kernel.program(), &mut probe)
        .unwrap_or_else(|e| panic!("LFK{} failed: {e}", kernel.id()));
    kernel
        .check(&cpu)
        .unwrap_or_else(|e| panic!("LFK{} wrong results: {e}", kernel.id()));
    (stats, probe)
}

/// The exactness matrix: every LFK kernel, fast-forward on and off,
/// simulated under the preset-derived configuration and under the
/// legacy literal one. All statistics and telemetry must be equal —
/// bitwise, since both `RunStats` and `CounterProbe` compare `f64`s.
#[test]
fn c240_exactness_matrix_across_the_suite() {
    for kernel in lfk_suite::all() {
        let kernel = kernel.as_ref();
        for fast_forward in [true, false] {
            let derive = |mut cfg: SimConfig| {
                cfg.fast_forward = fast_forward;
                cfg
            };
            let (preset_stats, preset_probe) = observe(derive(SimConfig::c240()), kernel);
            let (literal_stats, literal_probe) = observe(derive(legacy_literal_c240()), kernel);
            assert_eq!(
                preset_stats,
                literal_stats,
                "LFK{} (fast_forward={fast_forward}): preset stats diverge from the literal config",
                kernel.id()
            );
            assert_eq!(
                preset_probe,
                literal_probe,
                "LFK{} (fast_forward={fast_forward}): preset telemetry diverges",
                kernel.id()
            );
        }
    }
}

/// A deliberately bank-hostile access pattern: stride-16 vector loads.
/// On 32 banks the stream alternates between just two banks, revisiting
/// each while it is still cycling (`bank_busy = 8`); on 64 banks it
/// spreads over four, so every revisit arrives later in the recovery.
fn stride16_stats(machine: &MachineDescription) -> RunStats {
    let mut b = ProgramBuilder::new();
    b.set_vl_imm(64);
    b.vload_strided("a1", 0, 16, "v0");
    b.vload_strided("a1", 8, 16, "v1");
    b.vadd("v0", "v1", "v2");
    b.halt();
    let program = b.build().unwrap();
    let mut cpu = Cpu::new(SimConfig::for_machine(machine));
    cpu.set_areg(1, 0);
    cpu.run(&program).unwrap()
}

#[test]
fn sixty_four_banks_strictly_reduce_bank_waits() {
    let narrow = stride16_stats(&MachineDescription::c240());
    let wide = stride16_stats(&MachineDescription::c240_64banks());
    assert!(
        wide.memory_waits.bank_busy < narrow.memory_waits.bank_busy,
        "64 banks must wait strictly less: 32-bank bank_busy {} vs 64-bank {}",
        narrow.memory_waits.bank_busy,
        wide.memory_waits.bank_busy
    );
    assert!(
        wide.cycles < narrow.cycles,
        "fewer bank waits must show up in cycles: {} vs {}",
        narrow.cycles,
        wide.cycles
    );
}

/// Two CPUs running the same memory-bound kernel through shared banks:
/// the dual-port hypothetical has half the banks of the C-240, so the
/// same co-schedule lands in a different (worse) contention band.
#[test]
fn dual_port_preset_shifts_the_contention_bands() {
    let cosim_waits = |machine: &MachineDescription| {
        let config = SimConfig::for_machine(machine).with_cpus(2);
        let kernel = lfk_suite::by_id(1).unwrap();
        let mut m = Machine::new(config);
        let programs: Vec<_> = (0..2)
            .map(|i| {
                kernel.setup(m.cpu_mut(i));
                kernel.program()
            })
            .collect();
        let stats = m.run(&programs).unwrap();
        (
            stats.iter().map(|s| s.cycles).sum::<f64>(),
            stats.iter().map(|s| s.memory_waits.contention).sum::<f64>(),
        )
    };
    let (c240_cycles, c240_contention) = cosim_waits(&MachineDescription::c240());
    let (dual_cycles, dual_contention) = cosim_waits(&MachineDescription::dual_port());
    assert!(
        dual_contention > c240_contention,
        "16 banks / 2 ports must contend more than 32 banks / 4 ports: {dual_contention} vs {c240_contention}"
    );
    assert!(
        dual_cycles > c240_cycles,
        "the extra contention must cost cycles: {dual_cycles} vs {c240_cycles}"
    );
    // And the port count is a real limit, not a label: a third CPU does
    // not fit a two-port machine.
    let err = SimConfig::for_machine(&MachineDescription::dual_port())
        .try_with_cpus(3)
        .unwrap_err();
    assert_eq!(err, ConfigError::MoreCpusThanPorts { cpus: 3, ports: 2 });
}

/// §6 transfer: the bounds hierarchy and the A/X decomposition hold on
/// machines other than the one the model was calibrated against.
#[test]
fn bounds_hierarchy_and_ax_analysis_transfer_to_other_presets() {
    for machine in [
        MachineDescription::c240_64banks(),
        MachineDescription::dual_port(),
    ] {
        let sim = SimConfig::for_machine(&machine);
        let chime = ChimeConfig::for_machine(&machine);
        // Three structurally distinct kernels: vector memory-bound,
        // reduction, strided.
        for id in [1u32, 3, 9] {
            let Some(kernel) = lfk_suite::by_id(id) else {
                continue;
            };
            let analysis = macs_experiments::analyze_lfk(kernel.as_ref(), &sim, &chime);
            assert!(
                analysis.bounds.is_monotone(),
                "LFK{id} on {}: MA {} MAC {} MACS {} not monotone",
                machine.name,
                analysis.bounds.t_ma_cpl(),
                analysis.bounds.t_mac_cpl(),
                analysis.bounds.t_macs_cpl()
            );
            assert!(
                analysis.t_a_cpl() > 0.0 && analysis.t_x_cpl() > 0.0,
                "LFK{id} on {}: A/X processes must run",
                machine.name
            );
            // The measured run can never beat the serial sum of its
            // decoupled halves (Eq. 18's upper band).
            assert!(
                analysis.t_p_cpl() <= analysis.t_a_cpl() + analysis.t_x_cpl() + 1e-9,
                "LFK{id} on {}: t_p {} exceeds t_a+t_x {}",
                machine.name,
                analysis.t_p_cpl(),
                analysis.t_a_cpl() + analysis.t_x_cpl()
            );
        }
    }
}

#[test]
fn every_named_preset_resolves_and_validates() {
    for name in PRESET_NAMES {
        let machine = MachineDescription::preset(name)
            .unwrap_or_else(|| panic!("preset {name:?} must resolve"));
        assert_eq!(machine.name, name);
        let sim = SimConfig::for_machine(&machine);
        assert_eq!(sim.machine, name);
        sim.validate()
            .unwrap_or_else(|e| panic!("preset {name:?} must validate: {e}"));
    }
    assert!(MachineDescription::preset("c241").is_none());
}
