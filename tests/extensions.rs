//! Integration tests for the paper-suggested extensions: the MACS-D
//! decomposition bound, the outer-loop overhead model, the optimization
//! advisor, and the chime rescheduler — exercised on the real case-study
//! kernels and the simulator.

use c240_isa::asm::assemble;
use c240_sim::{Cpu, SimConfig};
use lfk_suite::by_id;
use macs_core::{
    advise, analyze_kernel, analyze_overhead, partition_chimes, reschedule_for_chimes,
    segmented_macs_cpl, Action, BankModel, ChimeConfig,
};

fn analyze(id: u32) -> macs_core::KernelAnalysis {
    let k = by_id(id).unwrap();
    analyze_kernel(
        &format!("LFK{id}"),
        k.ma(),
        &k.program(),
        k.iterations(),
        &|cpu| k.setup(cpu),
        &SimConfig::c240(),
        &ChimeConfig::c240(),
    )
    .unwrap()
}

// ---------- MACS-D (bank decomposition bound) -----------------------

/// Plain MACS underestimates a bank-pathological stride; MACS-D prices
/// it, and the simulator confirms it.
#[test]
fn macs_d_prices_bank_conflicts() {
    let program = assemble(
        "   mov #1280,s0
        L:
            mov s0,vl
            ld.l 0(a1):8,v0
            add.d v0,v0,v1
            st.l v1,0(a2)
            add.w #8192,a1
            add.w #1024,a2
            sub.w #128,s0
            lt.w #0,s0
            jbrs.t L
            halt",
    )
    .unwrap();
    let body = program.loop_body(program.innermost_loop().unwrap());

    let plain = partition_chimes(body, &ChimeConfig::c240());
    let with_d = partition_chimes(
        body,
        &ChimeConfig::c240().with_bank_model(BankModel::c240()),
    );
    // Stride 8 on 32 banks touches 4 banks: 2 cycles/element.
    assert!(
        with_d.cpl() > plain.cpl() * 1.4,
        "{} vs {}",
        with_d.cpl(),
        plain.cpl()
    );

    let mut cpu = Cpu::new(SimConfig::c240());
    cpu.set_areg(2, 800_000);
    let measured = cpu.run(&program).unwrap().cycles / 1280.0;
    assert!(
        measured > plain.cpl() * 1.2,
        "plain bound {} should badly underestimate measured {}",
        plain.cpl(),
        measured
    );
    assert!(
        measured >= with_d.cpl() * 0.97,
        "MACS-D {} should lower-bound measured {}",
        with_d.cpl(),
        measured
    );
}

/// On unit-stride code MACS-D changes nothing.
#[test]
fn macs_d_is_inert_for_unit_stride() {
    let k = by_id(1).unwrap();
    let program = k.program();
    let body = program.loop_body(program.innermost_loop().unwrap());
    let plain = partition_chimes(body, &ChimeConfig::c240());
    let with_d = partition_chimes(
        body,
        &ChimeConfig::c240().with_bank_model(BankModel::c240()),
    );
    assert_eq!(plain.cycles(), with_d.cycles());
}

/// The strided case-study kernels (stride 25, coprime with 32 banks)
/// are also unaffected — the paper chose its workloads well.
#[test]
fn macs_d_is_inert_for_the_case_study() {
    for id in [9u32, 10] {
        let k = by_id(id).unwrap();
        let program = k.program();
        let body = program.loop_body(program.innermost_loop().unwrap());
        let plain = partition_chimes(body, &ChimeConfig::c240());
        let with_d = partition_chimes(
            body,
            &ChimeConfig::c240().with_bank_model(BankModel::c240()),
        );
        assert_eq!(plain.cycles(), with_d.cycles(), "LFK{id}");
    }
}

// ---------- outer-loop overhead model (t_MACS+O) ---------------------

/// The extended bound closes most of LFK2's unexplained gap: plain MACS
/// explains ~66% of the measurement, MACS+O should explain ≥ 85%.
#[test]
fn extended_bound_explains_lfk2() {
    let a = analyze(2);
    let k = by_id(2).unwrap();
    let program = k.program();
    let body = program.loop_body(program.innermost_loop().unwrap());
    let cfg = ChimeConfig::c240();
    let overhead = analyze_overhead(&program, &cfg).expect("LFK2 has nested loops");

    // LFK2's per-pass segments: the halving tree 50, 25, 12, 6, 3, 1.
    let segments = [50u64, 25, 12, 6, 3, 1];
    let extended = segmented_macs_cpl(body, &cfg, &segments, &overhead);
    let plain = a.bounds.t_macs_cpl();
    let measured = a.t_p_cpl();

    assert!(extended > plain, "extended {extended} vs plain {plain}");
    let explained = extended / measured;
    assert!(
        explained > 0.85,
        "MACS+O explains {:.1}% (plain: {:.1}%)",
        100.0 * explained,
        100.0 * (plain / measured)
    );
    // MACS+O is an *estimate*, not a bound; a slight overshoot from the
    // serial chime-sum at tiny vector lengths is expected.
    assert!(
        explained < 1.15,
        "MACS+O {extended} overshoots measured {measured}"
    );
}

/// Same exercise for the triangular kernel LFK6 (segments 1..63).
#[test]
fn extended_bound_explains_lfk6() {
    let a = analyze(6);
    let k = by_id(6).unwrap();
    let program = k.program();
    let body = program.loop_body(program.innermost_loop().unwrap());
    let cfg = ChimeConfig::c240();
    let overhead = analyze_overhead(&program, &cfg).expect("LFK6 has nested loops");
    let segments: Vec<u64> = (1..=63).collect();
    let extended = segmented_macs_cpl(body, &cfg, &segments, &overhead);
    let explained = extended / a.t_p_cpl();
    assert!(
        explained > 0.75 && explained < 1.15,
        "MACS+O explains {:.1}% of LFK6 (plain: {:.1}%)",
        100.0 * explained,
        100.0 * a.pct_macs()
    );
}

// ---------- optimization advisor -------------------------------------

#[test]
fn advisor_tells_the_papers_story() {
    // LFK1/7/12: the compiler reloads shifted reuse streams.
    for id in [1u32, 7, 12] {
        let advice = advise(&analyze(id), 0.05);
        assert!(
            advice
                .iter()
                .any(|a| a.action == Action::EliminateCompilerReloads),
            "LFK{id}: {advice:?}"
        );
    }
    // LFK2/6: amortizing the outer overhead ranks at or near the top.
    for id in [2u32, 6] {
        let advice = advise(&analyze(id), 0.05);
        let pos = advice
            .iter()
            .position(|a| a.action == Action::AmortizeOuterOverhead)
            .unwrap_or(usize::MAX);
        assert!(pos <= 1, "LFK{id}: {advice:?}");
    }
    // LFK8: scheduling/hoisting and overlap dominate.
    let advice8 = advise(&analyze(8), 0.05);
    assert!(
        advice8.iter().any(|a| matches!(
            a.action,
            Action::ImproveSchedule | Action::HoistScalarMemory | Action::ImproveAxOverlap
        )),
        "{advice8:?}"
    );
}

#[test]
fn advisor_estimates_are_positive_and_ranked() {
    for id in lfk_suite::IDS {
        let advice = advise(&analyze(id), 0.05);
        for pair in advice.windows(2) {
            assert!(pair[0].est_saving_cpl >= pair[1].est_saving_cpl);
        }
        for adv in &advice {
            assert!(adv.est_saving_cpl > 0.0, "LFK{id}: {adv:?}");
        }
    }
}

// ---------- rescheduler ----------------------------------------------

/// The rescheduler recovers the interleaved bound from a loads-first
/// compiled kernel, and the reordered code still computes the same
/// values.
#[test]
fn rescheduler_repairs_a_naive_compiler_schedule() {
    use macs_compiler::{compile, load, param, CompileOptions, Kernel, ScheduleStrategy};
    // A five-load stencil: the loads-first schedule strands four
    // arithmetic ops in f-only chimes; a two-load triad would not show
    // the effect (its partitions coincide).
    let kernel = Kernel::new("stencil")
        .array("x", 2100)
        .array("y", 2100)
        .param("a", 3.0)
        .store(
            "y",
            0,
            param("a") * (load("x", 0) + load("x", 1) + load("x", 2) + load("x", 3) + load("x", 4)),
        );
    let naive = compile(
        &kernel,
        1000,
        CompileOptions {
            schedule: ScheduleStrategy::LoadsFirst,
            ..CompileOptions::default()
        },
    )
    .unwrap();
    let good = compile(&kernel, 1000, CompileOptions::default()).unwrap();

    let cfg = ChimeConfig::c240();
    let l = naive.program.innermost_loop().unwrap();
    let body = naive.program.loop_body(l);
    let resched = reschedule_for_chimes(body, &cfg);

    let naive_cpl = partition_chimes(body, &cfg).cpl();
    let resched_cpl = partition_chimes(&resched, &cfg).cpl();
    let good_l = good.program.innermost_loop().unwrap();
    let good_cpl = partition_chimes(good.program.loop_body(good_l), &cfg).cpl();

    // Reordering recovers most — not all — of the gap: the loads-first
    // *register allocation* (five simultaneously-live loads) also costs
    // chimes, and the rescheduler does not reallocate registers
    // ("reordering the sequence of instructions or reallocating the
    // registers may change the MACS bound", §3.4).
    assert!(
        resched_cpl < naive_cpl - 1.0,
        "{resched_cpl} vs naive {naive_cpl}"
    );
    assert!(
        resched_cpl <= good_cpl + 1.1,
        "rescheduled {resched_cpl} vs interleaved-compiled {good_cpl}"
    );

    // Functional equivalence of the rescheduled program.
    let rescheduled_program = naive.program.with_loop_body(l, resched);
    let run = |p: &c240_isa::Program| {
        let mut cpu = Cpu::new(SimConfig::c240());
        let xbase = naive.layout.base_word("x").unwrap();
        for i in 0..2100u64 {
            cpu.mem_mut().poke(xbase + i, (i % 17) as f64 + 0.5);
        }
        cpu.run(p).unwrap();
        let ybase = naive.layout.base_word("y").unwrap();
        (0..1000u64)
            .map(|i| cpu.mem().peek(ybase + i))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(&naive.program), run(&rescheduled_program));
}

/// Rescheduling every case-study kernel never *worsens* the bound and
/// never changes the computed values.
#[test]
fn rescheduler_is_safe_on_the_case_study() {
    let cfg = ChimeConfig::c240();
    for id in lfk_suite::IDS {
        let k = by_id(id).unwrap();
        let program = k.program();
        let l = program.innermost_loop().unwrap();
        let body = program.loop_body(l);
        let resched = reschedule_for_chimes(body, &cfg);
        let before = partition_chimes(body, &cfg).cycles();
        let after = partition_chimes(&resched, &cfg).cycles();
        assert!(after <= before + 1e-9, "LFK{id}: {after} vs {before}");

        let program2 = program.with_loop_body(l, resched);
        let mut cpu = Cpu::new(SimConfig::c240());
        k.setup(&mut cpu);
        cpu.run(&program2)
            .unwrap_or_else(|e| panic!("LFK{id} rescheduled failed: {e}"));
        k.check(&cpu)
            .unwrap_or_else(|e| panic!("LFK{id} rescheduled: {e}"));
    }
}
