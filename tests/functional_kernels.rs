//! Functional cross-validation: every kernel's simulated results equal
//! its reference implementation — under every timing configuration,
//! because timing must never change semantics.

use c240_mem::ContentionConfig;
use c240_sim::{Cpu, SimConfig};
use lfk_suite::{all, by_id};

#[test]
fn all_kernels_match_reference_on_the_paper_machine() {
    for kernel in all() {
        let mut cpu = Cpu::new(SimConfig::c240());
        kernel.setup(&mut cpu);
        cpu.run(&kernel.program())
            .unwrap_or_else(|e| panic!("LFK{} failed to run: {e}", kernel.id()));
        kernel
            .check(&cpu)
            .unwrap_or_else(|e| panic!("LFK{}: {e}", kernel.id()));
    }
}

#[test]
fn timing_configuration_never_changes_results() {
    let configs = [
        SimConfig::c240().without_refresh(),
        SimConfig::c240().without_bubbles(),
        SimConfig::c240().without_chaining(),
        SimConfig::c240().without_pair_constraint(),
        SimConfig {
            mem: SimConfig::c240()
                .mem
                .with_contention(ContentionConfig::mixed(3)),
            ..SimConfig::c240()
        },
    ];
    // The structurally distinct kernels cover all instruction classes.
    for id in [1u32, 2, 4, 8, 10] {
        for config in &configs {
            let kernel = by_id(id).unwrap();
            let mut cpu = Cpu::new(config.clone());
            kernel.setup(&mut cpu);
            cpu.run(&kernel.program())
                .unwrap_or_else(|e| panic!("LFK{id} failed: {e}"));
            kernel
                .check(&cpu)
                .unwrap_or_else(|e| panic!("LFK{id} with {config:?}: {e}"));
        }
    }
}

#[test]
fn contention_slows_but_lockstep_slows_less() {
    // A unit-stride memory-bound kernel: the lockstep phenomenon (§4.2)
    // is about same-executable neighbors whose unit-stride streams
    // interleave; strided streams (LFK 9/10) cannot settle in and pay
    // closer to the mixed-program penalty.
    let run = |config: SimConfig| {
        let kernel = by_id(12).unwrap();
        let mut cpu = Cpu::new(config);
        kernel.setup(&mut cpu);
        cpu.run(&kernel.program()).unwrap().cycles
    };
    let idle = run(SimConfig::c240());
    let lockstep = run(SimConfig {
        mem: SimConfig::c240()
            .mem
            .with_contention(ContentionConfig::lockstep(3)),
        ..SimConfig::c240()
    });
    let mixed = run(SimConfig {
        mem: SimConfig::c240()
            .mem
            .with_contention(ContentionConfig::mixed(3)),
        ..SimConfig::c240()
    });
    assert!(idle < lockstep, "idle {idle} vs lockstep {lockstep}");
    assert!(lockstep < mixed, "lockstep {lockstep} vs mixed {mixed}");
    // §4.2's rule of thumb: different programs cost roughly 20%+ on a
    // memory-bound loop; same-executable neighbors far less.
    assert!(mixed / idle > 1.15, "mixed slowdown {}", mixed / idle);
    assert!(
        lockstep / idle < 1.15,
        "lockstep slowdown {}",
        lockstep / idle
    );
}

#[test]
fn a_and_x_processes_run_for_every_kernel() {
    for kernel in all() {
        let program = kernel.program();
        for (what, transformed) in [
            ("A", macs_core::a_process(&program)),
            ("X", macs_core::x_process(&program)),
        ] {
            let mut cpu = Cpu::new(SimConfig::c240());
            kernel.setup(&mut cpu);
            macs_core::prime_registers(&mut cpu);
            let stats = cpu
                .run(&transformed)
                .unwrap_or_else(|e| panic!("LFK{} {what}-process failed: {e}", kernel.id()));
            assert!(stats.cycles > 0.0);
        }
    }
}
