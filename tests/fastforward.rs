//! Steady-state fast-forward equivalence tests.
//!
//! The fast-forward engine (DESIGN.md, "Steady-state fast-forward") is
//! only allowed to exist because it is *bit-exact*: a fast-forwarded run
//! must produce exactly the same cycle count, statistics, memory wait
//! breakdown, and per-lane stall telemetry as stepping every element.
//! These tests enforce that contract over the whole LFK suite crossed
//! with the model ablations and background-contention settings, and also
//! prove the engine actually engages (a green equivalence suite would be
//! vacuous if detection never fired).

use c240_mem::ContentionConfig;
use c240_sim::{CounterProbe, Cpu, RunStats, SimConfig};
use lfk_suite::LfkKernel;

/// Runs `kernel` under `config`, returning the stats, telemetry, and how
/// many instructions the run fast-forwarded. Also validates the kernel's
/// numerical results so we know the functional warp replay stored the
/// right values, not just the right cycle counts.
fn run_one(config: SimConfig, kernel: &dyn LfkKernel) -> (RunStats, CounterProbe, u64) {
    let mut cpu = Cpu::new(config);
    kernel.setup(&mut cpu);
    let mut probe = CounterProbe::new();
    let stats = cpu
        .run_probed(&kernel.program(), &mut probe)
        .unwrap_or_else(|e| panic!("LFK{} failed: {e}", kernel.id()));
    kernel
        .check(&cpu)
        .unwrap_or_else(|e| panic!("LFK{} wrong results: {e}", kernel.id()));
    (stats, probe, cpu.fast_forwarded_instructions())
}

/// Asserts exact (not approximate) equality between a fast-forwarded and
/// an element-stepped run of every kernel under `config`. Returns the
/// total instructions fast-forwarded, so callers can assert engagement.
fn assert_suite_equivalent(config: SimConfig, label: &str) -> u64 {
    let mut total_skipped = 0;
    for kernel in lfk_suite::all() {
        let kernel = kernel.as_ref();
        let (fast, fast_probe, skipped) = run_one(config.clone(), kernel);
        let (exact, exact_probe, exact_skipped) =
            run_one(config.clone().without_fast_forward(), kernel);
        assert_eq!(exact_skipped, 0, "fast_forward=false must never warp");
        // RunStats derives PartialEq over f64 fields, so this is bitwise
        // cycle/stat equality — it covers cycles, instruction classes,
        // element counts, flops, memory accesses, and the memory wait
        // breakdown (bank busy / refresh / contention).
        assert_eq!(
            fast,
            exact,
            "LFK{} [{label}]: fast-forwarded stats diverge from exact run",
            kernel.id()
        );
        // Whole-probe equality: per-lane busy/idle and every stall
        // cause, both machine-wide and per-pc.
        assert_eq!(
            fast_probe,
            exact_probe,
            "LFK{} [{label}]: fast-forwarded telemetry diverges from exact run",
            kernel.id()
        );
        total_skipped += skipped;
    }
    total_skipped
}

fn with_contention(config: SimConfig, contention: ContentionConfig) -> SimConfig {
    let mut config = config;
    config.mem = config.mem.with_contention(contention);
    config
}

// ---- the full machine, three contention settings -------------------------

#[test]
fn suite_exact_under_full_machine_idle() {
    assert_suite_equivalent(SimConfig::c240(), "c240/idle");
}

/// Fast-forward must actually engage somewhere, or the equivalence
/// matrix above is vacuous. Without refresh a strip loop's timing state
/// repeats after one iteration, so the suite warps most of its work;
/// with refresh, phase realignment (`clock mod 400`) takes ~32+
/// iterations, so engagement needs loops longer than the default
/// kernels' — asserted on a paper-scale loop below.
#[test]
fn fast_forward_engages_on_the_suite_without_refresh() {
    let skipped = assert_suite_equivalent(SimConfig::c240().without_refresh(), "no-refresh/idle");
    assert!(
        skipped > 10_000,
        "fast-forward barely engaged without refresh ({skipped} instructions)"
    );
}

/// On a long loop the warp engages even with refresh on (the detector
/// waits out the 400-cycle phase lcm), and the run stays bit-exact.
#[test]
fn fast_forward_engages_under_refresh_on_long_loops() {
    use c240_isa::ProgramBuilder;
    let mut b = ProgramBuilder::new();
    b.set_vl_imm(128);
    // Long enough that the detector's warm-up (three observations of the
    // ~400-iteration refresh-phase period) is a small fraction of the run.
    b.mov_int(20_000, "s0");
    b.label("L");
    b.vload("a1", 0, "v0");
    b.vmul("v0", "s1", "v1");
    b.vstore("v1", "a2", 0);
    b.int_op_imm("sub", 1, "s0");
    b.cmp_imm("lt", 0, "s0");
    b.branch_true("L");
    b.halt();
    let program = b.build().expect("long loop assembles");

    let run = |config: SimConfig| {
        let mut cpu = Cpu::new(config);
        cpu.set_areg(1, 0);
        cpu.set_areg(2, 80_000);
        cpu.set_sreg_fp(1, 2.0);
        let stats = cpu.run(&program).expect("long loop runs");
        let out = cpu.mem().peek(80_000);
        (stats, out, cpu.fast_forwarded_instructions())
    };
    let (fast, fast_out, skipped) = run(SimConfig::c240());
    let (exact, exact_out, _) = run(SimConfig::c240().without_fast_forward());
    assert_eq!(fast, exact);
    assert_eq!(fast_out.to_bits(), exact_out.to_bits());
    assert!(
        skipped > 10_000,
        "refresh-phase periods were not detected ({skipped} instructions warped)"
    );
}

#[test]
fn suite_exact_under_full_machine_lockstep_contention() {
    assert_suite_equivalent(
        with_contention(SimConfig::c240(), ContentionConfig::lockstep(3)),
        "c240/lockstep(3)",
    );
}

#[test]
fn suite_exact_under_full_machine_mixed_contention() {
    assert_suite_equivalent(
        with_contention(SimConfig::c240(), ContentionConfig::mixed(3)),
        "c240/mixed(3)",
    );
}

// ---- ablated machines × three contention settings ------------------------

#[test]
fn suite_exact_without_chaining() {
    let base = SimConfig::c240().without_chaining();
    assert_suite_equivalent(base.clone(), "no-chaining/idle");
    assert_suite_equivalent(
        with_contention(base.clone(), ContentionConfig::lockstep(3)),
        "no-chaining/lockstep(3)",
    );
    assert_suite_equivalent(
        with_contention(base, ContentionConfig::mixed(3)),
        "no-chaining/mixed(3)",
    );
}

#[test]
fn suite_exact_without_bubbles() {
    let base = SimConfig::c240().without_bubbles();
    assert_suite_equivalent(base.clone(), "no-bubbles/idle");
    assert_suite_equivalent(
        with_contention(base.clone(), ContentionConfig::lockstep(3)),
        "no-bubbles/lockstep(3)",
    );
    assert_suite_equivalent(
        with_contention(base, ContentionConfig::mixed(3)),
        "no-bubbles/mixed(3)",
    );
}

#[test]
fn suite_exact_without_refresh() {
    let base = SimConfig::c240().without_refresh();
    assert_suite_equivalent(base.clone(), "no-refresh/idle");
    assert_suite_equivalent(
        with_contention(base.clone(), ContentionConfig::lockstep(3)),
        "no-refresh/lockstep(3)",
    );
    assert_suite_equivalent(
        with_contention(base, ContentionConfig::mixed(3)),
        "no-refresh/mixed(3)",
    );
}

// ---- edge cases ----------------------------------------------------------

/// Tracing disables fast-forward (the skipped iterations would be
/// missing from the trace), and the run still matches the exact run.
#[test]
fn tracing_disables_fast_forward_but_stays_exact() {
    let kernel = lfk_suite::by_id(1).expect("LFK1 exists");
    let mut cpu = Cpu::new(SimConfig::c240().with_trace());
    kernel.setup(&mut cpu);
    let stats = cpu.run(&kernel.program()).expect("traced run");
    assert_eq!(cpu.fast_forwarded_instructions(), 0);
    assert!(!cpu.trace().events().is_empty() || cpu.trace().dropped() > 0);

    let mut exact = Cpu::new(SimConfig::c240().without_fast_forward());
    kernel.setup(&mut exact);
    let exact_stats = exact.run(&kernel.program()).expect("exact run");
    assert_eq!(stats, exact_stats);
}

/// A cpu can be reused across runs: fast-forward state resets with the
/// timing state, and the second run still matches a fresh exact run.
#[test]
fn reset_timing_clears_fast_forward_state() {
    let kernel = lfk_suite::by_id(7).expect("LFK7 exists");
    let mut cpu = Cpu::new(SimConfig::c240());
    kernel.setup(&mut cpu);
    let first = cpu.run(&kernel.program()).expect("first run");
    cpu.reset_timing();
    kernel.setup(&mut cpu);
    let second = cpu.run(&kernel.program()).expect("second run");
    assert_eq!(first, second);
}
