//! Roofline layer (DESIGN.md §16): golden operational intensities for
//! every registry kernel, the analytic-vs-measured classification
//! agreement guarantee on every machine preset, and a ridge-flip
//! property as the bank count sweeps.

// Only a slice of the shared generator is needed here.
#[allow(dead_code)]
mod prop_support;

use c240_isa::MachineDescription;
use c240_sim::{Cpu, SimConfig, StallRollup};
use macs_core::{
    compiled_intensity, measure_probed, measured_class, operational_intensity, BoundClass,
    ChimeConfig, KernelBounds, MachineCeilings, RooflineVerdict,
};
use prop_support::Rng;

/// Golden MA intensities, hand-derived from Table 2's per-iteration
/// workloads as `(f_a + f_m) / (loads + stores)`. LFK9's odd fraction:
/// 17 flops over 11 memory words.
const GOLDEN_MA: [(u32, f64); 10] = [
    (1, 5.0 / 3.0),
    (2, 4.0 / 5.0),
    (3, 1.0),
    (4, 1.0),
    (6, 1.0),
    (7, 8.0 / 2.0),
    (8, 36.0 / 15.0),
    (9, 17.0 / 11.0),
    (10, 9.0 / 20.0),
    (12, 1.0 / 2.0),
];

#[test]
fn golden_ma_intensities() {
    for (id, expected) in GOLDEN_MA {
        let kernel = lfk_suite::by_id(id).expect("registry kernel");
        let got = operational_intensity(&kernel.ma());
        assert!(
            (got - expected).abs() < 1e-12,
            "LFK{id}: MA intensity {got} != hand-derived {expected}"
        );
    }
}

#[test]
fn compiled_intensity_never_exceeds_ma_intensity() {
    // A compiler can add memory traffic (reloads) but never flops, so
    // the compiled point always sits at or left of the MA point. LFK7
    // is the big split: 4.0 flops/word at MA, 1.6 compiled.
    let chime = ChimeConfig::c240();
    for kernel in lfk_suite::all() {
        let bounds = KernelBounds::compute(
            &format!("LFK{}", kernel.id()),
            kernel.ma(),
            &kernel.program(),
            &chime,
        );
        let i_ma = operational_intensity(&bounds.ma);
        let i = compiled_intensity(&bounds);
        assert!(
            i <= i_ma + 1e-12,
            "LFK{}: compiled intensity {i} above MA intensity {i_ma}",
            kernel.id()
        );
    }
    let k7 = lfk_suite::by_id(7).expect("LFK7");
    let bounds = KernelBounds::compute("LFK7", k7.ma(), &k7.program(), &chime);
    assert!((compiled_intensity(&bounds) - 1.6).abs() < 1e-12);
}

/// The PR's hard guarantee: on every preset, every kernel's analytic
/// `bound_class` (compiled intensity vs the ridge) matches what the
/// probed stall taxonomy measures.
#[test]
fn analytic_class_agrees_with_stall_taxonomy_on_every_preset() {
    for machine in MachineDescription::presets() {
        let sim = SimConfig::for_machine(&machine);
        let chime = ChimeConfig::for_machine(&machine);
        let ceilings = MachineCeilings::of(&machine, 1);
        for kernel in lfk_suite::all() {
            let program = kernel.program();
            let bounds = KernelBounds::compute(
                &format!("LFK{}", kernel.id()),
                kernel.ma(),
                &program,
                &chime,
            );
            let mut cpu = Cpu::new(sim.clone());
            kernel.setup(&mut cpu);
            let (_, probe) = measure_probed(
                &mut cpu,
                &program,
                kernel.iterations(),
                kernel.flops_total(),
            )
            .expect("curated kernels simulate cleanly");
            let rollup = StallRollup::of_probe(&probe);
            let point = ceilings.place(compiled_intensity(&bounds));
            let verdict = RooflineVerdict::check(point.bound_class, &rollup);
            assert!(
                !verdict.is_disagreement(),
                "{} LFK{}: analytic {} vs measured {} (mem_occ {:.0}, cmp_occ {:.0})",
                machine.name,
                kernel.id(),
                point.bound_class,
                measured_class(&rollup),
                rollup.memory_occupancy(),
                rollup.compute_occupancy(),
            );
        }
    }
}

/// As the bank count sweeps upward at full port population, the
/// bandwidth roof rises, the ridge falls, and a fixed intensity flips
/// from memory- to compute-bound exactly once — at the first bank count
/// whose ridge drops to the intensity.
#[test]
fn bound_class_flips_exactly_at_the_ridge_as_banks_sweep() {
    // 4 CPUs: the port cap is 4 words/cycle, so the bank term
    // (banks / (8 × 1.02)) stays the binding one for banks ≤ 32 and the
    // ridge actually moves with the sweep. At 1 CPU the 1-word/cycle
    // port cap would pin the ridge from 9 banks on.
    let cpus = 4;
    let mut rng = Rng::new(0xB0DF);
    for case in 0..64 {
        let mut machine = MachineDescription::c240();
        // Intensities spanning both sides of the reachable ridge range
        // (the ridge floors at peak/port_cap = 2.0 once banks saturate
        // the ports).
        let intensity = 2.05 + (rng.next() % 1000) as f64 / 1000.0 * 50.0;
        let mut classes = Vec::new();
        for banks in 1..=200 {
            machine.banks = banks;
            let ceilings = MachineCeilings::of(&machine, cpus);
            let expected = if intensity >= ceilings.ridge {
                BoundClass::Compute
            } else {
                BoundClass::Memory
            };
            let got = ceilings.classify(intensity);
            assert_eq!(
                got, expected,
                "case {case} (seed 0xB0DF): banks {banks}, intensity {intensity}"
            );
            classes.push(got);
        }
        // Monotone: once compute-bound, more banks never flip it back.
        let flips = classes.windows(2).filter(|w| w[0] != w[1]).count();
        assert!(
            flips <= 1,
            "case {case}: classification flipped {flips} times across the bank sweep"
        );
        if let Some(first_compute) = classes.iter().position(|&c| c == BoundClass::Compute) {
            machine.banks = (first_compute + 1) as u32;
            let at_flip = MachineCeilings::of(&machine, cpus);
            assert!(
                intensity >= at_flip.ridge,
                "case {case}: flipped before the ridge reached the intensity"
            );
            if first_compute > 0 {
                machine.banks = first_compute as u32;
                let before_flip = MachineCeilings::of(&machine, cpus);
                assert!(
                    intensity < before_flip.ridge,
                    "case {case}: ridge was already below the intensity one bank earlier"
                );
            }
        }
    }
}

/// The ceilings scale with the geometry the presets vary: banks raise
/// the multi-CPU bandwidth roof, ports cap it.
#[test]
fn preset_ceilings_order_as_designed() {
    let c240 = MachineDescription::c240();
    let wide = MachineDescription::c240_64banks();
    let dual = MachineDescription::dual_port();
    // 64 banks beat 32 at full port population, but the port cap hides
    // the difference at 1 CPU.
    assert!(
        wide.sustained_bandwidth_words_per_cycle(4) > c240.sustained_bandwidth_words_per_cycle(4)
    );
    assert_eq!(
        wide.sustained_bandwidth_words_per_cycle(1),
        c240.sustained_bandwidth_words_per_cycle(1)
    );
    // Two ports cap the dual-port chassis at 2 words/cycle regardless
    // of how many CPUs ask.
    assert_eq!(dual.port_bandwidth_words_per_cycle(4), 2.0);
    // Peak flop rate is per-CPU and preset-independent here.
    assert_eq!(c240.peak_mflops(1), 50.0);
    assert_eq!(dual.peak_mflops(1), 50.0);
}
