//! A tiny deterministic generator for the property tests.
//!
//! The build environment has no network access, so the `proptest` crate
//! is unavailable; these tests instead draw inputs from a seeded
//! xorshift64* generator. Each test case prints its seed on failure, so
//! any failure is reproducible by construction.

/// xorshift64* — deterministic, seedable, good enough for input fuzzing.
pub struct Rng(u64);

impl Rng {
    pub fn new(seed: u64) -> Self {
        // Avoid the all-zero fixed point and decorrelate small seeds.
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    pub fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    pub fn bool(&mut self) -> bool {
        self.next() & 1 == 1
    }

    pub fn u8(&mut self) -> u8 {
        (self.next() >> 32) as u8
    }

    /// Uniform in `[lo, hi)`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi);
        lo + self.next() % (hi - lo)
    }

    /// Uniform in `[lo, hi)`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo < hi);
        lo + (self.next() % (hi - lo) as u64) as i64
    }

    /// Uniform in `[lo, hi)`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// A string of printable ASCII plus `\n` and `\t`, like the
    /// `"[ -~\n\t]{min,max}"` proptest pattern.
    pub fn ascii_string(&mut self, min: usize, max: usize) -> String {
        let n = self.range_usize(min, max + 1);
        (0..n)
            .map(|_| match self.range_u64(0, 16) {
                0 => '\n',
                1 => '\t',
                _ => (b' ' + (self.next() % 95) as u8) as char,
            })
            .collect()
    }

    /// A string drawn from an explicit byte alphabet.
    pub fn string_from(&mut self, alphabet: &[u8], min: usize, max: usize) -> String {
        let n = self.range_usize(min, max + 1);
        (0..n)
            .map(|_| alphabet[self.range_usize(0, alphabet.len())] as char)
            .collect()
    }
}
