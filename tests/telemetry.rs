//! Integration tests for the cycle-accounting telemetry layer: the
//! probe's wall-clock partition, the memory wait breakdown, ablation
//! zeroing, measured-counter citations in the diagnosis, and the
//! stability of the RunReport JSON schema.

use c240_sim::{CounterProbe, Cpu, Lane, SimConfig, StallCause};
use lfk_suite::LfkKernel;
use macs_core::{ChimeConfig, Finding, RunReport, RUN_REPORT_SCHEMA};
use macs_experiments::analyze_lfk;

fn run_probed(config: SimConfig, kernel: &dyn LfkKernel) -> (c240_sim::RunStats, CounterProbe) {
    let mut cpu = Cpu::new(config);
    kernel.setup(&mut cpu);
    let mut probe = CounterProbe::new();
    let stats = cpu
        .run_probed(&kernel.program(), &mut probe)
        .unwrap_or_else(|e| panic!("LFK{} failed: {e}", kernel.id()));
    (stats, probe)
}

/// Every lane of every kernel satisfies `busy + stalls + idle == cycles`
/// (the telemetry layer's defining invariant), and the probe's memory
/// wait agrees with the memory system's own counter.
#[test]
fn every_kernel_partitions_wall_clock() {
    for kernel in lfk_suite::all() {
        let (stats, probe) = run_probed(SimConfig::c240(), kernel.as_ref());
        let cycles = stats.cycles;
        for (lane, acct) in probe.lanes() {
            let sum = acct.busy + acct.stalls.total() + acct.idle;
            assert!(
                (sum - cycles).abs() <= 1e-6 * cycles.max(1.0),
                "LFK{} lane {lane}: busy {} + stalls {} + idle {} != cycles {cycles}",
                kernel.id(),
                acct.busy,
                acct.stalls.total(),
                acct.idle,
            );
            assert!(acct.busy >= 0.0 && acct.idle >= -1e-9);
        }
        let probe_mem = probe.totals().memory_wait();
        assert!(
            (probe_mem - stats.memory_wait_cycles).abs() <= 1e-6 * cycles.max(1.0),
            "LFK{}: probe memory wait {probe_mem} != stats {}",
            kernel.id(),
            stats.memory_wait_cycles,
        );
    }
}

/// The memory system's wait breakdown is exact, not approximate:
/// `bank_busy + refresh + contention == memory_wait_cycles` per kernel.
#[test]
fn memory_wait_breakdown_is_exact() {
    for kernel in lfk_suite::all() {
        let (stats, _) = run_probed(SimConfig::c240(), kernel.as_ref());
        let b = stats.memory_waits;
        assert!(
            (b.total() - stats.memory_wait_cycles).abs() < 1e-9 * stats.cycles.max(1.0),
            "LFK{}: {} + {} + {} != {}",
            kernel.id(),
            b.bank_busy,
            b.refresh,
            b.contention,
            stats.memory_wait_cycles,
        );
    }
}

/// Turning a hardware hazard off in the machine model zeroes exactly its
/// stall category, for every kernel.
#[test]
fn ablations_zero_their_stall_categories() {
    for kernel in lfk_suite::all() {
        let id = kernel.id();
        let (_, p) = run_probed(SimConfig::c240().without_refresh(), kernel.as_ref());
        assert_eq!(p.totals().get(StallCause::Refresh), 0.0, "LFK{id} refresh");

        let (_, p) = run_probed(SimConfig::c240().without_bubbles(), kernel.as_ref());
        assert_eq!(
            p.totals().get(StallCause::TailgateBubble),
            0.0,
            "LFK{id} bubbles"
        );

        let (_, p) = run_probed(SimConfig::c240().without_pair_constraint(), kernel.as_ref());
        assert_eq!(
            p.totals().get(StallCause::PairConflict),
            0.0,
            "LFK{id} pair"
        );
    }
}

/// Disabling chaining converts chain slip into full operand barriers on
/// a chain-dominated kernel (LFK1), and the partition invariant holds
/// under every ablation.
#[test]
fn chaining_ablation_moves_chain_wait_to_barriers() {
    let k1 = lfk_suite::by_id(1).expect("LFK1 exists");
    let (full_stats, full) = run_probed(SimConfig::c240(), k1.as_ref());
    let (nochain_stats, nochain) = run_probed(SimConfig::c240().without_chaining(), k1.as_ref());

    let full_chain = full.totals().get(StallCause::ChainWait);
    assert!(
        full_chain > 0.0,
        "LFK1 with chaining should show chain slip"
    );
    assert_eq!(full.totals().get(StallCause::OperandBarrier), 0.0);

    assert!(
        nochain.totals().get(StallCause::OperandBarrier) > 0.0,
        "without chaining, operands wait at a full barrier"
    );
    assert!(nochain_stats.cycles > full_stats.cycles);

    for (stats, probe) in [(&full_stats, &full), (&nochain_stats, &nochain)] {
        for (lane, acct) in probe.lanes() {
            let sum = acct.accounted();
            assert!(
                (sum - stats.cycles).abs() <= 1e-6 * stats.cycles,
                "lane {lane}: {sum} != {}",
                stats.cycles
            );
        }
    }
}

/// The §4.4 diagnosis cites measured counters: the memory finding's
/// breakdown comes from the memory system and sums to its total.
#[test]
fn findings_cite_measured_counters() {
    let k1 = lfk_suite::by_id(1).expect("LFK1 exists");
    let analysis = analyze_lfk(k1.as_ref(), &SimConfig::c240(), &ChimeConfig::c240());
    let findings = analysis.findings();
    let mem = findings.iter().find_map(|f| match f {
        Finding::MemoryBottleneck {
            wait_cpl,
            bank_busy_cpl,
            refresh_cpl,
            contention_cpl,
        } => Some((*wait_cpl, *bank_busy_cpl, *refresh_cpl, *contention_cpl)),
        _ => None,
    });
    let (wait, bank, refresh, contention) = mem.expect("LFK1 reports its memory waits");
    assert!((bank + refresh + contention - wait).abs() < 1e-9);
    assert!(refresh > 0.0, "the C-240 refreshes during LFK1");
}

/// Every kernel's RunReport carries the full stable schema: all
/// sections, every lane, every stall cause, and the lane partition
/// rendered into JSON still sums to the run's cycles.
#[test]
fn run_reports_are_schema_stable_for_every_kernel() {
    let sections = [
        "schema",
        "kernel",
        "run",
        "memory",
        "bounds",
        "ax",
        "lanes",
        "stall_totals",
        "stall_total_cycles",
        "hottest_pcs",
        "findings",
    ];
    for kernel in lfk_suite::all() {
        let analysis = analyze_lfk(kernel.as_ref(), &SimConfig::c240(), &ChimeConfig::c240());
        let report = RunReport::new(kernel.id(), analysis);
        let json = report.to_json();
        assert_eq!(
            json.get("schema").and_then(|s| s.as_str()),
            Some(RUN_REPORT_SCHEMA)
        );
        for section in sections {
            assert!(
                json.get(section).is_some(),
                "LFK{} missing `{section}`",
                kernel.id()
            );
        }
        let cycles = json
            .get("run")
            .and_then(|r| r.get("cycles"))
            .and_then(|c| c.as_f64())
            .expect("run.cycles");
        let lanes = json.get("lanes").expect("lanes");
        for lane in Lane::ALL {
            let entry = lanes
                .get(lane.key())
                .unwrap_or_else(|| panic!("LFK{} missing lane {lane}", kernel.id()));
            let busy = entry.get("busy").and_then(|v| v.as_f64()).unwrap();
            let stalled = entry.get("stalled").and_then(|v| v.as_f64()).unwrap();
            let idle = entry.get("idle").and_then(|v| v.as_f64()).unwrap();
            assert!(
                (busy + stalled + idle - cycles).abs() <= 1e-6 * cycles.max(1.0),
                "LFK{} lane {lane} partition broken in JSON",
                kernel.id()
            );
            let stalls = entry.get("stalls").expect("stalls");
            for cause in StallCause::ALL {
                assert!(
                    stalls.get(cause.key()).is_some(),
                    "LFK{} lane {lane} missing cause {cause}",
                    kernel.id()
                );
            }
        }
        // CSV carries the same matrix.
        let csv = report.to_csv();
        assert_eq!(csv.lines().count(), Lane::COUNT + 1);
        assert!(csv.starts_with("lane,busy,idle,"));
    }
}
