//! The headline integration test: the ten-kernel case study reproduces
//! the paper's Tables 2–5 — bounds essentially exactly, measurements in
//! shape.

use macs_experiments::{paper, Suite};
use std::sync::OnceLock;

fn suite() -> &'static Suite {
    static SUITE: OnceLock<Suite> = OnceLock::new();
    SUITE.get_or_init(Suite::run)
}

/// MA and MAC bounds (CPF) match the paper exactly.
#[test]
fn ma_and_mac_bounds_match_paper_exactly() {
    for r in &suite().rows {
        let p = paper::table4_row(r.id).expect("paper row");
        assert!(
            (r.analysis.bounds.t_ma_cpf() - p.t_ma).abs() < 0.001,
            "LFK{}: t_MA {} vs paper {}",
            r.id,
            r.analysis.bounds.t_ma_cpf(),
            p.t_ma
        );
        assert!(
            (r.analysis.bounds.t_mac_cpf() - p.t_mac).abs() < 0.001,
            "LFK{}: t_MAC {} vs paper {}",
            r.id,
            r.analysis.bounds.t_mac_cpf(),
            p.t_mac
        );
    }
}

/// MACS bounds (CPF) match the paper within 1% for the regular kernels;
/// the reduction kernels (4, 6) are within 1% too; LFK8 — whose exact
/// schedule the paper does not print — within 15% with the correct
/// relationship to MAC preserved.
#[test]
fn macs_bounds_match_paper() {
    for r in &suite().rows {
        let p = paper::table4_row(r.id).expect("paper row");
        let ours = r.analysis.bounds.t_macs_cpf();
        let tol = if r.id == 8 { 0.15 } else { 0.01 };
        assert!(
            (ours - p.t_macs).abs() <= tol * p.t_macs,
            "LFK{}: t_MACS {} vs paper {}",
            r.id,
            ours,
            p.t_macs
        );
    }
}

/// Measured CPF tracks the paper's t_p column: near-bound kernels stay
/// near bound, the problem kernels stay far above it.
#[test]
fn measured_performance_tracks_paper_shape() {
    // Kernels the paper's MACS bound explains well (≥ 90%).
    for id in [1u32, 3, 7, 8, 9, 10, 12] {
        let r = suite().row(id).unwrap();
        assert!(
            r.analysis.pct_macs() >= 0.88,
            "LFK{id}: explained {:.3} should be ≥ ~0.9",
            r.analysis.pct_macs()
        );
    }
    // Kernels dominated by unmodeled effects (paper: 41.5%, 65.8%, 46.4%).
    for id in [2u32, 4, 6] {
        let r = suite().row(id).unwrap();
        assert!(
            r.analysis.pct_macs() <= 0.88,
            "LFK{id}: explained {:.3} should be well below 0.9",
            r.analysis.pct_macs()
        );
    }
}

/// The two worst-explained kernels are LFK2 and LFK6, as in the paper
/// (41.5% and 46.4% there; the ordering between the two is within the
/// noise of the reproduction).
#[test]
fn lfk2_and_lfk6_are_the_worst_explained_kernels() {
    let mut by_explained: Vec<_> = suite().rows.iter().collect();
    by_explained.sort_by(|a, b| {
        a.analysis
            .pct_macs()
            .partial_cmp(&b.analysis.pct_macs())
            .unwrap()
    });
    let worst_two: Vec<u32> = by_explained[..2].iter().map(|r| r.id).collect();
    assert!(worst_two.contains(&2), "{worst_two:?}");
    assert!(worst_two.contains(&6), "{worst_two:?}");
}

/// Table 4 footer: the bound columns average to the paper's values, and
/// the harmonic-mean MFLOPS come out right (Eq. 4).
#[test]
fn table4_averages_match() {
    let n = suite().rows.len() as f64;
    let avg = |f: &dyn Fn(&macs_experiments::KernelRow) -> f64| {
        suite().rows.iter().map(f).sum::<f64>() / n
    };
    let avg_ma = avg(&|r| r.analysis.bounds.t_ma_cpf());
    let avg_mac = avg(&|r| r.analysis.bounds.t_mac_cpf());
    let avg_macs = avg(&|r| r.analysis.bounds.t_macs_cpf());
    assert!((avg_ma - paper::TABLE4_AVG[0]).abs() < 0.005, "{avg_ma}");
    assert!((avg_mac - paper::TABLE4_AVG[1]).abs() < 0.005, "{avg_mac}");
    assert!((avg_macs - paper::TABLE4_AVG[2]).abs() < 0.05, "{avg_macs}");
    let mflops_ma = macs_core::hmean_mflops(&[avg_ma]);
    assert!((mflops_ma - paper::TABLE4_MFLOPS[0]).abs() < 0.1);
}

/// Table 5 structure: the A-process tracks t^m_MACS and the X-process
/// tracks t^f_MACS for the kernels whose behavior the model captures —
/// the paper: "Except for LFKs 2, 4, and 6 the calculated bounds closely
/// model the measured results".
#[test]
fn ax_measurements_track_their_sub_bounds() {
    for r in &suite().rows {
        if matches!(r.id, 2 | 4 | 6) {
            continue;
        }
        let a = &r.analysis;
        let fa = a.t_x_cpl() / a.bounds.macs.f_cpl();
        let ma = a.t_a_cpl() / a.bounds.macs.m_cpl();
        assert!(
            (0.95..=1.25).contains(&fa),
            "LFK{}: t_x {:.2} vs t^f {:.2}",
            r.id,
            a.t_x_cpl(),
            a.bounds.macs.f_cpl()
        );
        assert!(
            (0.95..=1.25).contains(&ma),
            "LFK{}: t_a {:.2} vs t^m {:.2}",
            r.id,
            a.t_a_cpl(),
            a.bounds.macs.m_cpl()
        );
    }
}

/// §4.4's per-kernel stories come out of the automated diagnosis.
#[test]
fn diagnosis_matches_section_4_4() {
    use macs_core::Finding;
    let has = |id: u32, pred: &dyn Fn(&Finding) -> bool| {
        suite()
            .row(id)
            .unwrap()
            .analysis
            .findings()
            .iter()
            .any(pred)
    };
    // LFK1, 7, 12: compiler-inserted memory references.
    for id in [1, 7, 12] {
        assert!(
            has(id, &|f| matches!(f, Finding::CompilerInsertedMemOps { .. })),
            "LFK{id} should flag compiler reloads"
        );
    }
    // LFK7: imperfect f-overlap (the ninth chime).
    assert!(has(7, &|f| matches!(f, Finding::ImperfectFpOverlap { .. })));
    // LFK8: scalar loads split chimes; poor A/X overlap.
    assert!(has(8, &|f| matches!(f, Finding::ScalarSplitsChimes { .. })));
    assert!(has(8, &|f| matches!(f, Finding::PoorAxOverlap { .. })));
    // LFK2, 6: unmodeled effects dominate.
    for id in [2, 6] {
        assert!(
            has(id, &|f| matches!(f, Finding::UnmodeledEffects { .. })),
            "LFK{id} should flag unmodeled effects"
        );
    }
    // LFK3, 9, 10: near bound.
    for id in [3, 9, 10] {
        assert!(
            has(id, &|f| matches!(f, Finding::NearBound { .. })),
            "LFK{id} should be near bound"
        );
    }
}

/// LFK7's paper signature: `t^f − t'_f > 1` (the ninth chime), while
/// `t_MACS` remains memory-dominated.
#[test]
fn lfk7_ninth_chime() {
    let r = suite().row(7).unwrap();
    let gap = r.analysis.bounds.macs.f_cpl() - r.analysis.bounds.mac.t_f();
    assert!(gap > 1.0, "t^f - t'_f = {gap}");
    assert!((r.analysis.bounds.macs.f_cpl() - 9.13).abs() < 0.05);
    assert!((r.analysis.bounds.macs.m_cpl() - 10.37).abs() < 0.05);
}

/// LFK8's paper signature: `t_MACS ≫ t'_m ≈ t'_f` because scalar loads
/// split chimes.
#[test]
fn lfk8_scalar_splits_dominate() {
    let r = suite().row(8).unwrap();
    let b = &r.analysis.bounds;
    assert!(b.t_macs_cpl() > 1.3 * b.mac.t_m(), "{}", b.t_macs_cpl());
    assert!(b.macs.full.scalar_splits() > 0);
    // t^f and t^m stay near the paper's 21.28 / 21.85.
    assert!((b.macs.f_cpl() - 21.28).abs() < 0.3);
    assert!((b.macs.m_cpl() - 21.85).abs() < 0.3);
}
