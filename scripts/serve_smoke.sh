#!/usr/bin/env bash
# Serve-mode smoke: drive a 12-point grid (2 invalid, 1 deliberately slow
# under a tight deadline) through `macs-bench --serve`, kill -9 the server
# mid-sweep, then --resume and assert the sweep completes with every
# valid point computed exactly once (journal dedupe check).
set -euo pipefail

BIN="${1:-./target/release/macs-bench}"
if [[ ! -x "$BIN" ]]; then
    echo "serve_smoke: $BIN not built (run: cargo build --release -p macs-bench)" >&2
    exit 1
fi

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT
JOURNAL="$WORK/journal.ndjson"
GRID="$WORK/grid.ndjson"

# 12 points: nine healthy kernels, one invalid config (cpus:0), one
# unknown kernel (LFK5 is not in the case study), and — last, so the
# mid-sweep kill never reaches it — one point that sleeps far past its
# deadline and must be poisoned as a timeout.
{
    for k in 1 2 3 4 6 7 8 9 10; do
        echo "{\"id\":\"lfk$k\",\"kernel\":$k}"
    done
    echo '{"id":"badcfg","kernel":1,"config":{"cpus":0}}'
    echo '{"id":"nokern","kernel":5}'
    echo '{"id":"slow","kernel":12,"inject":{"sleep_ms":5000},"deadline_ms":1000}'
} > "$GRID"

echo "serve_smoke: phase 1 — serve on one worker, kill -9 after two rows"
mkfifo "$WORK/feed"
"$BIN" --serve --journal "$JOURNAL" --workers 1 --max-attempts 1 \
    < "$WORK/feed" > "$WORK/out1.ndjson" 2>/dev/null &
SERVER=$!
# Hold the fifo open for the server's whole life so EOF never ends the
# stream early; the kill must interrupt a running sweep.
exec 3> "$WORK/feed"
cat "$GRID" >&3
for _ in $(seq 1 100); do
    [[ $(wc -l < "$WORK/out1.ndjson") -ge 2 ]] && break
    sleep 0.1
done
kill -9 "$SERVER"
wait "$SERVER" 2>/dev/null || true
exec 3>&-

DONE=$(grep -c '"key"' "$JOURNAL" || true)
TOTAL=$(wc -l < "$GRID")
echo "serve_smoke: killed with $DONE of $TOTAL points checkpointed"
if [[ "$DONE" -lt 1 || "$DONE" -ge "$TOTAL" ]]; then
    echo "serve_smoke: FAIL — the kill did not land mid-sweep" >&2
    exit 1
fi

echo "serve_smoke: phase 2 — resume the same grid"
"$BIN" --serve --journal "$JOURNAL" --resume "$JOURNAL" --max-attempts 1 \
    < "$GRID" > "$WORK/out2.ndjson"

python3 - "$WORK" "$DONE" <<'EOF'
import json, sys
work, done_before = sys.argv[1], int(sys.argv[2])

rows = [json.loads(l) for l in open(f"{work}/out2.ndjson") if l.strip()]
summary = rows.pop()
assert summary["schema"] == "c240-sweep-summary/v1", summary
assert len(rows) == 12, f"expected 12 rows, got {len(rows)}"
assert len({r["id"] for r in rows}) == 12, "a point was answered twice"

# Every point answered exactly once across both phases. How many land in
# each class depends on how far phase 1 got before the kill (resumed rows
# tally as `resumed` whatever their original class), so assert the
# invariants: everything checkpointed was resumed, everything else was
# computed fresh, and nothing panicked or duplicated.
assert summary["resumed"] == done_before, summary
assert summary["ok"] + summary["invalid"] + summary["timed_out"] == 12 - done_before, summary
assert summary["panicked"] == 0 and summary["duplicate"] == 0, summary

# Per-row classification is checkpoint-agnostic: resumed rows are
# re-emitted verbatim, so status/error_kind survive the journal.
kinds = {r["id"]: r.get("error_kind") for r in rows if r["status"] == "error"}
healthy = {r["id"] for r in rows if r["status"] == "ok"}
assert healthy == {f"lfk{k}" for k in (1, 2, 3, 4, 6, 7, 8, 9, 10)}, healthy
assert kinds.get("badcfg") == "invalid_config", kinds
assert kinds.get("nokern") == "unknown_kernel", kinds
assert kinds.get("slow") == "timeout", kinds
assert [r for r in rows if r["id"] == "slow"][0]["poisoned"] is True

# Journal dedupe: after the resume, the journal holds each of the 12
# points exactly once, and the rows resumed in phase 2 are byte-identical
# to what phase 1 journaled.
journal = [json.loads(l) for l in open(f"{work}/journal.ndjson") if l.strip()]
header, records = journal[0], journal[1:]
assert header["schema"] == "c240-sweep-journal/v1", header
keys = [r["key"] for r in records]
assert len(keys) == 12, f"journal holds {len(keys)} records, expected 12"
assert len(set(keys)) == 12, "journal contains duplicate point keys"

by_key = {r["key"]: r["row"] for r in records}
for row in rows:
    if "key" in row:
        assert by_key[row["key"]] == row, f"row diverged from journal: {row['id']}"
print("serve_smoke: PASS — 12 points answered once each "
      f"(9 ok, 2 invalid, 1 timeout; {done_before} resumed), journal deduplicated")
EOF
