#!/usr/bin/env bash
# Serve-mode smoke: drive a 12-point grid (2 invalid, 1 deliberately slow
# under a tight deadline) through `macs-bench --serve` over TCP with the
# observability plane on, scrape /metrics mid-sweep, kill -9 the server
# mid-sweep, then --resume and assert the sweep completes with every
# valid point computed exactly once (journal dedupe check), that the
# final Prometheus counters equal the end-of-stream summary exactly, and
# that counters only ever grow between scrapes.
set -euo pipefail

BIN="${1:-./target/release/macs-bench}"
if [[ ! -x "$BIN" ]]; then
    echo "serve_smoke: $BIN not built (run: cargo build --release -p macs-bench)" >&2
    exit 1
fi

WORK="$(mktemp -d)"
CLEANUP=""
cleanup() {
    [[ -n "$CLEANUP" ]] && kill $CLEANUP 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT
JOURNAL="$WORK/journal.ndjson"
GRID="$WORK/grid.ndjson"

# 12 points: nine healthy kernels, one invalid config (cpus:0), one
# unknown kernel (LFK5 is not in the case study), and — last, so the
# mid-sweep kill never reaches it — one point that sleeps far past its
# deadline and must be poisoned as a timeout.
{
    for k in 1 2 3 4 6 7 8 9 10; do
        echo "{\"id\":\"lfk$k\",\"kernel\":$k}"
    done
    echo '{"id":"badcfg","kernel":1,"config":{"cpus":0}}'
    echo '{"id":"nokern","kernel":5}'
    echo '{"id":"slow","kernel":12,"inject":{"sleep_ms":5000},"deadline_ms":1000}'
} > "$GRID"

# Starts the server on an ephemeral TCP port and echoes the bound
# address parsed from its stderr banner.
start_server() { # extra args...
    : > "$WORK/server.log"
    "$BIN" --serve --listen 127.0.0.1:0 --metrics --snapshot-every 2 \
        --journal "$JOURNAL" --workers 1 --max-attempts 1 "$@" \
        2> "$WORK/server.log" &
    SERVER=$!
    disown "$SERVER"
    ADDR=""
    for _ in $(seq 1 100); do
        ADDR=$(sed -n 's/.*serving on tcp //p' "$WORK/server.log" | head -1)
        [[ -n "$ADDR" ]] && break
        sleep 0.1
    done
    if [[ -z "$ADDR" ]]; then
        echo "serve_smoke: FAIL — server did not bind" >&2
        cat "$WORK/server.log" >&2
        exit 1
    fi
}

# Feeds the grid over one TCP connection, streaming rows to $2 as they
# arrive. With `hold`, the write half stays open (so a kill -9 lands on
# a running sweep); otherwise it is shut down so the server ends the
# stream and emits its summary.
feed() { # addr out hold|close
    python3 - "$1" "$GRID" "$2" "$3" <<'EOF'
import socket, sys, time
addr, grid, out, mode = sys.argv[1:5]
host, port = addr.rsplit(":", 1)
s = socket.create_connection((host, int(port)), timeout=60)
s.sendall(open(grid, "rb").read())
if mode == "close":
    s.shutdown(socket.SHUT_WR)
with open(out, "wb", 0) as f:
    while True:
        try:
            b = s.recv(65536)
        except socket.timeout:
            break
        if not b:
            break
        f.write(b)
EOF
}

# Scrapes GET /metrics off the sweep listener and prints the body.
scrape() { # addr
    python3 - "$1" <<'EOF'
import socket, sys
host, port = sys.argv[1].rsplit(":", 1)
s = socket.create_connection((host, int(port)), timeout=10)
s.sendall(b"GET /metrics HTTP/1.0\r\nHost: smoke\r\n\r\n")
data = b""
while True:
    b = s.recv(65536)
    if not b:
        break
    data += b
head, _, body = data.partition(b"\r\n\r\n")
assert b"200 OK" in head.splitlines()[0], head
sys.stdout.write(body.decode())
EOF
}

wait_rows() { # file min_rows
    for _ in $(seq 1 200); do
        [[ $(wc -l < "$1") -ge "$2" ]] && return 0
        sleep 0.1
    done
    return 1
}

echo "serve_smoke: phase 1 — serve over TCP, scrape mid-sweep, kill -9 after two rows"
start_server
: > "$WORK/out1.ndjson"
feed "$ADDR" "$WORK/out1.ndjson" hold &
FEEDER=$!
CLEANUP="$SERVER $FEEDER"
if ! wait_rows "$WORK/out1.ndjson" 2; then
    echo "serve_smoke: FAIL — no rows before kill" >&2
    exit 1
fi
# Mid-sweep scrape: the metrics endpoint must answer while a sweep is
# actively running on the same listener.
scrape "$ADDR" > "$WORK/metrics1.txt"
grep -q '^# TYPE macs_points_total counter' "$WORK/metrics1.txt"
grep -q 'macs_points_total{outcome="ok"}' "$WORK/metrics1.txt"
kill -9 "$SERVER"
kill "$FEEDER" 2>/dev/null || true
wait "$SERVER" 2>/dev/null || true
wait "$FEEDER" 2>/dev/null || true
CLEANUP=""

DONE=$(grep -c '"key"' "$JOURNAL" || true)
TOTAL=$(wc -l < "$GRID")
echo "serve_smoke: killed with $DONE of $TOTAL points checkpointed"
if [[ "$DONE" -lt 1 || "$DONE" -ge "$TOTAL" ]]; then
    echo "serve_smoke: FAIL — the kill did not land mid-sweep" >&2
    exit 1
fi

echo "serve_smoke: phase 2 — resume the same grid, scrape mid-sweep and after"
start_server --resume "$JOURNAL"
CLEANUP="$SERVER"
: > "$WORK/out2.ndjson"
feed "$ADDR" "$WORK/out2.ndjson" close &
FEEDER=$!
CLEANUP="$SERVER $FEEDER"
# Mid-sweep scrape: lands while the resumed sweep still runs (the slow
# point alone holds the stream open for its 1s deadline).
wait_rows "$WORK/out2.ndjson" 1 || true
scrape "$ADDR" > "$WORK/metrics2_mid.txt"
wait "$FEEDER"
CLEANUP="$SERVER"
# Final scrape, after the stream's summary: counters must now equal it.
scrape "$ADDR" > "$WORK/metrics2_final.txt"
kill -9 "$SERVER" 2>/dev/null || true
wait "$SERVER" 2>/dev/null || true
CLEANUP=""

python3 - "$WORK" "$DONE" <<'EOF'
import json, sys
work, done_before = sys.argv[1], int(sys.argv[2])

rows = [json.loads(l) for l in open(f"{work}/out2.ndjson") if l.strip()]
summary = rows.pop()
assert summary["schema"] == "c240-sweep-summary/v1", summary
assert len(rows) == 12, f"expected 12 rows, got {len(rows)}"
assert len({r["id"] for r in rows}) == 12, "a point was answered twice"

# Every point answered exactly once across both phases. How many land in
# each class depends on how far phase 1 got before the kill (resumed rows
# tally as `resumed` whatever their original class), so assert the
# invariants: everything checkpointed was resumed, everything else was
# computed fresh, and nothing panicked or duplicated.
assert summary["resumed"] == done_before, summary
assert summary["ok"] + summary["invalid"] + summary["timed_out"] == 12 - done_before, summary
assert summary["panicked"] == 0 and summary["duplicate"] == 0, summary

# Per-row classification is checkpoint-agnostic: resumed rows are
# re-emitted verbatim, so status/error_kind survive the journal.
kinds = {r["id"]: r.get("error_kind") for r in rows if r["status"] == "error"}
healthy = {r["id"] for r in rows if r["status"] == "ok"}
assert healthy == {f"lfk{k}" for k in (1, 2, 3, 4, 6, 7, 8, 9, 10)}, healthy
assert kinds.get("badcfg") == "invalid_config", kinds
assert kinds.get("nokern") == "unknown_kernel", kinds
assert kinds.get("slow") == "timeout", kinds
assert [r for r in rows if r["id"] == "slow"][0]["poisoned"] is True

# Every row computed under the observability plane carries provenance.
for r in rows:
    if "key" in r:
        assert "trace" in r and r["trace"]["span"] > 0, f"no provenance: {r['id']}"

# Journal dedupe: after the resume, the journal holds each of the 12
# points exactly once (metrics snapshot rows interleave and are skipped),
# and the rows resumed in phase 2 are byte-identical to what phase 1
# journaled.
journal = [json.loads(l) for l in open(f"{work}/journal.ndjson") if l.strip()]
header, body = journal[0], journal[1:]
assert header["schema"] == "c240-sweep-journal/v1", header
records = [r for r in body if "key" in r]
snapshots = [r for r in body if r.get("schema") == "c240-metrics/v1"]
assert snapshots, "journal holds no c240-metrics/v1 snapshots"
assert all("counters" in s and "monotonic_ns" in s for s in snapshots)
keys = [r["key"] for r in records]
assert len(keys) == 12, f"journal holds {len(keys)} records, expected 12"
assert len(set(keys)) == 12, "journal contains duplicate point keys"

by_key = {r["key"]: r["row"] for r in records}
for row in rows:
    if "key" in row:
        assert by_key[row["key"]] == row, f"row diverged from journal: {row['id']}"

# Metrics: final counters equal the summary exactly, and no counter
# shrank between the mid-sweep and final scrapes (monotonicity).
def counters(path):
    out = {}
    for line in open(path):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        out[name] = float(value)
    return out

mid, final = counters(f"{work}/metrics2_mid.txt"), counters(f"{work}/metrics2_final.txt")
def outcome(n):
    return final.get(f'macs_points_total{{outcome="{n}"}}', 0)
assert outcome("resumed") == summary["resumed"], (final, summary)
assert outcome("ok") == summary["ok"], (final, summary)
assert outcome("invalid") == summary["invalid"], (final, summary)
assert outcome("timed_out") == summary["timed_out"], (final, summary)
assert outcome("panicked") == summary["panicked"] == 0, (final, summary)
assert outcome("duplicate") == summary["duplicate"] == 0, (final, summary)
monotone = [n for n in mid if "_total{" in n or n.endswith("_total")
            or "_bucket{" in n or n.endswith(("_count", "_sum"))]
assert monotone, "mid-sweep scrape saw no counters"
for name in monotone:
    assert final.get(name, 0) >= mid[name], f"counter {name} shrank"
print("serve_smoke: PASS — 12 points answered once each "
      f"(9 ok, 2 invalid, 1 timeout; {done_before} resumed), journal "
      f"deduplicated, {len(snapshots)} metrics snapshots journaled, "
      "Prometheus counters reconcile with the summary")
EOF

echo "serve_smoke: phase 3 — mixed-machine grid, per-machine journal key separation"
# 12 points: four kernels, each evaluated on the base C-240 and on the
# two non-C-240 presets. One journal holds all three machines; the
# machine name is folded into every content-addressed point key, so the
# per-machine rows must never collide.
GRID="$WORK/grid_machines.ndjson"
JOURNAL="$WORK/journal_machines.ndjson"
{
    for k in 1 2 3 12; do
        echo "{\"id\":\"lfk$k\",\"kernel\":$k}"
        echo "{\"id\":\"lfk$k@c240-64b\",\"kernel\":$k,\"machine\":\"c240-64b\"}"
        echo "{\"id\":\"lfk$k@dual-port\",\"kernel\":$k,\"machine\":\"dual-port\"}"
    done
} > "$GRID"
start_server
CLEANUP="$SERVER"
: > "$WORK/out3.ndjson"
feed "$ADDR" "$WORK/out3.ndjson" close &
FEEDER=$!
CLEANUP="$SERVER $FEEDER"
wait "$FEEDER"
CLEANUP="$SERVER"
kill -9 "$SERVER" 2>/dev/null || true
wait "$SERVER" 2>/dev/null || true
CLEANUP=""

python3 - "$WORK" <<'EOF'
import json, sys
work = sys.argv[1]

rows = [json.loads(l) for l in open(f"{work}/out3.ndjson") if l.strip()]
summary = rows.pop()
assert summary["schema"] == "c240-sweep-summary/v1", summary
assert summary["ok"] == 12 and summary["invalid"] == 0, summary
assert len(rows) == 12, f"expected 12 rows, got {len(rows)}"

# Every row names the machine it actually ran on.
machines = {r["id"]: r["machine"] for r in rows}
for k in (1, 2, 3, 12):
    assert machines[f"lfk{k}"] == "c240", machines
    assert machines[f"lfk{k}@c240-64b"] == "c240-64b", machines
    assert machines[f"lfk{k}@dual-port"] == "dual-port", machines

# Per-machine key separation: 12 distinct keys, and within each kernel
# the three machines' keys are pairwise distinct.
keys = {r["id"]: r["key"] for r in rows}
assert len(set(keys.values())) == 12, "point keys collided across machines"
for k in (1, 2, 3, 12):
    trio = {keys[f"lfk{k}"], keys[f"lfk{k}@c240-64b"], keys[f"lfk{k}@dual-port"]}
    assert len(trio) == 3, f"kernel {k}: machine not folded into the key"

# The journal checkpoints the same 12 keys, once each.
journal = [json.loads(l) for l in open(f"{work}/journal_machines.ndjson") if l.strip()]
assert journal[0]["schema"] == "c240-sweep-journal/v1", journal[0]
records = [r for r in journal[1:] if "key" in r]
jkeys = [r["key"] for r in records]
assert sorted(jkeys) == sorted(keys.values()), "journal keys diverge from served keys"
assert len(set(jkeys)) == 12, "journal contains duplicate point keys"
print("serve_smoke: PASS — mixed-machine grid served 12/12 ok with "
      "per-machine journal key separation across c240, c240-64b, dual-port")
EOF
