#!/usr/bin/env bash
# Coordinator chaos soak: push a 10,000-point load (5,000 unique points,
# then the same 5,000 again under fresh ids) through
# `macs-bench --coordinate` with a 3-worker fleet while the built-in
# chaos schedule kill -9s, SIGSTOPs, and feeds garbage to the workers,
# and a hostile client abuses the listener (garbage JSON, an oversized
# line, a stalled half-line). Asserts:
#   * every unique point is journaled exactly once (exactly-once under
#     worker crashes and lease-expiry redispatch);
#   * the repeated half is answered from the cache (summary `cached` ==
#     5000 and the Prometheus cache-hit counter covers it) — nothing is
#     re-simulated;
#   * coordinated rows are bit-identical to a lone single-process
#     `macs-bench --serve` run of the same unique grid;
#   * the hostile client gets structured protocol/oversized/stalled
#     rows, and the soak results are unaffected by the abuse;
#   * chaos, restart, and redispatch counters prove the faults actually
#     fired and the fleet recovered.
# The merged journal and logs land in $2 (default
# coordinator_chaos_artifacts/) for CI upload.
set -euo pipefail

BIN="${1:-./target/release/macs-bench}"
ART="${2:-coordinator_chaos_artifacts}"
if [[ ! -x "$BIN" ]]; then
    echo "coordinator_chaos: $BIN not built (run: cargo build --release -p macs-bench)" >&2
    exit 1
fi

WORK="$(mktemp -d)"
CLEANUP=""
mkdir -p "$ART"
cleanup() {
    [[ -n "$CLEANUP" ]] && kill $CLEANUP 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT
JOURNAL="$ART/chaos_journal.ndjson"
rm -f "$JOURNAL"

UNIQUE=5000
# 5,000 unique cheap points: the (never reached) deadline_ms varies the
# content-addressed key without changing the simulated work, and the
# repeat grid re-requests the same points under different ids — the key
# excludes the id, so the repeats must all be cache hits.
python3 - "$WORK" "$UNIQUE" <<'EOF'
import sys
work, n = sys.argv[1], int(sys.argv[2])
with open(f"{work}/grid_unique.ndjson", "w") as f:
    for i in range(n):
        f.write('{"id":"u%d","kernel":12,"passes":1,"deadline_ms":%d}\n' % (i, 10_000_000 + i))
with open(f"{work}/grid_repeat.ndjson", "w") as f:
    for i in range(n):
        f.write('{"id":"r%d","kernel":12,"passes":1,"deadline_ms":%d}\n' % (i, 10_000_000 + i))
EOF

echo "coordinator_chaos: starting 3-worker coordinator with chaos kill/hang/corrupt"
: > "$WORK/coord.log"
"$BIN" --coordinate --listen 127.0.0.1:0 --metrics \
    --fleet 3 --journal "$JOURNAL" --queue-max 20000 \
    --lease-ms 3000 --chaos kill=401,hang=1700,corrupt=301 \
    --restart-backoff-ms 20 --restart-backoff-cap-ms 200 \
    --jitter-seed 7 --max-line-bytes 8192 --read-timeout-ms 2000 \
    -- --workers 2 \
    2> "$WORK/coord.log" &
COORD=$!
disown "$COORD"
CLEANUP="$COORD"
ADDR=""
for _ in $(seq 1 100); do
    ADDR=$(sed -n 's/.*coordinating on tcp //p' "$WORK/coord.log" | head -1)
    [[ -n "$ADDR" ]] && break
    sleep 0.1
done
if [[ -z "$ADDR" ]]; then
    echo "coordinator_chaos: FAIL — coordinator did not bind" >&2
    cat "$WORK/coord.log" >&2
    exit 1
fi

# Streams a grid over one TCP connection (write half closed after the
# send, so the coordinator ends the stream and emits its summary).
feed() { # grid out
    python3 - "$ADDR" "$1" "$2" <<'EOF'
import socket, sys
addr, grid, out = sys.argv[1:4]
host, port = addr.rsplit(":", 1)
s = socket.create_connection((host, int(port)), timeout=600)
s.sendall(open(grid, "rb").read())
s.shutdown(socket.SHUT_WR)
with open(out, "wb", 0) as f:
    while True:
        b = s.recv(65536)
        if not b:
            break
        f.write(b)
EOF
}

scrape() {
    python3 - "$ADDR" <<'EOF'
import socket, sys
host, port = sys.argv[1].rsplit(":", 1)
s = socket.create_connection((host, int(port)), timeout=10)
s.sendall(b"GET /metrics HTTP/1.0\r\nHost: chaos\r\n\r\n")
data = b""
while True:
    b = s.recv(65536)
    if not b:
        break
    data += b
head, _, body = data.partition(b"\r\n\r\n")
assert b"200 OK" in head.splitlines()[0], head
sys.stdout.write(body.decode())
EOF
}

echo "coordinator_chaos: phase 1 — 5,000 unique points through the chaos fleet"
feed "$WORK/grid_unique.ndjson" "$WORK/out_unique.ndjson"

echo "coordinator_chaos: phase 2 — hostile client (garbage, oversized, stall)"
python3 - "$ADDR" "$WORK" <<'EOF'
import json, socket, sys, time
addr, work = sys.argv[1:3]
host, port = addr.rsplit(":", 1)

def rows_of(data):
    return [json.loads(l) for l in data.decode().splitlines() if l.strip()]

def drain(s):
    data = b""
    while True:
        try:
            b = s.recv(65536)
        except socket.timeout:
            break
        if not b:
            break
        data += b
    return data

# Garbage JSON and a bogus field must come back as structured protocol
# rows, and a valid point on the same connection must still be answered.
s = socket.create_connection((host, int(port)), timeout=60)
s.sendall(b"this is not json\n")
s.sendall(b'{"id":"ok","kernel":12,"passes":1}\n')
s.shutdown(socket.SHUT_WR)
rows = rows_of(drain(s))
summary = rows.pop()
kinds = [r.get("error_kind") for r in rows]
assert "protocol" in kinds, rows
assert any(r.get("status") == "ok" for r in rows), rows
assert summary["invalid"] >= 1 and summary["ok"] == 1, summary

# An oversized line (past --max-line-bytes 8192) must produce an
# `oversized` row and re-synchronize the stream for the next request.
s = socket.create_connection((host, int(port)), timeout=60)
s.sendall(b"x" * 100_000 + b"\n")
s.sendall(b'{"id":"after","kernel":12,"passes":1}\n')
s.shutdown(socket.SHUT_WR)
rows = rows_of(drain(s))
rows.pop()
assert any(r.get("error_kind") == "oversized" for r in rows), rows
assert any(r.get("status") == "ok" for r in rows), rows

# A stalled half-line (no newline, then silence) must hit the
# --read-timeout-ms 2000 guard and close with a `stalled` row instead of
# pinning the connection thread.
s = socket.create_connection((host, int(port)), timeout=60)
s.sendall(b'{"id":"never')
start = time.monotonic()
rows = rows_of(drain(s))
took = time.monotonic() - start
assert any(r.get("error_kind") == "stalled" for r in rows), rows
assert took < 30, f"stalled connection held for {took:.0f}s"
print(f"coordinator_chaos: hostile client handled (stall cut in {took:.1f}s)")
EOF

echo "coordinator_chaos: phase 3 — the same 5,000 points again, expecting pure cache hits"
feed "$WORK/grid_repeat.ndjson" "$WORK/out_repeat.ndjson"
scrape > "$ART/chaos_metrics.txt"
kill "$COORD" 2>/dev/null || true
wait "$COORD" 2>/dev/null || true
CLEANUP=""
cp "$WORK/coord.log" "$ART/coordinator.log"

echo "coordinator_chaos: phase 4 — lone --serve run of the unique grid for bit-identity"
"$BIN" --serve --workers 2 \
    < "$WORK/grid_unique.ndjson" > "$WORK/out_serve.ndjson"

python3 - "$WORK" "$JOURNAL" "$ART" "$UNIQUE" <<'EOF'
import json, sys
work, journal_path, art, n = sys.argv[1], sys.argv[2], sys.argv[3], int(sys.argv[4])

def load(path):
    rows = [json.loads(l) for l in open(path) if l.strip()]
    summary = rows.pop()
    assert summary["schema"] == "c240-sweep-summary/v1", summary
    return rows, summary

unique, s1 = load(f"{work}/out_unique.ndjson")
repeat, s2 = load(f"{work}/out_repeat.ndjson")
served, s3 = load(f"{work}/out_serve.ndjson")

# Phase 1: every unique point answered exactly once, all healthy,
# nothing shed, despite the kills/hangs/corruption.
assert s1["ok"] == n, s1
assert s1.get("overloaded", 0) == 0 and s1["duplicate"] == 0, s1
keys1 = [r["key"] for r in unique if "key" in r]
assert len(keys1) == n and len(set(keys1)) == n, \
    f"phase 1 answered {len(keys1)} rows over {len(set(keys1))} keys"

# Phase 3: the repeated half is answered from the cache — zero fresh
# computation — and re-emits the phase-1 rows verbatim (the cache key
# excludes the id, so the original u<i> rows come back).
assert s2.get("cached", 0) == n and s2["ok"] == 0 and s2.get("resumed", 0) == 0, s2
by_key = {r["key"]: r for r in unique if "key" in r}
for r in repeat:
    if "key" in r:
        assert by_key[r["key"]] == r, f"cached row diverged: {r.get('id')}"

# Journal: exactly one record per unique point, every row byte-identical
# to what the client saw. The hostile client's two healthy probes share
# one content key (the id is not part of the key), so they contribute
# exactly one extra record.
journal = [json.loads(l) for l in open(journal_path) if l.strip()]
assert journal[0]["schema"] == "c240-sweep-journal/v1", journal[0]
records = [r for r in journal[1:] if "key" in r]
jkeys = [r["key"] for r in records]
assert len(jkeys) == n + 1, f"journal holds {len(jkeys)} records, expected {n + 1}"
assert len(set(jkeys)) == n + 1, "journal contains duplicate point keys"
extra = [k for k in jkeys if k not in by_key]
assert len(extra) == 1, f"unexpected journal keys beyond the hostile probe: {extra}"
for r in records:
    if r["key"] in by_key:
        assert by_key[r["key"]] == r["row"], f"journal diverged from stream: {r['key']}"

# Bit-identity: the coordinated rows equal a lone single-process
# `--serve` run of the same grid, point for point.
assert s3["ok"] == n, s3
for r in served:
    if "key" in r:
        assert by_key[r["key"]] == r, f"coordinator diverged from lone serve: {r.get('id')}"

# Metrics: the chaos actually fired, the fleet recovered, and the cache
# hits cover the repeated half.
counters = {}
for line in open(f"{art}/chaos_metrics.txt"):
    line = line.strip()
    if line and not line.startswith("#"):
        name, _, value = line.rpartition(" ")
        counters[name] = float(value)
def c(name):
    return counters.get(name, 0)
assert c("macs_cache_hits_total") >= n, counters
# 5,000 unique points + the hostile client's probe key; its second
# probe and the whole repeat grid are hits.
assert c("macs_cache_misses_total") == n + 1, counters
assert c('macs_chaos_injected_total{action="kill"}') > 0, counters
assert c('macs_chaos_injected_total{action="hang"}') > 0, counters
assert c('macs_chaos_injected_total{action="corrupt"}') > 0, counters
assert c("macs_worker_deaths_total") + c("macs_lease_expired_total") > 0, counters
assert c("macs_worker_restarts_total") > 0, counters
assert c("macs_redispatch_total") > 0, counters
assert c("macs_duplicate_results_total") >= 0
assert c("macs_lines_oversized_total") >= 1, counters
assert c("macs_streams_stalled_total") >= 1, counters

print("coordinator_chaos: PASS — %d unique + %d repeated points; "
      "%d kills, %d hangs, %d corruptions injected; %d restarts, "
      "%d redispatches; repeats all cache hits; rows bit-identical "
      "to a lone --serve run" % (
          n, n,
          c('macs_chaos_injected_total{action="kill"}'),
          c('macs_chaos_injected_total{action="hang"}'),
          c('macs_chaos_injected_total{action="corrupt"}'),
          c("macs_worker_restarts_total"),
          c("macs_redispatch_total")))
EOF
