//! Workspace facade re-exporting all MACS crates.
pub use c240_isa as isa;
pub use c240_mem as mem;
pub use c240_sim as sim;
pub use lfk_suite as lfk;
pub use macs_compiler as compiler;
pub use macs_core as core;
pub use macs_experiments as experiments;
