//! Calibration loops: derive the machine's X/Y/Z/B parameters the way
//! the paper did (§3.2–§3.3), and verify them against the specification.
//!
//! ```text
//! cargo run --release --example calibration
//! ```

use c240_sim::SimConfig;
use macs_core::calibrate_all;

fn main() {
    println!("Calibrating the simulated C-240 with single-instruction loops");
    println!("(VL sweep for Z and X+Y; steady-state tailgating for B):\n");
    let rows = calibrate_all(&SimConfig::c240()).expect("calibration loops run");
    for row in &rows {
        let verdict = if row.matches_spec(0.5) {
            "matches spec"
        } else {
            "DEVIATES (see Table 1 footnote b)"
        };
        println!("  {row}   [{verdict}]");
    }
    println!(
        "\nThe reduction's fitted B absorbs the scalar-result delivery the\n\
         paper folded into Z (footnote b: \"equivalently Z = 1, B = 45\")."
    );
}
