//! Analyze your own loop: write it as compiler IR, compile it with two
//! different schedules, and see how the MACS bound (but not MA or MAC)
//! reacts — the "S" of the model.
//!
//! ```text
//! cargo run --release --example custom_kernel
//! ```

use c240_sim::{Cpu, SimConfig};
use macs_compiler::{analyze_ma, compile, load, param, CompileOptions, Kernel, ScheduleStrategy};
use macs_core::{ChimeConfig, KernelBounds};

fn main() {
    // A five-point stencil: y(k) = a*(x(k-…)+…) — written with shifted
    // offsets so the loop starts at zero.
    let kernel = Kernel::new("stencil5")
        .array("x", 6000)
        .array("y", 6000)
        .param("a", 0.2)
        .store(
            "y",
            2,
            param("a") * (load("x", 0) + load("x", 1) + load("x", 2) + load("x", 3) + load("x", 4)),
        );
    let n = 5000u64;

    let ma = analyze_ma(&kernel);
    println!("kernel:\n{kernel}");
    println!("MA workload: {ma}");
    println!(
        "  (perfect reuse sees ONE x-stream: t_MA = {} CPL = {:.3} CPF)\n",
        ma.t_ma_cpl(),
        ma.t_ma_cpf()
    );

    for (name, schedule) in [
        ("interleaved (chime-aware)", ScheduleStrategy::Interleaved),
        ("loads-first (naive)", ScheduleStrategy::LoadsFirst),
    ] {
        let compiled = compile(
            &kernel,
            n,
            CompileOptions {
                schedule,
                ..CompileOptions::default()
            },
        )
        .expect("stencil compiles");

        let bounds = KernelBounds::compute("stencil5", ma, &compiled.program, &ChimeConfig::c240());

        // Measure on the simulator: bind the arrays per the compiled
        // layout and run.
        let mut cpu = Cpu::new(SimConfig::c240());
        let x_base = compiled.layout.base_word("x").expect("x is laid out");
        for i in 0..6000 {
            cpu.mem_mut().poke(x_base + i, 1.0 + (i % 7) as f64);
        }
        let stats = cpu.run(&compiled.program).expect("compiled code runs");
        let measured_cpf = stats.cycles / n as f64 / f64::from(kernel.flops_total());

        println!("schedule: {name}");
        println!(
            "  t_MA {:.3}  t_MAC {:.3}  t_MACS {:.3}  measured {:.3} CPF",
            bounds.t_ma_cpf(),
            bounds.t_mac_cpf(),
            bounds.t_macs_cpf(),
            measured_cpf
        );
        println!(
            "  {} chimes, {} scalar splits\n",
            bounds.macs.full.chimes().len(),
            bounds.macs.full.scalar_splits()
        );
    }
    println!("Note how MA and MAC are schedule-invariant while MACS (and the");
    println!("measurement) move with the instruction order — §3.4 of the paper.");
    println!();
    println!("For the bursty loads-first schedule the chime sum can sit slightly");
    println!("ABOVE the measurement: the model charges f-only chimes serially,");
    println!("while the machine hides some of them under the next memory chime —");
    println!("the imperfect-merging caveat of §3.4.");
}
