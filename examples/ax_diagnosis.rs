//! A/X diagnosis (§3.6, §4.4): run the access-only and execute-only
//! variants of two problem kernels and read the bottleneck off the
//! hierarchy.
//!
//! ```text
//! cargo run --release --example ax_diagnosis
//! ```
//!
//! * LFK 8: scalar loads split chimes — `t_MACS` explains nearly all of
//!   `t_p`, but A and X overlap poorly.
//! * LFK 6: reduction + triangular vector lengths — most of `t_p` is
//!   unmodeled short-vector overhead.

use c240_sim::SimConfig;
use lfk_suite::by_id;
use macs_core::{analyze_kernel, ChimeConfig};

fn main() {
    for id in [8u32, 6] {
        let kernel = by_id(id).expect("case-study kernel");
        let analysis = analyze_kernel(
            &format!("LFK{id}"),
            kernel.ma(),
            &kernel.program(),
            kernel.iterations(),
            &|cpu| kernel.setup(cpu),
            &SimConfig::c240(),
            &ChimeConfig::c240(),
        )
        .expect("kernel simulates cleanly");

        println!("=== LFK{id} — {} ===", kernel.name());
        println!(
            "  t_x = {:7.2} CPL (execute-only)   vs t^f_MACS = {:7.2}",
            analysis.t_x_cpl(),
            analysis.bounds.macs.f_cpl()
        );
        println!(
            "  t_a = {:7.2} CPL (access-only)    vs t^m_MACS = {:7.2}",
            analysis.t_a_cpl(),
            analysis.bounds.macs.m_cpl()
        );
        println!(
            "  t_p = {:7.2} CPL  — Eq. 18 band [{:.2}, {:.2}], overlap quality {:.2}",
            analysis.t_p_cpl(),
            analysis.t_a_cpl().max(analysis.t_x_cpl()),
            analysis.t_a_cpl() + analysis.t_x_cpl(),
            analysis.ax_overlap()
        );
        println!("  diagnosis:");
        for finding in analysis.findings() {
            println!("    - {finding}");
        }
        println!();
    }
}
