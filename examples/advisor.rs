//! The goal-directed toolchain built on the hierarchy (§5 of the
//! paper): ranked optimization advice, an exact rescheduling fix, and
//! the extended `MACS+O` bound that explains the "unexplainable"
//! kernels.
//!
//! ```text
//! cargo run --release --example advisor
//! ```

use c240_sim::SimConfig;
use lfk_suite::by_id;
use macs_core::{
    advise, analyze_kernel, analyze_overhead, partition_chimes, reschedule_for_chimes,
    segmented_macs_cpl, ChimeConfig,
};

fn main() {
    let sim = SimConfig::c240();
    let chime = ChimeConfig::c240();

    // ---- ranked advice for every kernel -----------------------------
    println!("Goal-directed advice (top item per kernel):\n");
    for id in lfk_suite::IDS {
        let k = by_id(id).expect("case-study kernel");
        let analysis = analyze_kernel(
            &format!("LFK{id}"),
            k.ma(),
            &k.program(),
            k.iterations(),
            &|cpu| k.setup(cpu),
            &sim,
            &chime,
        )
        .expect("kernel simulates");
        match advise(&analysis, 0.05).into_iter().next() {
            Some(top) => println!("  LFK{id:<3} {top}"),
            None => println!("  LFK{id:<3} at its bound — nothing to do"),
        }
    }

    // ---- the rescheduler as a concrete fix --------------------------
    // A naive loads-first schedule of a 5-point stencil: the model-driven
    // rescheduler repacks it.
    println!("\nRescheduling a naive loads-first stencil (chime model as cost function):");
    let naive = {
        use macs_compiler::{compile, load, param, CompileOptions, Kernel, ScheduleStrategy};
        let stencil = Kernel::new("stencil")
            .array("x", 2100)
            .array("y", 2100)
            .param("a", 0.2)
            .store(
                "y",
                0,
                param("a")
                    * (load("x", 0) + load("x", 1) + load("x", 2) + load("x", 3) + load("x", 4)),
            );
        compile(
            &stencil,
            2000,
            CompileOptions {
                schedule: ScheduleStrategy::LoadsFirst,
                ..CompileOptions::default()
            },
        )
        .expect("stencil compiles")
    };
    let l = naive.program.innermost_loop().unwrap();
    let body = naive.program.loop_body(l);
    let before = partition_chimes(body, &chime);
    let after = partition_chimes(&reschedule_for_chimes(body, &chime), &chime);
    println!(
        "  t_MACS {:.2} -> {:.2} CPL ({} -> {} chimes), dependence-safe",
        before.cpl(),
        after.cpl(),
        before.chimes().len(),
        after.chimes().len()
    );

    // And the honest negative result: LFK8's hand allocation recycles
    // v0..v4 so aggressively that WAR/WAW chains pin the order — §3.4's
    // point that "reallocating the registers may change the MACS bound"
    // (reordering alone cannot).
    let k8 = by_id(8).unwrap();
    let p8 = k8.program();
    let l8 = p8.innermost_loop().unwrap();
    let b8 = p8.loop_body(l8);
    let before8 = partition_chimes(b8, &chime);
    let after8 = partition_chimes(&reschedule_for_chimes(b8, &chime), &chime);
    println!(
        "  LFK8 for contrast: {:.2} -> {:.2} CPL — register recycling pins its \
         schedule;\n  only reallocation (or hoisting the spilled coefficients) can \
         free it.",
        before8.cpl(),
        after8.cpl()
    );

    // ---- MACS+O on the worst-explained kernel ------------------------
    println!("\nExtended bound t_MACS+O on LFK2 (the paper's warning-flag kernel):");
    let k2 = by_id(2).unwrap();
    let p2 = k2.program();
    let body2 = p2.loop_body(p2.innermost_loop().unwrap());
    let overhead = analyze_overhead(&p2, &chime).expect("LFK2 is nested");
    let segments = [50u64, 25, 12, 6, 3, 1];
    let extended = segmented_macs_cpl(body2, &chime, &segments, &overhead);
    let a2 = analyze_kernel(
        "LFK2",
        k2.ma(),
        &p2,
        k2.iterations(),
        &|cpu| k2.setup(cpu),
        &sim,
        &chime,
    )
    .unwrap();
    println!(
        "  plain t_MACS {:.2} CPL explains {:.0}% of measured {:.2};",
        a2.bounds.t_macs_cpl(),
        100.0 * a2.pct_macs(),
        a2.t_p_cpl()
    );
    println!(
        "  with per-segment overhead ({:.0} cycles/entry) and short-strip costs:",
        overhead.per_entry()
    );
    println!(
        "  t_MACS+O = {:.2} CPL — {:.0}% explained",
        extended,
        100.0 * extended / a2.t_p_cpl()
    );
}
