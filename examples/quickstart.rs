//! Quickstart: the full MACS methodology on one kernel.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Takes the paper's worked example (LFK 1), computes the MA/MAC/MACS
//! bounds from its source workload and compiled schedule, measures the
//! full code and its A/X variants on the cycle-level C-240 simulator,
//! and prints the hierarchy with the automated gap diagnosis.

use c240_sim::SimConfig;
use lfk_suite::by_id;
use macs_core::{analyze_kernel, hierarchy_figure, ChimeConfig};

fn main() {
    let kernel = by_id(1).expect("LFK1 is part of the case study");
    println!("Kernel: LFK{} — {}", kernel.id(), kernel.name());
    println!("{}\n", kernel.fortran());

    let program = kernel.program();
    let analysis = analyze_kernel(
        "LFK1",
        kernel.ma(),
        &program,
        kernel.iterations(),
        &|cpu| kernel.setup(cpu),
        &SimConfig::c240(),
        &ChimeConfig::c240(),
    )
    .expect("LFK1 simulates cleanly");

    println!("{}", hierarchy_figure(&analysis));
    println!(
        "CPF: bound {:.3} (paper 0.840), measured {:.3} (paper 0.852)",
        analysis.bounds.t_macs_cpf(),
        analysis.t_p_cpf()
    );
    println!(
        "The MACS bound explains {:.1}% of measured run time (paper: 98.6%).",
        100.0 * analysis.pct_macs()
    );
}
