//! Machine design space: what would LFK 1 cost on variants of the
//! C-240? The bounds hierarchy doubles as an architect's tool — the
//! paper's conclusion suggests exactly this use.
//!
//! Whole machines come from declarative [`MachineDescription`] presets
//! (DESIGN.md §15); single-feature ablations toggle switches on the
//! derived configs.
//!
//! ```text
//! cargo run --release --example machine_design
//! ```

use c240_isa::MachineDescription;
use c240_mem::ContentionConfig;
use c240_sim::{Cpu, SimConfig};
use lfk_suite::by_id;
use macs_core::{ChimeConfig, KernelBounds};

fn measure(config: &SimConfig) -> f64 {
    let kernel = by_id(1).expect("LFK1");
    let mut cpu = Cpu::new(config.clone());
    kernel.setup(&mut cpu);
    let stats = cpu.run(&kernel.program()).expect("LFK1 runs");
    stats.cycles / kernel.iterations() as f64 / 5.0
}

fn main() {
    let kernel = by_id(1).expect("LFK1");
    let program = kernel.program();

    println!("LFK1 on C-240 design variants (CPF):\n");
    println!("{:<34} {:>8} {:>9}", "machine", "t_MACS", "measured");

    let wide = MachineDescription::c240_64banks();
    let dual = MachineDescription::dual_port();
    let variants: Vec<(&str, SimConfig, ChimeConfig)> = vec![
        ("C-240 (paper)", SimConfig::c240(), ChimeConfig::c240()),
        (
            "64-bank chassis (preset c240-64b)",
            SimConfig::for_machine(&wide),
            ChimeConfig::for_machine(&wide),
        ),
        (
            "2-port variant (preset dual-port)",
            SimConfig::for_machine(&dual),
            ChimeConfig::for_machine(&dual),
        ),
        (
            "no tailgating bubbles (Eq. 5)",
            SimConfig::c240().without_bubbles(),
            ChimeConfig::c240().without_bubbles(),
        ),
        (
            "no memory refresh",
            SimConfig::c240().without_refresh(),
            ChimeConfig::c240().without_refresh(),
        ),
        (
            "no chaining (Cray-2 style)",
            SimConfig::c240().without_chaining(),
            // The chime bound presumes chaining; report it unchanged and
            // watch the measurement blow past it.
            ChimeConfig::c240(),
        ),
        (
            "3 busy neighbor CPUs (mixed)",
            SimConfig {
                mem: SimConfig::c240()
                    .mem
                    .with_contention(ContentionConfig::mixed(3)),
                ..SimConfig::c240()
            },
            ChimeConfig::c240(),
        ),
        (
            "3 lockstep neighbor CPUs",
            SimConfig {
                mem: SimConfig::c240()
                    .mem
                    .with_contention(ContentionConfig::lockstep(3)),
                ..SimConfig::c240()
            },
            ChimeConfig::c240(),
        ),
    ];

    for (name, sim, chime) in variants {
        let bounds = KernelBounds::compute("LFK1", kernel.ma(), &program, &chime);
        let measured = measure(&sim);
        println!(
            "{:<34} {:>8.3} {:>9.3}",
            name,
            bounds.t_macs_cpf(),
            measured
        );
    }

    // The same descriptions also carry their roofline ceilings
    // (DESIGN.md §16): peak vector flop rate and sustained memory
    // bandwidth, at 1 CPU and with every port populated.
    println!("\nRoofline ceilings per preset (computed, not tabulated):\n");
    println!(
        "{:<12} {:>6} {:>12} {:>10} {:>8}",
        "preset", "cpus", "peak MFLOPS", "bw w/cyc", "ridge"
    );
    for preset in MachineDescription::presets() {
        for cpus in [1, preset.ports] {
            println!(
                "{:<12} {:>6} {:>12.0} {:>10.2} {:>8.2}",
                preset.name,
                cpus,
                preset.peak_mflops(cpus),
                preset.sustained_bandwidth_words_per_cycle(cpus),
                preset.ridge_intensity(cpus),
            );
        }
    }

    println!(
        "\nReadings: bubbles and refresh cost ~2% each on this kernel; losing\n\
         chaining roughly triples the time (§3.3's 162 vs 422); a loaded\n\
         machine degrades memory-bound loops per §4.2's rules of thumb.\n\
         The ceilings say why: every preset's ridge sits at or above 2\n\
         flops/word, while the compiled kernels all stream below it —\n\
         memory-bound across the board, so bank and port changes move the\n\
         roof and FP-side changes do not."
    );
}
