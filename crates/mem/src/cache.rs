//! The ASU scalar data cache.
//!
//! On the C-240, scalar loads and stores go through the Address/Scalar
//! Unit's data cache, while the vector processor bypasses it and accesses
//! memory directly (§2). We model a small direct-mapped write-through
//! cache: hits cost a fixed latency; misses additionally perform a memory
//! access (and thus interact with banks, refresh and contention).

use crate::system::MemorySystem;

/// Scalar cache geometry and latencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of direct-mapped lines.
    pub lines: usize,
    /// Words per line.
    pub line_words: u32,
    /// Latency of a hit, in cycles.
    pub hit_latency: u64,
    /// Latency added by a miss on top of the memory grant, in cycles.
    pub miss_penalty: u64,
}

impl CacheConfig {
    /// A 8 KiB direct-mapped cache: 256 lines × 4 words, 2-cycle hits.
    pub fn c240() -> Self {
        CacheConfig {
            lines: 256,
            line_words: 4,
            hit_latency: 2,
            miss_penalty: 4,
        }
    }
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig::c240()
    }
}

/// A direct-mapped, write-through scalar data cache.
///
/// The cache only models *timing*; data always comes from (and goes to)
/// the backing [`MemorySystem`], which keeps scalar and vector accesses
/// coherent — matching the write-through design implied by the machine's
/// single memory image.
#[derive(Debug, Clone)]
pub struct ScalarCache {
    config: CacheConfig,
    tags: Vec<Option<u64>>,
    hits: u64,
    misses: u64,
    // `addr >> shift` replaces `addr / line_words` when the line size is
    // a power of two (it always is for the c240 geometry); likewise a
    // mask replaces the modulo when `lines` is a power of two. The
    // simulator's fast-forward warp invalidates per stored element, so
    // this division is on a hot path.
    line_shift: Option<u32>,
    line_mask: Option<u64>,
}

impl ScalarCache {
    /// Creates an empty (all-invalid) cache.
    pub fn new(config: CacheConfig) -> Self {
        assert!(
            config.lines > 0 && config.line_words > 0,
            "cache must be non-empty"
        );
        ScalarCache {
            config,
            tags: vec![None; config.lines],
            hits: 0,
            misses: 0,
            line_shift: config
                .line_words
                .is_power_of_two()
                .then(|| config.line_words.trailing_zeros()),
            line_mask: config
                .lines
                .is_power_of_two()
                .then(|| config.lines as u64 - 1),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Invalidates all lines and clears statistics.
    pub fn reset(&mut self) {
        self.tags.fill(None);
        self.hits = 0;
        self.misses = 0;
    }

    fn line_and_tag(&self, addr: u64) -> (usize, u64) {
        let line_addr = match self.line_shift {
            Some(s) => addr >> s,
            None => addr / u64::from(self.config.line_words),
        };
        let line = match self.line_mask {
            Some(m) => (line_addr & m) as usize,
            None => (line_addr % self.tags.len() as u64) as usize,
        };
        (line, line_addr)
    }

    /// Performs a scalar load through the cache; returns
    /// `(complete_cycle, value)`.
    pub fn read(&mut self, mem: &mut MemorySystem, addr: u64, at: f64) -> (f64, f64) {
        let (line, tag) = self.line_and_tag(addr);
        if self.tags[line] == Some(tag) {
            self.hits += 1;
            (at + self.config.hit_latency as f64, mem.peek(addr))
        } else {
            self.misses += 1;
            let (granted, value) = mem.read(addr, at);
            self.tags[line] = Some(tag);
            (
                granted + (self.config.hit_latency + self.config.miss_penalty) as f64,
                value,
            )
        }
    }

    /// Performs a scalar store (write-through: always reaches memory);
    /// returns the complete cycle.
    pub fn write(&mut self, mem: &mut MemorySystem, addr: u64, value: f64, at: f64) -> f64 {
        let (line, tag) = self.line_and_tag(addr);
        if self.tags[line] == Some(tag) {
            self.hits += 1;
        } else {
            self.misses += 1;
            self.tags[line] = Some(tag);
        }
        let granted = mem.write(addr, value, at);
        granted + self.config.hit_latency as f64
    }

    /// Updates tags and hit/miss counters for a load *without* touching
    /// the memory system's timing state; returns whether it hit. The
    /// simulator's fast-forward warp replays scalar loads functionally
    /// (data via [`MemorySystem::peek`]) and uses this to keep the cache
    /// state and statistics identical to [`ScalarCache::read`].
    pub fn tag_read(&mut self, addr: u64) -> bool {
        let (line, tag) = self.line_and_tag(addr);
        if self.tags[line] == Some(tag) {
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            self.tags[line] = Some(tag);
            false
        }
    }

    /// The tag/counter half of [`ScalarCache::write`] without the memory
    /// access; returns whether it hit. See [`ScalarCache::tag_read`].
    pub fn tag_write(&mut self, addr: u64) -> bool {
        // Write-through tags behave exactly like read tags.
        self.tag_read(addr)
    }

    /// Hit/miss counters as a checkpoint token for [`ScalarCache::rollback`].
    pub fn checkpoint(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// [`ScalarCache::tag_read`], journaling any tag overwrite into `log`
    /// so the caller can undo a speculative sequence with
    /// [`ScalarCache::rollback`] instead of cloning the whole cache.
    pub fn tag_read_logged(&mut self, addr: u64, log: &mut Vec<(usize, Option<u64>)>) -> bool {
        let (line, tag) = self.line_and_tag(addr);
        if self.tags[line] == Some(tag) {
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            log.push((line, self.tags[line]));
            self.tags[line] = Some(tag);
            false
        }
    }

    /// [`ScalarCache::tag_write`] with journaling; see
    /// [`ScalarCache::tag_read_logged`].
    pub fn tag_write_logged(&mut self, addr: u64, log: &mut Vec<(usize, Option<u64>)>) -> bool {
        self.tag_read_logged(addr, log)
    }

    /// [`ScalarCache::invalidate`] with journaling; see
    /// [`ScalarCache::tag_read_logged`].
    pub fn invalidate_logged(&mut self, addr: u64, log: &mut Vec<(usize, Option<u64>)>) {
        let (line, tag) = self.line_and_tag(addr);
        if self.tags[line] == Some(tag) {
            log.push((line, self.tags[line]));
            self.tags[line] = None;
        }
    }

    /// Journaled invalidation of every line overlapping the word run
    /// `[addr, addr + n)` — equivalent to calling
    /// [`ScalarCache::invalidate_logged`] on each word, but one tag probe
    /// per line instead of per word.
    pub fn invalidate_run_logged(
        &mut self,
        addr: u64,
        n: usize,
        log: &mut Vec<(usize, Option<u64>)>,
    ) {
        if n == 0 {
            return;
        }
        let lw = u64::from(self.config.line_words);
        let mut a = addr;
        let end = addr + n as u64;
        while a < end {
            self.invalidate_logged(a, log);
            // Jump to the first word of the next line.
            a = (a / lw + 1) * lw;
        }
    }

    /// Undoes a journaled sequence of `*_logged` calls: restores the
    /// overwritten tags in reverse order and resets the counters to a
    /// [`ScalarCache::checkpoint`] taken before the sequence.
    pub fn rollback(&mut self, counters: (u64, u64), log: &[(usize, Option<u64>)]) {
        for &(line, old) in log.iter().rev() {
            self.tags[line] = old;
        }
        self.hits = counters.0;
        self.misses = counters.1;
    }

    /// Invalidates the line containing `addr` (used when a vector store
    /// bypasses the cache and writes the same location).
    pub fn invalidate(&mut self, addr: u64) {
        let (line, tag) = self.line_and_tag(addr);
        if self.tags[line] == Some(tag) {
            self.tags[line] = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::MemConfig;

    fn mem() -> MemorySystem {
        MemorySystem::new(MemConfig::c240().without_refresh())
    }

    #[test]
    fn first_touch_misses_then_hits() {
        let mut m = mem();
        m.poke(10, 42.0);
        let mut c = ScalarCache::new(CacheConfig::c240());
        let (t1, v1) = c.read(&mut m, 10, 0.0);
        assert_eq!(v1, 42.0);
        assert_eq!(c.misses(), 1);
        // Same line: hit, cheaper.
        let (t2, v2) = c.read(&mut m, 11, t1);
        assert_eq!(v2, 0.0);
        assert_eq!(c.hits(), 1);
        assert!(t2 - t1 < t1 - 0.0);
    }

    #[test]
    fn write_through_reaches_memory() {
        let mut m = mem();
        let mut c = ScalarCache::new(CacheConfig::c240());
        c.write(&mut m, 20, 7.5, 0.0);
        assert_eq!(m.peek(20), 7.5);
    }

    #[test]
    fn conflicting_lines_evict() {
        let mut m = mem();
        let mut c = ScalarCache::new(CacheConfig {
            lines: 2,
            line_words: 1,
            hit_latency: 1,
            miss_penalty: 2,
        });
        let (_, _) = c.read(&mut m, 0, 0.0);
        let (_, _) = c.read(&mut m, 2, 0.0); // maps to line 0 too
        let (_, _) = c.read(&mut m, 0, 0.0); // miss again
        assert_eq!(c.misses(), 3);
        assert_eq!(c.hits(), 0);
    }

    #[test]
    fn invalidate_forces_refetch() {
        let mut m = mem();
        let mut c = ScalarCache::new(CacheConfig::c240());
        let _ = c.read(&mut m, 30, 0.0);
        c.invalidate(30);
        let _ = c.read(&mut m, 30, 100.0);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn reset_clears_everything() {
        let mut m = mem();
        let mut c = ScalarCache::new(CacheConfig::c240());
        let _ = c.read(&mut m, 1, 0.0);
        c.reset();
        assert_eq!(c.hits() + c.misses(), 0);
        let _ = c.read(&mut m, 1, 0.0);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn logged_ops_match_plain_ops_and_roll_back() {
        let mut m = mem();
        let plain = {
            let mut c = ScalarCache::new(CacheConfig::c240());
            assert!(!c.tag_read(10));
            assert!(c.tag_read(11));
            assert!(!c.tag_write(5000));
            c.invalidate(10);
            c
        };
        let mut c = ScalarCache::new(CacheConfig::c240());
        let mark = c.checkpoint();
        let mut log = Vec::new();
        assert!(!c.tag_read_logged(10, &mut log));
        assert!(c.tag_read_logged(11, &mut log));
        assert!(!c.tag_write_logged(5000, &mut log));
        c.invalidate_logged(10, &mut log);
        assert_eq!((c.hits(), c.misses()), (plain.hits(), plain.misses()));
        // Same observable behaviour after the sequence...
        let (_, v) = c.read(&mut m, 5001, 0.0);
        let _ = v;
        // ...and rollback restores the pristine state exactly.
        let mut fresh = ScalarCache::new(CacheConfig::c240());
        let mut c2 = ScalarCache::new(CacheConfig::c240());
        let mut log2 = Vec::new();
        let mark2 = c2.checkpoint();
        let _ = c2.tag_read_logged(10, &mut log2);
        let _ = c2.tag_write_logged(5000, &mut log2);
        c2.invalidate_logged(10, &mut log2);
        c2.rollback(mark2, &log2);
        assert_eq!((c2.hits(), c2.misses()), (0, 0));
        assert!(!fresh.tag_read(77) && !c2.tag_read(77));
        assert_eq!(mark, (0, 0));
    }

    #[test]
    fn non_power_of_two_geometry_still_maps_correctly() {
        let mut m = mem();
        let mut c = ScalarCache::new(CacheConfig {
            lines: 3,
            line_words: 5,
            hit_latency: 1,
            miss_penalty: 2,
        });
        let _ = c.read(&mut m, 0, 0.0); // line 0
        let _ = c.read(&mut m, 4, 0.0); // same line: hit
        let _ = c.read(&mut m, 5, 0.0); // next line: miss
        assert_eq!((c.hits(), c.misses()), (1, 2));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_line_cache_rejected() {
        let _ = ScalarCache::new(CacheConfig {
            lines: 0,
            line_words: 1,
            hit_latency: 1,
            miss_penalty: 1,
        });
    }
}
