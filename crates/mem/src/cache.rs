//! The ASU scalar data cache.
//!
//! On the C-240, scalar loads and stores go through the Address/Scalar
//! Unit's data cache, while the vector processor bypasses it and accesses
//! memory directly (§2). We model a small direct-mapped write-through
//! cache: hits cost a fixed latency; misses additionally perform a memory
//! access (and thus interact with banks, refresh and contention).

use crate::system::MemorySystem;

/// Scalar cache geometry and latencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of direct-mapped lines.
    pub lines: usize,
    /// Words per line.
    pub line_words: u32,
    /// Latency of a hit, in cycles.
    pub hit_latency: u64,
    /// Latency added by a miss on top of the memory grant, in cycles.
    pub miss_penalty: u64,
}

impl CacheConfig {
    /// A 8 KiB direct-mapped cache: 256 lines × 4 words, 2-cycle hits.
    pub fn c240() -> Self {
        CacheConfig {
            lines: 256,
            line_words: 4,
            hit_latency: 2,
            miss_penalty: 4,
        }
    }
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig::c240()
    }
}

/// A direct-mapped, write-through scalar data cache.
///
/// The cache only models *timing*; data always comes from (and goes to)
/// the backing [`MemorySystem`], which keeps scalar and vector accesses
/// coherent — matching the write-through design implied by the machine's
/// single memory image.
#[derive(Debug, Clone)]
pub struct ScalarCache {
    config: CacheConfig,
    tags: Vec<Option<u64>>,
    hits: u64,
    misses: u64,
}

impl ScalarCache {
    /// Creates an empty (all-invalid) cache.
    pub fn new(config: CacheConfig) -> Self {
        assert!(
            config.lines > 0 && config.line_words > 0,
            "cache must be non-empty"
        );
        ScalarCache {
            config,
            tags: vec![None; config.lines],
            hits: 0,
            misses: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Invalidates all lines and clears statistics.
    pub fn reset(&mut self) {
        self.tags.fill(None);
        self.hits = 0;
        self.misses = 0;
    }

    fn line_and_tag(&self, addr: u64) -> (usize, u64) {
        let line_addr = addr / u64::from(self.config.line_words);
        let line = (line_addr % self.tags.len() as u64) as usize;
        (line, line_addr)
    }

    /// Performs a scalar load through the cache; returns
    /// `(complete_cycle, value)`.
    pub fn read(&mut self, mem: &mut MemorySystem, addr: u64, at: f64) -> (f64, f64) {
        let (line, tag) = self.line_and_tag(addr);
        if self.tags[line] == Some(tag) {
            self.hits += 1;
            (at + self.config.hit_latency as f64, mem.peek(addr))
        } else {
            self.misses += 1;
            let (granted, value) = mem.read(addr, at);
            self.tags[line] = Some(tag);
            (
                granted + (self.config.hit_latency + self.config.miss_penalty) as f64,
                value,
            )
        }
    }

    /// Performs a scalar store (write-through: always reaches memory);
    /// returns the complete cycle.
    pub fn write(&mut self, mem: &mut MemorySystem, addr: u64, value: f64, at: f64) -> f64 {
        let (line, tag) = self.line_and_tag(addr);
        if self.tags[line] == Some(tag) {
            self.hits += 1;
        } else {
            self.misses += 1;
            self.tags[line] = Some(tag);
        }
        let granted = mem.write(addr, value, at);
        granted + self.config.hit_latency as f64
    }

    /// Invalidates the line containing `addr` (used when a vector store
    /// bypasses the cache and writes the same location).
    pub fn invalidate(&mut self, addr: u64) {
        let (line, tag) = self.line_and_tag(addr);
        if self.tags[line] == Some(tag) {
            self.tags[line] = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::MemConfig;

    fn mem() -> MemorySystem {
        MemorySystem::new(MemConfig::c240().without_refresh())
    }

    #[test]
    fn first_touch_misses_then_hits() {
        let mut m = mem();
        m.poke(10, 42.0);
        let mut c = ScalarCache::new(CacheConfig::c240());
        let (t1, v1) = c.read(&mut m, 10, 0.0);
        assert_eq!(v1, 42.0);
        assert_eq!(c.misses(), 1);
        // Same line: hit, cheaper.
        let (t2, v2) = c.read(&mut m, 11, t1);
        assert_eq!(v2, 0.0);
        assert_eq!(c.hits(), 1);
        assert!(t2 - t1 < t1 - 0.0);
    }

    #[test]
    fn write_through_reaches_memory() {
        let mut m = mem();
        let mut c = ScalarCache::new(CacheConfig::c240());
        c.write(&mut m, 20, 7.5, 0.0);
        assert_eq!(m.peek(20), 7.5);
    }

    #[test]
    fn conflicting_lines_evict() {
        let mut m = mem();
        let mut c = ScalarCache::new(CacheConfig {
            lines: 2,
            line_words: 1,
            hit_latency: 1,
            miss_penalty: 2,
        });
        let (_, _) = c.read(&mut m, 0, 0.0);
        let (_, _) = c.read(&mut m, 2, 0.0); // maps to line 0 too
        let (_, _) = c.read(&mut m, 0, 0.0); // miss again
        assert_eq!(c.misses(), 3);
        assert_eq!(c.hits(), 0);
    }

    #[test]
    fn invalidate_forces_refetch() {
        let mut m = mem();
        let mut c = ScalarCache::new(CacheConfig::c240());
        let _ = c.read(&mut m, 30, 0.0);
        c.invalidate(30);
        let _ = c.read(&mut m, 30, 100.0);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn reset_clears_everything() {
        let mut m = mem();
        let mut c = ScalarCache::new(CacheConfig::c240());
        let _ = c.read(&mut m, 1, 0.0);
        c.reset();
        assert_eq!(c.hits() + c.misses(), 0);
        let _ = c.read(&mut m, 1, 0.0);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_line_cache_rejected() {
        let _ = ScalarCache::new(CacheConfig {
            lines: 0,
            line_words: 1,
            hit_latency: 1,
            miss_penalty: 1,
        });
    }
}
