//! Fallible validation of the memory-side configuration.
//!
//! The sweep server accepts machine configurations from untrusted input
//! (newline-delimited JSON over stdin or a socket), so every constraint
//! that used to be an `assert!` in a constructor needs a typed,
//! recoverable form: [`MemConfig::validate`] and [`CacheConfig::validate`]
//! return a [`MemConfigError`] instead of panicking, and the panicking
//! builders (`with_banks`, `with_stream`, `with_duty`) remain as thin
//! compatibility wrappers over new `try_` constructors.

use std::error::Error;
use std::fmt;

use crate::cache::CacheConfig;
use crate::contention::{ContentionConfig, ContentionStream};
use crate::system::MemConfig;

/// Largest accepted bank count. The C-240 has 32; the cap exists so a
/// hostile sweep point cannot make the simulator allocate per-bank state
/// without bound.
pub const MAX_BANKS: u32 = 4096;

/// Largest accepted data-space size in 8-byte words (1 GiB of data).
/// The C-240 configuration uses 1 Mi words (8 MiB).
pub const MAX_WORDS: usize = 1 << 27;

/// A constraint violation in [`MemConfig`], [`CacheConfig`], or a
/// [`ContentionStream`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MemConfigError {
    /// `banks == 0`: memory needs at least one bank.
    ZeroBanks,
    /// `banks` beyond [`MAX_BANKS`].
    TooManyBanks {
        /// The offending count.
        banks: u32,
    },
    /// `bank_busy == 0`: a bank must be busy for at least one cycle.
    ZeroBankBusy,
    /// Refresh enabled with `refresh_period == 0`.
    ZeroRefreshPeriod,
    /// Refresh enabled with a window at least as long as the period, so
    /// memory would never grant.
    RefreshLenExceedsPeriod {
        /// Window length in cycles.
        len: u64,
        /// Period in cycles.
        period: u64,
    },
    /// `words == 0`: no data space.
    ZeroWords,
    /// `words` beyond [`MAX_WORDS`].
    TooManyWords {
        /// The offending size.
        words: usize,
    },
    /// A contention stream with an even stride (misses half the banks
    /// and breaks the closed-form claim solver).
    EvenContentionStride {
        /// The offending stride.
        stride: u64,
    },
    /// A contention stream with `duty_den == 0`.
    ZeroDutyDenominator,
    /// A contention stream claiming more than every visit
    /// (`duty_num > duty_den`).
    DutyAboveOne {
        /// Numerator of the duty fraction.
        num: u32,
        /// Denominator of the duty fraction.
        den: u32,
    },
    /// `lines == 0` in the scalar cache.
    ZeroCacheLines,
    /// `line_words == 0` in the scalar cache.
    ZeroCacheLineWords,
    /// Any other variant, labeled with the name of the machine whose
    /// memory configuration it was found in. This crate is
    /// machine-agnostic, so it never applies the label itself; the
    /// simulator's `SimConfig::validate` (which knows the machine name)
    /// wraps memory errors via [`MemConfigError::for_machine`] so sweep
    /// error rows name the offending machine.
    ForMachine {
        /// The machine label.
        machine: String,
        /// The underlying violation.
        error: Box<MemConfigError>,
    },
}

impl fmt::Display for MemConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemConfigError::ZeroBanks => write!(f, "memory must have at least one bank"),
            MemConfigError::TooManyBanks { banks } => {
                write!(f, "bank count {banks} exceeds the maximum of {MAX_BANKS}")
            }
            MemConfigError::ZeroBankBusy => {
                write!(f, "bank busy time must be at least one cycle")
            }
            MemConfigError::ZeroRefreshPeriod => {
                write!(f, "refresh is enabled but the refresh period is zero")
            }
            MemConfigError::RefreshLenExceedsPeriod { len, period } => write!(
                f,
                "refresh window of {len} cycles covers the whole {period}-cycle \
                 period, so memory would never grant"
            ),
            MemConfigError::ZeroWords => write!(f, "data space must hold at least one word"),
            MemConfigError::TooManyWords { words } => {
                write!(
                    f,
                    "data space of {words} words exceeds the maximum of {MAX_WORDS}"
                )
            }
            MemConfigError::EvenContentionStride { stride } => {
                write!(f, "contention stride {stride} must be odd")
            }
            MemConfigError::ZeroDutyDenominator => {
                write!(f, "contention duty denominator must be positive")
            }
            MemConfigError::DutyAboveOne { num, den } => {
                write!(f, "contention duty {num}/{den} must be a fraction <= 1")
            }
            MemConfigError::ZeroCacheLines => {
                write!(f, "scalar cache must have at least one line")
            }
            MemConfigError::ZeroCacheLineWords => {
                write!(f, "scalar cache lines must hold at least one word")
            }
            MemConfigError::ForMachine { machine, error } => {
                write!(f, "machine `{machine}`: {error}")
            }
        }
    }
}

impl Error for MemConfigError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MemConfigError::ForMachine { error, .. } => Some(error),
            _ => None,
        }
    }
}

impl MemConfigError {
    /// Wraps the error with a machine label (no-op on an empty label or
    /// an already-labeled error).
    pub fn for_machine(self, machine: &str) -> Self {
        if machine.is_empty() || matches!(self, MemConfigError::ForMachine { .. }) {
            return self;
        }
        MemConfigError::ForMachine {
            machine: machine.to_string(),
            error: Box::new(self),
        }
    }

    /// The underlying violation with any machine labels stripped — what
    /// tests and programmatic handlers match on.
    pub fn root(&self) -> &MemConfigError {
        match self {
            MemConfigError::ForMachine { error, .. } => error.root(),
            other => other,
        }
    }
}

impl ContentionStream {
    /// Checks the stream invariants the solver relies on (odd stride,
    /// duty a fraction ≤ 1).
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), MemConfigError> {
        if self.stride.is_multiple_of(2) {
            return Err(MemConfigError::EvenContentionStride {
                stride: self.stride,
            });
        }
        if self.duty_den == 0 {
            return Err(MemConfigError::ZeroDutyDenominator);
        }
        if self.duty_num > self.duty_den {
            return Err(MemConfigError::DutyAboveOne {
                num: self.duty_num,
                den: self.duty_den,
            });
        }
        Ok(())
    }

    /// Fallible form of [`ContentionStream::with_duty`].
    ///
    /// # Errors
    ///
    /// Rejects a zero denominator or a fraction above 1.
    pub fn try_with_duty(mut self, num: u32, den: u32) -> Result<Self, MemConfigError> {
        self.duty_num = num;
        self.duty_den = den;
        self.validate()?;
        Ok(self)
    }
}

impl ContentionConfig {
    /// Checks every configured stream (see [`ContentionStream::validate`]).
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), MemConfigError> {
        self.streams()
            .iter()
            .try_for_each(ContentionStream::validate)
    }

    /// Fallible form of [`ContentionConfig::with_stream`].
    ///
    /// # Errors
    ///
    /// Rejects streams the claim solver cannot handle.
    pub fn try_with_stream(self, stream: ContentionStream) -> Result<Self, MemConfigError> {
        stream.validate()?;
        Ok(self.push_stream(stream))
    }
}

impl MemConfig {
    /// Checks every constraint a simulatable memory system needs; the
    /// sweep server calls this on untrusted configurations before
    /// constructing a [`crate::MemorySystem`] (whose internal `assert!`s
    /// remain as backstops for programmatic misuse).
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), MemConfigError> {
        if self.banks == 0 {
            return Err(MemConfigError::ZeroBanks);
        }
        if self.banks > MAX_BANKS {
            return Err(MemConfigError::TooManyBanks { banks: self.banks });
        }
        if self.bank_busy == 0 {
            return Err(MemConfigError::ZeroBankBusy);
        }
        if self.refresh_enabled {
            if self.refresh_period == 0 {
                return Err(MemConfigError::ZeroRefreshPeriod);
            }
            if self.refresh_len >= self.refresh_period {
                return Err(MemConfigError::RefreshLenExceedsPeriod {
                    len: self.refresh_len,
                    period: self.refresh_period,
                });
            }
        }
        if self.words == 0 {
            return Err(MemConfigError::ZeroWords);
        }
        if self.words > MAX_WORDS {
            return Err(MemConfigError::TooManyWords { words: self.words });
        }
        self.contention.validate()
    }

    /// Fallible form of [`MemConfig::with_banks`].
    ///
    /// # Errors
    ///
    /// Rejects a zero or oversized bank count.
    pub fn try_with_banks(mut self, banks: u32) -> Result<Self, MemConfigError> {
        if banks == 0 {
            return Err(MemConfigError::ZeroBanks);
        }
        if banks > MAX_BANKS {
            return Err(MemConfigError::TooManyBanks { banks });
        }
        self.banks = banks;
        Ok(self)
    }
}

impl CacheConfig {
    /// Checks the scalar-cache constraints.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), MemConfigError> {
        if self.lines == 0 {
            return Err(MemConfigError::ZeroCacheLines);
        }
        if self.line_words == 0 {
            return Err(MemConfigError::ZeroCacheLineWords);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c240_defaults_validate() {
        assert_eq!(MemConfig::c240().validate(), Ok(()));
        assert_eq!(CacheConfig::c240().validate(), Ok(()));
        assert_eq!(ContentionConfig::lockstep(3).validate(), Ok(()));
        assert_eq!(ContentionConfig::mixed(3).validate(), Ok(()));
    }

    #[test]
    fn each_constraint_is_caught() {
        let base = MemConfig::c240();
        let mut c = base.clone();
        c.banks = 0;
        assert_eq!(c.validate(), Err(MemConfigError::ZeroBanks));
        let mut c = base.clone();
        c.banks = MAX_BANKS + 1;
        assert!(matches!(
            c.validate(),
            Err(MemConfigError::TooManyBanks { .. })
        ));
        let mut c = base.clone();
        c.bank_busy = 0;
        assert_eq!(c.validate(), Err(MemConfigError::ZeroBankBusy));
        let mut c = base.clone();
        c.refresh_period = 0;
        assert_eq!(c.validate(), Err(MemConfigError::ZeroRefreshPeriod));
        let mut c = base.clone();
        c.refresh_len = c.refresh_period;
        assert!(matches!(
            c.validate(),
            Err(MemConfigError::RefreshLenExceedsPeriod { .. })
        ));
        let mut c = base.clone();
        c.words = 0;
        assert_eq!(c.validate(), Err(MemConfigError::ZeroWords));
        let mut c = base.clone();
        c.words = MAX_WORDS + 1;
        assert!(matches!(
            c.validate(),
            Err(MemConfigError::TooManyWords { .. })
        ));
        // A disabled refresh makes the refresh fields unconstrained.
        let mut c = base.clone();
        c.refresh_enabled = false;
        c.refresh_period = 0;
        assert_eq!(c.validate(), Ok(()));
    }

    #[test]
    fn contention_streams_are_checked() {
        let even = ContentionStream {
            stride: 2,
            phase: 0,
            duty_num: 1,
            duty_den: 1,
        };
        assert_eq!(
            even.validate(),
            Err(MemConfigError::EvenContentionStride { stride: 2 })
        );
        assert_eq!(
            ContentionConfig::idle().try_with_stream(even),
            Err(MemConfigError::EvenContentionStride { stride: 2 })
        );
        assert_eq!(
            ContentionStream::unit(0).try_with_duty(2, 1),
            Err(MemConfigError::DutyAboveOne { num: 2, den: 1 })
        );
        assert_eq!(
            ContentionStream::unit(0).try_with_duty(1, 0),
            Err(MemConfigError::ZeroDutyDenominator)
        );
        let cfg = ContentionConfig::idle()
            .try_with_stream(ContentionStream::unit(3))
            .unwrap();
        assert_eq!(cfg.streams().len(), 1);
    }

    #[test]
    fn cache_constraints_are_caught() {
        let mut c = CacheConfig::c240();
        c.lines = 0;
        assert_eq!(c.validate(), Err(MemConfigError::ZeroCacheLines));
        let mut c = CacheConfig::c240();
        c.line_words = 0;
        assert_eq!(c.validate(), Err(MemConfigError::ZeroCacheLineWords));
    }

    #[test]
    fn try_with_banks_matches_wrapper() {
        assert!(MemConfig::c240().try_with_banks(16).is_ok());
        assert_eq!(
            MemConfig::c240().try_with_banks(0),
            Err(MemConfigError::ZeroBanks)
        );
        assert_eq!(MemConfig::c240().with_banks(16).banks, 16);
    }

    #[test]
    fn machine_labels_wrap_once_and_strip_cleanly() {
        let err = MemConfigError::ZeroBanks.for_machine("c240-64b");
        assert!(err.to_string().contains("machine `c240-64b`"));
        assert!(err.to_string().contains("at least one bank"));
        assert_eq!(err.root(), &MemConfigError::ZeroBanks);
        assert!(Error::source(&err).is_some());
        // Re-labeling and empty labels are no-ops.
        assert_eq!(err.clone().for_machine("other"), err);
        assert_eq!(
            MemConfigError::ZeroBanks.for_machine(""),
            MemConfigError::ZeroBanks
        );
    }

    #[test]
    fn errors_display_the_offending_value() {
        assert!(MemConfigError::TooManyBanks { banks: 9999 }
            .to_string()
            .contains("9999"));
        assert!(
            MemConfigError::RefreshLenExceedsPeriod { len: 8, period: 8 }
                .to_string()
                .contains("8-cycle")
        );
        assert!(MemConfigError::DutyAboveOne { num: 3, den: 2 }
            .to_string()
            .contains("3/2"));
    }
}
