//! Background memory traffic from the other three CPUs (and the I/O port).
//!
//! The paper's rules of thumb (§4.2): four *different* programs running
//! simultaneously cost ~20% through memory contention; four processes of
//! the *same* executable fall into lockstep and cost only 5–10%; an
//! otherwise idle machine approaches the 40 ns/access peak.
//!
//! We model each background processor as a deterministic
//! [`ContentionStream`]: a strided reference stream that claims each bank
//! it touches for one bank-cycle. The measured CPU's accesses must find a
//! grant slot that no stream claims. Streams are deterministic so
//! simulations are exactly reproducible.

/// One background processor's memory reference stream.
///
/// At cycle `c` the stream (when active) touches bank
/// `(phase + c·stride) mod banks`, claiming it for the bank busy time.
/// `stride` must be odd so the stream visits every bank (and so claim
/// windows are computable in closed form). The `duty` fraction thins the
/// stream: only `duty_num` of every `duty_den` visits to a bank are
/// claimed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContentionStream {
    /// Word stride of the background stream (must be odd).
    pub stride: u64,
    /// Starting phase in cycles.
    pub phase: u64,
    /// Numerator of the active-duty fraction.
    pub duty_num: u32,
    /// Denominator of the active-duty fraction.
    pub duty_den: u32,
}

impl ContentionStream {
    /// A full-rate unit-stride stream at the given phase — what a
    /// well-vectorized neighbor process generates.
    pub fn unit(phase: u64) -> Self {
        ContentionStream {
            stride: 1,
            phase,
            duty_num: 1,
            duty_den: 1,
        }
    }

    /// A thinned stream claiming `num/den` of its bank visits.
    ///
    /// # Panics
    ///
    /// Panics on fractions above 1 or a zero denominator; this is the
    /// compatibility wrapper over [`ContentionStream::try_with_duty`].
    pub fn with_duty(self, num: u32, den: u32) -> Self {
        self.try_with_duty(num, den)
            .expect("duty must be a fraction <= 1")
    }

    /// If this stream claims bank `bank` at any point during
    /// `[t, t + window)`, returns the end cycle of the blocking claim.
    ///
    /// Claims occur at cycles `c` with `(phase + c·stride) ≡ bank (mod
    /// banks)`, each lasting `claim_len` cycles.
    ///
    /// # Panics
    ///
    /// Panics if `stride` is even — an even stride misses half the banks
    /// and breaks the closed-form claim solver, so it is rejected in
    /// release builds too (not just `debug_assert`), matching the check
    /// in [`ContentionConfig::with_stream`].
    pub fn blocking_claim_end(&self, bank: u32, banks: u32, t: f64, claim_len: f64) -> Option<f64> {
        assert!(self.stride % 2 == 1, "contention stride must be odd");
        let m = u64::from(banks);
        // Solve phase + c*stride ≡ bank (mod m) for c.
        let inv = mod_inverse(self.stride % m, m)?;
        let target = (u64::from(bank) + m - self.phase % m) % m;
        let c0 = (target * inv) % m;
        // Visits to `bank` happen at cycles c0, c0+m, c0+2m, ...
        // Find the latest visit starting at or before t+claim... we need any
        // claim window [v, v+claim_len) intersecting [t, t+1) (grant cycle).
        let tt = t.max(0.0);
        let k = ((tt - c0 as f64) / m as f64).floor();
        for kk in [k - 1.0, k, k + 1.0] {
            if kk < 0.0 {
                continue;
            }
            let visit_index = kk as u64;
            if !self.visit_active(visit_index) {
                continue;
            }
            let v = c0 as f64 + kk * m as f64;
            if v < tt + 1.0 && tt < v + claim_len {
                return Some(v + claim_len);
            }
        }
        None
    }

    fn visit_active(&self, visit_index: u64) -> bool {
        visit_index % u64::from(self.duty_den) < u64::from(self.duty_num)
    }
}

fn mod_inverse(a: u64, m: u64) -> Option<u64> {
    // Extended Euclid; returns a^-1 mod m when gcd(a, m) == 1.
    let (mut old_r, mut r) = (a as i128, m as i128);
    let (mut old_s, mut s) = (1i128, 0i128);
    while r != 0 {
        let q = old_r / r;
        (old_r, r) = (r, old_r - q * r);
        (old_s, s) = (s, old_s - q * s);
    }
    if old_r != 1 {
        return None;
    }
    Some(old_s.rem_euclid(m as i128) as u64)
}

/// A set of background streams — the machine's load situation.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ContentionConfig {
    streams: Vec<ContentionStream>,
}

impl ContentionConfig {
    /// An idle machine: the other CPUs make no memory references.
    pub fn idle() -> Self {
        ContentionConfig::default()
    }

    /// `n` copies of the same executable running beside us (the paper's
    /// 5–10% case): unit-stride streams at staggered phases fall into
    /// lockstep with a unit-stride measured stream and cost nothing; a
    /// single slowly-rotating desync stream models the occasional drift
    /// (branches, strip boundaries) that keeps real processes from
    /// perfect alignment. Calibrated to ≈ 1.08× per access.
    pub fn lockstep(n: usize) -> Self {
        if n == 0 {
            return ContentionConfig::idle();
        }
        let mut streams: Vec<ContentionStream> = (0..n.saturating_sub(1) as u64)
            .map(|i| ContentionStream::unit(9 + 8 * i))
            .collect();
        streams.push(ContentionStream {
            stride: 3,
            phase: 4,
            duty_num: 1,
            duty_den: 12,
        });
        ContentionConfig { streams }
    }

    /// `n` unrelated programs running beside us (the paper's ~20% case):
    /// incommensurate odd strides collide irregularly with any measured
    /// stream. Duty 1/3 — real neighbors also compute between references.
    /// Calibrated to ≈ 1.5× per access, matching the paper's observation
    /// that typical contention stretches an access from 40 ns to
    /// 56–64 ns (§4.2).
    pub fn mixed(n: usize) -> Self {
        let strides = [3u64, 7, 11, 13, 5, 9];
        ContentionConfig {
            streams: (0..n)
                .map(|i| ContentionStream {
                    stride: strides[i % strides.len()],
                    phase: 5 * (i as u64 + 1),
                    duty_num: 1,
                    duty_den: 3,
                })
                .collect(),
        }
    }

    /// Adds a custom stream.
    ///
    /// # Panics
    ///
    /// Panics on an even stride; this is the compatibility wrapper over
    /// [`ContentionConfig::try_with_stream`].
    pub fn with_stream(self, stream: ContentionStream) -> Self {
        self.try_with_stream(stream)
            .expect("contention stride must be odd")
    }

    /// Appends a stream without validating it (validation lives in
    /// `try_with_stream`).
    pub(crate) fn push_stream(mut self, stream: ContentionStream) -> Self {
        self.streams.push(stream);
        self
    }

    /// The configured streams.
    pub fn streams(&self) -> &[ContentionStream] {
        &self.streams
    }

    /// Whether any stream is configured.
    pub fn is_idle(&self) -> bool {
        self.streams.is_empty()
    }

    /// The period, in cycles, after which the joint claim pattern of all
    /// streams repeats: each stream visits a given bank once per `banks`
    /// cycles and its duty gate repeats every `duty_den` visits, so the
    /// combined pattern is periodic in `lcm(banks · duty_den)`. Returns 1
    /// for an idle machine. Used by the simulator's fast-forward detector
    /// to require matching contention phase between periodic states.
    pub fn pattern_period(&self, banks: u32) -> u64 {
        self.streams.iter().fold(1u64, |acc, s| {
            let p = u64::from(banks) * u64::from(s.duty_den);
            acc / crate::gcd(acc, p) * p
        })
    }

    /// The end of the latest claim blocking a grant to `bank` at cycle
    /// `t`, if any stream blocks it.
    pub fn blocking_claim_end(&self, bank: u32, banks: u32, t: f64, claim_len: f64) -> Option<f64> {
        self.streams
            .iter()
            .filter_map(|s| s.blocking_claim_end(bank, banks, t, claim_len))
            .fold(None, |acc, end| Some(acc.map_or(end, |a: f64| a.max(end))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mod_inverse_works() {
        assert_eq!(mod_inverse(3, 32), Some(11)); // 3*11 = 33 ≡ 1
        assert_eq!(mod_inverse(1, 32), Some(1));
        assert_eq!(mod_inverse(2, 32), None);
    }

    #[test]
    fn unit_stream_claims_each_bank_once_per_rotation() {
        let s = ContentionStream::unit(0);
        // Bank 5 is visited at cycles 5, 37, 69, ... each claim lasting 8.
        assert_eq!(s.blocking_claim_end(5, 32, 5.0, 8.0), Some(13.0));
        assert_eq!(s.blocking_claim_end(5, 32, 12.9, 8.0), Some(13.0));
        assert_eq!(s.blocking_claim_end(5, 32, 13.0, 8.0), None);
        assert_eq!(s.blocking_claim_end(5, 32, 37.0, 8.0), Some(45.0));
        // Just before the claim the window [t, t+1) does not yet overlap.
        assert_eq!(s.blocking_claim_end(5, 32, 3.9, 8.0), None);
        assert_eq!(s.blocking_claim_end(5, 32, 4.5, 8.0), Some(13.0));
    }

    #[test]
    fn duty_thins_claims() {
        let s = ContentionStream::unit(0).with_duty(1, 2);
        // Visits to bank 0 at cycles 0, 32, 64, ...; only even visit
        // indices claim.
        assert!(s.blocking_claim_end(0, 32, 0.0, 8.0).is_some());
        assert!(s.blocking_claim_end(0, 32, 32.0, 8.0).is_none());
        assert!(s.blocking_claim_end(0, 32, 64.0, 8.0).is_some());
    }

    #[test]
    fn presets() {
        assert!(ContentionConfig::idle().is_idle());
        assert_eq!(ContentionConfig::lockstep(3).streams().len(), 3);
        assert_eq!(ContentionConfig::mixed(3).streams().len(), 3);
        for s in ContentionConfig::mixed(6).streams() {
            assert_eq!(s.stride % 2, 1);
        }
    }

    #[test]
    #[should_panic(expected = "duty")]
    fn bad_duty_rejected() {
        let _ = ContentionStream::unit(0).with_duty(5, 4);
    }

    #[test]
    #[should_panic(expected = "stride must be odd")]
    fn even_stride_rejected_by_config() {
        let _ = ContentionConfig::idle().with_stream(ContentionStream {
            stride: 2,
            phase: 0,
            duty_num: 1,
            duty_den: 1,
        });
    }

    #[test]
    #[should_panic(expected = "stride must be odd")]
    fn even_stride_rejected_at_claim_time_in_release_too() {
        // A hand-built (not `with_stream`-validated) stream must still be
        // rejected by the claim solver itself — as a hard assert, so
        // release builds cannot silently compute wrong claim windows.
        let s = ContentionStream {
            stride: 4,
            phase: 0,
            duty_num: 1,
            duty_den: 1,
        };
        let _ = s.blocking_claim_end(0, 32, 0.0, 8.0);
    }

    #[test]
    fn config_blocking_takes_max() {
        let cfg = ContentionConfig::idle()
            .with_stream(ContentionStream::unit(0))
            .with_stream(ContentionStream::unit(1));
        // Bank 5: stream A claims [5,13), stream B claims [4,12).
        let end = cfg.blocking_claim_end(5, 32, 5.0, 8.0).unwrap();
        assert_eq!(end, 13.0);
    }
}
