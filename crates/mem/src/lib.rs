//! Banked memory subsystem of the Convex C-240 (§2, §3.2 of the paper).
//!
//! The standard C-240 memory configuration has **32 interleaved banks** of
//! 8-byte words with an **8-cycle bank cycle time**, one port per CPU (plus
//! one I/O port), and a dynamic-RAM **refresh** that claims the memory for
//! 8 cycles every 400 cycles (16 µs at 40 ns/cycle) — a potential 2%
//! penalty. Under ideal conditions the four CPUs sustain one access per
//! CPU per cycle; contention from other processors degrades a port to one
//! access every 1.4–1.6 cycles (§4.2).
//!
//! [`MemorySystem`] provides the timing + data interface used by the
//! cycle-level simulator: each access names a word address and an earliest
//! start cycle, and receives the granted cycle back, after bank busy time,
//! refresh windows and background [`ContentionStream`]s are honored.
//! [`ScalarCache`] models the ASU data cache that scalar accesses go
//! through (vector accesses bypass it).
//!
//! # Example
//!
//! ```
//! use c240_mem::{MemConfig, MemorySystem};
//!
//! let mut mem = MemorySystem::new(MemConfig::c240());
//! mem.poke(100, 2.5);
//! let (t, value) = mem.read(100, 0.0);
//! assert_eq!(value, 2.5);
//! // A second access to the same bank waits out the 8-cycle bank busy.
//! let (t2, _) = mem.read(100, t);
//! assert!(t2 >= t + 8.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod contention;
mod system;
mod validate;

pub use cache::{CacheConfig, ScalarCache};
pub use contention::{ContentionConfig, ContentionStream};
pub use system::{BankState, MemConfig, MemorySystem, WaitBreakdown};
pub use validate::{MemConfigError, MAX_BANKS, MAX_WORDS};

/// Word-granular bank index for an address under a given interleave.
///
/// Banks interleave on consecutive words: `bank = word_address % banks`.
///
/// ```
/// assert_eq!(c240_mem::bank_of(33, 32), 1);
/// ```
pub fn bank_of(word_addr: u64, banks: u32) -> u32 {
    (word_addr % u64::from(banks)) as u32
}

/// Steady-state cycles per element for a strided vector stream, from bank
/// structure alone (no refresh, no contention).
///
/// A stream of word stride `s` revisits the same bank every
/// `banks / gcd(|s|, banks)` elements; if that is fewer elements than the
/// bank needs cycles to recover, throughput is bank-limited.
///
/// ```
/// // Unit stride: one element per cycle.
/// assert_eq!(c240_mem::stride_cycles_per_element(1, 32, 8), 1.0);
/// // Stride 16 hits 2 banks alternately: 8-cycle banks limit it to
/// // one element every 4 cycles.
/// assert_eq!(c240_mem::stride_cycles_per_element(16, 32, 8), 4.0);
/// // Stride 32 hammers one bank: one element per bank cycle.
/// assert_eq!(c240_mem::stride_cycles_per_element(32, 32, 8), 8.0);
/// ```
pub fn stride_cycles_per_element(stride_words: i64, banks: u32, bank_busy: u64) -> f64 {
    let s = stride_words.unsigned_abs() % u64::from(banks);
    let g = gcd(if s == 0 { u64::from(banks) } else { s }, u64::from(banks));
    let revisit = u64::from(banks) / g;
    (bank_busy as f64 / revisit as f64).max(1.0)
}

pub(crate) fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(32, 8), 8);
        assert_eq!(gcd(25, 32), 1);
        assert_eq!(gcd(0, 7), 7);
    }

    #[test]
    fn bank_mapping() {
        assert_eq!(bank_of(0, 32), 0);
        assert_eq!(bank_of(31, 32), 31);
        assert_eq!(bank_of(32, 32), 0);
    }

    #[test]
    fn odd_strides_are_conflict_free() {
        for s in [1i64, 3, 5, 7, 25, 101] {
            assert_eq!(stride_cycles_per_element(s, 32, 8), 1.0, "stride {s}");
        }
    }

    #[test]
    fn power_of_two_strides_degrade() {
        assert_eq!(stride_cycles_per_element(2, 32, 8), 1.0); // 16 banks > 8
        assert_eq!(stride_cycles_per_element(4, 32, 8), 1.0); // 8 banks = 8
        assert_eq!(stride_cycles_per_element(8, 32, 8), 2.0); // 4 banks
        assert_eq!(stride_cycles_per_element(64, 32, 8), 8.0);
    }
}
