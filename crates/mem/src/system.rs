//! The banked memory system: data storage plus access timing.
//!
//! Since the multi-CPU co-simulation refactor the system is split in
//! two: [`BankState`] holds the *shared* arbitration state (per-bank
//! earliest-free cycles, which CPU last claimed each bank, and
//! machine-wide counters), while [`MemorySystem`] is a per-CPU *view*
//! over it — private data space and private accounting on top of the
//! shared banks. A single-CPU simulation owns both halves and behaves
//! exactly as before; a co-simulation driver (`c240_sim::Machine`)
//! keeps one `BankState` and swaps it into whichever CPU's view is
//! stepping, so contention between CPUs *emerges* from real interleaved
//! traffic instead of the synthetic [`ContentionStream`]s.
//!
//! [`ContentionStream`]: crate::ContentionStream

use crate::contention::ContentionConfig;
use crate::{bank_of, gcd};

/// Grid points per cycle of the machine's timing quantum. Private copy of
/// `c240_isa::timing::TICKS_PER_CYCLE` — this crate is dependency-free.
const TICKS_PER_CYCLE: f64 = 20.0;

/// Rounds to the canonical `f64` of the nearest 1/20-cycle grid point,
/// keeping every stored timestamp a pure function of its integer tick
/// count (see `c240_isa::timing::quantize`).
#[inline]
fn q(x: f64) -> f64 {
    (x * TICKS_PER_CYCLE).round() / TICKS_PER_CYCLE
}

/// Configuration of the memory system.
#[derive(Debug, Clone, PartialEq)]
pub struct MemConfig {
    /// Number of interleaved banks (32 in the standard C-240).
    pub banks: u32,
    /// Bank cycle (recovery) time in cycles (8 on the C-240).
    pub bank_busy: u64,
    /// Cycles between refresh windows (400 on the C-240 = 16 µs).
    pub refresh_period: u64,
    /// Length of each refresh window in cycles (8 on the C-240).
    pub refresh_len: u64,
    /// Whether refresh is modeled (disable for ablations).
    pub refresh_enabled: bool,
    /// Memory size in 8-byte words.
    pub words: usize,
    /// Background traffic from the other CPUs.
    pub contention: ContentionConfig,
}

impl MemConfig {
    /// The standard C-240 configuration (§2 of the paper) with 8 MiB of
    /// data space and an otherwise idle machine.
    pub fn c240() -> Self {
        MemConfig {
            banks: 32,
            bank_busy: 8,
            refresh_period: 400,
            refresh_len: 8,
            refresh_enabled: true,
            words: 1 << 20,
            contention: ContentionConfig::idle(),
        }
    }

    /// Same configuration with refresh disabled (ablation).
    pub fn without_refresh(mut self) -> Self {
        self.refresh_enabled = false;
        self
    }

    /// Same configuration with the given background contention.
    pub fn with_contention(mut self, contention: ContentionConfig) -> Self {
        self.contention = contention;
        self
    }

    /// Same configuration with a different bank count.
    ///
    /// # Panics
    ///
    /// Panics if `banks` is zero or oversized; this is the compatibility
    /// wrapper over [`MemConfig::try_with_banks`].
    pub fn with_banks(self, banks: u32) -> Self {
        self.try_with_banks(banks)
            .expect("memory must have at least one bank")
    }

    /// Same configuration with a different data size in words.
    pub fn with_words(mut self, words: usize) -> Self {
        self.words = words;
        self
    }
}

impl Default for MemConfig {
    fn default() -> Self {
        MemConfig::c240()
    }
}

/// The shared half of the memory system: per-bank arbitration state plus
/// machine-wide accounting, common to every CPU port.
///
/// A single-CPU [`MemorySystem`] owns its own `BankState`; a co-sim
/// driver owns one and swaps it between the CPUs' views with
/// [`MemorySystem::swap_bank_state`] (an O(1) pointer swap) so every
/// grant search sees every other CPU's outstanding claims.
#[derive(Debug, Clone, PartialEq)]
pub struct BankState {
    /// Earliest cycle each bank is free of *all* claims so far (the end
    /// of its latest claim).
    free: Vec<f64>,
    /// The view (CPU port) that last claimed each bank — waits behind a
    /// foreign claim are charged to contention, not bank-busy.
    owner: Vec<u32>,
    /// Multiport mode only: each bank's outstanding claim windows as
    /// `(start, owner)` pairs sorted by start (every claim lasts the
    /// configured bank-busy time). Empty in single-port mode.
    claims: Vec<Vec<(f64, u32)>>,
    /// Whether grant searches fit into idle windows *between* claims
    /// (multiport co-sim) or only after the latest claim (single-port).
    multiport: bool,
    /// Claims ending at or before this cycle can no longer affect any
    /// future request and are pruned.
    horizon: f64,
    /// Machine-wide accesses across all views.
    accesses: u64,
    /// Machine-wide wait cycles across all views.
    waited: f64,
    /// Machine-wide wait breakdown across all views.
    breakdown: WaitBreakdown,
}

impl BankState {
    /// Fresh (all banks free at cycle 0) single-port state for `banks`
    /// banks: a request waits until the bank's latest claim ends. Exact
    /// for one CPU, whose port serializes requests in non-decreasing
    /// earliest-start order, so an idle window behind the cursor can
    /// never be used anyway.
    pub fn new(banks: u32) -> Self {
        BankState {
            free: vec![0.0; banks as usize],
            owner: vec![0; banks as usize],
            claims: Vec::new(),
            multiport: false,
            horizon: 0.0,
            accesses: 0,
            waited: 0.0,
            breakdown: WaitBreakdown::default(),
        }
    }

    /// Fresh *multiport* state: claims are tracked individually and a
    /// grant search may fit into an idle window between two existing
    /// claims. Co-simulated CPUs interleave out of timestamp order (CPU
    /// A steps a whole vector instruction — claiming several rotations
    /// of each bank — before CPU B's earlier-cycle request arrives), so
    /// the single `free` cursor would force B behind A's *last*
    /// rotation; window-fitting restores the interleaved packing the
    /// real banks provide. For requests arriving in non-decreasing
    /// earliest order (any single port) the two modes grant identically.
    pub fn multiport(banks: u32) -> Self {
        BankState {
            claims: vec![Vec::new(); banks as usize],
            multiport: true,
            ..BankState::new(banks)
        }
    }

    /// Whether this state window-fits (see [`BankState::multiport`]).
    pub fn is_multiport(&self) -> bool {
        self.multiport
    }

    /// Declares that every future request starts at or after `cycle`
    /// (the co-sim driver's minimum issue clock, minus margin): claims
    /// ending at or before it are dead and get pruned. Monotonic —
    /// lower values than a previous horizon are ignored.
    pub fn set_horizon(&mut self, cycle: f64) {
        self.horizon = self.horizon.max(cycle);
    }

    /// Clears all arbitration state and counters.
    pub fn reset(&mut self) {
        self.free.fill(0.0);
        self.owner.fill(0);
        for c in &mut self.claims {
            c.clear();
        }
        self.horizon = 0.0;
        self.accesses = 0;
        self.waited = 0.0;
        self.breakdown = WaitBreakdown::default();
    }

    /// Total accesses served across every view sharing this state.
    pub fn access_count(&self) -> u64 {
        self.accesses
    }

    /// Total wait cycles across every view sharing this state.
    pub fn wait_cycles(&self) -> f64 {
        self.waited
    }

    /// The machine-wide wait breakdown across every view sharing this
    /// state. Per-view breakdowns sum to this exactly.
    pub fn wait_breakdown(&self) -> WaitBreakdown {
        self.breakdown
    }
}

/// The memory system as seen from one CPU port: word-addressed data plus
/// the (possibly shared) per-bank availability.
///
/// Timing methods take the earliest cycle an access may start and return
/// the cycle at which the bank granted it. Between request and grant the
/// access may wait for: the bank's recovery from one of this CPU's own
/// earlier accesses (bank busy), another CPU's claim on the bank
/// (contention — only in co-simulation), a refresh window, or a
/// synthetic background contention claim.
#[derive(Debug, Clone)]
pub struct MemorySystem {
    config: MemConfig,
    data: Vec<f64>,
    bank: BankState,
    view: u32,
    accesses: u64,
    waited: f64,
    breakdown: WaitBreakdown,
}

/// Cycles accesses spent waiting, split by cause.
///
/// Every bump of the grant-search cursor is charged to exactly one
/// field, so `bank_busy + refresh + contention` equals
/// [`MemorySystem::wait_cycles`] identically — not approximately.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WaitBreakdown {
    /// Waiting for a bank still cycling from an earlier access by the
    /// same CPU.
    pub bank_busy: f64,
    /// Waiting out refresh windows (each blocked access pays the full
    /// window, per §3.2 of the paper).
    pub refresh: f64,
    /// Waiting behind other CPUs' bank claims — co-simulated neighbor
    /// CPUs or synthetic background streams.
    pub contention: f64,
}

impl WaitBreakdown {
    /// Sum of all causes; equals total wait cycles.
    pub fn total(&self) -> f64 {
        self.bank_busy + self.refresh + self.contention
    }
}

impl MemorySystem {
    /// Creates a zero-filled memory with the given configuration.
    pub fn new(config: MemConfig) -> Self {
        let banks = config.banks;
        let words = config.words;
        MemorySystem {
            config,
            data: vec![0.0; words],
            bank: BankState::new(banks),
            view: 0,
            accesses: 0,
            waited: 0.0,
            breakdown: WaitBreakdown::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &MemConfig {
        &self.config
    }

    /// Memory size in words.
    pub fn words(&self) -> usize {
        self.data.len()
    }

    /// Accesses served through *this view* (this CPU's port).
    pub fn access_count(&self) -> u64 {
        self.accesses
    }

    /// Cycles this view's accesses spent waiting beyond their earliest
    /// start.
    pub fn wait_cycles(&self) -> f64 {
        self.waited
    }

    /// This view's wait cycles split by cause (bank busy, refresh,
    /// contention).
    pub fn wait_breakdown(&self) -> WaitBreakdown {
        self.breakdown
    }

    /// The view id this port charges its bank claims to (0 outside
    /// co-simulation).
    pub fn view(&self) -> u32 {
        self.view
    }

    /// Assigns the view id. A co-sim driver gives each CPU a distinct id
    /// so waits behind another CPU's claim are attributed to contention.
    pub fn set_view(&mut self, view: u32) {
        self.view = view;
    }

    /// The shared arbitration state this view currently holds (bank
    /// availability plus machine-wide counters).
    pub fn shared(&self) -> &BankState {
        &self.bank
    }

    /// Swaps this view's bank state with `other` — O(1). A co-sim driver
    /// swaps its one shared [`BankState`] in before stepping a CPU and
    /// back out afterwards, so all CPUs arbitrate against the same banks.
    pub fn swap_bank_state(&mut self, other: &mut BankState) {
        std::mem::swap(&mut self.bank, other);
    }

    /// Reads `addr` (word address) no earlier than cycle `earliest`;
    /// returns the granted cycle and the value.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is outside the configured memory size, which
    /// indicates a bug in the simulated program.
    pub fn read(&mut self, addr: u64, earliest: f64) -> (f64, f64) {
        let value = self.peek(addr);
        let t = self.grant(addr, earliest);
        (t, value)
    }

    /// Writes `value` to `addr` no earlier than cycle `earliest`; returns
    /// the granted cycle.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is outside the configured memory size.
    pub fn write(&mut self, addr: u64, value: f64, earliest: f64) -> f64 {
        self.check(addr);
        let t = self.grant(addr, earliest);
        self.data[addr as usize] = value;
        t
    }

    /// Reads data without touching timing state (test/setup use).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is outside the configured memory size.
    pub fn peek(&self, addr: u64) -> f64 {
        self.check(addr);
        self.data[addr as usize]
    }

    /// Writes data without touching timing state (test/setup use).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is outside the configured memory size.
    pub fn poke(&mut self, addr: u64, value: f64) {
        self.check(addr);
        self.data[addr as usize] = value;
    }

    /// A contiguous run of `n` words starting at `addr`, or `None` if
    /// the run leaves the configured memory. Bulk (unit-stride) data
    /// access for the simulator's fast-forward warp; timing untouched.
    pub fn peek_run(&self, addr: u64, n: usize) -> Option<&[f64]> {
        self.data
            .get(addr as usize..(addr as usize).checked_add(n)?)
    }

    /// Mutable variant of [`MemorySystem::peek_run`].
    pub fn poke_run(&mut self, addr: u64, n: usize) -> Option<&mut [f64]> {
        self.data
            .get_mut(addr as usize..(addr as usize).checked_add(n)?)
    }

    /// Clears all timing state (bank availability, statistics) while
    /// keeping data — used between measurement runs.
    pub fn reset_timing(&mut self) {
        self.bank.reset();
        self.accesses = 0;
        self.waited = 0.0;
        self.breakdown = WaitBreakdown::default();
    }

    fn check(&self, addr: u64) {
        assert!(
            (addr as usize) < self.data.len(),
            "memory access out of bounds: word address {addr} >= {} words",
            self.data.len()
        );
    }

    /// Finds and claims the earliest grant cycle for an access to `addr`
    /// starting no earlier than `earliest`.
    ///
    /// Waits behind a bank claimed by this view are charged to bank
    /// busy; waits behind a bank last claimed by a *different* view
    /// (another co-simulated CPU) are charged to contention — the same
    /// category the synthetic background streams use, so the attribution
    /// taxonomy is identical either way.
    fn grant(&mut self, addr: u64, earliest: f64) -> f64 {
        self.check(addr);
        let bank = bank_of(addr, self.config.banks) as usize;
        let earliest = q(earliest.max(0.0));
        let busy = self.config.bank_busy as f64;
        if self.bank.multiport {
            let horizon = self.bank.horizon;
            self.bank.claims[bank].retain(|&(s, _)| q(s + busy) > horizon);
        }
        let mut t = earliest;
        let mut guard = 0u32;
        loop {
            guard += 1;
            assert!(
                guard < 100_000,
                "memory grant search did not converge (bank {bank}, t={t}); \
                 contention configuration saturates the bank"
            );
            if self.bank.multiport {
                // Window fit: slide past the first claim overlapping
                // [t, t+busy), charging the displacement to its owner's
                // category, and retry (idle windows between later claims
                // remain usable).
                let hit = self.bank.claims[bank]
                    .iter()
                    .find(|&&(s, _)| s < q(t + busy) && q(s + busy) > t)
                    .copied();
                if let Some((s, owner)) = hit {
                    let end = q(s + busy);
                    let wait = end - t;
                    if owner == self.view {
                        self.breakdown.bank_busy = q(self.breakdown.bank_busy + wait);
                        self.bank.breakdown.bank_busy = q(self.bank.breakdown.bank_busy + wait);
                    } else {
                        self.breakdown.contention = q(self.breakdown.contention + wait);
                        self.bank.breakdown.contention = q(self.bank.breakdown.contention + wait);
                    }
                    t = end;
                    continue;
                }
            } else if t < self.bank.free[bank] {
                let wait = self.bank.free[bank] - t;
                if self.bank.owner[bank] == self.view {
                    self.breakdown.bank_busy = q(self.breakdown.bank_busy + wait);
                    self.bank.breakdown.bank_busy = q(self.bank.breakdown.bank_busy + wait);
                } else {
                    self.breakdown.contention = q(self.breakdown.contention + wait);
                    self.bank.breakdown.contention = q(self.bank.breakdown.contention + wait);
                }
                t = self.bank.free[bank];
                continue;
            }
            if self.config.refresh_enabled {
                let period = self.config.refresh_period as f64;
                let len = self.config.refresh_len as f64;
                let into = t.rem_euclid(period);
                if into < len {
                    // The paper (§3.2): a refresh "will force the VP to
                    // stall for eight cycles" — the blocked access pays
                    // the full window (re-arbitration included), not just
                    // the remainder of it.
                    self.breakdown.refresh = q(self.breakdown.refresh + len);
                    self.bank.breakdown.refresh = q(self.bank.breakdown.refresh + len);
                    t = q(t + len);
                    continue;
                }
            }
            if let Some(end) = self.config.contention.blocking_claim_end(
                bank as u32,
                self.config.banks,
                t,
                self.config.bank_busy as f64,
            ) {
                self.breakdown.contention = q(self.breakdown.contention + (end - t));
                self.bank.breakdown.contention = q(self.bank.breakdown.contention + (end - t));
                t = q(end);
                continue;
            }
            break;
        }
        let end = q(t + busy);
        if self.bank.multiport {
            let pos = self.bank.claims[bank].partition_point(|&(s, _)| s <= t);
            self.bank.claims[bank].insert(pos, (t, self.view));
        }
        if end >= self.bank.free[bank] {
            self.bank.free[bank] = end;
            self.bank.owner[bank] = self.view;
        }
        self.accesses += 1;
        self.bank.accesses += 1;
        self.waited = q(self.waited + (t - earliest));
        self.bank.waited = q(self.bank.waited + (t - earliest));
        t
    }

    /// Per-bank earliest-free cycles, exposed so the simulator's
    /// steady-state fast-forward can snapshot and translate the memory
    /// system's timing state along with its own.
    pub fn bank_state(&self) -> &[f64] {
        &self.bank.free
    }

    /// Mutable view of the per-bank earliest-free cycles (fast-forward
    /// translation; see [`MemorySystem::bank_state`]).
    pub fn bank_state_mut(&mut self) -> &mut [f64] {
        &mut self.bank.free
    }

    /// Adds `k` periods' worth of access counters in one step — the
    /// fast-forward path's replacement for `k` repetitions of identical
    /// per-period traffic. The per-period deltas must come from two
    /// counter snapshots of this system taken one period apart, expressed
    /// in *ticks* (1/20 cycle); the translation runs in integer tick
    /// arithmetic so the result is the canonical grid value the naive run
    /// would have accumulated.
    pub fn ff_apply(
        &mut self,
        accesses: u64,
        waited_ticks: f64,
        breakdown_ticks: WaitBreakdown,
        k: u64,
    ) {
        self.accesses += accesses * k;
        self.bank.accesses += accesses * k;
        let kf = k as f64;
        let translate = |c: &mut f64, d: f64| {
            *c = ((*c * TICKS_PER_CYCLE).round() + kf * d) / TICKS_PER_CYCLE;
        };
        translate(&mut self.waited, waited_ticks);
        translate(&mut self.breakdown.bank_busy, breakdown_ticks.bank_busy);
        translate(&mut self.breakdown.refresh, breakdown_ticks.refresh);
        translate(&mut self.breakdown.contention, breakdown_ticks.contention);
        translate(&mut self.bank.waited, waited_ticks);
        translate(
            &mut self.bank.breakdown.bank_busy,
            breakdown_ticks.bank_busy,
        );
        translate(&mut self.bank.breakdown.refresh, breakdown_ticks.refresh);
        translate(
            &mut self.bank.breakdown.contention,
            breakdown_ticks.contention,
        );
    }

    /// Whether a strided element stream of `n` accesses starting at word
    /// `base`, paced exactly `z` cycles apart from cycle `start`, is
    /// provably conflict-free: every grant lands at its requested cycle
    /// with zero wait. True only when contention is idle, the whole
    /// stream stays clear of refresh windows, same-bank revisits are
    /// spaced at least the bank recovery time apart, and every touched
    /// bank has already recovered from earlier traffic (its own or, in
    /// co-simulation, any other CPU's).
    pub fn stream_conflict_free(&self, base: i64, stride: i64, n: u32, start: f64, z: f64) -> bool {
        if n == 0 {
            return true;
        }
        if !self.config.contention.is_idle() {
            return false;
        }
        let span = z * (n - 1) as f64;
        if self.config.refresh_enabled {
            let period = self.config.refresh_period as f64;
            let len = self.config.refresh_len as f64;
            let into = start.rem_euclid(period);
            if into < len || into + span >= period {
                return false;
            }
        }
        // Same-bank revisit spacing: a stride touching `r` distinct banks
        // revisits each one every `r` elements = `z·r` cycles.
        let r = self.banks_touched(stride);
        if (n > r) && z * (r as f64) < self.config.bank_busy as f64 {
            return false;
        }
        // Every touched bank must be free by the stream's start.
        let banks = i64::from(self.config.banks);
        let mut bank = base.rem_euclid(banks);
        let step = stride.rem_euclid(banks);
        for _ in 0..r.min(n) {
            if self.bank.free[bank as usize] > start {
                return false;
            }
            bank = (bank + step) % banks;
        }
        true
    }

    /// Claims a conflict-free stream's grants in closed form: the
    /// per-element search of [`MemorySystem::read`]/`write` collapses to
    /// a counter bump plus final per-bank recovery times. Must only be
    /// called after [`MemorySystem::stream_conflict_free`] returned true
    /// for the same arguments; produces bit-identical timing state to
    /// `n` individual grants at `start + z·e`.
    pub fn claim_stream(&mut self, base: i64, stride: i64, n: u32, start: f64, z: f64) {
        if n == 0 {
            return;
        }
        self.accesses += u64::from(n);
        self.bank.accesses += u64::from(n);
        let banks = i64::from(self.config.banks);
        let r = self.banks_touched(stride);
        let step = stride.rem_euclid(banks);
        if self.bank.multiport {
            // Window-fitting neighbors must see every element's claim,
            // not just the last visit per bank. The conflict-free
            // precondition guarantees all existing claims on touched
            // banks end by `start`, so pushing in element order keeps
            // each bank's claim list sorted.
            let mut bank = base.rem_euclid(banks);
            for e in 0..n {
                self.bank.claims[bank as usize].push((q(start + z * e as f64), self.view));
                bank = (bank + step) % banks;
            }
        }
        // Only the last visit to each bank determines its recovery time.
        let first = n.saturating_sub(r);
        let mut bank = (base + stride * i64::from(first)).rem_euclid(banks);
        for e in first..n {
            self.bank.free[bank as usize] = q(start + z * e as f64 + self.config.bank_busy as f64);
            self.bank.owner[bank as usize] = self.view;
            bank = (bank + step) % banks;
        }
    }

    /// The number of distinct banks a stride touches before repeating —
    /// `banks / gcd(stride, banks)`.
    pub fn banks_touched(&self, stride_words: i64) -> u32 {
        let banks = u64::from(self.config.banks);
        let s = stride_words.unsigned_abs() % banks;
        let g = gcd(if s == 0 { banks } else { s }, banks);
        (banks / g) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contention::ContentionStream;

    fn quiet() -> MemorySystem {
        MemorySystem::new(MemConfig::c240().without_refresh())
    }

    #[test]
    fn unit_stride_streams_at_one_per_cycle() {
        let mut mem = quiet();
        let mut t = 0.0;
        for i in 0..256u64 {
            let (g, _) = mem.read(i, t);
            assert_eq!(g, t, "element {i} should not wait");
            t += 1.0;
        }
        assert_eq!(mem.wait_cycles(), 0.0);
    }

    #[test]
    fn same_bank_accesses_wait_bank_busy() {
        let mut mem = quiet();
        let (t0, _) = mem.read(0, 0.0);
        let (t1, _) = mem.read(32, t0 + 1.0); // same bank 0
        assert_eq!(t0, 0.0);
        assert_eq!(t1, 8.0);
    }

    #[test]
    fn stride_32_is_bank_limited() {
        let mut mem = quiet();
        let mut t = 0.0;
        let mut grants = Vec::new();
        for i in 0..16u64 {
            let (g, _) = mem.read(i * 32, t);
            grants.push(g);
            t = g + 1.0; // port wants one per cycle
        }
        // Steady state: one element per 8 cycles.
        let deltas: Vec<f64> = grants.windows(2).map(|w| w[1] - w[0]).collect();
        assert!(deltas.iter().all(|&d| d == 8.0), "{deltas:?}");
    }

    #[test]
    fn refresh_blocks_grants() {
        let mut mem = MemorySystem::new(MemConfig::c240());
        // Request at cycle 2 lands inside the refresh window [0, 8) and
        // pays the full 8-cycle stall (§3.2 of the paper).
        let (g, _) = mem.read(0, 2.0);
        assert_eq!(g, 10.0);
        // Request at 401 lands inside [400, 408).
        let (g2, _) = mem.read(1, 401.0);
        assert_eq!(g2, 409.0);
        // Requests between windows go through immediately.
        let (g3, _) = mem.read(2, 100.0);
        assert_eq!(g3, 100.0);
    }

    #[test]
    fn refresh_costs_about_two_percent() {
        let mut mem = MemorySystem::new(MemConfig::c240());
        let mut t = 0.0;
        let n = 40_000u64;
        for i in 0..n {
            let (g, _) = mem.read(i % 1000, t);
            t = g + 1.0;
        }
        let ideal = n as f64;
        let slowdown = t / ideal;
        assert!(
            (1.015..1.025).contains(&slowdown),
            "refresh slowdown {slowdown} should be ~1.02"
        );
    }

    #[test]
    fn write_then_read_roundtrips_data() {
        let mut mem = quiet();
        let t = mem.write(77, 3.25, 0.0);
        let (_, v) = mem.read(77, t + 8.0);
        assert_eq!(v, 3.25);
    }

    #[test]
    fn poke_peek() {
        let mut mem = quiet();
        mem.poke(5, -1.5);
        assert_eq!(mem.peek(5), -1.5);
        assert_eq!(mem.access_count(), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_panics() {
        let mem = MemorySystem::new(MemConfig::c240().with_words(16));
        let _ = mem.peek(16);
    }

    #[test]
    fn reset_timing_keeps_data() {
        let mut mem = quiet();
        mem.write(3, 9.0, 0.0);
        mem.reset_timing();
        assert_eq!(mem.peek(3), 9.0);
        assert_eq!(mem.access_count(), 0);
        let (g, _) = mem.read(3, 0.0);
        assert_eq!(g, 0.0);
    }

    #[test]
    fn contention_delays_grants() {
        let cfg = MemConfig::c240()
            .without_refresh()
            .with_contention(ContentionConfig::idle().with_stream(ContentionStream::unit(0)));
        let mut mem = MemorySystem::new(cfg);
        // The stream claims bank 0 during [0, 8).
        let (g, _) = mem.read(0, 0.0);
        assert_eq!(g, 8.0);
    }

    #[test]
    fn mixed_contention_slows_unit_stream() {
        let busy = MemConfig::c240()
            .without_refresh()
            .with_contention(ContentionConfig::mixed(3));
        let mut mem = MemorySystem::new(busy);
        let mut t = 0.0;
        let n = 10_000u64;
        for i in 0..n {
            let (g, _) = mem.read(i, t);
            t = g + 1.0;
        }
        let slowdown = t / n as f64;
        // §4.2: typical contention stretches a 40 ns access to 56–64 ns.
        assert!(
            (1.35..=1.65).contains(&slowdown),
            "mixed contention slowdown {slowdown} should be ~1.4-1.6"
        );
    }

    #[test]
    fn lockstep_contention_is_mild() {
        let busy = MemConfig::c240()
            .without_refresh()
            .with_contention(ContentionConfig::lockstep(3));
        let mut mem = MemorySystem::new(busy);
        let mut t = 0.0;
        let n = 40_000u64;
        for i in 0..n {
            let (g, _) = mem.read(i, t);
            t = g + 1.0;
        }
        let slowdown = t / n as f64;
        // §4.2: same-executable neighbors cost only 5-10%.
        assert!(
            (1.04..=1.12).contains(&slowdown),
            "lockstep contention slowdown {slowdown} should be ~1.05-1.10"
        );
    }

    #[test]
    fn banks_touched() {
        let mem = quiet();
        assert_eq!(mem.banks_touched(1), 32);
        assert_eq!(mem.banks_touched(2), 16);
        assert_eq!(mem.banks_touched(32), 1);
        assert_eq!(mem.banks_touched(25), 32);
        assert_eq!(mem.banks_touched(0), 1);
        assert_eq!(mem.banks_touched(-2), 16);
    }

    #[test]
    fn wait_statistics_accumulate() {
        let mut mem = quiet();
        let _ = mem.read(0, 0.0);
        let _ = mem.read(32, 0.0); // waits 8 cycles
        assert_eq!(mem.wait_cycles(), 8.0);
        assert_eq!(mem.access_count(), 2);
        assert_eq!(mem.wait_breakdown().bank_busy, 8.0);
    }

    #[test]
    fn wait_breakdown_sums_exactly_under_all_causes() {
        // Refresh + contention + bank recycling all active at once.
        let cfg = MemConfig::c240().with_contention(ContentionConfig::mixed(3));
        let mut mem = MemorySystem::new(cfg);
        let mut t = 0.0;
        for i in 0..5_000u64 {
            let addr = (i * 7) % 2000;
            let (g, _) = mem.read(addr, t);
            // Re-read the same bank one cycle after its grant: the bank
            // is still recycling, so this charges bank_busy.
            let (g2, _) = mem.read(addr, g + 1.0);
            t = g2 + 1.0;
        }
        let b = mem.wait_breakdown();
        // Exact, not approximate: every cursor bump was charged once.
        assert_eq!(b.total(), mem.wait_cycles());
        assert!(b.bank_busy > 0.0 && b.refresh > 0.0 && b.contention > 0.0);
        // Ablations zero their category.
        let mut quiet_mem = MemorySystem::new(MemConfig::c240().without_refresh());
        let mut t = 0.0;
        for i in 0..1_000u64 {
            let (g, _) = quiet_mem.read(i % 64, t);
            t = g + 1.0;
        }
        let qb = quiet_mem.wait_breakdown();
        assert_eq!(qb.refresh, 0.0);
        assert_eq!(qb.contention, 0.0);
        assert_eq!(qb.total(), quiet_mem.wait_cycles());
    }

    #[test]
    fn shared_bank_state_charges_foreign_claims_to_contention() {
        // Two views arbitrate over one BankState: B's wait behind A's
        // claim is contention; A's wait behind its own claim stays
        // bank-busy. The shared totals see both.
        let mut a = quiet();
        let mut b = quiet();
        b.set_view(1);
        let mut shared = BankState::new(32);

        a.swap_bank_state(&mut shared);
        let (g, _) = a.read(0, 0.0); // A claims bank 0 for [0, 8)
        assert_eq!(g, 0.0);
        a.swap_bank_state(&mut shared);

        b.swap_bank_state(&mut shared);
        let (g, _) = b.read(32, 1.0); // same bank, different view
        assert_eq!(g, 8.0);
        b.swap_bank_state(&mut shared);

        assert_eq!(b.wait_breakdown().contention, 7.0);
        assert_eq!(b.wait_breakdown().bank_busy, 0.0);
        assert_eq!(a.wait_breakdown().total(), 0.0);

        // A re-reading its own bank still charges bank busy.
        a.swap_bank_state(&mut shared);
        let (g, _) = a.read(64, 9.0); // bank 0, now owned by B until 16
        assert_eq!(g, 16.0);
        a.swap_bank_state(&mut shared);
        assert_eq!(a.wait_breakdown().contention, 7.0);

        // Per-view breakdowns sum to the shared machine-wide totals.
        let total = shared.wait_breakdown();
        let sum_bank = a.wait_breakdown().bank_busy + b.wait_breakdown().bank_busy;
        let sum_cont = a.wait_breakdown().contention + b.wait_breakdown().contention;
        assert_eq!(total.bank_busy, sum_bank);
        assert_eq!(total.contention, sum_cont);
        assert_eq!(shared.access_count(), a.access_count() + b.access_count());
        assert_eq!(shared.wait_cycles(), a.wait_cycles() + b.wait_cycles());
    }
}
