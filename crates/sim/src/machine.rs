//! Multi-CPU co-simulation: N CPUs, one shared set of memory banks.
//!
//! The C-240 is a four-CPU machine; the paper's §4.2 contention numbers
//! (lockstep neighbors cost 5–10%, unrelated programs 40–60%) describe
//! what one CPU loses when the other three compete for the same 32
//! banks. A [`Machine`] reproduces this by *co-simulating* the CPUs: it
//! owns the one shared [`BankState`] and steps the CPUs against it
//! instruction by instruction, so every grant search on any port sees
//! every other port's outstanding bank claims, and contention **emerges**
//! from the interleaved traffic instead of being injected by synthetic
//! [`ContentionStream`]s.
//!
//! # Arbitration and determinism
//!
//! CPUs are stepped one instruction at a time; before each step the
//! shared bank state is swapped into the stepping CPU's memory view
//! (O(1)) and swapped back out after. The driver always picks the
//! non-halted CPU with the **lowest issue clock, ties broken by lowest
//! CPU index** — a fixed, deterministic arbitration order that keeps the
//! interleaved grant streams as close to causal order as
//! per-instruction granularity allows. The whole co-simulation runs on
//! the calling thread; results are bit-reproducible and independent of
//! `MACS_THREADS` or any other environment.
//!
//! # Fast-forward
//!
//! Steady-state fast-forward keys on *one* CPU's periodic timing state;
//! with neighbors banging the same banks that state no longer determines
//! the future, so the [`Machine`] disables fast-forward whenever it
//! drives more than one CPU. With exactly one CPU it leaves fast-forward
//! to [`SimConfig::fast_forward`] and the whole path — begin, per
//! instruction step, finish — is the identical code the plain
//! [`Cpu::run_probed`] executes, so a 1-CPU machine is bit-identical to
//! the legacy single-CPU simulator (asserted in `tests/cosim.rs`).
//!
//! [`ContentionStream`]: c240_mem::ContentionStream
//!
//! # Example
//!
//! ```
//! use c240_isa::ProgramBuilder;
//! use c240_sim::{Machine, SimConfig};
//!
//! let mut b = ProgramBuilder::new();
//! b.set_vl_imm(128);
//! b.vload("a1", 0, "v0");
//! b.vstore("v0", "a2", 0);
//! b.halt();
//! let program = b.build()?;
//!
//! let mut machine = Machine::new(SimConfig::c240().with_cpus(4));
//! for i in 0..machine.cpus() {
//!     machine.cpu_mut(i).set_areg(1, 0);
//!     machine.cpu_mut(i).set_areg(2, 4096 * 8);
//! }
//! let programs = vec![program; 4];
//! let stats = machine.run(&programs)?;
//! assert_eq!(stats.len(), 4);
//! // All four ports' accesses hit the same banks.
//! assert_eq!(machine.shared().access_count(),
//!            stats.iter().map(|s| s.memory_accesses).sum::<u64>());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use c240_mem::BankState;
use c240_obs::{NoProbe, Probe};

use c240_isa::Program;

use crate::config::SimConfig;
use crate::cpu::Cpu;
use crate::error::SimError;
use crate::stats::RunStats;

/// N co-simulated CPUs sharing one set of memory banks.
#[derive(Debug, Clone)]
pub struct Machine {
    cpus: Vec<Cpu>,
    shared: BankState,
}

impl Machine {
    /// Builds a machine with [`SimConfig::cpus`] CPUs, each a full
    /// [`Cpu`] with its own data space and scalar cache, port `i`
    /// charging its bank claims to view id `i`.
    pub fn new(config: SimConfig) -> Self {
        let n = config.cpus.max(1);
        let banks = config.mem.banks;
        let cpus = (0..n)
            .map(|i| {
                let mut cpu = Cpu::new(config.clone());
                cpu.mem_mut().set_view(i);
                cpu
            })
            .collect();
        // More than one port: track claims individually so a grant
        // search can fit into the idle windows between another CPU's
        // bank rotations; a single "earliest free" cursor would serialize
        // whole vector instructions against each other. One port issues
        // requests in non-decreasing time order, where the plain cursor
        // grants identically and keeps fast-forward's state snapshot
        // valid.
        let shared = if n > 1 {
            BankState::multiport(banks)
        } else {
            BankState::new(banks)
        };
        Machine { cpus, shared }
    }

    /// Number of CPUs.
    pub fn cpus(&self) -> usize {
        self.cpus.len()
    }

    /// CPU `i` (workload setup: poke data, set registers).
    ///
    /// # Panics
    ///
    /// Panics if `i >= cpus()`.
    pub fn cpu(&self, i: usize) -> &Cpu {
        &self.cpus[i]
    }

    /// Mutable CPU `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= cpus()`.
    pub fn cpu_mut(&mut self, i: usize) -> &mut Cpu {
        &mut self.cpus[i]
    }

    /// The shared bank state after a run: machine-wide access/wait
    /// totals that the per-CPU [`RunStats`] sum to exactly.
    pub fn shared(&self) -> &BankState {
        &self.shared
    }

    /// Co-simulates one program per CPU to completion; returns each
    /// CPU's statistics in CPU order.
    ///
    /// # Errors
    ///
    /// The first CPU error ([`SimError::InstructionLimit`],
    /// [`SimError::FellOffEnd`]) aborts the whole co-simulation.
    ///
    /// # Panics
    ///
    /// Panics if `programs.len() != cpus()`.
    pub fn run(&mut self, programs: &[Program]) -> Result<Vec<RunStats>, SimError> {
        let mut probes: Vec<NoProbe> = self.cpus.iter().map(|_| NoProbe).collect();
        self.run_probed(programs, &mut probes)
    }

    /// Like [`Machine::run`], reporting each CPU's cycle attribution to
    /// the probe of the same index.
    ///
    /// # Errors
    ///
    /// Same as [`Machine::run`].
    ///
    /// # Panics
    ///
    /// Panics if `programs.len()` or `probes.len()` differs from
    /// `cpus()`.
    pub fn run_probed<P: Probe>(
        &mut self,
        programs: &[Program],
        probes: &mut [P],
    ) -> Result<Vec<RunStats>, SimError> {
        let n = self.cpus.len();
        assert_eq!(programs.len(), n, "one program per CPU");
        assert_eq!(probes.len(), n, "one probe per CPU");
        let allow_ff = n == 1;
        self.shared.reset();
        let mut cursors = Vec::with_capacity(n);
        for (cpu, probe) in self.cpus.iter_mut().zip(probes.iter_mut()) {
            cursors.push(cpu.begin_run(probe, allow_ff));
        }
        loop {
            // Fixed arbitration order: lowest issue clock, then lowest
            // CPU index. Deterministic — no threads, no host state.
            let mut pick = None;
            for (i, cursor) in cursors.iter().enumerate() {
                if cursor.halted() {
                    continue;
                }
                let better = match pick {
                    None => true,
                    Some(j) => self.cpus[i].issue_clock() < self.cpus[j as usize].issue_clock(),
                };
                if better {
                    pick = Some(i as u32);
                }
            }
            let Some(i) = pick else {
                break;
            };
            let i = i as usize;
            // Every future request starts at or after the arbitration
            // winner's issue clock (it holds the minimum); claims well
            // behind it are dead weight. The margin generously covers
            // any pipeline-internal earliest below the issue clock.
            self.shared.set_horizon(self.cpus[i].issue_clock() - 512.0);
            self.cpus[i].mem_mut().swap_bank_state(&mut self.shared);
            let stepped = self.cpus[i].step_one(&programs[i], &mut probes[i], &mut cursors[i]);
            // Swap the shared state back out before propagating an error
            // so the machine stays consistent either way.
            self.cpus[i].mem_mut().swap_bank_state(&mut self.shared);
            stepped?;
        }
        Ok(self
            .cpus
            .iter_mut()
            .zip(probes.iter_mut())
            .map(|(cpu, probe)| cpu.finish_run(probe))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use c240_isa::ProgramBuilder;

    fn stream_program(iters: i64) -> Program {
        // A strip-mined unit-stride copy loop: load 128, store 128,
        // advance, decrement, branch back.
        let mut b = ProgramBuilder::new();
        b.mov_int(iters, "s0");
        b.set_vl_imm(128);
        b.label("L");
        b.vload("a1", 0, "v0");
        b.vstore("v0", "a2", 0);
        b.int_op_imm("add", 128 * 8, "a1");
        b.int_op_imm("add", 128 * 8, "a2");
        b.int_op_imm("sub", 1, "s0");
        b.cmp_imm("lt", 0, "s0");
        b.branch_true("L");
        b.halt();
        b.build().expect("valid program")
    }

    fn setup(cpu: &mut Cpu) {
        cpu.set_areg(1, 0);
        cpu.set_areg(2, 64 * 1024 * 8);
    }

    #[test]
    fn single_cpu_machine_matches_plain_cpu() {
        let program = stream_program(8);
        let mut plain = Cpu::new(SimConfig::c240());
        setup(&mut plain);
        let expect = plain.run(&program).expect("plain run");

        let mut machine = Machine::new(SimConfig::c240().with_cpus(1));
        setup(machine.cpu_mut(0));
        let got = machine
            .run(std::slice::from_ref(&program))
            .expect("co-sim run");
        assert_eq!(got.len(), 1);
        assert_eq!(got[0], expect);
    }

    #[test]
    fn four_cpus_slow_each_other_down() {
        let program = stream_program(8);
        let mut solo = Machine::new(SimConfig::c240().with_cpus(1));
        setup(solo.cpu_mut(0));
        let alone = solo.run(std::slice::from_ref(&program)).expect("solo")[0].cycles;

        let mut machine = Machine::new(SimConfig::c240().with_cpus(4));
        for i in 0..4 {
            setup(machine.cpu_mut(i));
        }
        let programs = vec![program; 4];
        let stats = machine.run(&programs).expect("co-sim");
        for s in &stats {
            assert!(s.cycles >= alone, "sharing banks cannot speed a CPU up");
        }
        // Contention must show up in the shared breakdown, and the
        // per-CPU views must sum to it exactly.
        let shared = machine.shared();
        assert!(shared.wait_breakdown().contention > 0.0);
        let view_sum: f64 = stats.iter().map(|s| s.memory_wait_cycles).sum();
        assert_eq!(shared.wait_cycles(), view_sum);
        let acc_sum: u64 = stats.iter().map(|s| s.memory_accesses).sum();
        assert_eq!(shared.access_count(), acc_sum);
    }

    #[test]
    fn co_simulation_is_deterministic() {
        let program = stream_program(6);
        let run = || {
            let mut machine = Machine::new(SimConfig::c240().with_cpus(3));
            for i in 0..3 {
                setup(machine.cpu_mut(i));
            }
            let programs = vec![program.clone(); 3];
            machine.run(&programs).expect("co-sim")
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "one program per CPU")]
    fn program_count_must_match() {
        let mut machine = Machine::new(SimConfig::c240().with_cpus(2));
        let _ = machine.run(&[]);
    }
}
