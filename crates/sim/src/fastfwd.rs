//! Steady-state fast-forward: detect that a loop's *timing* state has
//! become exactly periodic, then skip whole periods analytically while
//! executing only the functional (data) semantics of the skipped
//! iterations.
//!
//! # How detection works
//!
//! Every taken backward branch is a potential loop boundary. At each
//! arrival at a loop head the CPU computes a cheap *key* — vector
//! length, T-flag, active register-pair claims, and the clock phase
//! modulo the refresh period and the contention pattern period. When the
//! key repeats, the iteration count between the repeats is a candidate
//! period `m`, and the detector runs a three-snapshot protocol:
//!
//! 1. **Measure**: snapshot the full timing state `S0` now and `S1`
//!    after `m` more arrivals; require every per-field delta to be an
//!    integer number of *ticks* (1/20 cycle) between two canonical grid
//!    values ([`grid_exact_delta`]).
//! 2. **Confirm**: record the executed instruction path for one more
//!    period and snapshot `S2`; require `S2−S1` to equal `S1−S0`
//!    bitwise, field for field (including memory-system and probe
//!    counter deltas).
//! 3. **Warp**: replay the recorded path *functionally* (registers,
//!    memory data, cache tags — no timing) as long as the program
//!    follows it exactly, then translate every timing field by `k`
//!    periods in tick arithmetic and add `k` times the per-period
//!    deltas to every counter.
//!
//! # Why this is bit-exact
//!
//! Every timing parameter of the machine — including the 1.35-cycle
//! reduction element rate — is a multiple of 1/20 cycle, and the
//! simulator quantizes every stored timestamp to the canonical `f64` of
//! its 1/20 grid point ([`c240_isa::timing::quantize`]). A stored field
//! is therefore a pure function of its integer tick count, tick deltas
//! between snapshots are exact integer `f64` arithmetic below 2⁵³, and
//! [`translate_ticks`] reproduces bitwise the value the naive run would
//! have stored after `k` more periods. The key's phase components
//! guarantee the period's tick delta is a multiple of the refresh
//! period and of the contention pattern period, so modular clock
//! arithmetic is preserved too. Anything outside these preconditions —
//! a field that is somehow not canonical, a changed counter layout, a
//! changed instruction path or bank-residue pattern — fails a check and
//! the run falls back to exact element stepping, which is always
//! correct: missed quantization can only cost engagement, never
//! exactness.

use c240_mem::WaitBreakdown;

/// Per-instruction verification payload recorded for one loop period.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum StepCheck {
    /// No timing-relevant operands beyond the instruction itself.
    Plain,
    /// Vector memory op: first-element bank residue, stride and VL must
    /// repeat for the recorded grant pattern to stay valid.
    VecMem { residue: u32, stride: i64, vl: u32 },
    /// Scalar memory op: cache hit/miss outcome (and bank residue for
    /// accesses that reach memory) must repeat.
    SMem {
        residue: u32,
        hit: bool,
        store: bool,
    },
}

/// One executed instruction of the recorded period.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Step {
    pub pc: u32,
    pub check: StepCheck,
}

/// A full snapshot of everything that must evolve periodically.
#[derive(Debug, Clone)]
pub(crate) struct Snapshot {
    /// Discrete state that must match *exactly* between periods.
    pub key: Vec<u64>,
    /// Every `f64` timing field, in the CPU's canonical visit order.
    pub fields: Vec<f64>,
    pub mem_accesses: u64,
    pub mem_waited: f64,
    pub mem_breakdown: WaitBreakdown,
    pub probe: Vec<f64>,
    /// Instructions executed since the start of the run.
    pub executed: u64,
}

/// The verified per-period deltas plus the recorded instruction path.
/// All `f64` deltas are in integer *ticks* (1/20 cycle); counts are in
/// their native units.
#[derive(Debug, Clone)]
pub(crate) struct PeriodRecord {
    pub steps: Vec<Step>,
    pub field_deltas: Vec<f64>,
    pub mem_accesses: u64,
    pub mem_waited: f64,
    pub mem_breakdown: WaitBreakdown,
    pub probe_deltas: Vec<f64>,
    pub instructions: u64,
}

/// Largest tick magnitude a timing field may reach after translation
/// while integer `f64` arithmetic is still exact (with margin below 2⁵³).
const MAX_EXACT: f64 = 4.0e15;

use c240_isa::timing::TICKS_PER_CYCLE;

/// The per-period delta between two timing values, in integer *ticks*
/// (1/20 cycle, the machine's timing quantum), or `None` when the pair
/// cannot be translated exactly.
///
/// Both endpoints must be the *canonical* `f64` for their grid point
/// (which [`c240_isa::timing::quantize`] guarantees for every stored
/// timing field). Canonical endpoints make the value a pure function of
/// its integer tick count, so `translate_ticks(x, d, k)` reproduces the
/// naive run's value after `k` periods bitwise.
fn grid_exact_delta(x: f64, y: f64) -> Option<f64> {
    let tx = (x * TICKS_PER_CYCLE).round();
    let ty = (y * TICKS_PER_CYCLE).round();
    if tx.abs() > MAX_EXACT || ty.abs() > MAX_EXACT {
        return None;
    }
    if (tx / TICKS_PER_CYCLE).to_bits() != x.to_bits()
        || (ty / TICKS_PER_CYCLE).to_bits() != y.to_bits()
    {
        return None;
    }
    Some(ty - tx)
}

/// Translates the canonical grid value `x` by `k` periods of `d_ticks`
/// ticks each. Exact: the tick arithmetic is integer `f64` below 2⁵³,
/// and the final division re-canonicalizes.
pub(crate) fn translate_ticks(x: f64, d_ticks: f64, k: f64) -> f64 {
    ((x * TICKS_PER_CYCLE).round() + k * d_ticks) / TICKS_PER_CYCLE
}

/// Computes the per-period deltas between two snapshots, or `None` when
/// the pair cannot prove exact periodicity (key mismatch, non-integer or
/// non-translatable delta, counter-set changes).
pub(crate) fn diff_snapshots(a: &Snapshot, b: &Snapshot) -> Option<PeriodRecord> {
    if a.key != b.key || a.fields.len() != b.fields.len() || a.probe.len() != b.probe.len() {
        return None;
    }
    let mut field_deltas = Vec::with_capacity(a.fields.len());
    for (&x, &y) in a.fields.iter().zip(&b.fields) {
        field_deltas.push(grid_exact_delta(x, y)?);
    }
    // fields[0] is the clock: its tick delta must be strictly positive.
    if *field_deltas.first()? <= 0.0 {
        return None;
    }
    let mut probe_deltas = Vec::with_capacity(a.probe.len());
    for (&x, &y) in a.probe.iter().zip(&b.probe) {
        probe_deltas.push(grid_exact_delta(x, y)?);
    }
    let mem_waited = grid_exact_delta(a.mem_waited, b.mem_waited)?;
    let mem_breakdown = WaitBreakdown {
        bank_busy: grid_exact_delta(a.mem_breakdown.bank_busy, b.mem_breakdown.bank_busy)?,
        refresh: grid_exact_delta(a.mem_breakdown.refresh, b.mem_breakdown.refresh)?,
        contention: grid_exact_delta(a.mem_breakdown.contention, b.mem_breakdown.contention)?,
    };
    Some(PeriodRecord {
        steps: Vec::new(),
        field_deltas,
        mem_accesses: b.mem_accesses.checked_sub(a.mem_accesses)?,
        mem_waited,
        mem_breakdown,
        probe_deltas,
        instructions: b.executed.checked_sub(a.executed)?,
    })
}

fn bits_equal(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Whether two period measurements agree bitwise (same deltas, same
/// counters, same path length).
pub(crate) fn periods_agree(a: &PeriodRecord, b: &PeriodRecord) -> bool {
    bits_equal(&a.field_deltas, &b.field_deltas)
        && bits_equal(&a.probe_deltas, &b.probe_deltas)
        && a.mem_accesses == b.mem_accesses
        && a.mem_waited.to_bits() == b.mem_waited.to_bits()
        && a.mem_breakdown.bank_busy.to_bits() == b.mem_breakdown.bank_busy.to_bits()
        && a.mem_breakdown.refresh.to_bits() == b.mem_breakdown.refresh.to_bits()
        && a.mem_breakdown.contention.to_bits() == b.mem_breakdown.contention.to_bits()
        && a.instructions == b.instructions
}

/// FNV-1a over 64-bit words — cheap, deterministic, dependency-free.
pub(crate) fn hash_words(words: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &w in words {
        for b in w.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    }
    h
}

#[derive(Debug, Clone, PartialEq)]
enum Phase {
    Idle,
    /// Waiting for arrival number `target` at `loop_pc` to take `S1`.
    Measure {
        target: u64,
    },
    /// Recording the path; waiting for arrival `target` to take `S2`.
    Confirm {
        target: u64,
    },
}

/// Detection state machine. Owned by the CPU; one candidate in flight.
#[derive(Debug, Clone)]
pub(crate) struct FastForward {
    pub enabled: bool,
    dead: bool,
    failures: u32,
    phase: Phase,
    loop_pc: usize,
    period_m: u64,
    base: Option<Snapshot>,
    first: Option<PeriodRecord>,
    pub record: Option<PeriodRecord>,
    steps: Vec<Step>,
    recording: bool,
    /// Arrival counts per branch target.
    counts: std::collections::HashMap<usize, u64>,
    /// Per branch target: key hash → most recent arrival count with that
    /// key. O(1) per arrival; overwriting keeps the most recent match,
    /// which yields the smallest (innermost) candidate period.
    history: std::collections::HashMap<usize, std::collections::HashMap<u64, u64>>,
    /// Failed candidates per branch target. A loop head whose key
    /// repeats without its timing state being periodic (phase
    /// collisions under refresh are common in short strip loops) gets
    /// blacklisted after a few attempts so it cannot starve a detectable
    /// outer loop of the candidate slot or burn the global budget.
    failed: std::collections::HashMap<usize, u32>,
}

/// Total failed candidates before detection is disabled for the run.
const FAIL_BUDGET: u32 = 256;
/// Failed candidates at a single loop head before that head is ignored.
const PC_FAIL_BUDGET: u32 = 4;
// The refresh phase realigns within 20 · 400 = 8000 arrivals in the
// worst case (one-tick-per-period drift), so admit periods that long.
const MAX_PERIOD_ITERS: u64 = 8192;
const MAX_PERIOD_STEPS: usize = 1 << 17;
const HIST_CAP: usize = 8192;
const MAX_TRACKED_PCS: usize = 16;

impl FastForward {
    pub fn new() -> Self {
        FastForward {
            enabled: false,
            dead: false,
            failures: 0,
            phase: Phase::Idle,
            loop_pc: 0,
            period_m: 0,
            base: None,
            first: None,
            record: None,
            steps: Vec::new(),
            recording: false,
            counts: std::collections::HashMap::new(),
            history: std::collections::HashMap::new(),
            failed: std::collections::HashMap::new(),
        }
    }

    pub fn active(&self) -> bool {
        self.enabled && !self.dead
    }

    pub fn is_recording(&self) -> bool {
        self.recording
    }

    pub fn push_step(&mut self, step: Step) {
        if self.steps.len() >= MAX_PERIOD_STEPS {
            self.abort_candidate();
            return;
        }
        self.steps.push(step);
    }

    fn abort_candidate(&mut self) {
        let was_candidate = !matches!(self.phase, Phase::Idle);
        self.phase = Phase::Idle;
        self.base = None;
        self.first = None;
        self.steps = Vec::new();
        self.recording = false;
        self.failures += 1;
        if was_candidate {
            let pc_failures = self.failed.entry(self.loop_pc).or_insert(0);
            *pc_failures += 1;
            if *pc_failures >= PC_FAIL_BUDGET {
                // Stop even hashing keys for this head.
                self.history.remove(&self.loop_pc);
            }
        }
        if self.failures >= FAIL_BUDGET {
            self.dead = true;
            self.counts = std::collections::HashMap::new();
            self.history = std::collections::HashMap::new();
        }
    }

    /// Registers an arrival at branch target `pc` with key hash `h`.
    /// Returns the candidate period when a measurement should start (the
    /// caller then supplies the base snapshot via [`Self::begin`]).
    pub fn arrival(&mut self, pc: usize, h: u64) -> ArrivalAction {
        let count = {
            let c = self.counts.entry(pc).or_insert(0);
            *c += 1;
            *c
        };
        match self.phase {
            Phase::Idle => {
                if self.failed.get(&pc).is_some_and(|&f| f >= PC_FAIL_BUDGET) {
                    return ArrivalAction::Nothing;
                }
                let candidate =
                    if self.history.len() < MAX_TRACKED_PCS || self.history.contains_key(&pc) {
                        let seen = self.history.entry(pc).or_default();
                        let m = seen
                            .get(&h)
                            .map(|&rc| count - rc)
                            .filter(|&m| (1..=MAX_PERIOD_ITERS).contains(&m));
                        if seen.len() >= HIST_CAP {
                            // Entries older than the longest admissible period
                            // can never produce a candidate again.
                            seen.retain(|_, &mut rc| count - rc < MAX_PERIOD_ITERS);
                        }
                        seen.insert(h, count);
                        m
                    } else {
                        None
                    };
                match candidate {
                    Some(m) => {
                        self.loop_pc = pc;
                        self.period_m = m;
                        self.phase = Phase::Measure { target: count + m };
                        ArrivalAction::Snapshot(SnapshotWhy::Base)
                    }
                    None => ArrivalAction::Nothing,
                }
            }
            Phase::Measure { target } if pc == self.loop_pc && count == target => {
                ArrivalAction::Snapshot(SnapshotWhy::Measure)
            }
            Phase::Confirm { target } if pc == self.loop_pc && count == target => {
                ArrivalAction::Snapshot(SnapshotWhy::Confirm)
            }
            _ => ArrivalAction::Nothing,
        }
    }

    /// Installs the base snapshot after [`ArrivalAction::Snapshot`]
    /// with [`SnapshotWhy::Base`].
    pub fn begin(&mut self, snap: Snapshot) {
        self.base = Some(snap);
    }

    /// Consumes the `S1` snapshot; on success recording starts.
    pub fn measure(&mut self, snap: Snapshot) {
        let Some(base) = self.base.take() else {
            self.abort_candidate();
            return;
        };
        match diff_snapshots(&base, &snap) {
            Some(rec) => {
                self.first = Some(rec);
                self.base = Some(snap);
                self.steps = Vec::new();
                self.recording = true;
                let count = self.counts[&self.loop_pc];
                self.phase = Phase::Confirm {
                    target: count + self.period_m,
                };
            }
            None => self.abort_candidate(),
        }
    }

    /// Consumes the `S2` snapshot; returns true when the period is
    /// confirmed and [`Self::record`] holds the verified record.
    pub fn confirm(&mut self, snap: Snapshot) -> bool {
        self.recording = false;
        let (Some(base), Some(first)) = (self.base.take(), self.first.take()) else {
            self.abort_candidate();
            return false;
        };
        match diff_snapshots(&base, &snap) {
            Some(mut rec) if periods_agree(&first, &rec) => {
                rec.steps = std::mem::take(&mut self.steps);
                self.record = Some(rec);
                self.phase = Phase::Idle;
                true
            }
            _ => {
                self.abort_candidate();
                false
            }
        }
    }

    /// Clears all detection state after a warp (successful or not) so a
    /// later loop can be detected afresh.
    pub fn finish_warp(&mut self) {
        self.phase = Phase::Idle;
        self.base = None;
        self.first = None;
        self.record = None;
        self.steps = Vec::new();
        self.recording = false;
        self.counts = std::collections::HashMap::new();
        self.history = std::collections::HashMap::new();
    }
}

/// What the CPU should do at a loop-head arrival.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum ArrivalAction {
    Nothing,
    Snapshot(SnapshotWhy),
}

/// Which protocol step the requested snapshot feeds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum SnapshotWhy {
    Base,
    Measure,
    Confirm,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(fields: Vec<f64>, executed: u64) -> Snapshot {
        Snapshot {
            key: vec![1, 2],
            fields,
            mem_accesses: 10 * executed,
            mem_waited: executed as f64,
            mem_breakdown: WaitBreakdown::default(),
            probe: vec![],
            executed,
        }
    }

    #[test]
    fn integer_deltas_accepted_in_ticks() {
        let a = snap(vec![100.0, 5.0, 0.0], 50);
        let b = snap(vec![632.0, 537.0, 0.0], 63);
        let rec = diff_snapshots(&a, &b).unwrap();
        assert_eq!(rec.field_deltas, vec![10640.0, 10640.0, 0.0]);
        assert_eq!(rec.instructions, 13);
        assert_eq!(rec.mem_accesses, 130);
    }

    #[test]
    fn grid_deltas_accepted() {
        // Half cycles and 1.35-cycle reduction steps are grid points.
        let a = snap(vec![100.0, 5.0], 1);
        let b = snap(vec![637.5, 542.5], 2);
        let rec = diff_snapshots(&a, &b).unwrap();
        assert_eq!(rec.field_deltas, vec![10750.0, 10750.0]);
        let a = snap(vec![0.0], 1);
        let b = snap(vec![1.35], 2);
        assert_eq!(diff_snapshots(&a, &b).unwrap().field_deltas, vec![27.0]);
    }

    #[test]
    fn off_grid_value_rejected() {
        let a = snap(vec![100.0], 1);
        let b = snap(vec![150.51], 2);
        assert!(diff_snapshots(&a, &b).is_none());
    }

    #[test]
    fn non_canonical_grid_value_rejected() {
        // 0.1 + 0.2 is near the 0.3 grid point but not its canonical
        // representation; tick translation could not reproduce it.
        let drifted: f64 = 0.1 + 0.2;
        assert_ne!(drifted.to_bits(), 0.3f64.to_bits());
        let a = snap(vec![0.0], 1);
        let b = snap(vec![drifted], 2);
        assert!(diff_snapshots(&a, &b).is_none());
        // translate_ticks on canonical inputs lands on canonical outputs.
        assert_eq!(translate_ticks(0.3, 27.0, 2.0), 3.0);
        assert_eq!(translate_ticks(0.0, 6.0, 1.0), 0.3);
    }

    #[test]
    fn key_mismatch_rejected() {
        let a = snap(vec![100.0], 1);
        let mut b = snap(vec![500.0], 2);
        b.key = vec![9];
        assert!(diff_snapshots(&a, &b).is_none());
    }

    #[test]
    fn non_advancing_clock_rejected() {
        let a = snap(vec![100.0], 1);
        let b = snap(vec![100.0], 2);
        assert!(diff_snapshots(&a, &b).is_none());
    }

    #[test]
    fn periods_agree_is_bitwise() {
        let a = snap(vec![0.0, 1.0], 0);
        let b = snap(vec![532.0, 533.0], 10);
        let c = snap(vec![1064.0, 1065.0], 20);
        let r1 = diff_snapshots(&a, &b).unwrap();
        let r2 = diff_snapshots(&b, &c).unwrap();
        assert!(periods_agree(&r1, &r2));
    }

    #[test]
    fn state_machine_full_protocol() {
        let mut ff = FastForward::new();
        ff.enabled = true;
        // Two arrivals with the same key hash → candidate with m = 1.
        assert_eq!(ff.arrival(7, 42), ArrivalAction::Nothing);
        assert_eq!(
            ff.arrival(7, 42),
            ArrivalAction::Snapshot(SnapshotWhy::Base)
        );
        ff.begin(snap(vec![100.0], 10));
        assert_eq!(
            ff.arrival(7, 42),
            ArrivalAction::Snapshot(SnapshotWhy::Measure)
        );
        ff.measure(snap(vec![632.0], 20));
        assert!(ff.is_recording());
        ff.push_step(Step {
            pc: 7,
            check: StepCheck::Plain,
        });
        assert_eq!(
            ff.arrival(7, 42),
            ArrivalAction::Snapshot(SnapshotWhy::Confirm)
        );
        assert!(ff.confirm(snap(vec![1164.0], 30)));
        let rec = ff.record.clone().unwrap();
        assert_eq!(rec.field_deltas, vec![10640.0]);
        assert_eq!(rec.steps.len(), 1);
    }

    /// Drives one failing candidate (off-grid measure value) at `pc`.
    fn fail_candidate_at(ff: &mut FastForward, pc: usize) {
        loop {
            if let ArrivalAction::Snapshot(SnapshotWhy::Base) = ff.arrival(pc, 1) {
                break;
            }
        }
        ff.begin(snap(vec![100.0], 1));
        loop {
            if let ArrivalAction::Snapshot(SnapshotWhy::Measure) = ff.arrival(pc, 1) {
                break;
            }
        }
        // Off-grid value → fail.
        ff.measure(snap(vec![150.51], 2));
    }

    #[test]
    fn noisy_loop_head_is_blacklisted_but_others_still_try() {
        let mut ff = FastForward::new();
        ff.enabled = true;
        for _ in 0..PC_FAIL_BUDGET {
            assert!(ff.active());
            fail_candidate_at(&mut ff, 3);
        }
        // pc 3 is blacklisted: repeating keys no longer start candidates.
        for _ in 0..16 {
            assert_eq!(ff.arrival(3, 1), ArrivalAction::Nothing);
        }
        assert!(ff.active(), "one noisy head must not kill detection");
        // A different head can still become a candidate.
        assert_eq!(ff.arrival(9, 5), ArrivalAction::Nothing);
        assert_eq!(ff.arrival(9, 5), ArrivalAction::Snapshot(SnapshotWhy::Base));
    }

    #[test]
    fn global_fail_budget_kills_detection() {
        let mut ff = FastForward::new();
        ff.enabled = true;
        // Exhaust one head after another: each blacklisted head frees
        // its tracking slot, so fresh heads keep failing until the
        // global budget ends detection for the whole run.
        let mut pc = 0usize;
        while ff.active() {
            for _ in 0..PC_FAIL_BUDGET {
                if !ff.active() {
                    break;
                }
                fail_candidate_at(&mut ff, pc);
            }
            pc += 1;
            assert!(pc < 1_000, "global budget never tripped");
        }
        assert!(!ff.active());
    }

    #[test]
    fn hash_is_stable_and_sensitive() {
        assert_eq!(hash_words(&[1, 2, 3]), hash_words(&[1, 2, 3]));
        assert_ne!(hash_words(&[1, 2, 3]), hash_words(&[1, 2, 4]));
    }
}
