//! Fallible validation of a full [`SimConfig`].
//!
//! The sweep server builds configurations from untrusted wire input, so
//! every invariant the simulator used to protect with an `assert!` or a
//! debug assertion has a typed, recoverable form here: a [`ConfigError`]
//! names the violated constraint instead of tearing down the process.
//! Programmatic construction keeps the panicking builders
//! ([`SimConfig::with_cpus`] and friends) as compatibility wrappers over
//! the new `try_` constructors.

use std::error::Error;
use std::fmt;

use c240_isa::timing::TimingClass;
use c240_mem::MemConfigError;

use crate::config::SimConfig;

/// Largest accepted CPU count for a co-sim [`crate::Machine`]. The real
/// C-240 has four; the cap bounds the per-CPU data-space allocation a
/// hostile sweep point could request.
pub const MAX_CPUS: u32 = 16;

/// A constraint violation in a [`SimConfig`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ConfigError {
    /// `cpus == 0`: a machine needs at least one CPU.
    ZeroCpus,
    /// `cpus` beyond [`MAX_CPUS`].
    TooManyCpus {
        /// The offending count.
        cpus: u32,
    },
    /// `max_instructions == 0`: the runaway-loop guard would reject
    /// every program immediately.
    ZeroMaxInstructions,
    /// A scalar-timing field that is NaN, infinite, or negative.
    BadScalarTiming {
        /// Name of the offending [`crate::ScalarTiming`] field.
        field: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A vector-timing parameter (X/Y/Z/B) that is NaN, infinite, or
    /// negative.
    BadVectorTiming {
        /// The timing class the parameter belongs to.
        class: TimingClass,
        /// Which of X/Y/Z/B is bad.
        field: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A memory-side constraint (banks, refresh, data space, contention
    /// streams, scalar cache).
    Mem(MemConfigError),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroCpus => write!(f, "a machine needs at least one CPU"),
            ConfigError::TooManyCpus { cpus } => {
                write!(f, "CPU count {cpus} exceeds the maximum of {MAX_CPUS}")
            }
            ConfigError::ZeroMaxInstructions => {
                write!(f, "the instruction limit must be positive")
            }
            ConfigError::BadScalarTiming { field, value } => {
                write!(
                    f,
                    "scalar timing field `{field}` is {value}; it must be finite and >= 0"
                )
            }
            ConfigError::BadVectorTiming {
                class,
                field,
                value,
            } => write!(
                f,
                "vector timing parameter {field} of class {class:?} is {value}; \
                 it must be finite and >= 0"
            ),
            ConfigError::Mem(e) => write!(f, "memory configuration: {e}"),
        }
    }
}

impl Error for ConfigError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ConfigError::Mem(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MemConfigError> for ConfigError {
    fn from(e: MemConfigError) -> Self {
        ConfigError::Mem(e)
    }
}

impl SimConfig {
    /// Checks every constraint a simulatable configuration needs. The
    /// sweep server calls this on every wire-supplied point before a
    /// [`crate::Cpu`] or [`crate::Machine`] is built; the constructors'
    /// internal `assert!`s remain as backstops for programmatic misuse.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint as a [`ConfigError`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.cpus == 0 {
            return Err(ConfigError::ZeroCpus);
        }
        if self.cpus > MAX_CPUS {
            return Err(ConfigError::TooManyCpus { cpus: self.cpus });
        }
        if self.max_instructions == 0 {
            return Err(ConfigError::ZeroMaxInstructions);
        }
        let scalar = [
            ("issue", self.scalar.issue),
            ("branch_taken_penalty", self.scalar.branch_taken_penalty),
            ("int_latency", self.scalar.int_latency),
            ("fp_add_latency", self.scalar.fp_add_latency),
            ("fp_mul_latency", self.scalar.fp_mul_latency),
            ("fp_div_latency", self.scalar.fp_div_latency),
        ];
        for (field, value) in scalar {
            if !value.is_finite() || value < 0.0 {
                return Err(ConfigError::BadScalarTiming { field, value });
            }
        }
        for class in TimingClass::all() {
            let t = self.timing.get(class);
            for (field, value) in [("X", t.x), ("Y", t.y), ("Z", t.z), ("B", t.b)] {
                if !value.is_finite() || value < 0.0 {
                    return Err(ConfigError::BadVectorTiming {
                        class,
                        field,
                        value,
                    });
                }
            }
        }
        self.mem.validate()?;
        self.cache.validate()?;
        Ok(())
    }

    /// Fallible form of [`SimConfig::with_cpus`].
    ///
    /// # Errors
    ///
    /// Rejects a zero or oversized CPU count.
    pub fn try_with_cpus(mut self, n: u32) -> Result<Self, ConfigError> {
        if n == 0 {
            return Err(ConfigError::ZeroCpus);
        }
        if n > MAX_CPUS {
            return Err(ConfigError::TooManyCpus { cpus: n });
        }
        self.cpus = n;
        Ok(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use c240_isa::timing::VectorTiming;

    #[test]
    fn c240_default_validates() {
        assert_eq!(SimConfig::c240().validate(), Ok(()));
        assert_eq!(
            SimConfig::c240().with_cpus(4).validate(),
            Ok(()),
            "the real machine's four CPUs are valid"
        );
    }

    #[test]
    fn cpu_and_instruction_limits_are_checked() {
        let mut c = SimConfig::c240();
        c.cpus = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroCpus));
        c.cpus = MAX_CPUS + 1;
        assert_eq!(
            c.validate(),
            Err(ConfigError::TooManyCpus { cpus: MAX_CPUS + 1 })
        );
        let mut c = SimConfig::c240();
        c.max_instructions = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroMaxInstructions));
    }

    #[test]
    fn timing_fields_must_be_finite_and_nonnegative() {
        let mut c = SimConfig::c240();
        c.scalar.fp_div_latency = f64::NAN;
        assert!(matches!(
            c.validate(),
            Err(ConfigError::BadScalarTiming {
                field: "fp_div_latency",
                ..
            })
        ));
        let mut c = SimConfig::c240();
        let mut t = c.timing.get(TimingClass::Mul);
        t.z = -1.0;
        c.timing.set(TimingClass::Mul, t);
        let err = c.validate().unwrap_err();
        assert!(matches!(
            err,
            ConfigError::BadVectorTiming {
                class: TimingClass::Mul,
                field: "Z",
                ..
            }
        ));
        assert!(err.to_string().contains("Mul"));
        let mut c = SimConfig::c240();
        c.timing.set(
            TimingClass::Load,
            VectorTiming {
                x: f64::INFINITY,
                y: 0.0,
                z: 1.0,
                b: 0.0,
            },
        );
        assert!(matches!(
            c.validate(),
            Err(ConfigError::BadVectorTiming { field: "X", .. })
        ));
    }

    #[test]
    fn memory_errors_are_wrapped_with_source() {
        let mut c = SimConfig::c240();
        c.mem.banks = 0;
        let err = c.validate().unwrap_err();
        assert_eq!(err, ConfigError::Mem(MemConfigError::ZeroBanks));
        assert!(Error::source(&err).is_some());
        let mut c = SimConfig::c240();
        c.cache.lines = 0;
        assert_eq!(
            c.validate(),
            Err(ConfigError::Mem(MemConfigError::ZeroCacheLines))
        );
    }

    #[test]
    fn try_with_cpus_matches_wrapper() {
        assert_eq!(SimConfig::c240().try_with_cpus(2).unwrap().cpus, 2);
        assert_eq!(
            SimConfig::c240().try_with_cpus(0),
            Err(ConfigError::ZeroCpus)
        );
        assert_eq!(SimConfig::c240().with_cpus(2).cpus, 2);
    }
}
