//! Fallible validation of a full [`SimConfig`].
//!
//! The sweep server builds configurations from untrusted wire input, so
//! every invariant the simulator used to protect with an `assert!` or a
//! debug assertion has a typed, recoverable form here: a [`ConfigError`]
//! names the violated constraint instead of tearing down the process.
//! Programmatic construction keeps the panicking builders
//! ([`SimConfig::with_cpus`] and friends) as compatibility wrappers over
//! the new `try_` constructors.

use std::error::Error;
use std::fmt;

use c240_isa::timing::TimingClass;
use c240_mem::MemConfigError;

use crate::config::SimConfig;

/// Largest accepted CPU count for a co-sim [`crate::Machine`]. The real
/// C-240 has four; the cap bounds the per-CPU data-space allocation a
/// hostile sweep point could request.
pub const MAX_CPUS: u32 = 16;

/// A constraint violation in a [`SimConfig`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ConfigError {
    /// `cpus == 0`: a machine needs at least one CPU.
    ZeroCpus,
    /// `cpus` beyond [`MAX_CPUS`].
    TooManyCpus {
        /// The offending count.
        cpus: u32,
    },
    /// `cpus` beyond the machine's memory-port count
    /// ([`SimConfig::ports`]): the chassis has nowhere to attach the
    /// extra CPUs.
    MoreCpusThanPorts {
        /// The requested CPU count.
        cpus: u32,
        /// The machine's port count.
        ports: u32,
    },
    /// `max_instructions == 0`: the runaway-loop guard would reject
    /// every program immediately.
    ZeroMaxInstructions,
    /// A scalar-timing field that is NaN, infinite, or negative.
    BadScalarTiming {
        /// Name of the offending [`crate::ScalarTiming`] field.
        field: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A vector-timing parameter (X/Y/Z/B) that is NaN, infinite, or
    /// negative.
    BadVectorTiming {
        /// The timing class the parameter belongs to.
        class: TimingClass,
        /// Which of X/Y/Z/B is bad.
        field: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A memory-side constraint (banks, refresh, data space, contention
    /// streams, scalar cache).
    Mem(MemConfigError),
    /// Any other variant, labeled with the machine it was found on.
    /// [`SimConfig::validate`] wraps every non-memory error this way
    /// when the configuration carries a machine name (memory errors are
    /// labeled inside [`MemConfigError`] instead), so sweep error rows
    /// name the offending machine.
    ForMachine {
        /// The machine label ([`SimConfig::machine`]).
        machine: String,
        /// The underlying violation.
        error: Box<ConfigError>,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroCpus => write!(f, "a machine needs at least one CPU"),
            ConfigError::TooManyCpus { cpus } => {
                write!(f, "CPU count {cpus} exceeds the maximum of {MAX_CPUS}")
            }
            ConfigError::ZeroMaxInstructions => {
                write!(f, "the instruction limit must be positive")
            }
            ConfigError::BadScalarTiming { field, value } => {
                write!(
                    f,
                    "scalar timing field `{field}` is {value}; it must be finite and >= 0"
                )
            }
            ConfigError::BadVectorTiming {
                class,
                field,
                value,
            } => write!(
                f,
                "vector timing parameter {field} of class {class:?} is {value}; \
                 it must be finite and >= 0"
            ),
            ConfigError::MoreCpusThanPorts { cpus, ports } => write!(
                f,
                "CPU count {cpus} exceeds the machine's {ports} memory ports"
            ),
            ConfigError::Mem(e) => write!(f, "memory configuration: {e}"),
            ConfigError::ForMachine { machine, error } => {
                write!(f, "machine `{machine}`: {error}")
            }
        }
    }
}

impl Error for ConfigError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ConfigError::Mem(e) => Some(e),
            ConfigError::ForMachine { error, .. } => Some(error),
            _ => None,
        }
    }
}

impl ConfigError {
    /// Wraps the error with a machine label (no-op on an empty label or
    /// an already-labeled error).
    pub fn for_machine(self, machine: &str) -> Self {
        if machine.is_empty() || matches!(self, ConfigError::ForMachine { .. }) {
            return self;
        }
        ConfigError::ForMachine {
            machine: machine.to_string(),
            error: Box::new(self),
        }
    }

    /// The underlying violation with any machine labels stripped — what
    /// tests and programmatic handlers match on.
    pub fn root(&self) -> &ConfigError {
        match self {
            ConfigError::ForMachine { error, .. } => error.root(),
            other => other,
        }
    }
}

impl From<MemConfigError> for ConfigError {
    fn from(e: MemConfigError) -> Self {
        ConfigError::Mem(e)
    }
}

impl SimConfig {
    /// Checks every constraint a simulatable configuration needs. The
    /// sweep server calls this on every wire-supplied point before a
    /// [`crate::Cpu`] or [`crate::Machine`] is built; the constructors'
    /// internal `assert!`s remain as backstops for programmatic misuse.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint as a [`ConfigError`],
    /// labeled with [`SimConfig::machine`] so the message (and any sweep
    /// error row built from it) names the offending machine.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.validate_inner().map_err(|e| match e {
            ConfigError::Mem(m) => ConfigError::Mem(m.for_machine(&self.machine)),
            other => other.for_machine(&self.machine),
        })
    }

    fn validate_inner(&self) -> Result<(), ConfigError> {
        if self.cpus == 0 {
            return Err(ConfigError::ZeroCpus);
        }
        if self.cpus > MAX_CPUS {
            return Err(ConfigError::TooManyCpus { cpus: self.cpus });
        }
        if self.cpus > self.ports {
            return Err(ConfigError::MoreCpusThanPorts {
                cpus: self.cpus,
                ports: self.ports,
            });
        }
        if self.max_instructions == 0 {
            return Err(ConfigError::ZeroMaxInstructions);
        }
        let scalar = [
            ("issue", self.scalar.issue),
            ("branch_taken_penalty", self.scalar.branch_taken_penalty),
            ("int_latency", self.scalar.int_latency),
            ("fp_add_latency", self.scalar.fp_add_latency),
            ("fp_mul_latency", self.scalar.fp_mul_latency),
            ("fp_div_latency", self.scalar.fp_div_latency),
        ];
        for (field, value) in scalar {
            if !value.is_finite() || value < 0.0 {
                return Err(ConfigError::BadScalarTiming { field, value });
            }
        }
        for class in TimingClass::all() {
            let t = self.timing.get(class);
            for (field, value) in [("X", t.x), ("Y", t.y), ("Z", t.z), ("B", t.b)] {
                if !value.is_finite() || value < 0.0 {
                    return Err(ConfigError::BadVectorTiming {
                        class,
                        field,
                        value,
                    });
                }
            }
        }
        self.mem.validate()?;
        self.cache.validate()?;
        Ok(())
    }

    /// Fallible form of [`SimConfig::with_cpus`].
    ///
    /// # Errors
    ///
    /// Rejects a zero or oversized CPU count.
    pub fn try_with_cpus(mut self, n: u32) -> Result<Self, ConfigError> {
        if n == 0 {
            return Err(ConfigError::ZeroCpus);
        }
        if n > MAX_CPUS {
            return Err(ConfigError::TooManyCpus { cpus: n });
        }
        if n > self.ports {
            return Err(ConfigError::MoreCpusThanPorts {
                cpus: n,
                ports: self.ports,
            });
        }
        self.cpus = n;
        Ok(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use c240_isa::timing::VectorTiming;

    #[test]
    fn c240_default_validates() {
        assert_eq!(SimConfig::c240().validate(), Ok(()));
        assert_eq!(
            SimConfig::c240().with_cpus(4).validate(),
            Ok(()),
            "the real machine's four CPUs are valid"
        );
    }

    #[test]
    fn cpu_and_instruction_limits_are_checked() {
        let mut c = SimConfig::c240();
        c.cpus = 0;
        assert_eq!(c.validate().unwrap_err().root(), &ConfigError::ZeroCpus);
        c.cpus = MAX_CPUS + 1;
        assert_eq!(
            c.validate().unwrap_err().root(),
            &ConfigError::TooManyCpus { cpus: MAX_CPUS + 1 }
        );
        // More CPUs than the chassis has memory ports (the C-240 has 4).
        c.cpus = 5;
        let err = c.validate().unwrap_err();
        assert_eq!(
            err.root(),
            &ConfigError::MoreCpusThanPorts { cpus: 5, ports: 4 }
        );
        assert!(err.to_string().contains("4 memory ports"));
        let mut c = SimConfig::c240();
        c.max_instructions = 0;
        assert_eq!(
            c.validate().unwrap_err().root(),
            &ConfigError::ZeroMaxInstructions
        );
    }

    #[test]
    fn validation_errors_name_the_machine() {
        let mut c = SimConfig::c240();
        c.cpus = 0;
        let err = c.validate().unwrap_err();
        assert!(matches!(err, ConfigError::ForMachine { ref machine, .. } if machine == "c240"));
        assert!(err.to_string().contains("machine `c240`"));
        assert!(Error::source(&err).is_some());
        // Memory-side errors carry the label inside MemConfigError.
        let mut c = SimConfig::c240();
        c.machine = "dual-port".into();
        c.mem.banks = 0;
        let message = c.validate().unwrap_err().to_string();
        assert!(message.contains("machine `dual-port`"), "{message}");
        // An unlabeled config (programmatic construction) stays unwrapped.
        let mut c = SimConfig::c240();
        c.machine = String::new();
        c.cpus = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroCpus));
    }

    #[test]
    fn timing_fields_must_be_finite_and_nonnegative() {
        let mut c = SimConfig::c240();
        c.scalar.fp_div_latency = f64::NAN;
        assert!(matches!(
            c.validate().unwrap_err().root(),
            ConfigError::BadScalarTiming {
                field: "fp_div_latency",
                ..
            }
        ));
        let mut c = SimConfig::c240();
        let mut t = c.timing.get(TimingClass::Mul);
        t.z = -1.0;
        c.timing.set(TimingClass::Mul, t);
        let err = c.validate().unwrap_err();
        assert!(matches!(
            err.root(),
            ConfigError::BadVectorTiming {
                class: TimingClass::Mul,
                field: "Z",
                ..
            }
        ));
        assert!(err.to_string().contains("Mul"));
        let mut c = SimConfig::c240();
        c.timing.set(
            TimingClass::Load,
            VectorTiming {
                x: f64::INFINITY,
                y: 0.0,
                z: 1.0,
                b: 0.0,
            },
        );
        assert!(matches!(
            c.validate().unwrap_err().root(),
            ConfigError::BadVectorTiming { field: "X", .. }
        ));
    }

    #[test]
    fn memory_errors_are_wrapped_with_source() {
        let mut c = SimConfig::c240();
        c.mem.banks = 0;
        let err = c.validate().unwrap_err();
        match &err {
            ConfigError::Mem(m) => assert_eq!(m.root(), &MemConfigError::ZeroBanks),
            other => panic!("expected a Mem error, got {other:?}"),
        }
        assert!(Error::source(&err).is_some());
        let mut c = SimConfig::c240();
        c.cache.lines = 0;
        match c.validate().unwrap_err() {
            ConfigError::Mem(m) => assert_eq!(m.root(), &MemConfigError::ZeroCacheLines),
            other => panic!("expected a Mem error, got {other:?}"),
        }
    }

    #[test]
    fn try_with_cpus_matches_wrapper() {
        assert_eq!(SimConfig::c240().try_with_cpus(2).unwrap().cpus, 2);
        assert_eq!(
            SimConfig::c240().try_with_cpus(0),
            Err(ConfigError::ZeroCpus)
        );
        assert_eq!(SimConfig::c240().with_cpus(2).cpus, 2);
    }
}
