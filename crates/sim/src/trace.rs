//! Pipeline traces: per-instruction element timing, and the ASCII
//! timeline used to regenerate Figure 2 of the paper.

use std::fmt;

use c240_isa::Pipe;

/// One vector instruction's schedule in a traced run.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Instruction index in the program.
    pub pc: usize,
    /// Disassembled text.
    pub text: String,
    /// Pipe the instruction executed on.
    pub pipe: Pipe,
    /// Cycle the instruction began issuing.
    pub issue_start: f64,
    /// Cycle its first element entered the pipe.
    pub first_entry: f64,
    /// Cycle its last element entered the pipe.
    pub last_entry: f64,
    /// Cycle its first element result was available.
    pub first_result: f64,
    /// Cycle its last element result was available.
    pub last_result: f64,
    /// Vector length used.
    pub vl: u32,
}

impl TraceEvent {
    /// Total occupancy of the instruction, issue to last result.
    pub fn span(&self) -> f64 {
        self.last_result - self.issue_start
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>9.2} .. {:>9.2}] {:<10} issue@{:<9.2} enter@{:<9.2} {} (VL={})",
            self.first_entry,
            self.last_result,
            self.pipe,
            self.issue_start,
            self.first_entry,
            self.text,
            self.vl
        )
    }
}

/// A recorded pipeline trace.
///
/// The trace stores at most `cap` events (set from
/// [`crate::SimConfig::trace_cap`]); later events are *counted* but not
/// stored, so tracing a long run costs bounded memory while
/// [`Trace::dropped`] reveals how much of the run the stored prefix
/// covers.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    events: Vec<TraceEvent>,
    cap: usize,
    dropped: u64,
    origin_ns: u64,
}

impl Default for Trace {
    fn default() -> Self {
        Trace::with_cap(usize::MAX)
    }
}

impl Trace {
    /// An empty trace that will keep at most `cap` events. Storage for
    /// the capped number of events is reserved up front (bounded at the
    /// default cap) so a traced hot loop never reallocates mid-run.
    pub fn with_cap(cap: usize) -> Self {
        Trace {
            // An uncapped trace (usize::MAX, the untraced default) grows
            // on demand; a finite cap is reserved up front, bounded at
            // the default cap's ~10 MiB.
            events: Vec::with_capacity(if cap == usize::MAX {
                0
            } else {
                cap.min(65_536)
            }),
            cap,
            dropped: 0,
            origin_ns: c240_obs::monotonic_ns(),
        }
    }

    /// The wall-clock anchor of this trace: nanoseconds on the process's
    /// shared monotonic clock (`c240_obs::monotonic_ns`) when the run's
    /// timing state was reset. Trace timestamps are in simulated cycles;
    /// this anchor lets a consumer place the run on the same timeline as
    /// the observability plane's wall-clock spans.
    pub fn origin_ns(&self) -> u64 {
        self.origin_ns
    }

    pub(crate) fn push(&mut self, event: TraceEvent) {
        if self.events.len() < self.cap {
            self.events.push(event);
        } else {
            self.dropped += 1;
        }
    }

    /// The recorded events, in issue order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events that occurred past the cap and were not stored.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Whether anything was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Renders an ASCII Gantt chart of the first `limit` events —
    /// the reproduction of Figure 2.
    ///
    /// Each row is one vector instruction; `#` marks cycles during which
    /// elements of the instruction are entering its pipe, `-` the latency
    /// tail until its last result. `scale` is cycles per character.
    pub fn gantt(&self, limit: usize, scale: f64) -> String {
        assert!(scale > 0.0, "scale must be positive");
        let mut out = String::new();
        let events = &self.events[..self.events.len().min(limit)];
        if events.is_empty() {
            return "(empty trace)\n".to_string();
        }
        let t0 = events
            .iter()
            .map(|e| e.issue_start)
            .fold(f64::INFINITY, f64::min);
        let t1 = events.iter().map(|e| e.last_result).fold(0.0, f64::max);
        let width = (((t1 - t0) / scale).ceil() as usize + 1).min(300);
        let col = |t: f64| (((t - t0) / scale) as usize).min(width - 1);
        out.push_str(&format!(
            "cycles {:.0}..{:.0}, {} cycles/char\n",
            t0, t1, scale
        ));
        for e in events {
            let mut row = vec![b' '; width];
            let entry_a = col(e.first_entry);
            let entry_b = col(e.last_entry);
            let result_b = col(e.last_result);
            for c in &mut row[entry_a..=entry_b] {
                *c = b'#';
            }
            for c in &mut row[entry_b + 1..=result_b.max(entry_b + 1).min(width - 1)] {
                *c = b'-';
            }
            let issue = col(e.issue_start);
            if row[issue] == b' ' {
                row[issue] = b'i';
            }
            out.push_str(&format!(
                "{:<22} |{}| {:>7.0}..{:<7.0}\n",
                truncate(&e.text, 22),
                String::from_utf8(row).expect("ascii row"),
                e.first_entry,
                e.last_result,
            ));
        }
        out
    }
}

fn truncate(s: &str, n: usize) -> &str {
    if s.len() <= n {
        s
    } else {
        &s[..n]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(t: f64) -> TraceEvent {
        TraceEvent {
            pc: 0,
            text: "ld.l 0(a5),v0".into(),
            pipe: Pipe::LoadStore,
            issue_start: t,
            first_entry: t + 2.0,
            last_entry: t + 129.0,
            first_result: t + 12.0,
            last_result: t + 139.0,
            vl: 128,
        }
    }

    #[test]
    fn span() {
        let e = event(0.0);
        assert_eq!(e.span(), 139.0);
    }

    #[test]
    fn gantt_renders() {
        let mut t = Trace::default();
        t.push(event(0.0));
        t.push(event(130.0));
        let g = t.gantt(10, 4.0);
        assert!(g.contains("ld.l"));
        assert!(g.contains('#'));
        assert_eq!(g.lines().count(), 3);
    }

    #[test]
    fn empty_trace_gantt() {
        let t = Trace::default();
        assert!(t.gantt(10, 1.0).contains("empty"));
        assert!(t.is_empty());
    }

    #[test]
    fn cap_bounds_storage_and_counts_drops() {
        let mut t = Trace::with_cap(2);
        for i in 0..5 {
            t.push(event(i as f64 * 10.0));
        }
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.dropped(), 3);
        assert_eq!(t.events()[0].issue_start, 0.0);
    }

    #[test]
    fn display_event() {
        let text = event(5.0).to_string();
        assert!(text.contains("ld.l"));
        assert!(text.contains("VL=128"));
    }
}
