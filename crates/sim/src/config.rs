//! Simulator configuration: machine timing plus model ablation switches.

use c240_isa::timing::TimingTable;
use c240_isa::MachineDescription;
use c240_mem::{CacheConfig, ContentionConfig, MemConfig};

// `ScalarTiming` lives with the machine descriptions in `c240-isa`;
// re-exported here because the simulator is where it has always been
// consumed from.
pub use c240_isa::ScalarTiming;

/// Full simulator configuration.
///
/// The default models the paper's Convex C-240; the switches ablate
/// individual machine features for the what-if studies.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Name of the machine this configuration was derived from (a
    /// [`MachineDescription`] preset name, `"c240"` by default). Purely
    /// a label: it names the machine in validation errors and sweep
    /// rows, and does not affect simulation.
    pub machine: String,
    /// Vector instruction timing (Table 1).
    pub timing: TimingTable,
    /// Memory system (banks, refresh, contention).
    pub mem: MemConfig,
    /// ASU scalar data cache.
    pub cache: CacheConfig,
    /// Scalar-side latencies.
    pub scalar: ScalarTiming,
    /// Operand chaining between vector pipes (§3.3). Disabling it makes
    /// each vector instruction wait for its operands to be *completely*
    /// computed, as on the Cray-2.
    pub chaining: bool,
    /// Enforce the ≤2-read/≤1-write per register pair constraint (§3.3).
    pub pair_constraint: bool,
    /// Record a pipeline trace of every vector instruction.
    pub trace: bool,
    /// Maximum number of trace events kept per run. Each event stores
    /// the disassembled text plus six timestamps (~150 bytes), so the
    /// default of 65 536 bounds a trace at roughly 10 MiB; events past
    /// the cap are counted in [`crate::Trace::dropped`] instead of
    /// stored. Raise it (or set `usize::MAX`) for exhaustive traces of
    /// long runs, at the corresponding memory cost.
    pub trace_cap: usize,
    /// Abort after this many executed instructions (runaway-loop guard).
    pub max_instructions: u64,
    /// Steady-state fast-forward: when a loop's timing state is detected
    /// to be exactly periodic, skip ahead by whole periods instead of
    /// stepping every element (bit-exact; see DESIGN.md). Disabled
    /// automatically while tracing, since a fast-forwarded run does not
    /// emit the skipped iterations' trace events. Also disabled by the
    /// co-sim [`Machine`] when `cpus > 1`: one CPU's periodic state no
    /// longer determines the shared memory's future.
    ///
    /// [`Machine`]: crate::Machine
    pub fast_forward: bool,
    /// Number of CPUs a co-sim [`Machine`] builds from this
    /// configuration, each a full [`Cpu`] with private data space,
    /// sharing one set of memory banks (the C-240 has four). A plain
    /// [`Cpu::new`] ignores this field — it always models one port.
    ///
    /// [`Machine`]: crate::Machine
    /// [`Cpu`]: crate::Cpu
    /// [`Cpu::new`]: crate::Cpu::new
    pub cpus: u32,
    /// CPU ports the machine's memory banks expose — the upper bound a
    /// co-sim [`Machine`] accepts for [`SimConfig::cpus`] (4 on the
    /// C-240), checked by [`SimConfig::validate`].
    ///
    /// [`Machine`]: crate::Machine
    pub ports: u32,
}

impl SimConfig {
    /// The paper's Convex C-240.
    pub fn c240() -> Self {
        SimConfig::for_machine(&MachineDescription::c240())
    }

    /// Derives a configuration from a declarative machine description:
    /// the description supplies the machine half (timing tables, memory
    /// geometry, chaining rules, port count); the operational knobs
    /// (tracing, instruction limit, fast-forward, CPU count, background
    /// contention) take the same defaults [`SimConfig::c240`] has always
    /// used. `for_machine(&MachineDescription::c240())` *is* `c240()`,
    /// bit-identically (pinned by `tests/machine_presets.rs`).
    pub fn for_machine(machine: &MachineDescription) -> Self {
        SimConfig {
            machine: machine.name.clone(),
            timing: machine.timing.clone(),
            mem: MemConfig {
                banks: machine.banks,
                bank_busy: machine.bank_busy,
                refresh_period: machine.refresh_period,
                refresh_len: machine.refresh_len,
                refresh_enabled: machine.refresh_enabled,
                words: machine.words as usize,
                contention: ContentionConfig::idle(),
            },
            cache: CacheConfig {
                lines: machine.cache_lines as usize,
                line_words: machine.cache_line_words,
                hit_latency: machine.cache_hit_latency,
                miss_penalty: machine.cache_miss_penalty,
            },
            scalar: machine.scalar,
            chaining: machine.chaining,
            pair_constraint: machine.pair_constraint,
            trace: false,
            trace_cap: 65_536,
            max_instructions: 200_000_000,
            fast_forward: true,
            cpus: 1,
            ports: machine.ports,
        }
    }

    /// Same machine with `n` CPU ports sharing the memory banks (co-sim;
    /// see [`SimConfig::cpus`]).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or oversized; this is the compatibility
    /// wrapper over [`SimConfig::try_with_cpus`].
    pub fn with_cpus(self, n: u32) -> Self {
        self.try_with_cpus(n)
            .expect("a machine needs at least one CPU")
    }

    /// Same machine with steady-state fast-forward disabled (every
    /// element stepped exactly). Results are identical either way — this
    /// switch exists for the equivalence tests and the CI timing smoke
    /// job that prove it.
    pub fn without_fast_forward(mut self) -> Self {
        self.fast_forward = false;
        self
    }

    /// Same machine with chaining disabled (Cray-2 style ablation).
    pub fn without_chaining(mut self) -> Self {
        self.chaining = false;
        self
    }

    /// Same machine with all tailgating bubbles `B` zeroed (Eq. 5 vs
    /// Eq. 13 ablation).
    pub fn without_bubbles(mut self) -> Self {
        self.timing = self.timing.without_bubbles();
        self
    }

    /// Same machine with memory refresh disabled.
    pub fn without_refresh(mut self) -> Self {
        self.mem = self.mem.without_refresh();
        self
    }

    /// Same machine without the register-pair port constraint.
    pub fn without_pair_constraint(mut self) -> Self {
        self.pair_constraint = false;
        self
    }

    /// Same machine with tracing enabled.
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Same machine with a different trace-event cap (see
    /// [`SimConfig::trace_cap`] for the memory cost).
    pub fn with_trace_cap(mut self, cap: usize) -> Self {
        self.trace_cap = cap;
        self
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig::c240()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use c240_isa::timing::TimingClass;

    #[test]
    fn default_is_c240() {
        let c = SimConfig::default();
        assert!(c.chaining);
        assert!(c.pair_constraint);
        assert!(c.mem.refresh_enabled);
    }

    #[test]
    fn ablation_builders() {
        let c = SimConfig::c240()
            .without_chaining()
            .without_bubbles()
            .without_refresh()
            .without_pair_constraint()
            .with_trace();
        assert!(!c.chaining);
        assert!(!c.pair_constraint);
        assert!(!c.mem.refresh_enabled);
        assert!(c.trace);
        assert_eq!(c.timing.get(TimingClass::Store).b, 0.0);
    }

    #[test]
    fn trace_cap_builder() {
        let c = SimConfig::c240().with_trace().with_trace_cap(8);
        assert_eq!(c.trace_cap, 8);
        assert!(SimConfig::c240().trace_cap > 0);
    }
}
