//! The cycle-level CPU model: in-order single issue, an Address/Scalar
//! Unit, and a Vector Processor with three chained pipes.
//!
//! # Timing model
//!
//! Element `e` of a vector instruction *enters* its pipe at
//!
//! ```text
//! entry(e) = max(entry(e-1) + Z,
//!                operand element e available      (chaining),
//!                bank/refresh/contention grant     (memory ops))
//! entry(0) additionally waits for: issue completion (X cycles),
//!                pipe availability (tailgating), the scalar-memory fence,
//!                and the register-pair port constraint
//! ```
//!
//! and its result is available `Y` cycles later. When an instruction
//! enters a pipe behind a previous instruction, its restart handshake
//! stalls the VP's element advance for `B` cycles — charged to **all**
//! pipes — so a steady-state chime costs `Z·VL + Σᵢ Bᵢ` cycles exactly as
//! the paper's Eq. 13 prescribes, and a full LFK1 iteration costs the
//! paper's 527 cycles before refresh.

use c240_isa::timing::VectorTiming;
use c240_isa::{
    AReg, Instruction, IntOperand, MemRef, Pipe, Program, SReg, ScalarReg, ScalarValue, VOperand,
    VReg, MAX_VL, WORD_BYTES,
};
use c240_mem::{MemorySystem, ScalarCache, WaitBreakdown};
use c240_obs::{Lane, NoProbe, Probe, StallCause};

use c240_isa::timing::{quantize as q, TICKS_PER_CYCLE};

use crate::config::SimConfig;
use crate::error::SimError;
use crate::fastfwd::{
    self, hash_words, ArrivalAction, FastForward, PeriodRecord, Snapshot, SnapshotWhy, Step,
    StepCheck,
};
use crate::stats::RunStats;
use crate::trace::{Trace, TraceEvent};

const VLEN: usize = MAX_VL as usize;
const VREGS: usize = 8;

#[derive(Debug, Clone, Copy, Default)]
struct PipeState {
    /// Earliest cycle the next instruction's first element may enter.
    next_entry: f64,
    /// Earliest cycle the next instruction for this pipe may issue
    /// (one-deep reservation station).
    issue_gate: f64,
}

/// Cycles a pipe's `next_entry` was pushed forward, remembered by cause
/// so the wait can be attributed when the *next* instruction on the pipe
/// actually pays for it. Consumed (zeroed) at each attribution.
#[derive(Debug, Clone, Copy, Default)]
struct PipeCredits {
    /// Tailgate bubbles `B` charged at retire (Eq. 13).
    bubble: f64,
    /// Post-reduction serialization of all pipes.
    reduction: f64,
    /// Scalar memory access fencing the vector stream (shared port).
    fence: f64,
}

/// The `max` terms that produced a vector instruction's first-element
/// entry time, passed to [`Cpu::attribute_entry`] for stall attribution.
struct EntryTerms {
    issue_done: f64,
    fence: f64,
    barrier: f64,
    chain0: f64,
    pre_pair: f64,
    entry0: f64,
}

fn lane_of(slot: usize) -> Lane {
    match slot {
        0 => Lane::Ld,
        1 => Lane::Add,
        _ => Lane::Mul,
    }
}

#[derive(Debug, Clone, Copy)]
struct ActiveVec {
    pair_reads: [u8; 4],
    pair_writes: [u8; 4],
    end: f64,
}

/// Result of scheduling one vector instruction's element stream.
struct Schedule {
    entry0: f64,
    last_entry: f64,
    first_result: f64,
    last_result: f64,
}

/// Progress of an open run: where the next fetch happens and how many
/// instructions have executed. Held by the driver (the single-CPU run
/// loop, or the co-sim `Machine`) rather than the `Cpu` so several CPUs'
/// runs can be interleaved.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RunCursor {
    pc: usize,
    executed: u64,
    halted: bool,
}

impl RunCursor {
    /// Whether the run has reached its `halt`.
    pub(crate) fn halted(&self) -> bool {
        self.halted
    }
}

/// One simulated C-240 CPU attached to a memory system.
///
/// # Example
///
/// ```
/// use c240_isa::ProgramBuilder;
/// use c240_sim::{Cpu, SimConfig};
///
/// let mut b = ProgramBuilder::new();
/// b.set_vl_imm(128);
/// b.vload("a1", 0, "v0");
/// b.vadd("v0", "v0", "v1");
/// b.vstore("v1", "a2", 0);
/// b.halt();
/// let program = b.build()?;
///
/// let mut cpu = Cpu::new(SimConfig::c240());
/// cpu.mem_mut().poke(0, 2.5);
/// cpu.set_areg(1, 0);
/// cpu.set_areg(2, 1024 * 8);
/// let stats = cpu.run(&program)?;
/// assert_eq!(cpu.mem().peek(1024), 5.0);
/// assert!(stats.cycles > 0.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Cpu {
    config: SimConfig,
    mem: MemorySystem,
    cache: ScalarCache,

    // Architectural state.
    a: [i64; 8],
    s: [u64; 8],
    a_ready: [f64; 8],
    s_ready: [f64; 8],
    vdata: Vec<[f64; VLEN]>,
    vready: Vec<[f64; VLEN]>,
    vread_until: Vec<[f64; VLEN]>,
    vl: u32,
    tflag: bool,

    // Timing state.
    clock: f64,
    end: f64,
    pipes: [PipeState; 3],
    scalar_mem_fence: f64,
    active: Vec<ActiveVec>,

    // Telemetry state (only maintained while a probe with
    // `Probe::ENABLED` drives the run; `credits` costs a few float adds
    // regardless, the `acct` cursors are fully gated).
    acct: [f64; Lane::COUNT],
    credits: [PipeCredits; 3],

    stats: RunStats,
    trace: Trace,

    // Steady-state fast-forward detector (see `fastfwd` module).
    ff: FastForward,
    // Instructions skipped analytically by fast-forward in the last run.
    ff_skipped: u64,
    // Backward-branch arrivals the detector examined in the last run.
    ff_probes: u64,
    // Warps that actually skipped iterations in the last run.
    ff_warps: u64,
}

/// Fast-forward telemetry for one run: how often the steady-state
/// detector probed a loop head, how often a verified period actually
/// warped, and how many instructions the warps skipped. The hit/miss
/// split (`warps` vs `probes`) is what the sweep service's metrics plane
/// exports — a sweep whose points never warp is paying full element
/// stepping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FfStats {
    /// Taken-backward-branch arrivals the detector examined.
    pub probes: u64,
    /// Warps that skipped at least one iteration (fast-forward hits).
    pub warps: u64,
    /// Instructions skipped analytically across all warps.
    pub skipped_instructions: u64,
}

fn pipe_slot(pipe: Pipe) -> usize {
    match pipe {
        Pipe::LoadStore => 0,
        Pipe::Add => 1,
        Pipe::Multiply => 2,
    }
}

impl Cpu {
    /// Creates a CPU with fresh (zeroed) memory.
    pub fn new(config: SimConfig) -> Self {
        let mem = MemorySystem::new(config.mem.clone());
        let cache = ScalarCache::new(config.cache);
        Cpu {
            config,
            mem,
            cache,
            a: [0; 8],
            s: [0; 8],
            a_ready: [0.0; 8],
            s_ready: [0.0; 8],
            vdata: vec![[0.0; VLEN]; 8],
            vready: vec![[0.0; VLEN]; 8],
            vread_until: vec![[0.0; VLEN]; 8],
            vl: MAX_VL,
            tflag: false,
            clock: 0.0,
            end: 0.0,
            pipes: [PipeState::default(); 3],
            scalar_mem_fence: 0.0,
            active: Vec::new(),
            acct: [0.0; Lane::COUNT],
            credits: [PipeCredits::default(); 3],
            stats: RunStats::default(),
            trace: Trace::default(),
            ff: FastForward::new(),
            ff_skipped: 0,
            ff_probes: 0,
            ff_warps: 0,
        }
    }

    /// The configuration this CPU runs with.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Read access to memory (for checking results).
    pub fn mem(&self) -> &MemorySystem {
        &self.mem
    }

    /// Mutable access to memory (for initializing workload data).
    pub fn mem_mut(&mut self) -> &mut MemorySystem {
        &mut self.mem
    }

    /// Sets an address register before a run (byte address / integer).
    ///
    /// # Panics
    ///
    /// Panics if `index > 7`.
    pub fn set_areg(&mut self, index: u8, value: i64) {
        let r = AReg::new(index).expect("address register index");
        self.a[usize::from(r.index())] = value;
    }

    /// Sets a scalar register to a floating point value before a run.
    ///
    /// # Panics
    ///
    /// Panics if `index > 7`.
    pub fn set_sreg_fp(&mut self, index: u8, value: f64) {
        let r = SReg::new(index).expect("scalar register index");
        self.s[usize::from(r.index())] = value.to_bits();
    }

    /// Sets a scalar register to an integer value before a run.
    ///
    /// # Panics
    ///
    /// Panics if `index > 7`.
    pub fn set_sreg_int(&mut self, index: u8, value: i64) {
        let r = SReg::new(index).expect("scalar register index");
        self.s[usize::from(r.index())] = value as u64;
    }

    /// Reads a scalar register as floating point after a run.
    ///
    /// # Panics
    ///
    /// Panics if `index > 7`.
    pub fn sreg_fp(&self, index: u8) -> f64 {
        let r = SReg::new(index).expect("scalar register index");
        f64::from_bits(self.s[usize::from(r.index())])
    }

    /// Reads an address register after a run.
    ///
    /// # Panics
    ///
    /// Panics if `index > 7`.
    pub fn areg(&self, index: u8) -> i64 {
        let r = AReg::new(index).expect("address register index");
        self.a[usize::from(r.index())]
    }

    /// The pipeline trace of the last run (empty unless
    /// [`SimConfig::trace`] was set).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Fills a vector register with a constant before a run — the
    /// "register priming" the paper's X-process tool performs so that
    /// execute-only code computes on benign values (§3.6).
    ///
    /// # Panics
    ///
    /// Panics if `index > 7`.
    pub fn set_vreg_fill(&mut self, index: u8, value: f64) {
        let r = VReg::new(index).expect("vector register index");
        self.vdata[usize::from(r.index())].fill(value);
    }

    /// Clears all timing state and statistics, but keeps memory contents
    /// and register *values* (so registers initialized with the `set_*`
    /// methods survive into the run). Called automatically by
    /// [`Cpu::run`].
    pub fn reset_timing(&mut self) {
        self.a_ready = [0.0; 8];
        self.s_ready = [0.0; 8];
        for v in &mut self.vready {
            v.fill(0.0);
        }
        for v in &mut self.vread_until {
            v.fill(0.0);
        }
        self.vl = MAX_VL;
        self.tflag = false;
        self.clock = 0.0;
        self.end = 0.0;
        self.pipes = [PipeState::default(); 3];
        self.scalar_mem_fence = 0.0;
        self.active.clear();
        self.acct = [0.0; Lane::COUNT];
        self.credits = [PipeCredits::default(); 3];
        self.stats = RunStats::default();
        self.trace = if self.config.trace {
            Trace::with_cap(self.config.trace_cap)
        } else {
            Trace::default()
        };
        self.mem.reset_timing();
        self.cache.reset();
        self.ff = FastForward::new();
        self.ff_skipped = 0;
        self.ff_probes = 0;
        self.ff_warps = 0;
    }

    /// Instructions the last run skipped via steady-state fast-forward
    /// (0 when no periodic state was detected, or fast-forward was off).
    /// Skipped instructions are still fully accounted in the run's
    /// statistics; this only reveals how much exact stepping was avoided.
    pub fn fast_forwarded_instructions(&self) -> u64 {
        self.ff_skipped
    }

    /// Fast-forward telemetry for the last run (probe/warp/skip counts).
    pub fn ff_stats(&self) -> FfStats {
        FfStats {
            probes: self.ff_probes,
            warps: self.ff_warps,
            skipped_instructions: self.ff_skipped,
        }
    }

    /// Runs `program` from its first instruction until `halt`.
    ///
    /// Timing state and statistics are reset first; memory data and
    /// registers set via the `set_*` methods are kept.
    ///
    /// # Errors
    ///
    /// [`SimError::InstructionLimit`] if the run exceeds
    /// [`SimConfig::max_instructions`] (runaway loop), or
    /// [`SimError::FellOffEnd`] if control flow runs past the last
    /// instruction without a `halt`.
    pub fn run(&mut self, program: &Program) -> Result<RunStats, SimError> {
        self.run_probed(program, &mut NoProbe)
    }

    /// Runs `program` like [`Cpu::run`], reporting cycle attribution to
    /// `probe`.
    ///
    /// With an enabled probe (e.g. `c240_obs::CounterProbe`) every cycle
    /// of every lane is tagged as busy, stalled on a specific
    /// [`StallCause`], or idle, so that per lane
    /// `busy + stalls + idle == stats.cycles` (up to float rounding).
    /// With [`NoProbe`] the attribution arithmetic is compiled out and
    /// this is exactly [`Cpu::run`].
    ///
    /// # Errors
    ///
    /// Same as [`Cpu::run`].
    pub fn run_probed<P: Probe>(
        &mut self,
        program: &Program,
        probe: &mut P,
    ) -> Result<RunStats, SimError> {
        let mut cursor = self.begin_run(probe, true);
        while !cursor.halted {
            self.step_one(program, probe, &mut cursor)?;
        }
        Ok(self.finish_run(probe))
    }

    /// Resets state and opens a run, returning the cursor an external
    /// driver (or [`Cpu::run_probed`] itself) advances with
    /// [`Cpu::step_one`]. `allow_ff` gates steady-state fast-forward on
    /// top of the configuration: a co-sim driver passes `false` for
    /// multi-CPU runs, where a single CPU's periodic state no longer
    /// determines the shared memory's future.
    pub(crate) fn begin_run<P: Probe>(&mut self, probe: &mut P, allow_ff: bool) -> RunCursor {
        self.reset_timing();
        // Fast-forward needs the probe's counters to be expressible as a
        // flat delta vector, and cannot run while tracing (the skipped
        // iterations' trace events would be missing).
        self.ff.enabled = allow_ff
            && self.config.fast_forward
            && !self.config.trace
            && probe.ff_counters().is_some();
        RunCursor {
            pc: 0,
            executed: 0,
            halted: false,
        }
    }

    /// Executes the next instruction of an open run (one fetch, one
    /// [`Cpu::step`], fast-forward bookkeeping) and advances `cursor`.
    /// On `halt` the cursor is marked halted without executing further.
    /// The body is the exact loop body of the single-CPU run path, so a
    /// driver interleaving several CPUs' `step_one` calls produces, for
    /// one CPU, the identical instruction-by-instruction sequence.
    pub(crate) fn step_one<P: Probe>(
        &mut self,
        program: &Program,
        probe: &mut P,
        cursor: &mut RunCursor,
    ) -> Result<(), SimError> {
        let pc = cursor.pc;
        let Some(ins) = program.instructions().get(pc) else {
            return Err(SimError::FellOffEnd { pc });
        };
        cursor.executed += 1;
        if cursor.executed > self.config.max_instructions {
            return Err(SimError::InstructionLimit {
                limit: self.config.max_instructions,
            });
        }
        self.stats.instructions.bump(ins.class());
        if matches!(ins, Instruction::Halt) {
            cursor.halted = true;
            return Ok(());
        }
        let pre = if self.ff.is_recording() {
            Some(self.ff_prestep(ins))
        } else {
            None
        };
        let next = self.step(probe, ins, pc, program)?;
        if let Some(pre) = pre {
            self.ff_poststep(pc, pre);
        }
        if next < pc && self.ff.active() && self.ff_loop_head(probe, next, cursor.executed) {
            let skipped = self.ff_warp(probe, program, next, cursor.executed);
            cursor.executed += skipped;
            self.ff_skipped += skipped;
            if skipped > 0 {
                self.ff_warps += 1;
            }
        }
        cursor.pc = next;
        Ok(())
    }

    /// Closes an open run: freezes cycle/memory/cache statistics, closes
    /// every probe lane's account out to the end of the run, and returns
    /// the statistics.
    pub(crate) fn finish_run<P: Probe>(&mut self, probe: &mut P) -> RunStats {
        self.stats.cycles = self.end.max(self.clock);
        self.stats.memory_accesses = self.mem.access_count();
        self.stats.memory_wait_cycles = self.mem.wait_cycles();
        self.stats.memory_waits = self.mem.wait_breakdown();
        self.stats.cache_hits = self.cache.hits();
        self.stats.cache_misses = self.cache.misses();
        if P::ENABLED {
            // Close every lane's account out to the end of the run.
            let total = self.stats.cycles;
            for slot in 0..3 {
                probe.idle(lane_of(slot), (total - self.acct[slot]).max(0.0));
            }
            probe.idle(Lane::Scalar, (total - self.clock).max(0.0));
            probe.idle(
                Lane::ScalarMem,
                (total - self.acct[Lane::ScalarMem as usize]).max(0.0),
            );
        }
        std::mem::take(&mut self.stats)
    }

    /// The scalar issue clock — the co-sim driver's arbitration key:
    /// always stepping the CPU whose issue clock is lowest keeps the
    /// interleaved grant streams as close to causal order as
    /// per-instruction granularity allows.
    pub(crate) fn issue_clock(&self) -> f64 {
        self.clock
    }

    /// Executes one instruction; returns the next pc.
    fn step<P: Probe>(
        &mut self,
        probe: &mut P,
        ins: &Instruction,
        pc: usize,
        program: &Program,
    ) -> Result<usize, SimError> {
        use Instruction::*;
        match ins {
            VLoad { addr, dst } => self.vector_load(probe, pc, ins, *addr, *dst),
            VStore { src, addr } => self.vector_store(probe, pc, ins, *src, *addr),
            VAdd { a, b, dst } => self.vector_arith(probe, pc, ins, *a, *b, *dst, |x, y| x + y),
            VSub { a, b, dst } => self.vector_arith(probe, pc, ins, *a, *b, *dst, |x, y| x - y),
            VMul { a, b, dst } => self.vector_arith(probe, pc, ins, *a, *b, *dst, |x, y| x * y),
            VDiv { a, b, dst } => self.vector_arith(probe, pc, ins, *a, *b, *dst, |x, y| x / y),
            VNeg { src, dst } => self.vector_arith(
                probe,
                pc,
                ins,
                VOperand::V(*src),
                VOperand::V(*src),
                *dst,
                |x, _| -x,
            ),
            VSum { src, dst } => self.vector_reduce(probe, pc, ins, *src, *dst, false),
            VRAdd { src, acc } => self.vector_reduce(probe, pc, ins, *src, *acc, true),
            VRSub { src, acc } => {
                // acc -= sum: implemented as accumulate of negated sum.
                self.vector_reduce_signed(probe, pc, ins, *src, *acc, true, -1.0)
            }
            SetVl { src } => {
                let i = usize::from(src.index());
                self.scalar_wait(probe, pc, self.s_ready[i]);
                self.issue_scalar(probe, pc);
                self.vl = (self.s[i] as i64).clamp(0, i64::from(MAX_VL)) as u32;
            }
            SetVlImm { value } => {
                self.issue_scalar(probe, pc);
                self.vl = (*value).min(MAX_VL);
            }
            SMovImm { value, dst } => {
                self.issue_scalar(probe, pc);
                let bits = match value {
                    ScalarValue::Int(i) => *i as u64,
                    ScalarValue::Fp(x) => x.to_bits(),
                };
                self.write_scalar_raw(*dst, bits, self.clock);
            }
            SMov { src, dst } => {
                let (bits, ready) = self.read_scalar_raw(*src);
                self.scalar_wait(probe, pc, ready);
                self.issue_scalar(probe, pc);
                self.write_scalar_raw(*dst, bits, self.clock);
            }
            SIntOp { op, src, dst } => {
                let (sv, sready) = self.read_int_operand(*src);
                let (dv, dready) = self.read_scalar_int(*dst);
                self.scalar_wait(probe, pc, sready.max(dready));
                self.issue_scalar(probe, pc);
                let ready = q(self.clock + self.config.scalar.int_latency - 1.0);
                self.write_scalar_int(*dst, op.apply(dv, sv), ready);
            }
            SFpOp { op, a, b, dst } => {
                let ia = usize::from(a.index());
                let ib = usize::from(b.index());
                self.scalar_wait(probe, pc, self.s_ready[ia].max(self.s_ready[ib]));
                self.issue_scalar(probe, pc);
                let lat = match op {
                    c240_isa::FpOp::Add | c240_isa::FpOp::Sub => self.config.scalar.fp_add_latency,
                    c240_isa::FpOp::Mul => self.config.scalar.fp_mul_latency,
                    c240_isa::FpOp::Div => self.config.scalar.fp_div_latency,
                };
                let va = f64::from_bits(self.s[ia]);
                let vb = f64::from_bits(self.s[ib]);
                let id = usize::from(dst.index());
                self.s[id] = op.apply(va, vb).to_bits();
                self.s_ready[id] = q(self.clock + lat - 1.0);
                self.end = self.end.max(self.s_ready[id]);
            }
            SLoad { addr, dst } => self.scalar_load(probe, pc, *addr, *dst)?,
            SStore { src, addr } => self.scalar_store(probe, pc, *src, *addr)?,
            Cmp { op, lhs, rhs } => {
                let (lv, lready) = self.read_int_operand(*lhs);
                let (rv, rready) = self.read_scalar_int(*rhs);
                self.scalar_wait(probe, pc, lready.max(rready));
                self.issue_scalar(probe, pc);
                self.tflag = op.apply(lv, rv);
            }
            BranchT { target } | BranchF { target } => {
                self.issue_scalar(probe, pc);
                let take = if matches!(ins, BranchT { .. }) {
                    self.tflag
                } else {
                    !self.tflag
                };
                if take {
                    if P::ENABLED {
                        probe.busy(Lane::Scalar, self.config.scalar.branch_taken_penalty, pc);
                    }
                    self.clock = q(self.clock + self.config.scalar.branch_taken_penalty);
                    self.stats.branches_taken += 1;
                    return Ok(self.resolve(program, target));
                }
            }
            Jump { target } => {
                self.issue_scalar(probe, pc);
                if P::ENABLED {
                    probe.busy(Lane::Scalar, self.config.scalar.branch_taken_penalty, pc);
                }
                self.clock = q(self.clock + self.config.scalar.branch_taken_penalty);
                self.stats.branches_taken += 1;
                return Ok(self.resolve(program, target));
            }
            Halt => unreachable!("halt handled by run loop"),
            Nop => self.issue_scalar(probe, pc),
            _ => return Err(SimError::Unsupported { pc }),
        }
        Ok(pc + 1)
    }

    fn resolve(&self, program: &Program, label: &str) -> usize {
        program
            .label(label)
            .expect("labels validated at program construction")
    }

    fn issue_scalar<P: Probe>(&mut self, probe: &mut P, pc: usize) {
        if P::ENABLED {
            probe.busy(Lane::Scalar, self.config.scalar.issue, pc);
        }
        self.clock = q(self.clock + self.config.scalar.issue);
        self.end = self.end.max(self.clock);
    }

    /// Advances the scalar clock to `t`, charging any wait to the issue
    /// interlock (a RAW dependence or structural issue block).
    fn scalar_wait<P: Probe>(&mut self, probe: &mut P, pc: usize, t: f64) {
        if t > self.clock {
            if P::ENABLED {
                probe.stall(Lane::Scalar, StallCause::IssueInterlock, t - self.clock, pc);
            }
            self.clock = t;
        }
    }

    /// Charges the gap between a pipe's account cursor and a vector
    /// instruction's first-element entry time to the responsible causes.
    ///
    /// Each `max` term that produced the entry time is charged
    /// `max(term − running, 0)` in a fixed order, so the charges sum to
    /// exactly `entry0 − acct[slot]` and no cycle is counted twice. The
    /// pipe-availability term is split using the [`PipeCredits`] recorded
    /// when `next_entry` was pushed; the credits are consumed here.
    fn attribute_entry<P: Probe>(&mut self, probe: &mut P, pc: usize, slot: usize, t: EntryTerms) {
        let lane = lane_of(slot);
        let mut run = self.acct[slot];
        if t.issue_done > run {
            probe.idle(lane, t.issue_done - run);
            run = t.issue_done;
        }
        let ne = self.pipes[slot].next_entry;
        if ne > run {
            let mut gap = ne - run;
            let c = self.credits[slot];
            let bubble = gap.min(c.bubble);
            probe.stall(lane, StallCause::TailgateBubble, bubble, pc);
            gap -= bubble;
            let reduction = gap.min(c.reduction);
            probe.stall(lane, StallCause::ReductionDrain, reduction, pc);
            gap -= reduction;
            let fence = gap.min(c.fence);
            probe.stall(lane, StallCause::MemPortConflict, fence, pc);
            gap -= fence;
            probe.stall(lane, StallCause::PipeDrain, gap, pc);
            run = ne;
        }
        self.credits[slot] = PipeCredits::default();
        if t.fence > run {
            probe.stall(lane, StallCause::MemPortConflict, t.fence - run, pc);
            run = t.fence;
        }
        if t.barrier > run {
            probe.stall(lane, StallCause::OperandBarrier, t.barrier - run, pc);
            run = t.barrier;
        }
        if t.chain0 > run {
            probe.stall(lane, StallCause::ChainWait, t.chain0 - run, pc);
            run = t.chain0;
        }
        run = run.max(t.pre_pair);
        if t.entry0 > run {
            probe.stall(lane, StallCause::PairConflict, t.entry0 - run, pc);
        }
        self.acct[slot] = t.entry0;
    }

    /// Reports the bank/refresh/contention wait a single memory access
    /// accrued, as the difference of [`MemorySystem::wait_breakdown`]
    /// snapshots taken around the access.
    fn attribute_mem<P: Probe>(
        probe: &mut P,
        lane: Lane,
        pc: usize,
        before: WaitBreakdown,
        after: WaitBreakdown,
    ) {
        probe.stall(
            lane,
            StallCause::BankBusy,
            after.bank_busy - before.bank_busy,
            pc,
        );
        probe.stall(
            lane,
            StallCause::Refresh,
            after.refresh - before.refresh,
            pc,
        );
        probe.stall(
            lane,
            StallCause::Contention,
            after.contention - before.contention,
            pc,
        );
    }

    // ---- scalar register plumbing -------------------------------------

    fn read_scalar_raw(&self, r: ScalarReg) -> (u64, f64) {
        match r {
            ScalarReg::S(s) => {
                let i = usize::from(s.index());
                (self.s[i], self.s_ready[i])
            }
            ScalarReg::A(a) => {
                let i = usize::from(a.index());
                (self.a[i] as u64, self.a_ready[i])
            }
        }
    }

    fn read_scalar_int(&self, r: ScalarReg) -> (i64, f64) {
        let (bits, ready) = self.read_scalar_raw(r);
        (bits as i64, ready)
    }

    fn read_int_operand(&self, op: IntOperand) -> (i64, f64) {
        match op {
            IntOperand::Imm(i) => (i, 0.0),
            IntOperand::Reg(r) => self.read_scalar_int(r),
        }
    }

    fn write_scalar_raw(&mut self, r: ScalarReg, bits: u64, ready: f64) {
        match r {
            ScalarReg::S(s) => {
                let i = usize::from(s.index());
                self.s[i] = bits;
                self.s_ready[i] = ready;
            }
            ScalarReg::A(a) => {
                let i = usize::from(a.index());
                self.a[i] = bits as i64;
                self.a_ready[i] = ready;
            }
        }
        self.end = self.end.max(ready);
    }

    fn write_scalar_int(&mut self, r: ScalarReg, value: i64, ready: f64) {
        self.write_scalar_raw(r, value as u64, ready);
    }

    // ---- vector machinery ---------------------------------------------

    fn timing_of(&self, ins: &Instruction) -> VectorTiming {
        self.config
            .timing
            .get(ins.timing_class().expect("vector instruction"))
    }

    /// Earliest start satisfying the register-pair port constraint, and
    /// registration of this instruction's usage.
    ///
    /// An instruction engages its register-pair ports while its elements
    /// traverse the pipe — `duration ≈ Z·VL` cycles from its first entry.
    /// Instructions in successive chimes therefore do not conflict, while
    /// a would-be chime-mate that violates the ≤2-read/≤1-write rule is
    /// pushed to the next chime (§3.3).
    fn pair_admit(&mut self, ins: &Instruction, mut t: f64, duration: f64) -> f64 {
        if !self.config.pair_constraint {
            return t;
        }
        let (reads, writes) = ins.pair_usage();
        loop {
            self.active.retain(|a| a.end > t);
            let mut ok = true;
            let mut next_free = f64::INFINITY;
            for p in 0..4 {
                let r: u8 = self.active.iter().map(|a| a.pair_reads[p]).sum::<u8>() + reads[p];
                let w: u8 = self.active.iter().map(|a| a.pair_writes[p]).sum::<u8>() + writes[p];
                if r > 2 || w > 1 {
                    ok = false;
                    for a in &self.active {
                        if a.pair_reads[p] > 0 || a.pair_writes[p] > 0 {
                            next_free = next_free.min(a.end);
                        }
                    }
                }
            }
            if ok {
                break;
            }
            debug_assert!(next_free.is_finite(), "pair conflict with no active cause");
            t = next_free;
        }
        self.active.push(ActiveVec {
            pair_reads: reads,
            pair_writes: writes,
            end: q(t + duration),
        });
        t
    }

    /// Issue-side preamble common to all vector instructions: waits for
    /// the pipe's reservation station and charges the X overhead.
    /// Returns the issue-complete time.
    fn vector_issue<P: Probe>(&mut self, probe: &mut P, pc: usize, pipe: Pipe, x: f64) -> f64 {
        let slot = pipe_slot(pipe);
        self.scalar_wait(probe, pc, self.pipes[slot].issue_gate);
        if P::ENABLED {
            probe.busy(Lane::Scalar, x, pc);
        }
        self.clock = q(self.clock + x);
        self.end = self.end.max(self.clock);
        self.clock
    }

    /// Post-schedule bookkeeping shared by all vector instructions.
    fn vector_retire(
        &mut self,
        pc: usize,
        ins: &Instruction,
        pipe: Pipe,
        timing: VectorTiming,
        issue_start: f64,
        sched: Schedule,
    ) {
        let slot = pipe_slot(pipe);
        // max: a reduction may already have pushed the pipe further
        // (scalar-result serialization).
        self.pipes[slot].next_entry = self.pipes[slot]
            .next_entry
            .max(q(sched.last_entry + timing.z));
        self.pipes[slot].issue_gate = q(sched.entry0);
        // The restart handshake stalls the VP element advance for B
        // cycles on every pipe (Eq. 13: a chime costs Z·VL + ΣB).
        for (p, credit) in self.pipes.iter_mut().zip(self.credits.iter_mut()) {
            p.next_entry = q(p.next_entry + timing.b);
            credit.bubble = q(credit.bubble + timing.b);
        }
        self.end = self.end.max(q(sched.last_result));
        if self.config.trace {
            self.trace.push(TraceEvent {
                pc,
                text: ins.to_string(),
                pipe,
                issue_start,
                first_entry: sched.entry0,
                last_entry: sched.last_entry,
                first_result: sched.first_result,
                last_result: sched.last_result,
                vl: self.vl,
            });
        }
    }

    /// Chaining constraint for element `e` of the given operand.
    fn operand_ready(&self, op: VOperand, e: usize) -> f64 {
        match op {
            VOperand::V(v) => self.vready[usize::from(v.index())][e],
            VOperand::S(_) => 0.0, // waited for at issue
        }
    }

    /// If chaining is disabled, operands must be fully complete.
    fn no_chain_barrier(&self, ops: &[VOperand]) -> f64 {
        if self.config.chaining {
            return 0.0;
        }
        let vl = self.vl as usize;
        let mut t: f64 = 0.0;
        for op in ops {
            if let VOperand::V(v) = op {
                let r = &self.vready[usize::from(v.index())];
                for &ready in r.iter().take(vl) {
                    t = t.max(ready);
                }
            }
        }
        t
    }

    fn scalar_operand_wait<P: Probe>(&mut self, probe: &mut P, pc: usize, op: VOperand) {
        if let VOperand::S(s) = op {
            let ready = self.s_ready[usize::from(s.index())];
            self.scalar_wait(probe, pc, ready);
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn vector_arith<P: Probe>(
        &mut self,
        probe: &mut P,
        pc: usize,
        ins: &Instruction,
        a: VOperand,
        b: VOperand,
        dst: VReg,
        f: impl Fn(f64, f64) -> f64,
    ) {
        let vl = self.vl as usize;
        if vl == 0 {
            self.issue_scalar(probe, pc);
            return;
        }
        let pipe = ins.pipe().expect("vector arith pipe");
        let timing = self.timing_of(ins);
        self.scalar_operand_wait(probe, pc, a);
        self.scalar_operand_wait(probe, pc, b);
        let issue_start = self.clock;
        let issue_done = self.vector_issue(probe, pc, pipe, timing.x);

        let slot = pipe_slot(pipe);
        let d = usize::from(dst.index());
        let barrier = self.no_chain_barrier(&[a, b]);
        let chain0 = self
            .operand_ready(a, 0)
            .max(self.operand_ready(b, 0))
            .max(self.vread_until[d][0]);
        let pre_pair = issue_done
            .max(self.pipes[slot].next_entry)
            .max(barrier)
            .max(chain0);
        let entry0 = self.pair_admit(ins, pre_pair, timing.z * vl as f64);
        if P::ENABLED {
            self.attribute_entry(
                probe,
                pc,
                slot,
                EntryTerms {
                    issue_done,
                    fence: 0.0,
                    barrier,
                    chain0,
                    pre_pair,
                    entry0,
                },
            );
        }

        // Functional values first (program order guarantees correctness).
        let va = self.operand_values(a);
        let vb = self.operand_values(b);

        let lane = lane_of(slot);
        let mut entry = entry0;
        let mut first_result = 0.0;
        for e in 0..vl {
            if e > 0 {
                let ideal = entry + timing.z;
                entry = ideal
                    .max(self.operand_ready(a, e))
                    .max(self.operand_ready(b, e))
                    .max(self.vread_until[d][e]);
                if P::ENABLED {
                    probe.stall(lane, StallCause::ChainWait, entry - ideal, pc);
                }
            }
            self.mark_read(a, e, entry);
            self.mark_read(b, e, entry);
            let result = entry + timing.y;
            if e == 0 {
                first_result = result;
            }
            self.vdata[d][e] = f(va[e], vb[e]);
            self.vready[d][e] = q(result);
        }
        let last_entry = entry;
        let last_result = last_entry + timing.y;
        if P::ENABLED {
            probe.busy(lane, timing.z * vl as f64, pc);
            self.acct[slot] = q(last_entry + timing.z);
        }
        self.stats.elements[slot] += vl as u64;
        self.stats.flops += vl as u64;
        self.vector_retire(
            pc,
            ins,
            pipe,
            timing,
            issue_start,
            Schedule {
                entry0,
                last_entry,
                first_result,
                last_result,
            },
        );
    }

    fn operand_values(&self, op: VOperand) -> [f64; VLEN] {
        match op {
            VOperand::V(v) => self.vdata[usize::from(v.index())],
            VOperand::S(s) => [f64::from_bits(self.s[usize::from(s.index())]); VLEN],
        }
    }

    fn mark_read(&mut self, op: VOperand, e: usize, at: f64) {
        if let VOperand::V(v) = op {
            let i = usize::from(v.index());
            self.vread_until[i][e] = self.vread_until[i][e].max(q(at));
        }
    }

    fn vector_reduce<P: Probe>(
        &mut self,
        probe: &mut P,
        pc: usize,
        ins: &Instruction,
        src: VReg,
        dst: SReg,
        accumulate: bool,
    ) {
        self.vector_reduce_signed(probe, pc, ins, src, dst, accumulate, 1.0)
    }

    #[allow(clippy::too_many_arguments)]
    fn vector_reduce_signed<P: Probe>(
        &mut self,
        probe: &mut P,
        pc: usize,
        ins: &Instruction,
        src: VReg,
        dst: SReg,
        accumulate: bool,
        sign: f64,
    ) {
        let vl = self.vl as usize;
        if vl == 0 {
            self.issue_scalar(probe, pc);
            return;
        }
        let pipe = ins.pipe().expect("reduction pipe");
        let timing = self.timing_of(ins);
        let d = usize::from(dst.index());
        if accumulate {
            self.scalar_wait(probe, pc, self.s_ready[d]);
        }
        let issue_start = self.clock;
        let issue_done = self.vector_issue(probe, pc, pipe, timing.x);
        let slot = pipe_slot(pipe);
        let srcop = VOperand::V(src);
        let barrier = self.no_chain_barrier(&[srcop]);
        let chain0 = self.operand_ready(srcop, 0);
        let pre_pair = issue_done
            .max(self.pipes[slot].next_entry)
            .max(barrier)
            .max(chain0);
        let entry0 = self.pair_admit(ins, pre_pair, timing.z * vl as f64);
        if P::ENABLED {
            self.attribute_entry(
                probe,
                pc,
                slot,
                EntryTerms {
                    issue_done,
                    fence: 0.0,
                    barrier,
                    chain0,
                    pre_pair,
                    entry0,
                },
            );
        }

        let lane = lane_of(slot);
        let mut entry = entry0;
        for e in 0..vl {
            if e > 0 {
                let ideal = entry + timing.z;
                entry = ideal.max(self.operand_ready(srcop, e));
                if P::ENABLED {
                    probe.stall(lane, StallCause::ChainWait, entry - ideal, pc);
                }
            }
            self.mark_read(srcop, e, entry);
        }
        let last_entry = entry;
        let last_result = last_entry + timing.y;

        let s: f64 = self.vdata[usize::from(src.index())][..vl].iter().sum();
        let base = if accumulate {
            f64::from_bits(self.s[d])
        } else {
            0.0
        };
        self.s[d] = (base + sign * s).to_bits();
        self.s_ready[d] = q(last_result);

        // A reduction funnels the VP into the scalar unit: the VP
        // sequencer cannot run further vector work past it until the
        // scalar result is delivered, so all pipes resume afterwards.
        // (This is what makes the reduction kernels LFK4/6 as expensive
        // as the paper measures; see §3.4's note that reduction chimes
        // involve "numerous special cases".)
        for (p, credit) in self.pipes.iter_mut().zip(self.credits.iter_mut()) {
            if last_result > p.next_entry {
                credit.reduction = q(credit.reduction + (last_result - p.next_entry));
                p.next_entry = q(last_result);
            }
        }

        if P::ENABLED {
            probe.busy(lane, timing.z * vl as f64, pc);
            self.acct[slot] = q(last_entry + timing.z);
        }
        self.stats.elements[slot] += vl as u64;
        self.stats.flops += vl as u64;
        self.vector_retire(
            pc,
            ins,
            pipe,
            timing,
            issue_start,
            Schedule {
                entry0,
                last_entry,
                first_result: last_result,
                last_result,
            },
        );
    }

    /// Computes the word address of element `e`, validating alignment.
    fn element_addr(&self, addr: MemRef, e: usize) -> u64 {
        let base = self.a[usize::from(addr.base.index())] + addr.offset;
        assert!(
            base >= 0 && base % WORD_BYTES as i64 == 0,
            "unaligned or negative vector base address {base}"
        );
        let word = base / WORD_BYTES as i64 + addr.stride.words() * e as i64;
        assert!(word >= 0, "negative element address (word {word})");
        word as u64
    }

    fn vector_load<P: Probe>(
        &mut self,
        probe: &mut P,
        pc: usize,
        ins: &Instruction,
        addr: MemRef,
        dst: VReg,
    ) {
        let vl = self.vl as usize;
        if vl == 0 {
            self.issue_scalar(probe, pc);
            return;
        }
        let pipe = Pipe::LoadStore;
        let timing = self.timing_of(ins);
        let base_idx = usize::from(addr.base.index());
        self.scalar_wait(probe, pc, self.a_ready[base_idx]);
        let issue_start = self.clock;
        let issue_done = self.vector_issue(probe, pc, pipe, timing.x);
        let slot = pipe_slot(pipe);
        let d = usize::from(dst.index());
        let chain0 = self.vread_until[d][0];
        let pre_pair = issue_done
            .max(self.pipes[slot].next_entry)
            .max(self.scalar_mem_fence)
            .max(chain0);
        let entry0 = self.pair_admit(ins, pre_pair, timing.z * vl as f64);
        if P::ENABLED {
            self.attribute_entry(
                probe,
                pc,
                slot,
                EntryTerms {
                    issue_done,
                    fence: self.scalar_mem_fence,
                    barrier: 0.0,
                    chain0,
                    pre_pair,
                    entry0,
                },
            );
        }

        // Closed-form grant fast path: when the whole element stream is
        // provably conflict-free (idle contention, clear of refresh,
        // bank revisits spaced past recovery, banks free, no chaining
        // delays past entry0), the per-element grant search collapses to
        // arithmetic. Bit-identical to the loop below; skipped under a
        // probe, which needs the per-element wait attribution.
        if !P::ENABLED {
            let chain_max = self.vread_until[d][..vl]
                .iter()
                .fold(0.0_f64, |m, &r| m.max(r));
            let base = self.element_addr(addr, 0) as i64;
            let stride = addr.stride.words();
            if chain_max <= entry0
                && self
                    .mem
                    .stream_conflict_free(base, stride, vl as u32, entry0, timing.z)
            {
                self.mem
                    .claim_stream(base, stride, vl as u32, entry0, timing.z);
                for e in 0..vl {
                    let word = self.element_addr(addr, e);
                    let value = self.mem.peek(word);
                    self.vdata[d][e] = value;
                    self.vready[d][e] = q(entry0 + timing.z * e as f64 + timing.y);
                }
                let last_entry = entry0 + timing.z * (vl - 1) as f64;
                self.stats.elements[slot] += vl as u64;
                self.vector_retire(
                    pc,
                    ins,
                    pipe,
                    timing,
                    issue_start,
                    Schedule {
                        entry0,
                        last_entry,
                        first_result: entry0 + timing.y,
                        last_result: last_entry + timing.y,
                    },
                );
                return;
            }
        }

        let lane = lane_of(slot);
        let mut entry;
        let mut first_entry = 0.0;
        let mut prev = f64::NEG_INFINITY;
        let mut first_result = 0.0;
        for e in 0..vl {
            let earliest = if e == 0 {
                entry0
            } else {
                let ideal = prev + timing.z;
                let t = ideal.max(self.vread_until[d][e]);
                if P::ENABLED {
                    probe.stall(lane, StallCause::ChainWait, t - ideal, pc);
                }
                t
            };
            let word = self.element_addr(addr, e);
            let before = if P::ENABLED {
                self.mem.wait_breakdown()
            } else {
                WaitBreakdown::default()
            };
            let (granted, value) = self.mem.read(word, earliest);
            if P::ENABLED {
                Self::attribute_mem(probe, lane, pc, before, self.mem.wait_breakdown());
            }
            entry = granted;
            if e == 0 {
                first_entry = entry;
                first_result = entry + timing.y;
            }
            self.vdata[d][e] = value;
            self.vready[d][e] = q(entry + timing.y);
            prev = entry;
        }
        let last_entry = prev;
        let last_result = last_entry + timing.y;
        if P::ENABLED {
            probe.busy(lane, timing.z * vl as f64, pc);
            self.acct[slot] = q(last_entry + timing.z);
        }
        self.stats.elements[slot] += vl as u64;
        self.vector_retire(
            pc,
            ins,
            pipe,
            timing,
            issue_start,
            Schedule {
                entry0: first_entry,
                last_entry,
                first_result,
                last_result,
            },
        );
    }

    fn vector_store<P: Probe>(
        &mut self,
        probe: &mut P,
        pc: usize,
        ins: &Instruction,
        src: VReg,
        addr: MemRef,
    ) {
        let vl = self.vl as usize;
        if vl == 0 {
            self.issue_scalar(probe, pc);
            return;
        }
        let pipe = Pipe::LoadStore;
        let timing = self.timing_of(ins);
        let base_idx = usize::from(addr.base.index());
        self.scalar_wait(probe, pc, self.a_ready[base_idx]);
        let issue_start = self.clock;
        let issue_done = self.vector_issue(probe, pc, pipe, timing.x);
        let slot = pipe_slot(pipe);
        let srcop = VOperand::V(src);
        let barrier = self.no_chain_barrier(&[srcop]);
        let chain0 = self.operand_ready(srcop, 0);
        let pre_pair = issue_done
            .max(self.pipes[slot].next_entry)
            .max(self.scalar_mem_fence)
            .max(barrier)
            .max(chain0);
        let entry0 = self.pair_admit(ins, pre_pair, timing.z * vl as f64);
        if P::ENABLED {
            self.attribute_entry(
                probe,
                pc,
                slot,
                EntryTerms {
                    issue_done,
                    fence: self.scalar_mem_fence,
                    barrier,
                    chain0,
                    pre_pair,
                    entry0,
                },
            );
        }

        // Closed-form grant fast path — see the twin in `vector_load`.
        // Stores additionally require the source operand fully ready by
        // entry0, since element entries chain on it.
        if !P::ENABLED {
            let src_max = self.vready[usize::from(src.index())][..vl]
                .iter()
                .fold(0.0_f64, |m, &r| m.max(r));
            let base = self.element_addr(addr, 0) as i64;
            let stride = addr.stride.words();
            if src_max <= entry0
                && self
                    .mem
                    .stream_conflict_free(base, stride, vl as u32, entry0, timing.z)
            {
                self.mem
                    .claim_stream(base, stride, vl as u32, entry0, timing.z);
                let values = self.vdata[usize::from(src.index())];
                for (e, &value) in values.iter().enumerate().take(vl) {
                    let entry = entry0 + timing.z * e as f64;
                    self.mark_read(srcop, e, entry);
                    let word = self.element_addr(addr, e);
                    self.mem.poke(word, value);
                    self.cache.invalidate(word);
                }
                let last_entry = entry0 + timing.z * (vl - 1) as f64;
                self.stats.elements[slot] += vl as u64;
                self.vector_retire(
                    pc,
                    ins,
                    pipe,
                    timing,
                    issue_start,
                    Schedule {
                        entry0,
                        last_entry,
                        first_result: entry0 + timing.y,
                        last_result: last_entry + timing.y,
                    },
                );
                return;
            }
        }

        let lane = lane_of(slot);
        let values = self.vdata[usize::from(src.index())];
        let mut first_entry = 0.0;
        let mut prev = f64::NEG_INFINITY;
        for (e, &value) in values.iter().enumerate().take(vl) {
            let earliest = if e == 0 {
                entry0
            } else {
                let ideal = prev + timing.z;
                let t = ideal.max(self.operand_ready(srcop, e));
                if P::ENABLED {
                    probe.stall(lane, StallCause::ChainWait, t - ideal, pc);
                }
                t
            };
            self.mark_read(srcop, e, earliest);
            let word = self.element_addr(addr, e);
            let before = if P::ENABLED {
                self.mem.wait_breakdown()
            } else {
                WaitBreakdown::default()
            };
            let granted = self.mem.write(word, value, earliest);
            if P::ENABLED {
                Self::attribute_mem(probe, lane, pc, before, self.mem.wait_breakdown());
            }
            self.cache.invalidate(word);
            if e == 0 {
                first_entry = granted;
            }
            prev = granted;
        }
        let last_entry = prev;
        let last_result = last_entry + timing.y;
        if P::ENABLED {
            probe.busy(lane, timing.z * vl as f64, pc);
            self.acct[slot] = q(last_entry + timing.z);
        }
        self.stats.elements[slot] += vl as u64;
        self.vector_retire(
            pc,
            ins,
            pipe,
            timing,
            issue_start,
            Schedule {
                entry0: first_entry,
                last_entry,
                first_result: first_entry + timing.y,
                last_result,
            },
        );
    }

    fn scalar_addr(&self, addr: MemRef) -> Result<u64, SimError> {
        let base = self.a[usize::from(addr.base.index())] + addr.offset;
        if base < 0 || base % WORD_BYTES as i64 != 0 {
            return Err(SimError::BadAddress { byte_addr: base });
        }
        Ok((base / WORD_BYTES as i64) as u64)
    }

    /// Opens the scalar-memory lane's account for an access starting at
    /// `start`: idle until the issue clock, then the wait for the shared
    /// memory port.
    fn scalar_mem_open<P: Probe>(&mut self, probe: &mut P, pc: usize, start: f64) {
        let run = self.acct[Lane::ScalarMem as usize];
        probe.idle(Lane::ScalarMem, (self.clock - run).max(0.0));
        let run = run.max(self.clock);
        probe.stall(
            Lane::ScalarMem,
            StallCause::MemPortConflict,
            (start - run).max(0.0),
            pc,
        );
    }

    /// Closes the scalar-memory lane's account for an access that ran
    /// `start..done`: the memory-system wait split by cause, the cache
    /// hit latency as busy time, and whatever remains (the miss penalty,
    /// if any) as a scalar-cache miss.
    fn scalar_mem_close<P: Probe>(
        &mut self,
        probe: &mut P,
        pc: usize,
        before: WaitBreakdown,
        start: f64,
        done: f64,
    ) {
        let after = self.mem.wait_breakdown();
        Self::attribute_mem(probe, Lane::ScalarMem, pc, before, after);
        let mem_wait = after.total() - before.total();
        let hit = self.config.cache.hit_latency as f64;
        probe.busy(Lane::ScalarMem, hit, pc);
        probe.stall(
            Lane::ScalarMem,
            StallCause::ScalarCacheMiss,
            (done - start) - mem_wait - hit,
            pc,
        );
        self.acct[Lane::ScalarMem as usize] = done;
    }

    /// Raises the load/store pipe's fence after a scalar access,
    /// remembering the raise so the next vector memory instruction can
    /// attribute its wait to the shared port.
    fn fence_vector_stream(&mut self, done: f64) {
        self.scalar_mem_fence = self.scalar_mem_fence.max(done);
        let slot = pipe_slot(Pipe::LoadStore);
        let p = &mut self.pipes[slot];
        if done > p.next_entry {
            self.credits[slot].fence = q(self.credits[slot].fence + (done - p.next_entry));
            p.next_entry = done;
        }
    }

    fn scalar_load<P: Probe>(
        &mut self,
        probe: &mut P,
        pc: usize,
        addr: MemRef,
        dst: ScalarReg,
    ) -> Result<(), SimError> {
        let base_idx = usize::from(addr.base.index());
        self.scalar_wait(probe, pc, self.a_ready[base_idx]);
        self.issue_scalar(probe, pc);
        let word = self.scalar_addr(addr)?;
        // The single memory port: the scalar access waits for the vector
        // memory stream scheduled so far, and fences later vector memory
        // instructions — this is what splits chimes (§3.3).
        let start = self
            .clock
            .max(self.pipes[pipe_slot(Pipe::LoadStore)].next_entry);
        let before = if P::ENABLED {
            self.scalar_mem_open(probe, pc, start);
            self.mem.wait_breakdown()
        } else {
            WaitBreakdown::default()
        };
        let (done, value) = self.cache.read(&mut self.mem, word, start);
        let done = q(done);
        if P::ENABLED {
            self.scalar_mem_close(probe, pc, before, start, done);
        }
        self.fence_vector_stream(done);
        self.write_scalar_raw(dst, encode_loaded(dst, value), done);
        Ok(())
    }

    fn scalar_store<P: Probe>(
        &mut self,
        probe: &mut P,
        pc: usize,
        src: ScalarReg,
        addr: MemRef,
    ) -> Result<(), SimError> {
        let base_idx = usize::from(addr.base.index());
        let (bits, src_ready) = self.read_scalar_raw(src);
        self.scalar_wait(probe, pc, self.a_ready[base_idx].max(src_ready));
        self.issue_scalar(probe, pc);
        let word = self.scalar_addr(addr)?;
        let value = match src {
            ScalarReg::S(_) => f64::from_bits(bits),
            ScalarReg::A(_) => bits as i64 as f64,
        };
        let start = self
            .clock
            .max(self.pipes[pipe_slot(Pipe::LoadStore)].next_entry);
        let before = if P::ENABLED {
            self.scalar_mem_open(probe, pc, start);
            self.mem.wait_breakdown()
        } else {
            WaitBreakdown::default()
        };
        let done = q(self.cache.write(&mut self.mem, word, value, start));
        if P::ENABLED {
            self.scalar_mem_close(probe, pc, before, start, done);
        }
        self.fence_vector_stream(done);
        self.end = self.end.max(done);
        Ok(())
    }

    // ---- steady-state fast-forward ------------------------------------
    //
    // Detection and the exactness argument live in the `fastfwd` module;
    // this section supplies the machine-specific pieces: the discrete
    // key, the canonical field visit order (snapshot and translation MUST
    // agree), the per-instruction path recording, and the functional
    // "warp" replay of recorded periods.

    fn ff_banks(&self) -> u32 {
        self.mem.config().banks
    }

    /// Discrete state that must match exactly for two loop-head arrivals
    /// to be candidate period endpoints. The clock phases force the
    /// period's clock delta to be a multiple of the refresh period and of
    /// the contention pattern period, which is what preserves all modular
    /// arithmetic under translation.
    fn ff_key(&self) -> Vec<u64> {
        let mc = self.mem.config();
        let mut key = Vec::with_capacity(6 + 2 * self.active.len());
        key.push(u64::from(self.vl));
        key.push(u64::from(self.tflag));
        key.push(self.active.len() as u64);
        for av in &self.active {
            key.push(u64::from(u32::from_le_bytes(av.pair_reads)));
            key.push(u64::from(u32::from_le_bytes(av.pair_writes)));
        }
        // Phases are compared as integer tick residues: the clock is
        // canonical on the 1/20 grid, so its tick count is exact and the
        // residues repeat bitwise whenever the true phase repeats.
        let clock_ticks = (self.clock * TICKS_PER_CYCLE).round() as u64;
        if mc.refresh_enabled {
            key.push(clock_ticks % (mc.refresh_period * TICKS_PER_CYCLE as u64));
        }
        let pp = mc.contention.pattern_period(mc.banks);
        if pp > 1 {
            key.push(clock_ticks % (pp * TICKS_PER_CYCLE as u64));
        }
        key
    }

    /// Full timing-state snapshot. `fields[0]` must be the clock, and the
    /// visit order here must match [`Cpu::ff_apply_shift`] exactly.
    fn ff_snapshot<P: Probe>(&self, probe: &P, executed: u64) -> Snapshot {
        let mut fields = Vec::with_capacity(
            26 + Lane::COUNT + 2 * 8 * VLEN + self.active.len() + self.mem.bank_state().len(),
        );
        fields.push(self.clock);
        fields.push(self.end);
        fields.push(self.scalar_mem_fence);
        for p in &self.pipes {
            fields.push(p.next_entry);
            fields.push(p.issue_gate);
        }
        fields.extend_from_slice(&self.a_ready);
        fields.extend_from_slice(&self.s_ready);
        fields.extend_from_slice(&self.acct);
        for c in &self.credits {
            fields.push(c.bubble);
            fields.push(c.reduction);
            fields.push(c.fence);
        }
        for v in &self.vready {
            fields.extend_from_slice(v);
        }
        for v in &self.vread_until {
            fields.extend_from_slice(v);
        }
        for av in &self.active {
            fields.push(av.end);
        }
        fields.extend_from_slice(self.mem.bank_state());
        Snapshot {
            key: self.ff_key(),
            fields,
            mem_accesses: self.mem.access_count(),
            mem_waited: self.mem.wait_cycles(),
            mem_breakdown: self.mem.wait_breakdown(),
            probe: probe.ff_counters().unwrap_or_default(),
            executed,
        }
    }

    /// Translates every timing field by `k` periods. Same visit order as
    /// [`Cpu::ff_snapshot`]. Deltas are in ticks; the translation runs
    /// in integer tick arithmetic so it reproduces the canonical grid
    /// values the naive run would have stored.
    fn ff_apply_shift(&mut self, rec: &PeriodRecord, k: u64) {
        let kf = k as f64;
        let mut it = rec.field_deltas.iter();
        {
            let mut shift = |f: &mut f64| {
                *f =
                    fastfwd::translate_ticks(*f, *it.next().expect("fast-forward field count"), kf);
            };
            shift(&mut self.clock);
            shift(&mut self.end);
            shift(&mut self.scalar_mem_fence);
            for p in &mut self.pipes {
                shift(&mut p.next_entry);
                shift(&mut p.issue_gate);
            }
            for r in &mut self.a_ready {
                shift(r);
            }
            for r in &mut self.s_ready {
                shift(r);
            }
            for r in &mut self.acct {
                shift(r);
            }
            for c in &mut self.credits {
                shift(&mut c.bubble);
                shift(&mut c.reduction);
                shift(&mut c.fence);
            }
            for v in &mut self.vready {
                for r in v.iter_mut() {
                    shift(r);
                }
            }
            for v in &mut self.vread_until {
                for r in v.iter_mut() {
                    shift(r);
                }
            }
            for av in &mut self.active {
                shift(&mut av.end);
            }
            for b in self.mem.bank_state_mut() {
                shift(b);
            }
        }
        assert!(it.next().is_none(), "fast-forward field order drift");
        self.mem
            .ff_apply(rec.mem_accesses, rec.mem_waited, rec.mem_breakdown, k);
    }

    /// Drives the detector at a taken backward branch to `target`.
    /// Returns true when a verified period record is armed for warping.
    fn ff_loop_head<P: Probe>(&mut self, probe: &mut P, target: usize, executed: u64) -> bool {
        self.ff_probes += 1;
        let h = hash_words(&self.ff_key());
        match self.ff.arrival(target, h) {
            ArrivalAction::Nothing => false,
            ArrivalAction::Snapshot(why) => {
                let snap = self.ff_snapshot(probe, executed);
                match why {
                    SnapshotWhy::Base => {
                        self.ff.begin(snap);
                        false
                    }
                    SnapshotWhy::Measure => {
                        self.ff.measure(snap);
                        false
                    }
                    SnapshotWhy::Confirm => self.ff.confirm(snap),
                }
            }
        }
    }

    /// Captures the verification payload of an instruction about to be
    /// recorded (before execution, so operand registers are pre-step).
    fn ff_prestep(&mut self, ins: &Instruction) -> PreRec {
        use Instruction::*;
        match ins {
            VLoad { addr, .. } | VStore { addr, .. } => {
                let vl = self.vl;
                let residue = if vl == 0 {
                    0
                } else {
                    (self.element_addr(*addr, 0) % u64::from(self.ff_banks())) as u32
                };
                PreRec::VecMem {
                    residue,
                    stride: addr.stride.words(),
                    vl,
                }
            }
            SLoad { addr, .. } => PreRec::SMem {
                residue: self.ff_scalar_residue(*addr),
                hits_before: self.cache.hits(),
                store: false,
            },
            SStore { addr, .. } => PreRec::SMem {
                residue: self.ff_scalar_residue(*addr),
                hits_before: self.cache.hits(),
                store: true,
            },
            _ => PreRec::Plain,
        }
    }

    fn ff_scalar_residue(&self, addr: MemRef) -> u32 {
        self.scalar_addr(addr)
            .map(|w| (w % u64::from(self.ff_banks())) as u32)
            .unwrap_or(0)
    }

    /// Finalizes a recorded step after execution (cache hit/miss outcome
    /// is only known post-step).
    fn ff_poststep(&mut self, pc: usize, pre: PreRec) {
        let check = match pre {
            PreRec::Plain => StepCheck::Plain,
            PreRec::VecMem {
                residue,
                stride,
                vl,
            } => StepCheck::VecMem {
                residue,
                stride,
                vl,
            },
            PreRec::SMem {
                residue,
                hits_before,
                store,
            } => StepCheck::SMem {
                residue,
                hit: self.cache.hits() > hits_before,
                store,
            },
        };
        self.ff.push_step(Step {
            pc: pc as u32,
            check,
        });
    }

    /// Replays the verified period functionally as many times as the
    /// program keeps following it, then translates all timing state.
    /// Returns the number of instructions skipped over.
    fn ff_warp<P: Probe>(
        &mut self,
        probe: &mut P,
        program: &Program,
        loop_pc: usize,
        executed: u64,
    ) -> u64 {
        let Some(rec) = self.ff.record.take() else {
            self.ff.finish_warp();
            return 0;
        };
        if rec.steps.is_empty() || rec.instructions == 0 {
            self.ff.finish_warp();
            return 0;
        }
        let budget = self.config.max_instructions.saturating_sub(executed) / rec.instructions;
        // Cap k so every translated field stays far inside the range
        // where integer f64 arithmetic is exact.
        let max_d = rec.field_deltas.iter().fold(0.0_f64, |m, d| m.max(d.abs()));
        let k_cap = if max_d > 0.0 {
            (1.0e15 / max_d) as u64
        } else {
            u64::MAX
        };
        let k_max = budget.min(k_cap);
        // Only vector registers the period writes need checkpointing —
        // everything else it touches is either scalar (cheap to copy) or
        // journaled (memory pokes, cache tags).
        let mut written = [false; VREGS];
        for step in &rec.steps {
            if let Some(d) = program
                .instructions()
                .get(step.pc as usize)
                .and_then(written_vreg)
            {
                written[d] = true;
            }
        }
        let mut scratch = WarpScratch {
            a: self.a,
            s: self.s,
            vl: self.vl,
            tflag: self.tflag,
            vdata: self.vdata.clone(),
            written,
            stats: self.stats.clone(),
            cache_mark: self.cache.checkpoint(),
            cache_log: Vec::new(),
            undo: Vec::new(),
            undo_data: Vec::new(),
        };
        let mut k: u64 = 0;
        while k < k_max {
            scratch.a = self.a;
            scratch.s = self.s;
            scratch.vl = self.vl;
            scratch.tflag = self.tflag;
            for (d, row) in scratch.vdata.iter_mut().enumerate() {
                if scratch.written[d] {
                    *row = self.vdata[d];
                }
            }
            scratch.stats.clone_from(&self.stats);
            scratch.cache_mark = self.cache.checkpoint();
            scratch.cache_log.clear();
            scratch.undo.clear();
            scratch.undo_data.clear();
            if self.warp_one(program, &rec, loop_pc, &mut scratch) {
                k += 1;
            } else {
                // Roll the half-replayed iteration back; exact simulation
                // re-runs it (loop exits and strip-length changes land
                // here).
                for u in scratch.undo.iter().rev() {
                    match *u {
                        UndoRec::Word(addr, old) => self.mem.poke(addr, old),
                        UndoRec::Run { base, off, len } => self
                            .mem
                            .poke_run(base, len)
                            .expect("undo run was in bounds when journaled")
                            .copy_from_slice(&scratch.undo_data[off..off + len]),
                    }
                }
                self.cache.rollback(scratch.cache_mark, &scratch.cache_log);
                self.a = scratch.a;
                self.s = scratch.s;
                self.vl = scratch.vl;
                self.tflag = scratch.tflag;
                for (d, row) in self.vdata.iter_mut().enumerate() {
                    if scratch.written[d] {
                        *row = scratch.vdata[d];
                    }
                }
                self.stats.clone_from(&scratch.stats);
                break;
            }
        }
        if k > 0 {
            self.ff_apply_shift(&rec, k);
            probe.ff_apply(&rec.probe_deltas, k as f64);
        }
        self.ff.finish_warp();
        k * rec.instructions
    }

    /// One functional pass over the recorded period. Returns false (for
    /// rollback) at the first deviation from the recorded path.
    fn warp_one(
        &mut self,
        program: &Program,
        rec: &PeriodRecord,
        loop_pc: usize,
        scratch: &mut WarpScratch,
    ) -> bool {
        let instrs = program.instructions();
        let mut cur = loop_pc;
        for step in &rec.steps {
            if cur != step.pc as usize {
                return false;
            }
            let Some(ins) = instrs.get(cur) else {
                return false;
            };
            match self.warp_step(program, ins, cur, step, scratch) {
                Some(next) => cur = next,
                None => return false,
            }
        }
        cur == loop_pc
    }

    /// Functional-only execution of one instruction during a warp:
    /// register and memory *data* semantics, statistics, cache tags —
    /// no clocks, no grants, no probes. Mirrors [`Cpu::step`]'s data
    /// effects exactly; any mismatch with the recorded check returns
    /// `None`.
    fn warp_step(
        &mut self,
        program: &Program,
        ins: &Instruction,
        pc: usize,
        step: &Step,
        scratch: &mut WarpScratch,
    ) -> Option<usize> {
        use Instruction::*;
        self.stats.instructions.bump(ins.class());
        match ins {
            VLoad { addr, dst } => self.warp_vload(step, *addr, *dst)?,
            VStore { src, addr } => self.warp_vstore(step, *src, *addr, scratch)?,
            VAdd { a, b, dst } => self.warp_arith(step, ins, *a, *b, *dst, |x, y| x + y)?,
            VSub { a, b, dst } => self.warp_arith(step, ins, *a, *b, *dst, |x, y| x - y)?,
            VMul { a, b, dst } => self.warp_arith(step, ins, *a, *b, *dst, |x, y| x * y)?,
            VDiv { a, b, dst } => self.warp_arith(step, ins, *a, *b, *dst, |x, y| x / y)?,
            VNeg { src, dst } => self.warp_arith(
                step,
                ins,
                VOperand::V(*src),
                VOperand::V(*src),
                *dst,
                |x, _| -x,
            )?,
            VSum { src, dst } => self.warp_reduce(step, ins, *src, *dst, false, 1.0)?,
            VRAdd { src, acc } => self.warp_reduce(step, ins, *src, *acc, true, 1.0)?,
            VRSub { src, acc } => self.warp_reduce(step, ins, *src, *acc, true, -1.0)?,
            SetVl { src } => {
                plain_check(step)?;
                let i = usize::from(src.index());
                self.vl = (self.s[i] as i64).clamp(0, i64::from(MAX_VL)) as u32;
            }
            SetVlImm { value } => {
                plain_check(step)?;
                self.vl = (*value).min(MAX_VL);
            }
            SMovImm { value, dst } => {
                plain_check(step)?;
                let bits = match value {
                    ScalarValue::Int(i) => *i as u64,
                    ScalarValue::Fp(x) => x.to_bits(),
                };
                self.warp_write_scalar(*dst, bits);
            }
            SMov { src, dst } => {
                plain_check(step)?;
                let (bits, _) = self.read_scalar_raw(*src);
                self.warp_write_scalar(*dst, bits);
            }
            SIntOp { op, src, dst } => {
                plain_check(step)?;
                let (sv, _) = self.read_int_operand(*src);
                let (dv, _) = self.read_scalar_int(*dst);
                self.warp_write_scalar(*dst, op.apply(dv, sv) as u64);
            }
            SFpOp { op, a, b, dst } => {
                plain_check(step)?;
                let va = f64::from_bits(self.s[usize::from(a.index())]);
                let vb = f64::from_bits(self.s[usize::from(b.index())]);
                self.s[usize::from(dst.index())] = op.apply(va, vb).to_bits();
            }
            SLoad { addr, dst } => {
                let StepCheck::SMem {
                    residue,
                    hit,
                    store: false,
                } = step.check
                else {
                    return None;
                };
                let word = self.scalar_addr(*addr).ok()?;
                if self.cache.tag_read_logged(word, &mut scratch.cache_log) != hit {
                    return None;
                }
                if !hit && (word % u64::from(self.ff_banks())) as u32 != residue {
                    return None;
                }
                let value = self.mem.peek(word);
                self.warp_write_scalar(*dst, encode_loaded(*dst, value));
            }
            SStore { src, addr } => {
                let StepCheck::SMem {
                    residue,
                    hit,
                    store: true,
                } = step.check
                else {
                    return None;
                };
                let word = self.scalar_addr(*addr).ok()?;
                if (word % u64::from(self.ff_banks())) as u32 != residue {
                    return None;
                }
                if self.cache.tag_write_logged(word, &mut scratch.cache_log) != hit {
                    return None;
                }
                let (bits, _) = self.read_scalar_raw(*src);
                let value = match src {
                    ScalarReg::S(_) => f64::from_bits(bits),
                    ScalarReg::A(_) => bits as i64 as f64,
                };
                scratch.undo.push(UndoRec::Word(word, self.mem.peek(word)));
                self.mem.poke(word, value);
            }
            Cmp { op, lhs, rhs } => {
                plain_check(step)?;
                let (lv, _) = self.read_int_operand(*lhs);
                let (rv, _) = self.read_scalar_int(*rhs);
                self.tflag = op.apply(lv, rv);
            }
            BranchT { target } | BranchF { target } => {
                plain_check(step)?;
                let take = if matches!(ins, BranchT { .. }) {
                    self.tflag
                } else {
                    !self.tflag
                };
                if take {
                    self.stats.branches_taken += 1;
                    return Some(self.resolve(program, target));
                }
            }
            Jump { target } => {
                plain_check(step)?;
                self.stats.branches_taken += 1;
                return Some(self.resolve(program, target));
            }
            Nop => plain_check(step)?,
            _ => return None,
        }
        Some(pc + 1)
    }

    fn warp_write_scalar(&mut self, r: ScalarReg, bits: u64) {
        match r {
            ScalarReg::S(s) => self.s[usize::from(s.index())] = bits,
            ScalarReg::A(a) => self.a[usize::from(a.index())] = bits as i64,
        }
    }

    fn warp_vload(&mut self, step: &Step, addr: MemRef, dst: VReg) -> Option<()> {
        let StepCheck::VecMem {
            residue,
            stride,
            vl,
        } = step.check
        else {
            return None;
        };
        if self.vl != vl || addr.stride.words() != stride {
            return None;
        }
        let n = vl as usize;
        if n == 0 {
            return Some(());
        }
        let base = self.element_addr(addr, 0);
        if (base % u64::from(self.ff_banks())) as u32 != residue {
            return None;
        }
        let d = usize::from(dst.index());
        if stride == 1 {
            self.vdata[d][..n].copy_from_slice(self.mem.peek_run(base, n)?);
        } else {
            for e in 0..n {
                let word = self.element_addr(addr, e);
                let value = self.mem.peek(word);
                self.vdata[d][e] = value;
            }
        }
        self.stats.elements[0] += u64::from(vl);
        Some(())
    }

    fn warp_vstore(
        &mut self,
        step: &Step,
        src: VReg,
        addr: MemRef,
        scratch: &mut WarpScratch,
    ) -> Option<()> {
        let StepCheck::VecMem {
            residue,
            stride,
            vl,
        } = step.check
        else {
            return None;
        };
        if self.vl != vl || addr.stride.words() != stride {
            return None;
        }
        let n = vl as usize;
        if n == 0 {
            return Some(());
        }
        let base = self.element_addr(addr, 0);
        if (base % u64::from(self.ff_banks())) as u32 != residue {
            return None;
        }
        let si = usize::from(src.index());
        if stride == 1 {
            let off = scratch.undo_data.len();
            scratch
                .undo_data
                .extend_from_slice(self.mem.peek_run(base, n)?);
            scratch.undo.push(UndoRec::Run { base, off, len: n });
            self.mem
                .poke_run(base, n)
                .expect("peek_run already bounds-checked the run")
                .copy_from_slice(&self.vdata[si][..n]);
            self.cache
                .invalidate_run_logged(base, n, &mut scratch.cache_log);
        } else {
            let values = self.vdata[si];
            for (e, &value) in values.iter().enumerate().take(n) {
                let word = self.element_addr(addr, e);
                scratch.undo.push(UndoRec::Word(word, self.mem.peek(word)));
                self.mem.poke(word, value);
                self.cache.invalidate_logged(word, &mut scratch.cache_log);
            }
        }
        self.stats.elements[0] += u64::from(vl);
        Some(())
    }

    fn warp_arith(
        &mut self,
        step: &Step,
        ins: &Instruction,
        a: VOperand,
        b: VOperand,
        dst: VReg,
        f: impl Fn(f64, f64) -> f64,
    ) -> Option<()> {
        plain_check(step)?;
        let vl = self.vl as usize;
        if vl == 0 {
            return Some(());
        }
        let slot = pipe_slot(ins.pipe().expect("vector arith pipe"));
        let va = self.operand_values(a);
        let vb = self.operand_values(b);
        let d = usize::from(dst.index());
        for e in 0..vl {
            self.vdata[d][e] = f(va[e], vb[e]);
        }
        self.stats.elements[slot] += vl as u64;
        self.stats.flops += vl as u64;
        Some(())
    }

    fn warp_reduce(
        &mut self,
        step: &Step,
        ins: &Instruction,
        src: VReg,
        dst: SReg,
        accumulate: bool,
        sign: f64,
    ) -> Option<()> {
        // Unreachable in practice — the reduction element rate (Z = 1.35)
        // yields fractional deltas that never pass the integer guard —
        // but kept faithful to `vector_reduce_signed` regardless.
        plain_check(step)?;
        let vl = self.vl as usize;
        if vl == 0 {
            return Some(());
        }
        let slot = pipe_slot(ins.pipe().expect("reduction pipe"));
        let d = usize::from(dst.index());
        let s: f64 = self.vdata[usize::from(src.index())][..vl].iter().sum();
        let base = if accumulate {
            f64::from_bits(self.s[d])
        } else {
            0.0
        };
        self.s[d] = (base + sign * s).to_bits();
        self.stats.elements[slot] += vl as u64;
        self.stats.flops += vl as u64;
        Some(())
    }
}

fn plain_check(step: &Step) -> Option<()> {
    if step.check == StepCheck::Plain {
        Some(())
    } else {
        None
    }
}

/// Pre-execution half of a recorded step (see [`Cpu::ff_prestep`]).
enum PreRec {
    Plain,
    VecMem {
        residue: u32,
        stride: i64,
        vl: u32,
    },
    SMem {
        residue: u32,
        hits_before: u64,
        store: bool,
    },
}

/// Reusable rollback buffers for the warp replay: one checkpoint of the
/// functional state, refreshed before each replayed iteration. Memory
/// pokes and cache tag changes are journaled (`undo` / `cache_log`)
/// rather than checkpointed, and only vector registers in the period's
/// write set (`written`) are copied.
struct WarpScratch {
    a: [i64; 8],
    s: [u64; 8],
    vl: u32,
    tflag: bool,
    vdata: Vec<[f64; VLEN]>,
    written: [bool; VREGS],
    stats: RunStats,
    cache_mark: (u64, u64),
    cache_log: Vec<(usize, Option<u64>)>,
    undo: Vec<UndoRec>,
    undo_data: Vec<f64>,
}

/// One journaled memory mutation; `Run` points into
/// [`WarpScratch::undo_data`].
enum UndoRec {
    Word(u64, f64),
    Run { base: u64, off: usize, len: usize },
}

/// The vector register an instruction writes, if any — the warp replay
/// only checkpoints these.
fn written_vreg(ins: &Instruction) -> Option<usize> {
    use Instruction::*;
    match ins {
        VLoad { dst, .. }
        | VAdd { dst, .. }
        | VSub { dst, .. }
        | VMul { dst, .. }
        | VDiv { dst, .. }
        | VNeg { dst, .. } => Some(usize::from(dst.index())),
        _ => None,
    }
}

/// Memory words are `f64`; an address register receiving a load converts
/// the value to an integer (addresses stored in memory round-trip through
/// `f64`, exact below 2^53).
fn encode_loaded(dst: ScalarReg, value: f64) -> u64 {
    match dst {
        ScalarReg::S(_) => value.to_bits(),
        ScalarReg::A(_) => (value as i64) as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use c240_isa::ProgramBuilder;

    fn quiet_config() -> SimConfig {
        SimConfig::c240().without_refresh()
    }

    /// §3.3 worked example: ld/add/mul chained chime at VL=128 completes
    /// in 162 cycles; without chaining 422.
    #[test]
    fn chaining_example_of_section_3_3() {
        let mut b = ProgramBuilder::new();
        b.set_vl_imm(128);
        b.vload("a5", 0, "v0");
        b.vadd("v0", "v1", "v2");
        b.vmul("v2", "v3", "v5");
        b.halt();
        let p = b.build().unwrap();

        let mut cpu = Cpu::new(quiet_config());
        let stats = cpu.run(&p).unwrap();
        // Issue starts after the set-vl (1 cycle); the paper counts from
        // the load's issue. Completion = last mul result.
        // ld enters at 1+2=3, elements 3..130, v0[e] ready 13+e.
        // add chained: entry=13+e, ready 23+e; mul: entry 23+e ready 35+e.
        // Last result at 35+127 = 162 → elapsed 162 - issue_start(1) = 161,
        // i.e. the paper's 162 counting inclusively.
        let elapsed = stats.cycles - 1.0;
        assert!(
            (161.0..=163.0).contains(&elapsed),
            "chained chime took {elapsed}"
        );

        let mut cpu2 = Cpu::new(quiet_config().without_chaining());
        let stats2 = cpu2.run(&p).unwrap();
        let elapsed2 = stats2.cycles - 1.0;
        assert!(
            (415.0..=425.0).contains(&elapsed2),
            "unchained chime took {elapsed2}"
        );
    }

    /// §3.3: with a second identical chime following, the second chime
    /// asymptotically costs VL + ΣB cycles.
    #[test]
    fn steady_state_chime_costs_vl_plus_bubbles() {
        let chime_loop = |iters: i64| {
            let mut b = ProgramBuilder::new();
            b.set_vl_imm(128);
            b.mov_int(iters, "s0");
            b.label("L");
            b.vload("a5", 0, "v0");
            b.vadd("v0", "v1", "v2");
            b.vmul("v2", "v3", "v5");
            b.int_op_imm("sub", 1, "s0");
            b.cmp_imm("lt", 0, "s0");
            b.branch_true("L");
            b.halt();
            b.build().unwrap()
        };
        let mut cpu = Cpu::new(quiet_config());
        let t20 = cpu.run(&chime_loop(20)).unwrap().cycles;
        let t60 = cpu.run(&chime_loop(60)).unwrap().cycles;
        // Each iteration is one chime {ld,add,mul}: ΣB = 2+1+1 = 4, so the
        // steady-state period is VL + ΣB = 132 cycles (§3.3: "the B
        // values add 4 cycles to each chime ... 132 cycles per
        // successive chime").
        let period = (t60 - t20) / 40.0;
        assert!(
            (131.5..=132.5).contains(&period),
            "steady chime period {period}, paper says 132"
        );
    }

    /// The paper's LFK1 assembly costs 527 cycles/iteration before
    /// refresh (§3.5) — four chimes of 131 + 132 + 132 + 132.
    #[test]
    fn lfk1_loop_costs_527_per_iteration_without_refresh() {
        let p = lfk1_program(40);
        let mut cpu = Cpu::new(quiet_config());
        cpu.set_areg(5, 0);
        cpu.set_sreg_fp(1, 2.0);
        cpu.set_sreg_fp(3, 3.0);
        cpu.set_sreg_fp(7, 4.0);
        cpu.set_sreg_int(0, 40 * 128);
        let stats = cpu.run(&p).unwrap();
        let per_iter = stats.cycles / 40.0;
        assert!(
            (525.0..=532.0).contains(&per_iter),
            "LFK1 iteration cost {per_iter}, paper says 527"
        );
    }

    /// Fast-forward telemetry is coherent: a steady loop warps at least
    /// once, probes at least as often as it warps, and the skip count
    /// matches [`Cpu::fast_forwarded_instructions`]; with fast-forward
    /// off every counter is zero.
    #[test]
    fn ff_stats_report_probes_warps_and_skips() {
        let p = lfk1_program(40);
        let mut cpu = Cpu::new(quiet_config());
        cpu.set_sreg_int(0, 40 * 128);
        cpu.run(&p).unwrap();
        let stats = cpu.ff_stats();
        assert!(stats.warps >= 1, "steady LFK1 loop should warp: {stats:?}");
        assert!(stats.probes >= stats.warps, "{stats:?}");
        assert_eq!(
            stats.skipped_instructions,
            cpu.fast_forwarded_instructions()
        );
        assert!(stats.skipped_instructions > 0, "{stats:?}");

        let mut exact = Cpu::new(SimConfig {
            fast_forward: false,
            ..quiet_config()
        });
        exact.set_sreg_int(0, 40 * 128);
        exact.run(&p).unwrap();
        assert_eq!(exact.ff_stats(), FfStats::default());
    }

    /// With refresh enabled the same loop costs ≈ 2% more (537.5), and
    /// the full measured time lands close to the paper's 545 (which
    /// includes effects our simulator also exhibits only partially).
    #[test]
    fn lfk1_loop_with_refresh_costs_about_537() {
        let p = lfk1_program(40);
        let mut cpu = Cpu::new(SimConfig::c240());
        cpu.set_areg(5, 0);
        cpu.set_sreg_fp(1, 2.0);
        cpu.set_sreg_fp(3, 3.0);
        cpu.set_sreg_fp(7, 4.0);
        cpu.set_sreg_int(0, 40 * 128);
        let stats = cpu.run(&p).unwrap();
        let per_iter = stats.cycles / 40.0;
        assert!(
            (533.0..=548.0).contains(&per_iter),
            "LFK1 iteration cost with refresh {per_iter}, paper bound 537.5, measured 545"
        );
    }

    /// Builds the paper's §3.5 LFK1 inner loop (3 loads, 3 muls, 2 adds,
    /// 1 store per strip) running `strips` strips of 128.
    fn lfk1_program(strips: u32) -> Program {
        let mut b = ProgramBuilder::new();
        b.mov_int((strips * 128) as i64, "s0");
        b.label("L7");
        b.set_vl("s0");
        b.vload("a5", 40120, "v0");
        b.vmul("v0", "s1", "v1");
        b.vload("a5", 40128, "v2");
        b.vmul("v2", "s3", "v0");
        b.vadd("v1", "v0", "v3");
        b.vload("a5", 32032, "v1");
        b.vmul("v1", "v3", "v2");
        b.vadd("v2", "s7", "v0");
        b.vstore("v0", "a5", 24024);
        b.int_op_imm("add", 1024, "a5");
        b.int_op_imm("sub", 128, "s0");
        b.cmp_imm("lt", 0, "s0");
        b.branch_true("L7");
        b.halt();
        b.build().unwrap()
    }

    #[test]
    fn functional_vector_add_and_store() {
        let mut b = ProgramBuilder::new();
        b.set_vl_imm(4);
        b.vload("a1", 0, "v0");
        b.vload("a2", 0, "v1");
        b.vadd("v0", "v1", "v2");
        b.vmul("v2", "s1", "v3");
        b.vstore("v3", "a3", 0);
        b.halt();
        let p = b.build().unwrap();
        let mut cpu = Cpu::new(quiet_config());
        for i in 0..4 {
            cpu.mem_mut().poke(i, (i + 1) as f64);
            cpu.mem_mut().poke(100 + i, 10.0);
        }
        cpu.set_areg(1, 0);
        cpu.set_areg(2, 800);
        cpu.set_areg(3, 1600);
        cpu.set_sreg_fp(1, 2.0);
        cpu.run(&p).unwrap();
        for i in 0..4u64 {
            assert_eq!(cpu.mem().peek(200 + i), 2.0 * (i as f64 + 1.0 + 10.0));
        }
    }

    #[test]
    fn strided_load_gathers() {
        let mut b = ProgramBuilder::new();
        b.set_vl_imm(3);
        b.vload_strided("a1", 0, 5, "v0");
        b.vstore("v0", "a2", 0);
        b.halt();
        let p = b.build().unwrap();
        let mut cpu = Cpu::new(quiet_config());
        for i in 0..16 {
            cpu.mem_mut().poke(i, i as f64);
        }
        cpu.set_areg(1, 0);
        cpu.set_areg(2, 800);
        cpu.run(&p).unwrap();
        assert_eq!(cpu.mem().peek(100), 0.0);
        assert_eq!(cpu.mem().peek(101), 5.0);
        assert_eq!(cpu.mem().peek(102), 10.0);
    }

    #[test]
    fn reduction_sums_elements() {
        let mut b = ProgramBuilder::new();
        b.set_vl_imm(8);
        b.vload("a1", 0, "v0");
        b.vsum("v0", "s2");
        b.mov_fp(100.0, "s3");
        b.vradd("v0", "s3");
        b.vrsub("v0", "s3");
        b.halt();
        let p = b.build().unwrap();
        let mut cpu = Cpu::new(quiet_config());
        for i in 0..8 {
            cpu.mem_mut().poke(i, (i + 1) as f64);
        }
        cpu.set_areg(1, 0);
        cpu.run(&p).unwrap();
        assert_eq!(cpu.sreg_fp(2), 36.0);
        assert_eq!(cpu.sreg_fp(3), 100.0); // +36 then -36
    }

    #[test]
    fn reduction_is_slower_than_add() {
        // Z = 1.35 for reductions: a VL=128 sum takes noticeably longer
        // than a VL=128 elementwise add.
        let mut b1 = ProgramBuilder::new();
        b1.set_vl_imm(128);
        b1.vsum("v0", "s2");
        b1.halt();
        let mut b2 = ProgramBuilder::new();
        b2.set_vl_imm(128);
        b2.vadd("v0", "v1", "v2");
        b2.halt();
        let mut cpu = Cpu::new(quiet_config());
        let t_sum = cpu.run(&b1.build().unwrap()).unwrap().cycles;
        let t_add = cpu.run(&b2.build().unwrap()).unwrap().cycles;
        assert!(t_sum > t_add + 40.0, "sum {t_sum} vs add {t_add}");
    }

    #[test]
    fn scalar_load_splits_vector_memory_stream() {
        // Two vector loads with a scalar load between them: the scalar
        // access must wait for the first vector load to drain and fences
        // the second one — two separate chimes plus the scalar access.
        let mut with_split = ProgramBuilder::new();
        with_split.set_vl_imm(128);
        with_split.vload("a1", 0, "v0");
        with_split.sload("a2", 0, "s1");
        with_split.vload("a1", 8192, "v1");
        with_split.halt();
        let mut without = ProgramBuilder::new();
        without.set_vl_imm(128);
        without.vload("a1", 0, "v0");
        without.vload("a1", 8192, "v1");
        without.sload("a2", 0, "s1");
        without.halt();
        let mut cpu = Cpu::new(quiet_config());
        cpu.set_areg(2, 80000);
        let t_split = cpu.run(&with_split.build().unwrap()).unwrap().cycles;
        let mut cpu2 = Cpu::new(quiet_config());
        cpu2.set_areg(2, 80000);
        let t_clean = cpu2.run(&without.build().unwrap()).unwrap().cycles;
        assert!(
            t_split > t_clean + 2.0,
            "split {t_split} should exceed clean {t_clean}"
        );
    }

    #[test]
    fn register_pair_conflict_delays_start() {
        // mul.d v6,v1,v4 after add.d v2,v6,v6: three reads of pair
        // {v2,v6} among concurrent instructions → no chime sharing (§3.3).
        let mut b = ProgramBuilder::new();
        b.set_vl_imm(128);
        b.vadd("v2", "v6", "v6");
        b.vmul("v6", "v1", "v4");
        b.halt();
        let p = b.build().unwrap();
        let mut cpu = Cpu::new(quiet_config());
        let t_constrained = cpu.run(&p).unwrap().cycles;
        let mut cpu2 = Cpu::new(quiet_config().without_pair_constraint());
        let t_free = cpu2.run(&p).unwrap().cycles;
        assert!(
            t_constrained > t_free + 60.0,
            "pair constraint {t_constrained} vs unconstrained {t_free}"
        );
    }

    #[test]
    fn divide_is_long_but_maskable() {
        let mut b = ProgramBuilder::new();
        b.set_vl_imm(128);
        b.vdiv("v0", "v1", "v2");
        b.halt();
        let p = b.build().unwrap();
        let mut cpu = Cpu::new(quiet_config());
        cpu.set_sreg_fp(0, 1.0);
        let t = cpu.run(&p).unwrap().cycles;
        // X + Y + Z·VL = 2 + 72 + 4·128 = 586 (last result lands at
        // entry + Z·(VL-1) + Y = 583 with the set-vl issue cycle).
        assert!((580.0..=590.0).contains(&t), "divide took {t}");
    }

    #[test]
    fn scalar_loop_runs_functionally() {
        let mut b = ProgramBuilder::new();
        b.mov_int(0, "s1");
        b.mov_int(10, "s0");
        b.label("L");
        b.int_op_imm("add", 3, "s1");
        b.int_op_imm("sub", 1, "s0");
        b.cmp_imm("lt", 0, "s0");
        b.branch_true("L");
        b.halt();
        let p = b.build().unwrap();
        let mut cpu = Cpu::new(quiet_config());
        let stats = cpu.run(&p).unwrap();
        assert_eq!(cpu.sreg_fp(1).to_bits() as i64, 30); // raw int in s1
        assert_eq!(stats.branches_taken, 9);
    }

    #[test]
    fn scalar_fp_ops() {
        let mut b = ProgramBuilder::new();
        b.mov_fp(6.0, "s1");
        b.mov_fp(4.0, "s2");
        b.fp_op("add", "s1", "s2", "s3");
        b.fp_op("sub", "s1", "s2", "s4");
        b.fp_op("mul", "s1", "s2", "s5");
        b.fp_op("div", "s1", "s2", "s6");
        b.halt();
        let p = b.build().unwrap();
        let mut cpu = Cpu::new(quiet_config());
        cpu.run(&p).unwrap();
        assert_eq!(cpu.sreg_fp(3), 10.0);
        assert_eq!(cpu.sreg_fp(4), 2.0);
        assert_eq!(cpu.sreg_fp(5), 24.0);
        assert_eq!(cpu.sreg_fp(6), 1.5);
    }

    #[test]
    fn scalar_memory_roundtrip() {
        let mut b = ProgramBuilder::new();
        b.mov_fp(7.5, "s1");
        b.sstore("s1", "a0", 40);
        b.sload("a0", 40, "s2");
        b.halt();
        let p = b.build().unwrap();
        let mut cpu = Cpu::new(quiet_config());
        cpu.run(&p).unwrap();
        assert_eq!(cpu.sreg_fp(2), 7.5);
        assert_eq!(cpu.mem().peek(5), 7.5);
    }

    #[test]
    fn address_loads_convert() {
        let mut b = ProgramBuilder::new();
        b.sload("a0", 0, "a1");
        b.set_vl_imm(1);
        b.vload("a1", 0, "v0");
        b.vstore("v0", "a2", 0);
        b.halt();
        let p = b.build().unwrap();
        let mut cpu = Cpu::new(quiet_config());
        cpu.mem_mut().poke(0, 800.0); // byte address 800 = word 100
        cpu.mem_mut().poke(100, 3.25);
        cpu.set_areg(2, 4000);
        cpu.run(&p).unwrap();
        assert_eq!(cpu.areg(1), 800);
        assert_eq!(cpu.mem().peek(500), 3.25);
    }

    #[test]
    fn runaway_loop_hits_instruction_limit() {
        let mut b = ProgramBuilder::new();
        b.label("L");
        b.jump("L");
        let p = b.build().unwrap();
        let mut config = quiet_config();
        config.max_instructions = 1000;
        let mut cpu = Cpu::new(config);
        let err = cpu.run(&p).unwrap_err();
        assert!(matches!(err, SimError::InstructionLimit { .. }));
    }

    #[test]
    fn falling_off_end_is_an_error() {
        let mut b = ProgramBuilder::new();
        b.nop();
        let p = b.build().unwrap();
        let mut cpu = Cpu::new(quiet_config());
        assert!(matches!(
            cpu.run(&p).unwrap_err(),
            SimError::FellOffEnd { pc: 1 }
        ));
    }

    #[test]
    fn trace_records_vector_instructions() {
        let mut b = ProgramBuilder::new();
        b.set_vl_imm(16);
        b.vload("a0", 0, "v0");
        b.vadd("v0", "v0", "v1");
        b.halt();
        let p = b.build().unwrap();
        let mut cpu = Cpu::new(quiet_config().with_trace());
        cpu.run(&p).unwrap();
        assert_eq!(cpu.trace().events().len(), 2);
        assert!(cpu.trace().events()[0].text.contains("ld.l"));
    }

    #[test]
    fn probed_run_matches_unprobed_and_partitions_wallclock() {
        use c240_obs::CounterProbe;
        let p = lfk1_program(10);
        let setup = |cpu: &mut Cpu| {
            cpu.set_areg(5, 0);
            cpu.set_sreg_fp(1, 2.0);
            cpu.set_sreg_fp(3, 3.0);
            cpu.set_sreg_fp(7, 4.0);
            cpu.set_sreg_int(0, 10 * 128);
        };
        let mut plain = Cpu::new(SimConfig::c240());
        setup(&mut plain);
        let base = plain.run(&p).unwrap();

        let mut cpu = Cpu::new(SimConfig::c240());
        setup(&mut cpu);
        let mut probe = CounterProbe::new();
        let stats = cpu.run_probed(&p, &mut probe).unwrap();

        // Observation must not perturb the model.
        assert_eq!(stats.cycles, base.cycles);

        // Every lane's account partitions the wall clock exactly.
        for (lane, acct) in probe.lanes() {
            let accounted = acct.accounted();
            assert!(
                (accounted - stats.cycles).abs() < 1e-6 * stats.cycles.max(1.0),
                "lane {lane}: accounted {accounted} != cycles {}",
                stats.cycles
            );
        }

        // The memory-wait causes seen by the probe equal the memory
        // system's own breakdown (vector lanes only touch vector memory
        // here; LFK1 has no scalar memory traffic in the loop).
        let totals = probe.totals();
        assert!(
            (totals.memory_wait() - stats.memory_wait_cycles).abs() < 1e-9,
            "probe memory wait {} vs stats {}",
            totals.memory_wait(),
            stats.memory_wait_cycles
        );
        assert!(
            (stats.memory_waits.total() - stats.memory_wait_cycles).abs() < 1e-12,
            "breakdown total {} vs wait {}",
            stats.memory_waits.total(),
            stats.memory_wait_cycles
        );

        // LFK1 runs chained chimes: refresh and tailgate bubbles must
        // both show up in the attribution.
        assert!(totals.get(StallCause::Refresh) > 0.0);
        assert!(totals.get(StallCause::TailgateBubble) > 0.0);
    }

    #[test]
    fn trace_events_carry_their_pc() {
        let mut b = ProgramBuilder::new();
        b.set_vl_imm(16);
        b.vload("a0", 0, "v0");
        b.vadd("v0", "v0", "v1");
        b.halt();
        let p = b.build().unwrap();
        let mut cpu = Cpu::new(quiet_config().with_trace());
        cpu.run(&p).unwrap();
        let pcs: Vec<usize> = cpu.trace().events().iter().map(|e| e.pc).collect();
        assert_eq!(pcs, vec![1, 2]);
    }

    #[test]
    fn trace_respects_configured_cap() {
        let mut b = ProgramBuilder::new();
        b.set_vl_imm(8);
        b.mov_int(6, "s0");
        b.label("L");
        b.vadd("v0", "v0", "v1");
        b.int_op_imm("sub", 1, "s0");
        b.cmp_imm("lt", 0, "s0");
        b.branch_true("L");
        b.halt();
        let p = b.build().unwrap();
        let mut cpu = Cpu::new(quiet_config().with_trace().with_trace_cap(2));
        cpu.run(&p).unwrap();
        assert_eq!(cpu.trace().events().len(), 2);
        assert_eq!(cpu.trace().dropped(), 4);
    }

    #[test]
    fn ablations_zero_their_stall_category() {
        use c240_obs::CounterProbe;
        let p = lfk1_program(4);
        let run_with = |config: SimConfig| {
            let mut cpu = Cpu::new(config);
            cpu.set_areg(5, 0);
            cpu.set_sreg_fp(1, 2.0);
            cpu.set_sreg_fp(3, 3.0);
            cpu.set_sreg_fp(7, 4.0);
            cpu.set_sreg_int(0, 4 * 128);
            let mut probe = CounterProbe::new();
            cpu.run_probed(&p, &mut probe).unwrap();
            probe.totals()
        };
        let no_refresh = run_with(SimConfig::c240().without_refresh());
        assert_eq!(no_refresh.get(StallCause::Refresh), 0.0);
        let no_bubbles = run_with(SimConfig::c240().without_bubbles());
        assert_eq!(no_bubbles.get(StallCause::TailgateBubble), 0.0);
        // The full machine shows both.
        let full = run_with(SimConfig::c240());
        assert!(full.get(StallCause::Refresh) > 0.0);
        assert!(full.get(StallCause::TailgateBubble) > 0.0);
    }

    #[test]
    fn scalar_mem_lane_accounts_cache_misses() {
        use c240_obs::CounterProbe;
        let mut b = ProgramBuilder::new();
        b.sload("a0", 0, "s1"); // cold: miss
        b.sload("a0", 0, "s2"); // warm: hit
        b.halt();
        let p = b.build().unwrap();
        let mut cpu = Cpu::new(quiet_config());
        let mut probe = CounterProbe::new();
        let stats = cpu.run_probed(&p, &mut probe).unwrap();
        assert_eq!(stats.cache_misses, 1);
        assert_eq!(stats.cache_hits, 1);
        let acct = probe.lane(Lane::ScalarMem);
        let miss_penalty = cpu.config().cache.miss_penalty as f64;
        assert!(
            (acct.stalls.get(StallCause::ScalarCacheMiss) - miss_penalty).abs() < 1e-9,
            "miss penalty attribution: {}",
            acct.stalls.get(StallCause::ScalarCacheMiss)
        );
        // Two accesses each pay the hit latency as busy time.
        let hit = cpu.config().cache.hit_latency as f64;
        assert!((acct.busy - 2.0 * hit).abs() < 1e-9, "busy {}", acct.busy);
    }

    #[test]
    fn stats_count_elements_and_flops() {
        let mut b = ProgramBuilder::new();
        b.set_vl_imm(64);
        b.vload("a0", 0, "v0");
        b.vmul("v0", "v0", "v1");
        b.vadd("v1", "v0", "v2");
        b.vstore("v2", "a1", 8192);
        b.halt();
        let p = b.build().unwrap();
        let mut cpu = Cpu::new(quiet_config());
        let stats = cpu.run(&p).unwrap();
        assert_eq!(stats.elements_on(Pipe::LoadStore), 128);
        assert_eq!(stats.elements_on(Pipe::Add), 64);
        assert_eq!(stats.elements_on(Pipe::Multiply), 64);
        assert_eq!(stats.flops, 128);
        assert_eq!(stats.instructions.vector_mem, 2);
        assert_eq!(stats.instructions.vector_fp, 2);
    }
}

#[cfg(test)]
mod edge_tests {
    use super::*;
    use c240_isa::asm::assemble;
    use c240_isa::ProgramBuilder;

    fn quiet() -> SimConfig {
        SimConfig::c240().without_refresh()
    }

    #[test]
    fn unaligned_scalar_address_is_an_error() {
        let mut b = ProgramBuilder::new();
        b.mov_int(3, "a0"); // not 8-byte aligned
        b.sload("a0", 0, "s1");
        b.halt();
        let p = b.build().unwrap();
        let mut cpu = Cpu::new(quiet());
        assert!(matches!(
            cpu.run(&p).unwrap_err(),
            SimError::BadAddress { byte_addr: 3 }
        ));
    }

    #[test]
    fn negative_scalar_address_is_an_error() {
        let mut b = ProgramBuilder::new();
        b.mov_int(-8, "a0");
        b.sstore("s0", "a0", 0);
        b.halt();
        let p = b.build().unwrap();
        let mut cpu = Cpu::new(quiet());
        assert!(matches!(
            cpu.run(&p).unwrap_err(),
            SimError::BadAddress { byte_addr: -8 }
        ));
    }

    #[test]
    fn zero_vl_vector_ops_are_cheap_nops() {
        let p = assemble(
            "mov #0,vl
             ld.l 0(a1),v0
             add.d v0,v0,v1
             mul.d v1,v1,v2
             st.l v2,0(a2)
             sum.d v0,s1
             halt",
        )
        .unwrap();
        let mut cpu = Cpu::new(quiet());
        let stats = cpu.run(&p).unwrap();
        // Only issue slots: no elements, no flops, no memory traffic.
        assert_eq!(stats.flops, 0);
        assert_eq!(stats.memory_accesses, 0);
        assert!(stats.cycles < 10.0, "{}", stats.cycles);
    }

    #[test]
    fn vl_clamps_to_hardware_maximum() {
        let p = assemble(
            "mov #4000,s0
             mov s0,vl
             ld.l 0(a1),v0
             halt",
        )
        .unwrap();
        let mut cpu = Cpu::new(quiet());
        let stats = cpu.run(&p).unwrap();
        assert_eq!(stats.elements_on(Pipe::LoadStore), 128);
    }

    #[test]
    fn negative_count_clamps_vl_to_zero() {
        let p = assemble(
            "mov #-5,s0
             mov s0,vl
             ld.l 0(a1),v0
             halt",
        )
        .unwrap();
        let mut cpu = Cpu::new(quiet());
        let stats = cpu.run(&p).unwrap();
        assert_eq!(stats.elements_on(Pipe::LoadStore), 0);
    }

    #[test]
    fn smov_between_register_files() {
        let p = assemble(
            "mov #816,a1
             mov a1,s3
             mov s3,a2
             halt",
        )
        .unwrap();
        let mut cpu = Cpu::new(quiet());
        cpu.run(&p).unwrap();
        assert_eq!(cpu.areg(2), 816);
    }

    #[test]
    fn branch_false_falls_through_and_takes() {
        let p = assemble(
            "   mov #1,s0
                lt.w #0,s0      ; T = true
                jbrs.f skip     ; not taken
                mov #7,a1
            skip:
                gt.w #0,s0      ; T = false (0 > 1 is false)
                jbrs.f end      ; taken
                mov #9,a1
            end:
                halt",
        )
        .unwrap();
        let mut cpu = Cpu::new(quiet());
        let stats = cpu.run(&p).unwrap();
        assert_eq!(cpu.areg(1), 7);
        assert_eq!(stats.branches_taken, 1);
    }

    #[test]
    fn strided_store_scatters() {
        let mut b = ProgramBuilder::new();
        b.set_vl_imm(3);
        b.vload("a1", 0, "v0");
        b.vstore_strided("v0", "a2", 0, 4);
        b.halt();
        let p = b.build().unwrap();
        let mut cpu = Cpu::new(quiet());
        for i in 0..3 {
            cpu.mem_mut().poke(i, (i + 1) as f64);
        }
        cpu.set_areg(2, 800);
        cpu.run(&p).unwrap();
        assert_eq!(cpu.mem().peek(100), 1.0);
        assert_eq!(cpu.mem().peek(104), 2.0);
        assert_eq!(cpu.mem().peek(108), 3.0);
        assert_eq!(cpu.mem().peek(101), 0.0);
    }

    #[test]
    fn vector_store_invalidates_scalar_cache() {
        // Scalar load warms the cache; a vector store overwrites the
        // word; the next scalar load must see the new value.
        let p = assemble(
            "   ld.d 0(a1),s1
                mov #1,vl
                ld.l 64(a1),v0
                st.l v0,0(a1)
                ld.d 0(a1),s2
                halt",
        )
        .unwrap();
        let mut cpu = Cpu::new(quiet());
        cpu.mem_mut().poke(0, 5.0);
        cpu.mem_mut().poke(8, 9.0);
        cpu.run(&p).unwrap();
        assert_eq!(cpu.sreg_fp(1), 5.0);
        assert_eq!(cpu.sreg_fp(2), 9.0);
    }

    #[test]
    fn cloned_cpu_is_independent() {
        let mut a = Cpu::new(quiet());
        a.mem_mut().poke(0, 1.0);
        let mut b = a.clone();
        b.mem_mut().poke(0, 2.0);
        assert_eq!(a.mem().peek(0), 1.0);
        assert_eq!(b.mem().peek(0), 2.0);
    }

    #[test]
    fn stats_display_mentions_mflops() {
        let p = assemble("mov #8,vl\nadd.d v0,v0,v1\nhalt").unwrap();
        let mut cpu = Cpu::new(quiet());
        let stats = cpu.run(&p).unwrap();
        assert!(stats.to_string().contains("MFLOPS"));
        assert!(stats.mflops() > 0.0);
    }
}
