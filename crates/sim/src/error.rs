//! Simulator errors.

use std::error::Error;
use std::fmt;

/// Error during a simulated run.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// The run exceeded the configured instruction limit (runaway loop).
    InstructionLimit {
        /// The configured limit that was hit.
        limit: u64,
    },
    /// Control flow ran past the last instruction without a `halt`.
    FellOffEnd {
        /// Program counter at which the fetch failed.
        pc: usize,
    },
    /// A scalar access used a negative or unaligned byte address.
    BadAddress {
        /// The offending byte address.
        byte_addr: i64,
    },
    /// Instruction not supported by this simulator build.
    Unsupported {
        /// Program counter of the instruction.
        pc: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InstructionLimit { limit } => {
                write!(f, "instruction limit of {limit} exceeded (runaway loop?)")
            }
            SimError::FellOffEnd { pc } => {
                write!(f, "control flow ran past the end of the program at pc {pc}")
            }
            SimError::BadAddress { byte_addr } => {
                write!(f, "negative or unaligned scalar byte address {byte_addr}")
            }
            SimError::Unsupported { pc } => write!(f, "unsupported instruction at pc {pc}"),
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(SimError::InstructionLimit { limit: 5 }
            .to_string()
            .contains("5"));
        assert!(SimError::FellOffEnd { pc: 3 }.to_string().contains("pc 3"));
        assert!(SimError::BadAddress { byte_addr: -8 }
            .to_string()
            .contains("-8"));
    }
}
