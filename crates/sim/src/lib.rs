//! Cycle-level simulator of a Convex C-240 CPU.
//!
//! This crate is the *measurement substrate* of the MACS reproduction:
//! where the paper ran kernels on real hardware, we run their assembly on
//! a deterministic machine model with the paper's published parameters:
//!
//! * in-order single issue with hardware interlocks (§2),
//! * an Address/Scalar Unit with a data cache; scalar memory accesses
//!   share the CPU's single memory port with the vector stream and
//!   therefore split chimes (§3.3),
//! * a Vector Processor with three pipes (load/store, add, multiply),
//!   eight 128-element vector registers, flexible operand chaining, the
//!   register-pair read/write port limits, and the empirically calibrated
//!   tailgating bubble `B` (Table 1, Eq. 13),
//! * a 32-bank memory with 8-cycle bank busy time, refresh every 400
//!   cycles, and optional background contention (§4.2).
//!
//! All model features can be ablated via [`SimConfig`] (chaining off,
//! bubbles off, refresh off, pair constraint off) for the what-if studies.
//!
//! # Example
//!
//! Reproduce the chained chime of §3.3 of the paper:
//!
//! ```
//! use c240_isa::ProgramBuilder;
//! use c240_sim::{Cpu, SimConfig};
//!
//! let mut b = ProgramBuilder::new();
//! b.set_vl_imm(128);
//! b.vload("a5", 0, "v0");
//! b.vadd("v0", "v1", "v2");
//! b.vmul("v2", "v3", "v5");
//! b.halt();
//! let program = b.build()?;
//!
//! let mut cpu = Cpu::new(SimConfig::c240().without_refresh());
//! let chained = cpu.run(&program)?.cycles;
//!
//! let mut cray2ish = Cpu::new(SimConfig::c240().without_refresh().without_chaining());
//! let unchained = cray2ish.run(&program)?.cycles;
//!
//! // Chaining: ~162 cycles; without: ~422 (§3.3).
//! assert!(chained < 170.0 && unchained > 400.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod cpu;
mod error;
mod fastfwd;
mod machine;
mod stats;
mod trace;
mod validate;

pub use config::{ScalarTiming, SimConfig};
pub use cpu::{Cpu, FfStats};
pub use error::SimError;
pub use machine::Machine;
pub use stats::{ClassCounts, RunStats, StallRollup};
pub use trace::{Trace, TraceEvent};
pub use validate::{ConfigError, MAX_CPUS};

// Telemetry: drive [`Cpu::run_probed`] with a probe to get a per-lane
// cycle attribution (see the `c240-obs` crate for the taxonomy).
pub use c240_obs::{
    CoSimProbes, CounterProbe, Lane, LaneAccount, NoProbe, Probe, StallCause, StallCounters,
};
