//! Run statistics reported by the simulator.

use std::fmt;

use c240_isa::{InstrClass, Pipe, CLOCK_MHZ};
use c240_mem::WaitBreakdown;
use c240_obs::{CounterProbe, Lane};

/// Aggregate statistics of one simulated run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunStats {
    /// Total run time in cycles (when the last result lands).
    pub cycles: f64,
    /// Executed instructions by class.
    pub instructions: ClassCounts,
    /// Vector elements processed, per pipe.
    pub elements: [u64; 3],
    /// Floating point operations performed (vector + scalar), counted
    /// as executed elements.
    pub flops: u64,
    /// Memory accesses issued (vector elements + scalar, including cache
    /// misses only for scalars).
    pub memory_accesses: u64,
    /// Cycles memory accesses spent waiting on banks/refresh/contention.
    pub memory_wait_cycles: f64,
    /// The same wait cycles split by cause; `memory_waits.total()`
    /// equals `memory_wait_cycles` identically.
    pub memory_waits: WaitBreakdown,
    /// Scalar cache hits.
    pub cache_hits: u64,
    /// Scalar cache misses.
    pub cache_misses: u64,
    /// Taken branches.
    pub branches_taken: u64,
}

/// Executed-instruction counts by [`InstrClass`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClassCounts {
    /// Vector loads/stores.
    pub vector_mem: u64,
    /// Vector floating point.
    pub vector_fp: u64,
    /// Scalar loads/stores.
    pub scalar_mem: u64,
    /// Other scalar instructions.
    pub scalar: u64,
    /// Branches and jumps.
    pub control: u64,
}

impl ClassCounts {
    /// Total executed instructions.
    pub fn total(&self) -> u64 {
        self.vector_mem + self.vector_fp + self.scalar_mem + self.scalar + self.control
    }

    pub(crate) fn bump(&mut self, class: InstrClass) {
        match class {
            InstrClass::VectorMem => self.vector_mem += 1,
            InstrClass::VectorFp => self.vector_fp += 1,
            InstrClass::ScalarMem => self.scalar_mem += 1,
            InstrClass::Scalar => self.scalar += 1,
            InstrClass::Control => self.control += 1,
        }
    }
}

impl RunStats {
    /// Elements processed on one pipe.
    pub fn elements_on(&self, pipe: Pipe) -> u64 {
        self.elements[match pipe {
            Pipe::LoadStore => 0,
            Pipe::Add => 1,
            Pipe::Multiply => 2,
        }]
    }

    /// Cycles per `iterations` source-loop iterations — the paper's CPL
    /// when `iterations` is the number of inner-loop iterations executed.
    pub fn cpl(&self, iterations: u64) -> f64 {
        assert!(iterations > 0, "iterations must be positive");
        self.cycles / iterations as f64
    }

    /// Achieved MFLOPS at the C-240 clock (40 ns cycle).
    pub fn mflops(&self) -> f64 {
        if self.cycles == 0.0 {
            0.0
        } else {
            self.flops as f64 * CLOCK_MHZ / self.cycles
        }
    }
}

/// Memory-side vs compute-side occupancy rolled up from a probed run —
/// the measured half of the roofline cross-check (DESIGN.md §16).
///
/// The roofline question is which resource a kernel *occupies* longer,
/// not which stalls more: a unit-stride memory-bound loop keeps the
/// load/store pipe streaming with few attributed bank waits, so the
/// rollup counts useful streaming time alongside the attributed stalls
/// on each side of the [`c240_obs::StallCause`] taxonomy.
///
/// Two stall families are deliberately charged to *neither* side:
/// chain waits, because a chained consumer idles in the shadow of its
/// producer's streaming time — which is already counted on whichever
/// side the producer pipe belongs to — and scalar-lane issue
/// interlocks, which are loop overhead rather than roof pressure.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StallRollup {
    /// Cycles the vector load/store pipe streamed elements.
    pub ld_busy: f64,
    /// Cycles the busier floating point pipe (add or multiply) streamed
    /// elements.
    pub fp_busy: f64,
    /// Attributed memory-side stall cycles (bank busy, refresh,
    /// contention, scalar cache misses, memory-port fences), summed
    /// over all lanes.
    pub memory_stalls: f64,
    /// Structural compute stall cycles on the FP lanes — tailgate
    /// bubbles, pair conflicts, operand barriers, drains — excluding
    /// chain waits (see the type-level note).
    pub compute_stalls: f64,
}

impl StallRollup {
    /// Rolls one probe's lane accounts up into the two roofline sides.
    pub fn of_probe(probe: &CounterProbe) -> Self {
        use c240_obs::StallCause;
        let mut memory_stalls = 0.0;
        let mut compute_stalls = 0.0;
        for (lane, acct) in probe.lanes() {
            memory_stalls += acct.stalls.memory_side();
            if matches!(lane, Lane::Add | Lane::Mul) {
                compute_stalls +=
                    acct.stalls.compute_wait() - acct.stalls.get(StallCause::ChainWait);
            }
        }
        StallRollup {
            ld_busy: probe.lane(Lane::Ld).busy,
            fp_busy: probe.lane(Lane::Add).busy.max(probe.lane(Lane::Mul).busy),
            memory_stalls,
            compute_stalls,
        }
    }

    /// Cycles the memory system was the occupied resource: load/store
    /// streaming plus memory-side waits.
    pub fn memory_occupancy(&self) -> f64 {
        self.ld_busy + self.memory_stalls
    }

    /// Cycles the FP pipes were the occupied resource: the busier FP
    /// pipe's streaming plus dependence/issue waits.
    pub fn compute_occupancy(&self) -> f64 {
        self.fp_busy + self.compute_stalls
    }
}

impl fmt::Display for RunStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "cycles:           {:.2}", self.cycles)?;
        writeln!(f, "instructions:     {}", self.instructions.total())?;
        writeln!(
            f,
            "  vector mem/fp:  {} / {}",
            self.instructions.vector_mem, self.instructions.vector_fp
        )?;
        writeln!(
            f,
            "  scalar mem/alu: {} / {}",
            self.instructions.scalar_mem, self.instructions.scalar
        )?;
        writeln!(f, "  control:        {}", self.instructions.control)?;
        writeln!(
            f,
            "elements ld/add/mul: {} / {} / {}",
            self.elements[0], self.elements[1], self.elements[2]
        )?;
        writeln!(f, "flops:            {}", self.flops)?;
        writeln!(f, "memory accesses:  {}", self.memory_accesses)?;
        writeln!(f, "memory wait:      {:.2} cycles", self.memory_wait_cycles)?;
        writeln!(
            f,
            "  bank/refr/cont: {:.2} / {:.2} / {:.2}",
            self.memory_waits.bank_busy, self.memory_waits.refresh, self.memory_waits.contention
        )?;
        writeln!(
            f,
            "cache hit/miss:   {} / {}",
            self.cache_hits, self.cache_misses
        )?;
        write!(f, "MFLOPS:           {:.2}", self.mflops())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_counts_bump_and_total() {
        let mut c = ClassCounts::default();
        c.bump(InstrClass::VectorMem);
        c.bump(InstrClass::VectorFp);
        c.bump(InstrClass::VectorFp);
        c.bump(InstrClass::Scalar);
        c.bump(InstrClass::ScalarMem);
        c.bump(InstrClass::Control);
        assert_eq!(c.total(), 6);
        assert_eq!(c.vector_fp, 2);
    }

    #[test]
    fn cpl_and_mflops() {
        let stats = RunStats {
            cycles: 1000.0,
            flops: 500,
            ..RunStats::default()
        };
        assert_eq!(stats.cpl(100), 10.0);
        // 500 flops in 1000 cycles at 25 MHz = 12.5 MFLOPS.
        assert!((stats.mflops() - 12.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn cpl_zero_iterations_panics() {
        let stats = RunStats::default();
        let _ = stats.cpl(0);
    }

    #[test]
    fn display_is_nonempty() {
        let text = RunStats::default().to_string();
        assert!(text.contains("cycles"));
    }

    #[test]
    fn stall_rollup_splits_sides() {
        use c240_obs::{Probe, StallCause};
        let mut p = CounterProbe::new();
        p.busy(Lane::Ld, 10.0, 1);
        p.busy(Lane::Add, 4.0, 2);
        p.busy(Lane::Mul, 6.0, 3);
        p.stall(Lane::Ld, StallCause::BankBusy, 2.0, 1);
        p.stall(Lane::ScalarMem, StallCause::ScalarCacheMiss, 1.0, 4);
        p.stall(Lane::Mul, StallCause::PairConflict, 4.0, 3);
        // Neither side: chain waits shadow their producer's streaming
        // time; scalar issue interlocks are loop overhead; ld-lane
        // bubbles are not FP-lane stalls.
        p.stall(Lane::Add, StallCause::ChainWait, 3.0, 2);
        p.stall(Lane::Scalar, StallCause::IssueInterlock, 9.0, 5);
        p.stall(Lane::Ld, StallCause::TailgateBubble, 5.0, 1);
        let r = StallRollup::of_probe(&p);
        assert_eq!(r.ld_busy, 10.0);
        assert_eq!(r.fp_busy, 6.0);
        assert_eq!(r.memory_stalls, 3.0);
        assert_eq!(r.compute_stalls, 4.0);
        assert_eq!(r.memory_occupancy(), 13.0);
        assert_eq!(r.compute_occupancy(), 10.0);
    }
}
