//! Kernels: a vectorizable inner loop over array streams — the
//! "Application" (A) of the MACS model.

use std::collections::BTreeMap;
use std::fmt;

use crate::expr::{Expr, StreamRef};

/// One statement of the loop body.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `target(k·step + offset) = value` — a vector store.
    Store {
        /// Destination stream.
        target: StreamRef,
        /// Stored expression.
        value: Expr,
    },
    /// `acc = acc ± value` — a loop-carried scalar reduction into the
    /// named accumulator parameter.
    Reduce {
        /// Accumulator parameter name.
        acc: String,
        /// `false` for `acc += value`, `true` for `acc -= value`.
        subtract: bool,
        /// Accumulated expression.
        value: Expr,
    },
}

impl Stmt {
    /// The statement's expression.
    pub fn value(&self) -> &Expr {
        match self {
            Stmt::Store { value, .. } | Stmt::Reduce { value, .. } => value,
        }
    }
}

impl fmt::Display for Stmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Stmt::Store { target, value } => write!(f, "{target} = {value}"),
            Stmt::Reduce {
                acc,
                subtract,
                value,
            } => write!(f, "{acc} {}= {value}", if *subtract { '-' } else { '+' }),
        }
    }
}

/// An array declaration: name and length in elements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayDecl {
    /// Array name.
    pub name: String,
    /// Length in elements (8-byte words).
    pub len: u64,
}

/// A vectorizable kernel: arrays, scalar parameters, and a single inner
/// loop body with a constant step.
///
/// # Example
///
/// The DAXPY-like triad `x(k) = y(k) + a*z(k)`:
///
/// ```
/// use macs_compiler::{Kernel, load, param};
///
/// let k = Kernel::new("triad")
///     .array("x", 1000)
///     .array("y", 1000)
///     .array("z", 1000)
///     .param("a", 3.0)
///     .store("x", 0, load("y", 0) + param("a") * load("z", 0));
/// assert_eq!(k.flops_per_iteration(), (1, 1));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel {
    name: String,
    arrays: Vec<ArrayDecl>,
    params: BTreeMap<String, f64>,
    step: i64,
    body: Vec<Stmt>,
}

impl Kernel {
    /// Creates an empty kernel with loop step 1.
    pub fn new(name: &str) -> Self {
        Kernel {
            name: name.to_string(),
            arrays: Vec::new(),
            params: BTreeMap::new(),
            step: 1,
            body: Vec::new(),
        }
    }

    /// Declares an array.
    pub fn array(mut self, name: &str, len: u64) -> Self {
        self.arrays.push(ArrayDecl {
            name: name.to_string(),
            len,
        });
        self
    }

    /// Declares a scalar parameter with its runtime value.
    pub fn param(mut self, name: &str, value: f64) -> Self {
        self.params.insert(name.to_string(), value);
        self
    }

    /// Sets the loop step in elements (e.g. 2 for LFK2's `DO k = .., 2`).
    ///
    /// # Panics
    ///
    /// Panics if `step == 0`.
    pub fn step(mut self, step: i64) -> Self {
        assert!(step != 0, "loop step must be nonzero");
        self.step = step;
        self
    }

    /// Appends a store statement `array(k + offset) = value`.
    pub fn store(mut self, array: &str, offset: i64, value: Expr) -> Self {
        self.body.push(Stmt::Store {
            target: StreamRef {
                array: array.to_string(),
                offset,
                step: None,
            },
            value,
        });
        self
    }

    /// Appends a strided store statement.
    pub fn store_strided(mut self, array: &str, offset: i64, step: i64, value: Expr) -> Self {
        self.body.push(Stmt::Store {
            target: StreamRef {
                array: array.to_string(),
                offset,
                step: Some(step),
            },
            value,
        });
        self
    }

    /// Appends a reduction `acc += value` (or `-=` when `subtract`).
    pub fn reduce(mut self, acc: &str, subtract: bool, value: Expr) -> Self {
        self.body.push(Stmt::Reduce {
            acc: acc.to_string(),
            subtract,
            value,
        });
        self
    }

    /// Kernel name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declared arrays.
    pub fn arrays(&self) -> &[ArrayDecl] {
        &self.arrays
    }

    /// Declared parameters with initial values.
    pub fn params(&self) -> &BTreeMap<String, f64> {
        &self.params
    }

    /// The loop step in elements.
    pub fn loop_step(&self) -> i64 {
        self.step
    }

    /// The loop body.
    pub fn body(&self) -> &[Stmt] {
        &self.body
    }

    /// Total `(additions, multiplications)` per source iteration — the
    /// `f_a`/`f_m` of the MA model (reductions count one add each).
    pub fn flops_per_iteration(&self) -> (u32, u32) {
        let mut adds = 0;
        let mut muls = 0;
        for stmt in &self.body {
            let (a, m) = stmt.value().flops();
            adds += a;
            muls += m;
            if matches!(stmt, Stmt::Reduce { .. }) {
                adds += 1;
            }
        }
        (adds, muls)
    }

    /// `f_a + f_m`, the CPF divisor.
    pub fn flops_total(&self) -> u32 {
        let (a, m) = self.flops_per_iteration();
        a + m
    }

    /// The names of all reduction accumulators in the body.
    pub fn accumulators(&self) -> Vec<String> {
        self.body
            .iter()
            .filter_map(|s| match s {
                Stmt::Reduce { acc, .. } => Some(acc.clone()),
                _ => None,
            })
            .collect()
    }

    /// The body with every loop-invariant scalar subtree folded to a
    /// constant using the declared parameter values (accumulators are
    /// not invariant). Both the MA analysis and the code generator work
    /// on this form: an ideal compiler — and the real one — hoists
    /// invariant scalar arithmetic out of the loop.
    pub fn folded_body(&self) -> Vec<Stmt> {
        let accs = self.accumulators();
        self.body
            .iter()
            .map(|s| {
                let value = fold_invariants(s.value(), self, &accs);
                match s {
                    Stmt::Store { target, .. } => Stmt::Store {
                        target: target.clone(),
                        value,
                    },
                    Stmt::Reduce { acc, subtract, .. } => Stmt::Reduce {
                        acc: acc.clone(),
                        subtract: *subtract,
                        value,
                    },
                }
            })
            .collect()
    }

    /// Evaluates `iterations` source iterations directly on the IR
    /// against array data, mutating `data` in place — the reference
    /// semantics compiled code is validated against.
    ///
    /// `data` maps array names to their contents; accumulator parameters
    /// are returned with their final values.
    ///
    /// # Panics
    ///
    /// Panics if the kernel references undeclared arrays/params or reads
    /// out of bounds — IR-level bugs.
    pub fn interpret(
        &self,
        data: &mut BTreeMap<String, Vec<f64>>,
        iterations: u64,
    ) -> BTreeMap<String, f64> {
        let mut params = self.params.clone();
        for k in 0..iterations as i64 {
            for stmt in &self.body {
                let pcopy = params.clone();
                let mut lookup = |s: &StreamRef| {
                    let step = s.resolved_step(self.step);
                    let idx = k * step + s.offset;
                    let arr = data
                        .get(&s.array)
                        .unwrap_or_else(|| panic!("undeclared array `{}`", s.array));
                    assert!(
                        idx >= 0 && (idx as usize) < arr.len(),
                        "index {idx} out of bounds for `{}`",
                        s.array
                    );
                    arr[idx as usize]
                };
                let value = stmt.value().eval(&mut lookup, &|p| pcopy[p]);
                match stmt {
                    Stmt::Store { target, .. } => {
                        let step = target.resolved_step(self.step);
                        let idx = k * step + target.offset;
                        let arr = data.get_mut(&target.array).expect("declared array");
                        arr[idx as usize] = value;
                    }
                    Stmt::Reduce { acc, subtract, .. } => {
                        let slot = params.get_mut(acc).expect("declared accumulator");
                        if *subtract {
                            *slot -= value;
                        } else {
                            *slot += value;
                        }
                    }
                }
            }
        }
        params
    }
}

/// Whether an expression is loop-invariant scalar (no loads, no
/// accumulator references).
fn is_invariant(e: &Expr, accs: &[String]) -> bool {
    match e {
        Expr::Load(_) => false,
        Expr::Param(p) => !accs.iter().any(|a| a == p),
        Expr::Const(_) => true,
        Expr::Bin(_, a, b) => is_invariant(a, accs) && is_invariant(b, accs),
        Expr::Neg(x) => is_invariant(x, accs),
    }
}

fn fold_invariants(e: &Expr, kernel: &Kernel, accs: &[String]) -> Expr {
    if is_invariant(e, accs) {
        if let Expr::Param(_) | Expr::Const(_) = e {
            return e.clone();
        }
        let v = e.eval(&mut |_| unreachable!("invariant has no loads"), &|p| {
            kernel.params()[p]
        });
        return Expr::Const(v);
    }
    match e {
        Expr::Bin(op, a, b) => Expr::Bin(
            *op,
            Box::new(fold_invariants(a, kernel, accs)),
            Box::new(fold_invariants(b, kernel, accs)),
        ),
        Expr::Neg(x) => Expr::Neg(Box::new(fold_invariants(x, kernel, accs))),
        other => other.clone(),
    }
}

impl fmt::Display for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "kernel {} (step {}):", self.name, self.step)?;
        for stmt in &self.body {
            writeln!(f, "    {stmt}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{load, param};

    fn triad() -> Kernel {
        Kernel::new("triad")
            .array("x", 100)
            .array("y", 100)
            .array("z", 100)
            .param("a", 3.0)
            .store("x", 0, load("y", 0) + param("a") * load("z", 0))
    }

    #[test]
    fn flop_counting() {
        let k = triad();
        assert_eq!(k.flops_per_iteration(), (1, 1));
        assert_eq!(k.flops_total(), 2);
    }

    #[test]
    fn reduction_counts_accumulate_add() {
        let k = Kernel::new("dot")
            .array("x", 10)
            .array("z", 10)
            .param("q", 0.0)
            .reduce("q", false, load("z", 0) * load("x", 0));
        // One multiply in the expression plus the accumulate add.
        assert_eq!(k.flops_per_iteration(), (1, 1));
    }

    #[test]
    fn interpret_triad() {
        let k = triad();
        let mut data = BTreeMap::new();
        data.insert("x".to_string(), vec![0.0; 100]);
        data.insert("y".to_string(), vec![1.0; 100]);
        data.insert("z".to_string(), vec![2.0; 100]);
        k.interpret(&mut data, 10);
        assert_eq!(data["x"][0], 7.0);
        assert_eq!(data["x"][9], 7.0);
        assert_eq!(data["x"][10], 0.0);
    }

    #[test]
    fn interpret_reduction() {
        let k = Kernel::new("dot")
            .array("x", 10)
            .array("z", 10)
            .param("q", 1.0)
            .reduce("q", false, load("z", 0) * load("x", 0));
        let mut data = BTreeMap::new();
        data.insert("x".to_string(), vec![2.0; 10]);
        data.insert("z".to_string(), vec![3.0; 10]);
        let params = k.interpret(&mut data, 10);
        assert_eq!(params["q"], 1.0 + 60.0);
    }

    #[test]
    fn interpret_respects_step_and_sees_own_stores() {
        // x(k) = x(k-2) + 1 with step 2: a genuine recurrence through
        // memory the interpreter must honor sequentially.
        let k = Kernel::new("rec").array("x", 40).step(2).store(
            "x",
            2,
            load("x", 0) + crate::expr::con(1.0),
        );
        let mut data = BTreeMap::new();
        data.insert("x".to_string(), vec![0.0; 40]);
        k.interpret(&mut data, 10);
        assert_eq!(data["x"][2], 1.0);
        assert_eq!(data["x"][20], 10.0);
    }

    #[test]
    #[should_panic(expected = "step must be nonzero")]
    fn zero_step_rejected() {
        let _ = Kernel::new("bad").step(0);
    }

    #[test]
    fn display_lists_body() {
        let text = triad().to_string();
        assert!(text.contains("x[k] = "));
    }
}
