//! Compiler errors.

use std::error::Error;
use std::fmt;

/// Error compiling a kernel to C-240 assembly.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CompileError {
    /// An expression references an array that was never declared.
    UnknownArray(String),
    /// An expression references a parameter that was never declared.
    UnknownParam(String),
    /// More scalar values (parameters, constants, derived negations,
    /// reduction temporaries) than scalar registers.
    ScalarRegisterPressure {
        /// Scalar values needed.
        needed: usize,
        /// Registers available.
        available: usize,
    },
    /// The expression tree needs more than eight live vector registers.
    VectorRegisterPressure,
    /// A store's value reduces to a scalar (no vector operand).
    ScalarStore,
    /// The kernel body is empty.
    EmptyBody,
    /// Streams of the same array advance by different steps; the strip
    /// advance would be ambiguous.
    MixedSteps(String),
    /// A stream reference has a negative constant offset; compiled loops
    /// start at iteration zero, so shift the kernel's index space.
    NegativeOffset(String),
    /// A stream would run past the declared array length.
    ArrayOverrun {
        /// Offending array.
        array: String,
        /// Words required.
        needed: u64,
        /// Words declared.
        declared: u64,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::UnknownArray(a) => write!(f, "undeclared array `{a}`"),
            CompileError::UnknownParam(p) => write!(f, "undeclared parameter `{p}`"),
            CompileError::ScalarRegisterPressure { needed, available } => write!(
                f,
                "kernel needs {needed} scalar values but only {available} registers are available"
            ),
            CompileError::VectorRegisterPressure => {
                write!(f, "expression needs more than eight live vector registers")
            }
            CompileError::ScalarStore => {
                write!(f, "stored value contains no vector operand")
            }
            CompileError::EmptyBody => write!(f, "kernel body is empty"),
            CompileError::MixedSteps(a) => {
                write!(f, "array `{a}` is referenced with conflicting stream steps")
            }
            CompileError::NegativeOffset(a) => write!(
                f,
                "array `{a}` is referenced with a negative offset; shift the kernel's index space"
            ),
            CompileError::ArrayOverrun {
                array,
                needed,
                declared,
            } => write!(
                f,
                "array `{array}` needs {needed} words but declares only {declared}"
            ),
        }
    }
}

impl Error for CompileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(CompileError::UnknownArray("zz".into())
            .to_string()
            .contains("zz"));
        assert!(CompileError::ScalarRegisterPressure {
            needed: 9,
            available: 7
        }
        .to_string()
        .contains('9'));
        assert!(CompileError::ArrayOverrun {
            array: "x".into(),
            needed: 10,
            declared: 5
        }
        .to_string()
        .contains("10"));
    }
}
