//! Loop-nest IR and vectorizing compiler for the C-240 — the **A**
//! (application), **C** (compiler-generated workload), and **S**
//! (schedule) knobs of the MACS performance model.
//!
//! * [`Kernel`] expresses a vectorizable inner loop over array streams
//!   with Rust operator syntax ([`load`], [`param`], [`con`]).
//! * [`analyze_ma`] computes the paper's MA workload: flop counts and
//!   perfect-reuse memory operation counts (§3.1).
//! * [`compile`] lowers a kernel to strip-mined C-240 assembly, with the
//!   compiler's (lack of) reuse producing the MA → MAC gap and the
//!   selectable [`ScheduleStrategy`] / [`ReductionStyle`] exercising the
//!   schedule sensitivity of the MACS bound.
//!
//! # Example
//!
//! ```
//! use macs_compiler::{analyze_ma, compile, CompileOptions, Kernel, load, param};
//!
//! // X(k) = Q + Y(k)*(R*ZX(k+10) + T*ZX(k+11))   (LFK1)
//! let lfk1 = Kernel::new("lfk1")
//!     .array("x", 1300).array("y", 1300).array("zx", 1300)
//!     .param("q", 10.0).param("r", 2.0).param("t", 3.0)
//!     .store("x", 0,
//!         param("q") + load("y", 0)
//!             * (param("r") * load("zx", 10) + param("t") * load("zx", 11)));
//!
//! let ma = analyze_ma(&lfk1);
//! assert_eq!(ma.t_ma_cpl(), 3.0);          // paper Table 3
//! assert_eq!(ma.t_ma_cpf(), 0.6);          // paper Table 4
//!
//! let compiled = compile(&lfk1, 1001, CompileOptions::default())?;
//! // The compiler reloads ZX twice — 4 memory ops per iteration (MAC).
//! let l = compiled.program.innermost_loop().unwrap();
//! let mem = compiled.program.loop_body(l).iter()
//!     .filter(|i| i.is_vector_memory()).count();
//! assert_eq!(mem, 4);
//! # Ok::<(), macs_compiler::CompileError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod codegen;
mod error;
mod expr;
mod kernel;
mod layout;

pub use analysis::{analyze_ma, MaWorkload};
pub use codegen::{compile, CompileOptions, CompiledKernel, ReductionStyle, ScheduleStrategy};
pub use error::CompileError;
pub use expr::{con, load, load_strided, param, BinOp, Expr, StreamRef};
pub use kernel::{ArrayDecl, Kernel, Stmt};
pub use layout::Layout;
