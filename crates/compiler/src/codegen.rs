//! The vectorizing code generator: kernel IR → strip-mined C-240
//! assembly (the "C" and "S" of the MACS model).
//!
//! The generator strip-mines the inner loop by the hardware vector length
//! (128), maps each stream reference to a vector load/store, evaluates
//! the expression DAG on the three vector pipes, and emits scalar strip
//! bookkeeping. Like the paper's `fc` compiler, it performs **no**
//! cross-iteration reuse (every stream reference is re-loaded each strip,
//! the source of the MA → MAC gap), and its instruction order — the
//! schedule "S" — is selectable via [`ScheduleStrategy`].

use std::collections::BTreeMap;

use c240_isa::{Program, ProgramBuilder};

use crate::analysis::analyze_ma;
use crate::error::CompileError;
use crate::expr::{BinOp, Expr, StreamRef};
use crate::kernel::{Kernel, Stmt};
use crate::layout::Layout;
use crate::MaWorkload;

/// Instruction-ordering strategy — the "S" knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScheduleStrategy {
    /// Loads are emitted at first use, interleaving memory and arithmetic
    /// so chimes chain a load with its consumers (the schedule the
    /// paper's compiler produces for well-behaved kernels).
    #[default]
    Interleaved,
    /// All loads of a statement are emitted before any arithmetic — a
    /// naive vectorizer schedule that produces memory-only chimes
    /// followed by arithmetic-only chimes and a worse MACS bound.
    LoadsFirst,
}

/// How scalar reductions are vectorized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReductionStyle {
    /// Accumulate elementwise into a vector register inside the loop and
    /// reduce once in the epilogue (how LFK3's dot product compiles —
    /// no `Z = 1.35` penalty in the steady state).
    #[default]
    Elementwise,
    /// Reduce into the scalar accumulator every strip with a vector
    /// reduction instruction (`Z = 1.35` per strip — how the reduction
    /// kernels LFK4/LFK6 behave).
    PerStrip,
}

/// Compilation options.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CompileOptions {
    /// Instruction ordering.
    pub schedule: ScheduleStrategy,
    /// Reduction vectorization style.
    pub reduction: ReductionStyle,
}

/// A compiled kernel: the program plus everything needed to run and
/// interpret it.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledKernel {
    /// The generated program (prologue, strip loop, epilogue, `halt`).
    pub program: Program,
    /// Array placement in memory.
    pub layout: Layout,
    /// Source iterations the program executes.
    pub iterations: u64,
    /// For each reduction accumulator: the scalar register index holding
    /// its final value after the run.
    pub reduction_regs: BTreeMap<String, u8>,
    /// Arrays whose base pointers live in memory (more arrays than
    /// address registers) and are reloaded each strip — scalar memory
    /// traffic that splits chimes.
    pub spilled_arrays: Vec<String>,
    /// The MA workload of the source kernel (for CPF conversions).
    pub ma: MaWorkload,
}

/// Operand produced by expression emission.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Operand {
    /// Scalar register (broadcast).
    S(u8),
    /// Vector register owned by the expression (freeable).
    Temp(u8),
    /// Vector register pinned for the statement (cached load or
    /// accumulator).
    Pinned(u8),
}

impl Operand {
    fn name(self) -> String {
        match self {
            Operand::S(i) => format!("s{i}"),
            Operand::Temp(i) | Operand::Pinned(i) => format!("v{i}"),
        }
    }

    fn is_vector(self) -> bool {
        !matches!(self, Operand::S(_))
    }
}

struct VAlloc {
    free: Vec<u8>,
}

impl VAlloc {
    fn new(reserved: &[u8]) -> Self {
        VAlloc {
            free: (0..8u8).rev().filter(|r| !reserved.contains(r)).collect(),
        }
    }

    fn alloc(&mut self) -> Result<u8, CompileError> {
        self.free.pop().ok_or(CompileError::VectorRegisterPressure)
    }

    fn release(&mut self, op: Operand) {
        if let Operand::Temp(r) = op {
            self.free.push(r);
        }
    }
}

struct Codegen<'k> {
    kernel: &'k Kernel,
    options: CompileOptions,
    layout: Layout,
    b: ProgramBuilder,
    sregs: BTreeMap<ScalarKey, u8>,
    aregs: BTreeMap<String, u8>,
    spilled: BTreeMap<String, u64>, // array -> pointer-table word offset
    array_step: BTreeMap<String, i64>,
    acc_vregs: BTreeMap<String, u8>,
    valloc: VAlloc,
    load_cache: BTreeMap<(String, i64, i64), u8>,
    ref_counts: BTreeMap<(String, i64, i64), usize>,
    temp_sreg: Option<u8>,
}

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum ScalarKey {
    Param(String),
    Const(u64), // f64 bits
}

/// Compiles `kernel` to a strip-mined vector program executing
/// `iterations` source iterations.
///
/// # Errors
///
/// See [`CompileError`] — undeclared names, register pressure, negative
/// offsets, inconsistent strides, or array overruns.
///
/// # Example
///
/// ```
/// use macs_compiler::{compile, CompileOptions, Kernel, load, param};
///
/// let triad = Kernel::new("triad")
///     .array("x", 1000).array("y", 1000).array("z", 1000)
///     .param("a", 3.0)
///     .store("x", 0, load("y", 0) + param("a") * load("z", 0));
/// let compiled = compile(&triad, 1000, CompileOptions::default())?;
/// assert!(compiled.program.innermost_loop().is_some());
/// # Ok::<(), macs_compiler::CompileError>(())
/// ```
pub fn compile(
    kernel: &Kernel,
    iterations: u64,
    options: CompileOptions,
) -> Result<CompiledKernel, CompileError> {
    if kernel.body().is_empty() {
        return Err(CompileError::EmptyBody);
    }
    validate(kernel, iterations)?;
    let accumulators = kernel.accumulators();
    // Fold loop-invariant scalar subtrees using the kernel's parameter
    // values (accumulators excluded — they change at runtime).
    let body = kernel.folded_body();

    let layout = Layout::for_kernel(kernel);
    let mut cg = Codegen {
        kernel,
        options,
        layout,
        b: ProgramBuilder::new(),
        sregs: BTreeMap::new(),
        aregs: BTreeMap::new(),
        spilled: BTreeMap::new(),
        array_step: BTreeMap::new(),
        acc_vregs: BTreeMap::new(),
        valloc: VAlloc::new(&[]),
        load_cache: BTreeMap::new(),
        ref_counts: BTreeMap::new(),
        temp_sreg: None,
    };
    cg.assign_scalars(&body, &accumulators)?;
    cg.assign_arrays(&body)?;
    cg.assign_accumulators(&accumulators)?;
    cg.emit(&body, iterations)?;
    let program =
        cg.b.build()
            .expect("generated program is structurally valid");
    let reduction_regs = accumulators
        .iter()
        .map(|a| (a.clone(), cg.sregs[&ScalarKey::Param(a.clone())]))
        .collect();
    Ok(CompiledKernel {
        program,
        layout: cg.layout,
        iterations,
        reduction_regs,
        spilled_arrays: cg.spilled.keys().cloned().collect(),
        ma: analyze_ma(kernel),
    })
}

fn validate(kernel: &Kernel, iterations: u64) -> Result<(), CompileError> {
    let declared: BTreeMap<&str, u64> = kernel
        .arrays()
        .iter()
        .map(|a| (a.name.as_str(), a.len))
        .collect();
    let mut refs: Vec<StreamRef> = Vec::new();
    for stmt in kernel.body() {
        stmt.value().collect_loads(&mut refs);
        if let Stmt::Store { target, .. } = stmt {
            refs.push(target.clone());
        }
        if let Stmt::Reduce { acc, .. } = stmt {
            if !kernel.params().contains_key(acc) {
                return Err(CompileError::UnknownParam(acc.clone()));
            }
        }
        check_params(stmt.value(), kernel)?;
    }
    for r in &refs {
        let Some(&len) = declared.get(r.array.as_str()) else {
            return Err(CompileError::UnknownArray(r.array.clone()));
        };
        let step = r.resolved_step(kernel.loop_step());
        if step < 1 {
            return Err(CompileError::MixedSteps(r.array.clone()));
        }
        if r.offset < 0 {
            return Err(CompileError::NegativeOffset(r.array.clone()));
        }
        let needed = (iterations.saturating_sub(1)) * step as u64 + r.offset as u64 + 1;
        if needed > len {
            return Err(CompileError::ArrayOverrun {
                array: r.array.clone(),
                needed,
                declared: len,
            });
        }
    }
    Ok(())
}

fn check_params(e: &Expr, kernel: &Kernel) -> Result<(), CompileError> {
    match e {
        Expr::Param(p) => {
            if kernel.params().contains_key(p) {
                Ok(())
            } else {
                Err(CompileError::UnknownParam(p.clone()))
            }
        }
        Expr::Bin(_, a, b) => {
            check_params(a, kernel)?;
            check_params(b, kernel)
        }
        Expr::Neg(x) => check_params(x, kernel),
        Expr::Load(_) | Expr::Const(_) => Ok(()),
    }
}

impl Codegen<'_> {
    fn assign_scalars(&mut self, body: &[Stmt], accs: &[String]) -> Result<(), CompileError> {
        // s0 is the strip counter; the rest hold parameters/constants.
        let mut keys: Vec<ScalarKey> = Vec::new();
        for stmt in body {
            collect_scalars(stmt.value(), &mut keys);
        }
        for acc in accs {
            let k = ScalarKey::Param(acc.clone());
            if !keys.contains(&k) {
                keys.push(k);
            }
        }
        let needs_temp =
            !accs.is_empty() && matches!(self.options.reduction, ReductionStyle::Elementwise);
        let available = 7 - usize::from(needs_temp);
        if keys.len() > available {
            return Err(CompileError::ScalarRegisterPressure {
                needed: keys.len() + 1 + usize::from(needs_temp),
                available: 8,
            });
        }
        for (i, k) in keys.iter().enumerate() {
            self.sregs.insert(k.clone(), (i + 1) as u8);
        }
        if needs_temp {
            self.temp_sreg = Some((keys.len() + 1) as u8);
        }
        Ok(())
    }

    fn assign_arrays(&mut self, body: &[Stmt]) -> Result<(), CompileError> {
        let mut refs: Vec<StreamRef> = Vec::new();
        for stmt in body {
            stmt.value().collect_loads(&mut refs);
            if let Stmt::Store { target, .. } = stmt {
                refs.push(target.clone());
            }
        }
        let mut order: Vec<String> = Vec::new();
        for r in &refs {
            let step = r.resolved_step(self.kernel.loop_step());
            match self.array_step.get(&r.array) {
                Some(&s) if s != step => return Err(CompileError::MixedSteps(r.array.clone())),
                Some(_) => {}
                None => {
                    self.array_step.insert(r.array.clone(), step);
                    order.push(r.array.clone());
                }
            }
        }
        // a0 holds zero (pointer-table base), a7 is the spill scratch;
        // a1..a6 hold array bases.
        for (i, name) in order.iter().enumerate() {
            if i < 6 {
                self.aregs.insert(name.clone(), (i + 1) as u8);
            } else {
                let slot = Layout::POINTER_TABLE + (i - 6) as u64;
                self.spilled.insert(name.clone(), slot);
            }
        }
        Ok(())
    }

    fn assign_accumulators(&mut self, accs: &[String]) -> Result<(), CompileError> {
        if matches!(self.options.reduction, ReductionStyle::PerStrip) {
            return Ok(());
        }
        let mut reserved = Vec::new();
        for acc in accs {
            if reserved.len() >= 8 {
                return Err(CompileError::VectorRegisterPressure);
            }
            let r = reserved.len() as u8;
            self.acc_vregs.insert(acc.clone(), r);
            reserved.push(r);
        }
        self.valloc = VAlloc::new(&reserved);
        Ok(())
    }

    fn sreg_of(&self, key: &ScalarKey) -> u8 {
        self.sregs[key]
    }

    fn emit(&mut self, body: &[Stmt], iterations: u64) -> Result<(), CompileError> {
        self.emit_prologue(iterations);
        self.b.label("strip");
        self.b.set_vl("s0");
        for stmt in body {
            self.emit_stmt(stmt)?;
            // Return cached-load registers to the pool.
            for (_, reg) in std::mem::take(&mut self.load_cache) {
                self.valloc.free.push(reg);
            }
        }
        self.emit_strip_bookkeeping();
        self.b.cmp_imm("lt", 0, "s0");
        self.b.branch_true("strip");
        self.emit_epilogue(body);
        self.b.halt();
        Ok(())
    }

    fn emit_prologue(&mut self, iterations: u64) {
        self.b.mov_int(iterations as i64, "s0");
        let entries: Vec<(ScalarKey, u8)> =
            self.sregs.iter().map(|(k, &r)| (k.clone(), r)).collect();
        for (key, reg) in entries {
            let value = match &key {
                ScalarKey::Param(p) => self.kernel.params()[p],
                ScalarKey::Const(bits) => f64::from_bits(*bits),
            };
            self.b.mov_fp(value, &format!("s{reg}"));
        }
        self.b.mov_int(0, "a0");
        let in_regs: Vec<(String, u8)> = self.aregs.iter().map(|(n, &r)| (n.clone(), r)).collect();
        for (name, reg) in in_regs {
            let base = self.layout.base_byte(&name).expect("declared array");
            self.b.mov_int(base, &format!("a{reg}"));
        }
        let spills: Vec<(String, u64)> =
            self.spilled.iter().map(|(n, &o)| (n.clone(), o)).collect();
        for (name, slot) in spills {
            let base = self.layout.base_byte(&name).expect("declared array");
            self.b.mov_int(base, "a7");
            self.b
                .sstore("a7", "a0", (slot * c240_isa::WORD_BYTES) as i64);
        }
        // Zero the elementwise accumulators.
        let accs: Vec<u8> = self.acc_vregs.values().copied().collect();
        for r in accs {
            let v = format!("v{r}");
            self.b.vsub(&v, &v, &v);
        }
    }

    fn emit_strip_bookkeeping(&mut self) {
        let in_regs: Vec<(String, u8)> = self.aregs.iter().map(|(n, &r)| (n.clone(), r)).collect();
        for (name, reg) in in_regs {
            let step = self.array_step[&name];
            let advance = 128 * step * c240_isa::WORD_BYTES as i64;
            self.b.int_op_imm("add", advance, &format!("a{reg}"));
        }
        let spills: Vec<(String, u64)> =
            self.spilled.iter().map(|(n, &o)| (n.clone(), o)).collect();
        for (name, slot) in spills {
            let step = self.array_step[&name];
            let advance = 128 * step * c240_isa::WORD_BYTES as i64;
            let off = (slot * c240_isa::WORD_BYTES) as i64;
            self.b.sload("a0", off, "a7");
            self.b.int_op_imm("add", advance, "a7");
            self.b.sstore("a7", "a0", off);
        }
        self.b.int_op_imm("sub", 128, "s0");
    }

    fn emit_epilogue(&mut self, body: &[Stmt]) {
        if !matches!(self.options.reduction, ReductionStyle::Elementwise) {
            return;
        }
        if self.acc_vregs.is_empty() {
            return;
        }
        // The strip loop leaves VL at the final (possibly short) strip
        // length; the lane reduction must cover the whole register.
        self.b.set_vl_imm(c240_isa::MAX_VL);
        let temp = self.temp_sreg;
        for stmt in body {
            if let Stmt::Reduce { acc, .. } = stmt {
                let vacc = self.acc_vregs[acc];
                let sacc = self.sreg_of(&ScalarKey::Param(acc.clone()));
                let st = temp.expect("temp sreg reserved for reductions");
                self.b.vsum(&format!("v{vacc}"), &format!("s{st}"));
                // The lanes already carry the sign (subtract reductions
                // accumulated negated values), so the merge is an add.
                self.b.fp_op(
                    "add",
                    &format!("s{sacc}"),
                    &format!("s{st}"),
                    &format!("s{sacc}"),
                );
            }
        }
    }

    fn emit_stmt(&mut self, stmt: &Stmt) -> Result<(), CompileError> {
        let mut refs = Vec::new();
        stmt.value().collect_loads(&mut refs);
        self.ref_counts.clear();
        for r in &refs {
            let step = r.resolved_step(self.kernel.loop_step());
            *self
                .ref_counts
                .entry((r.array.clone(), r.offset, step))
                .or_insert(0) += 1;
        }
        if matches!(self.options.schedule, ScheduleStrategy::LoadsFirst) {
            for r in &refs {
                self.emit_load_cached(r)?;
            }
        }
        match stmt {
            Stmt::Store { target, value } => {
                let op = self.emit_expr(value)?;
                if !op.is_vector() {
                    return Err(CompileError::ScalarStore);
                }
                let (base, offset) = self.stream_address(target)?;
                let step = target.resolved_step(self.kernel.loop_step());
                if step == 1 {
                    self.b.vstore(&op.name(), &base, offset);
                } else {
                    self.b.vstore_strided(&op.name(), &base, offset, step);
                }
                self.valloc.release(op);
            }
            Stmt::Reduce {
                acc,
                subtract,
                value,
            } => {
                let op = self.emit_expr(value)?;
                if !op.is_vector() {
                    return Err(CompileError::ScalarStore);
                }
                match self.options.reduction {
                    ReductionStyle::Elementwise => {
                        let vacc = format!("v{}", self.acc_vregs[acc]);
                        if *subtract {
                            self.b.vsub(&vacc, &op.name(), &vacc);
                        } else {
                            self.b.vadd(&vacc, &op.name(), &vacc);
                        }
                    }
                    ReductionStyle::PerStrip => {
                        let sacc = format!("s{}", self.sreg_of(&ScalarKey::Param(acc.clone())));
                        if *subtract {
                            self.b.vrsub(&op.name(), &sacc);
                        } else {
                            self.b.vradd(&op.name(), &sacc);
                        }
                    }
                }
                self.valloc.release(op);
            }
        }
        Ok(())
    }

    /// The (base register name, byte offset) addressing a stream, spilling
    /// through the pointer table when the array has no address register.
    fn stream_address(&mut self, r: &StreamRef) -> Result<(String, i64), CompileError> {
        let offset = r.offset * c240_isa::WORD_BYTES as i64;
        if let Some(&reg) = self.aregs.get(&r.array) {
            return Ok((format!("a{reg}"), offset));
        }
        let slot = self.spilled[&r.array];
        self.b
            .sload("a0", (slot * c240_isa::WORD_BYTES) as i64, "a7");
        Ok(("a7".to_string(), offset))
    }

    fn emit_load_cached(&mut self, r: &StreamRef) -> Result<u8, CompileError> {
        let step = r.resolved_step(self.kernel.loop_step());
        let key = (r.array.clone(), r.offset, step);
        if let Some(&reg) = self.load_cache.get(&key) {
            return Ok(reg);
        }
        let reg = self.valloc.alloc()?;
        let (base, offset) = self.stream_address(r)?;
        if step == 1 {
            self.b.vload(&base, offset, &format!("v{reg}"));
        } else {
            self.b
                .vload_strided(&base, offset, step, &format!("v{reg}"));
        }
        self.load_cache.insert(key, reg);
        Ok(reg)
    }

    /// Emits (or reuses) the load for a stream reference. References used
    /// more than once in the statement — and everything under the
    /// loads-first schedule — are cached for the statement; single-use
    /// references are freeable temporaries.
    fn emit_load_operand(&mut self, r: &StreamRef) -> Result<Operand, CompileError> {
        let step = r.resolved_step(self.kernel.loop_step());
        let key = (r.array.clone(), r.offset, step);
        let shared = matches!(self.options.schedule, ScheduleStrategy::LoadsFirst)
            || self.ref_counts.get(&key).copied().unwrap_or(0) > 1;
        if shared {
            return Ok(Operand::Pinned(self.emit_load_cached(r)?));
        }
        let reg = self.valloc.alloc()?;
        let (base, offset) = self.stream_address(r)?;
        if step == 1 {
            self.b.vload(&base, offset, &format!("v{reg}"));
        } else {
            self.b
                .vload_strided(&base, offset, step, &format!("v{reg}"));
        }
        Ok(Operand::Temp(reg))
    }

    fn emit_expr(&mut self, e: &Expr) -> Result<Operand, CompileError> {
        match e {
            Expr::Load(r) => self.emit_load_operand(r),
            Expr::Param(p) => {
                if let Some(&v) = self.acc_vregs.get(p) {
                    // An accumulator referenced in an expression reads the
                    // running elementwise partial — unusual, but defined.
                    return Ok(Operand::Pinned(v));
                }
                Ok(Operand::S(self.sreg_of(&ScalarKey::Param(p.clone()))))
            }
            Expr::Const(c) => Ok(Operand::S(self.sreg_of(&ScalarKey::Const(c.to_bits())))),
            Expr::Neg(x) => {
                let op = self.emit_expr(x)?;
                if !op.is_vector() {
                    return Err(CompileError::ScalarStore);
                }
                let dst = match op {
                    Operand::Temp(r) => r,
                    _ => self.valloc.alloc()?,
                };
                self.b.vneg(&op.name(), &format!("v{dst}"));
                Ok(Operand::Temp(dst))
            }
            Expr::Bin(op, a, b) => {
                let oa = self.emit_expr(a)?;
                let ob = self.emit_expr(b)?;
                if !oa.is_vector() && !ob.is_vector() {
                    return Err(CompileError::ScalarStore);
                }
                let dst = match (oa, ob) {
                    (Operand::Temp(r), other) => {
                        self.valloc.release(other);
                        r
                    }
                    (_, Operand::Temp(r)) => r,
                    _ => self.valloc.alloc()?,
                };
                let d = format!("v{dst}");
                match op {
                    BinOp::Add => self.b.vadd(&oa.name(), &ob.name(), &d),
                    BinOp::Sub => self.b.vsub(&oa.name(), &ob.name(), &d),
                    BinOp::Mul => self.b.vmul(&oa.name(), &ob.name(), &d),
                    BinOp::Div => self.b.vdiv(&oa.name(), &ob.name(), &d),
                };
                Ok(Operand::Temp(dst))
            }
        }
    }
}

fn collect_scalars(e: &Expr, out: &mut Vec<ScalarKey>) {
    match e {
        Expr::Param(p) => {
            let k = ScalarKey::Param(p.clone());
            if !out.contains(&k) {
                out.push(k);
            }
        }
        Expr::Const(c) => {
            let k = ScalarKey::Const(c.to_bits());
            if !out.contains(&k) {
                out.push(k);
            }
        }
        Expr::Bin(_, a, b) => {
            collect_scalars(a, out);
            collect_scalars(b, out);
        }
        Expr::Neg(x) => collect_scalars(x, out),
        Expr::Load(_) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{con, load, load_strided, param};
    use c240_isa::InstrClass;

    fn triad() -> Kernel {
        Kernel::new("triad")
            .array("x", 2000)
            .array("y", 2000)
            .array("z", 2000)
            .param("a", 3.0)
            .store("x", 0, load("y", 0) + param("a") * load("z", 0))
    }

    fn count_class(p: &Program, class: InstrClass) -> usize {
        let l = p.innermost_loop().unwrap();
        p.loop_body(l).iter().filter(|i| i.class() == class).count()
    }

    #[test]
    fn triad_compiles_to_expected_shape() {
        let c = compile(&triad(), 1000, CompileOptions::default()).unwrap();
        // Loop body: 2 loads + 1 store, 1 mul + 1 add.
        assert_eq!(count_class(&c.program, InstrClass::VectorMem), 3);
        assert_eq!(count_class(&c.program, InstrClass::VectorFp), 2);
        assert!(c.spilled_arrays.is_empty());
        assert_eq!(c.ma.t_ma_cpl(), 3.0);
    }

    #[test]
    fn loads_first_schedule_reorders() {
        let c = compile(
            &triad(),
            1000,
            CompileOptions {
                schedule: ScheduleStrategy::LoadsFirst,
                ..CompileOptions::default()
            },
        )
        .unwrap();
        let l = c.program.innermost_loop().unwrap();
        let body = c.program.loop_body(l);
        let classes: Vec<_> = body
            .iter()
            .filter(|i| i.is_vector())
            .map(|i| i.class())
            .collect();
        // Both loads precede all arithmetic.
        assert_eq!(classes[0], InstrClass::VectorMem);
        assert_eq!(classes[1], InstrClass::VectorMem);
        assert_eq!(classes[2], InstrClass::VectorFp);
    }

    #[test]
    fn duplicate_loads_are_cached_within_a_statement() {
        let k = Kernel::new("sq").array("a", 2000).array("o", 2000).store(
            "o",
            0,
            load("a", 0) * load("a", 0),
        );
        let c = compile(&k, 1000, CompileOptions::default()).unwrap();
        assert_eq!(count_class(&c.program, InstrClass::VectorMem), 2); // 1 ld + 1 st
    }

    #[test]
    fn distinct_offsets_reload_like_fc() {
        // The MAC gap: zx(k+10) and zx(k+11) are separate loads even
        // though MA counts them once.
        let k = Kernel::new("lfk1ish")
            .array("x", 2000)
            .array("zx", 2100)
            .store("x", 0, load("zx", 10) + load("zx", 11));
        let c = compile(&k, 1000, CompileOptions::default()).unwrap();
        assert_eq!(count_class(&c.program, InstrClass::VectorMem), 3);
        assert_eq!(c.ma.loads, 1);
    }

    #[test]
    fn invariant_subtrees_fold() {
        let k = Kernel::new("f")
            .array("a", 2000)
            .array("o", 2000)
            .param("p", 2.0)
            .store("o", 0, (param("p") * con(3.0) + con(1.0)) * load("a", 0));
        let c = compile(&k, 100, CompileOptions::default()).unwrap();
        // Only one vector multiply; the scalar subtree became a constant.
        assert_eq!(count_class(&c.program, InstrClass::VectorFp), 1);
    }

    #[test]
    fn reduction_styles_differ() {
        let dot = Kernel::new("dot")
            .array("x", 2000)
            .array("z", 2000)
            .param("q", 0.0)
            .reduce("q", false, load("z", 0) * load("x", 0));
        let ew = compile(&dot, 1000, CompileOptions::default()).unwrap();
        let ps = compile(
            &dot,
            1000,
            CompileOptions {
                reduction: ReductionStyle::PerStrip,
                ..CompileOptions::default()
            },
        )
        .unwrap();
        let has_reduction_in_loop = |c: &CompiledKernel| {
            let l = c.program.innermost_loop().unwrap();
            c.program.loop_body(l).iter().any(|i| {
                matches!(
                    i,
                    c240_isa::Instruction::VRAdd { .. } | c240_isa::Instruction::VRSub { .. }
                )
            })
        };
        assert!(!has_reduction_in_loop(&ew));
        assert!(has_reduction_in_loop(&ps));
        assert_eq!(ew.reduction_regs.len(), 1);
    }

    #[test]
    fn many_arrays_spill_base_pointers() {
        let mut k = Kernel::new("many").array("o", 2000);
        let mut expr = load("a0arr", 0);
        k = k.array("a0arr", 2000);
        for i in 1..8 {
            let name = format!("a{i}arr");
            k = k.array(&name, 2000);
            expr = expr + load(&name, 0);
        }
        let k = k.store("o", 0, expr);
        let c = compile(&k, 1000, CompileOptions::default()).unwrap();
        assert!(!c.spilled_arrays.is_empty());
        // Spilled arrays produce scalar memory traffic in the loop.
        assert!(count_class(&c.program, InstrClass::ScalarMem) > 0);
    }

    #[test]
    fn error_cases() {
        let bad_array = Kernel::new("e1").store("o", 0, con(1.0) + load("a", 0));
        assert!(matches!(
            compile(&bad_array, 10, CompileOptions::default()),
            Err(CompileError::UnknownArray(_) | CompileError::ScalarStore)
        ));

        let bad_param = Kernel::new("e2").array("a", 100).array("o", 100).store(
            "o",
            0,
            param("zz") * load("a", 0),
        );
        assert!(matches!(
            compile(&bad_param, 10, CompileOptions::default()),
            Err(CompileError::UnknownParam(p)) if p == "zz"
        ));

        let empty = Kernel::new("e3");
        assert_eq!(
            compile(&empty, 10, CompileOptions::default()),
            Err(CompileError::EmptyBody)
        );

        let overrun = Kernel::new("e4")
            .array("a", 50)
            .array("o", 100)
            .store("o", 0, load("a", 0));
        assert!(matches!(
            compile(&overrun, 100, CompileOptions::default()),
            Err(CompileError::ArrayOverrun { .. })
        ));

        let negative =
            Kernel::new("e5")
                .array("a", 100)
                .array("o", 100)
                .store("o", 0, load("a", -1));
        assert!(matches!(
            compile(&negative, 10, CompileOptions::default()),
            Err(CompileError::NegativeOffset(_))
        ));

        let mixed = Kernel::new("e6").array("a", 5000).array("o", 100).store(
            "o",
            0,
            load("a", 0) + load_strided("a", 0, 3),
        );
        assert!(matches!(
            compile(&mixed, 10, CompileOptions::default()),
            Err(CompileError::MixedSteps(_))
        ));
    }

    #[test]
    fn strided_kernel_compiles_with_strided_access() {
        let k = Kernel::new("s").array("px", 30000).array("o", 2000).store(
            "o",
            0,
            load_strided("px", 4, 25) + load_strided("px", 5, 25),
        );
        let c = compile(&k, 1000, CompileOptions::default()).unwrap();
        let l = c.program.innermost_loop().unwrap();
        let strided = c.program.loop_body(l).iter().any(
            |i| matches!(i, c240_isa::Instruction::VLoad { addr, .. } if addr.stride.words() == 25),
        );
        assert!(strided);
    }
}
