//! Memory layout: where compiled kernels place their arrays.

use std::collections::BTreeMap;

use c240_isa::WORD_BYTES;

use crate::kernel::Kernel;

/// Word addresses assigned to a kernel's arrays.
///
/// Arrays are laid out sequentially from [`Layout::DATA_ORIGIN`], each
/// aligned to a 32-word (bank-count) boundary so unit-stride streams of
/// different arrays start in different banks deterministically. The words
/// below the origin are reserved: a scratch area and the spilled
/// base-pointer table used when a kernel has more arrays than address
/// registers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layout {
    bases: BTreeMap<String, (u64, u64)>,
    total_words: u64,
}

impl Layout {
    /// First word available for array data.
    pub const DATA_ORIGIN: u64 = 128;

    /// Word address of the spilled base-pointer table.
    pub const POINTER_TABLE: u64 = 32;

    /// Computes the layout for a kernel's declared arrays.
    pub fn for_kernel(kernel: &Kernel) -> Self {
        let mut bases = BTreeMap::new();
        let mut next = Self::DATA_ORIGIN;
        for a in kernel.arrays() {
            bases.insert(a.name.clone(), (next, a.len));
            next += a.len;
            next = next.div_ceil(32) * 32;
        }
        Layout {
            bases,
            total_words: next,
        }
    }

    /// Base word address of an array.
    pub fn base_word(&self, array: &str) -> Option<u64> {
        self.bases.get(array).map(|&(b, _)| b)
    }

    /// Base *byte* address of an array (what address registers hold).
    pub fn base_byte(&self, array: &str) -> Option<i64> {
        self.base_word(array).map(|w| (w * WORD_BYTES) as i64)
    }

    /// Declared length of an array in words.
    pub fn len_words(&self, array: &str) -> Option<u64> {
        self.bases.get(array).map(|&(_, l)| l)
    }

    /// Total words the layout occupies (arrays end here).
    pub fn total_words(&self) -> u64 {
        self.total_words
    }

    /// Arrays in layout order.
    pub fn arrays(&self) -> impl Iterator<Item = (&str, u64, u64)> {
        self.bases.iter().map(|(n, &(b, l))| (n.as_str(), b, l))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::load;

    #[test]
    fn sequential_aligned_layout() {
        let k = Kernel::new("k")
            .array("a", 100)
            .array("b", 33)
            .array("c", 1)
            .store("c", 0, load("a", 0) + load("b", 0));
        let l = Layout::for_kernel(&k);
        assert_eq!(l.base_word("a"), Some(128));
        assert_eq!(l.base_word("b"), Some(256)); // 228 rounded to 32
        assert_eq!(l.base_word("c"), Some(320)); // 289 rounded
        assert_eq!(l.base_byte("a"), Some(1024));
        assert_eq!(l.len_words("b"), Some(33));
        assert!(l.total_words() >= 321);
        assert_eq!(l.base_word("nope"), None);
    }

    #[test]
    fn arrays_iterates_all() {
        let k = Kernel::new("k")
            .array("a", 4)
            .array("b", 4)
            .store("b", 0, load("a", 0));
        let l = Layout::for_kernel(&k);
        assert_eq!(l.arrays().count(), 2);
    }
}
