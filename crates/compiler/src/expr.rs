//! Expressions of the loop-body IR.
//!
//! An expression reads array *streams* ([`StreamRef`]), loop-invariant
//! scalar parameters, and constants, combined with floating point
//! arithmetic. Expressions support Rust operator syntax:
//!
//! ```
//! use macs_compiler::{load, param, con};
//!
//! // X(k) = Q + Y(k) * (R * ZX(k+10) + T * ZX(k+11))   — LFK1
//! let rhs = param("q")
//!     + load("y", 0) * (param("r") * load("zx", 10) + param("t") * load("zx", 11));
//! assert_eq!(rhs.flops(), (2, 3)); // 2 additions, 3 multiplications
//! ```

use std::fmt;
use std::ops;

/// A reference to one element of an array stream, relative to the current
/// loop iteration.
///
/// In source terms, `A(c·k + offset)` for loop variable `k`: `offset` is
/// the constant element offset and `step` the number of array elements the
/// reference advances per iteration (`None` means "the loop's step").
/// A 2-D column access like Fortran's `B(i,k)` with `k` the loop variable
/// is a stream with `step = Some(leading_dimension)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StreamRef {
    /// Array name.
    pub array: String,
    /// Constant element offset from the loop position.
    pub offset: i64,
    /// Elements advanced per source iteration (`None`: the loop's step).
    pub step: Option<i64>,
}

impl StreamRef {
    /// The step, resolved against the enclosing loop's step.
    pub fn resolved_step(&self, loop_step: i64) -> i64 {
        self.step.unwrap_or(loop_step)
    }
}

impl fmt::Display for StreamRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.offset, self.step) {
            (0, None) => write!(f, "{}[k]", self.array),
            (o, None) => write!(f, "{}[k{o:+}]", self.array),
            (0, Some(s)) => write!(f, "{}[{s}k]", self.array),
            (o, Some(s)) => write!(f, "{}[{s}k{o:+}]", self.array),
        }
    }
}

/// Binary floating point operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Addition (add pipe, counts toward `f_a`).
    Add,
    /// Subtraction (add pipe, counts toward `f_a`).
    Sub,
    /// Multiplication (multiply pipe, counts toward `f_m`).
    Mul,
    /// Division (multiply pipe, counts toward `f_m`).
    Div,
}

impl BinOp {
    /// Applies the operator to two values.
    pub fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            BinOp::Add => a + b,
            BinOp::Sub => a - b,
            BinOp::Mul => a * b,
            BinOp::Div => a / b,
        }
    }

    /// Whether this operator executes on the add pipe (else multiply).
    pub fn is_add_class(self) -> bool {
        matches!(self, BinOp::Add | BinOp::Sub)
    }
}

/// A loop-body expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// An array stream element.
    Load(StreamRef),
    /// A loop-invariant scalar parameter by name.
    Param(String),
    /// A floating point constant.
    Const(f64),
    /// A binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Negation (executes on the add pipe).
    Neg(Box<Expr>),
}

/// A stream load: `load("zx", 10)` is `ZX(k+10)`.
pub fn load(array: &str, offset: i64) -> Expr {
    Expr::Load(StreamRef {
        array: array.to_string(),
        offset,
        step: None,
    })
}

/// A stream load with an explicit per-iteration step (2-D columns,
/// gathers): `load_strided("px", 4, 25)` is `PX(25·k + 4)`.
pub fn load_strided(array: &str, offset: i64, step: i64) -> Expr {
    Expr::Load(StreamRef {
        array: array.to_string(),
        offset,
        step: Some(step),
    })
}

/// A scalar parameter reference.
pub fn param(name: &str) -> Expr {
    Expr::Param(name.to_string())
}

/// A floating point constant.
pub fn con(value: f64) -> Expr {
    Expr::Const(value)
}

impl Expr {
    /// `(additions, multiplications)` in this expression, using the
    /// paper's accounting (sub and neg are add-class; div is
    /// multiply-class).
    pub fn flops(&self) -> (u32, u32) {
        match self {
            Expr::Load(_) | Expr::Param(_) | Expr::Const(_) => (0, 0),
            Expr::Bin(op, a, b) => {
                let (aa, am) = a.flops();
                let (ba, bm) = b.flops();
                if op.is_add_class() {
                    (aa + ba + 1, am + bm)
                } else {
                    (aa + ba, am + bm + 1)
                }
            }
            Expr::Neg(e) => {
                let (a, m) = e.flops();
                (a + 1, m)
            }
        }
    }

    /// Appends every stream reference in evaluation order.
    pub fn collect_loads(&self, out: &mut Vec<StreamRef>) {
        match self {
            Expr::Load(s) => out.push(s.clone()),
            Expr::Param(_) | Expr::Const(_) => {}
            Expr::Bin(_, a, b) => {
                a.collect_loads(out);
                b.collect_loads(out);
            }
            Expr::Neg(e) => e.collect_loads(out),
        }
    }

    /// Evaluates the expression for one iteration, with `lookup` supplying
    /// stream element values and `params` supplying parameters.
    ///
    /// Used to cross-check compiled code against the IR semantics.
    pub fn eval(
        &self,
        lookup: &mut impl FnMut(&StreamRef) -> f64,
        params: &impl Fn(&str) -> f64,
    ) -> f64 {
        match self {
            Expr::Load(s) => lookup(s),
            Expr::Param(p) => params(p),
            Expr::Const(c) => *c,
            Expr::Bin(op, a, b) => {
                let va = a.eval(lookup, params);
                let vb = b.eval(lookup, params);
                op.apply(va, vb)
            }
            Expr::Neg(e) => -e.eval(lookup, params),
        }
    }

    /// Folds constant subtrees (`Const op Const` → `Const`).
    pub fn fold(self) -> Expr {
        match self {
            Expr::Bin(op, a, b) => {
                let a = a.fold();
                let b = b.fold();
                if let (Expr::Const(x), Expr::Const(y)) = (&a, &b) {
                    Expr::Const(op.apply(*x, *y))
                } else {
                    Expr::Bin(op, Box::new(a), Box::new(b))
                }
            }
            Expr::Neg(e) => {
                let e = e.fold();
                if let Expr::Const(x) = e {
                    Expr::Const(-x)
                } else {
                    Expr::Neg(Box::new(e))
                }
            }
            other => other,
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Load(s) => s.fmt(f),
            Expr::Param(p) => f.write_str(p),
            Expr::Const(c) => write!(f, "{c}"),
            Expr::Bin(op, a, b) => {
                let sym = match op {
                    BinOp::Add => "+",
                    BinOp::Sub => "-",
                    BinOp::Mul => "*",
                    BinOp::Div => "/",
                };
                write!(f, "({a} {sym} {b})")
            }
            Expr::Neg(e) => write!(f, "(-{e})"),
        }
    }
}

impl ops::Add for Expr {
    type Output = Expr;
    fn add(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Add, Box::new(self), Box::new(rhs))
    }
}

impl ops::Sub for Expr {
    type Output = Expr;
    fn sub(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Sub, Box::new(self), Box::new(rhs))
    }
}

impl ops::Mul for Expr {
    type Output = Expr;
    fn mul(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Mul, Box::new(self), Box::new(rhs))
    }
}

impl ops::Div for Expr {
    type Output = Expr;
    fn div(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Div, Box::new(self), Box::new(rhs))
    }
}

impl ops::Neg for Expr {
    type Output = Expr;
    fn neg(self) -> Expr {
        Expr::Neg(Box::new(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lfk1_flop_counts() {
        let rhs =
            param("q") + load("y", 0) * (param("r") * load("zx", 10) + param("t") * load("zx", 11));
        assert_eq!(rhs.flops(), (2, 3));
        let mut loads = Vec::new();
        rhs.collect_loads(&mut loads);
        assert_eq!(loads.len(), 3);
    }

    #[test]
    fn display_forms() {
        let e = load("x", 0) - load_strided("b", 1, 25) / con(2.0);
        let text = e.to_string();
        assert!(text.contains("x[k]"));
        assert!(text.contains("b[25k+1]"));
        let n = -param("p");
        assert_eq!(n.to_string(), "(-p)");
    }

    #[test]
    fn eval_matches_semantics() {
        let e = (load("a", 0) + con(1.0)) * param("s") - con(2.0);
        let v = e.eval(&mut |s| if s.array == "a" { 3.0 } else { 0.0 }, &|_| 10.0);
        assert_eq!(v, 38.0);
    }

    #[test]
    fn neg_counts_as_add_class() {
        let e = -load("a", 0);
        assert_eq!(e.flops(), (1, 0));
    }

    #[test]
    fn fold_constants() {
        let e = (con(2.0) * con(3.0) + param("x")).fold();
        match e {
            Expr::Bin(BinOp::Add, a, _) => assert_eq!(*a, Expr::Const(6.0)),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!((-con(4.0)).fold(), Expr::Const(-4.0));
    }

    #[test]
    fn resolved_step() {
        let s = StreamRef {
            array: "x".into(),
            offset: 0,
            step: None,
        };
        assert_eq!(s.resolved_step(2), 2);
        let s2 = StreamRef {
            array: "x".into(),
            offset: 0,
            step: Some(25),
        };
        assert_eq!(s2.resolved_step(2), 25);
    }

    #[test]
    fn div_is_multiply_class() {
        let e = load("a", 0) / load("b", 0);
        assert_eq!(e.flops(), (0, 1));
        assert!(!BinOp::Div.is_add_class());
    }
}
