//! MA workload analysis: operation counts under a perfect compiler
//! (§3.1 of the paper).
//!
//! The MA bound counts the additions `f_a` and multiplications `f_m` of
//! the high-level loop body, and the loads `l` and stores `s` that remain
//! after *perfect index analysis* — array references that revisit data
//! already touched in an earlier iteration are counted once, because an
//! ideal compiler would keep the reused elements in registers.

use std::collections::BTreeSet;
use std::fmt;

use crate::expr::StreamRef;
use crate::kernel::{Kernel, Stmt};

/// The MA-level workload of one loop iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaWorkload {
    /// Additions per iteration (`f_a`).
    pub f_a: u32,
    /// Multiplications per iteration (`f_m`).
    pub f_m: u32,
    /// Memory loads per iteration after perfect reuse (`l`).
    pub loads: u32,
    /// Memory stores per iteration (`s`).
    pub stores: u32,
}

impl MaWorkload {
    /// `t_f = max(f_a, f_m)` — floating point bound component in CPL.
    pub fn t_f(&self) -> f64 {
        f64::from(self.f_a.max(self.f_m))
    }

    /// `t_m = l + s` — memory bound component in CPL.
    pub fn t_m(&self) -> f64 {
        f64::from(self.loads + self.stores)
    }

    /// `t_MA = max(t_f, t_m)` in CPL (Eq. 1).
    pub fn t_ma_cpl(&self) -> f64 {
        self.t_f().max(self.t_m())
    }

    /// `t_MA` in CPF (Eq. 2): CPL divided by `f_a + f_m`.
    ///
    /// # Panics
    ///
    /// Panics if the kernel has no floating point operations.
    pub fn t_ma_cpf(&self) -> f64 {
        let f = self.f_a + self.f_m;
        assert!(f > 0, "CPF undefined for a kernel with no flops");
        self.t_ma_cpl() / f64::from(f)
    }
}

impl fmt::Display for MaWorkload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "f_a={} f_m={} l={} s={} (t_f={}, t_m={}, t_MA={} CPL)",
            self.f_a,
            self.f_m,
            self.loads,
            self.stores,
            self.t_f(),
            self.t_m(),
            self.t_ma_cpl()
        )
    }
}

/// The canonical reuse class of a stream reference: references in the
/// same class revisit each other's elements in other iterations, so a
/// perfect compiler loads the class once per iteration.
///
/// Two references belong to the same class when they name the same array,
/// advance by the same step, and their offsets are congruent modulo the
/// step.
fn reuse_class(s: &StreamRef, loop_step: i64) -> (String, i64, i64) {
    let step = s.resolved_step(loop_step);
    let phase = if step == 0 {
        s.offset
    } else {
        s.offset.rem_euclid(step.abs())
    };
    (s.array.clone(), step, phase)
}

/// Computes the MA workload of a kernel (perfect-reuse operation counts).
///
/// # Example
///
/// LFK1 has 2 adds, 3 multiplies, and — with `ZX(k+10)`/`ZX(k+11)`
/// collapsing into one stream — 2 loads and 1 store: `t_MA = 3` CPL.
///
/// ```
/// use macs_compiler::{analyze_ma, Kernel, load, param};
///
/// let lfk1 = Kernel::new("lfk1")
///     .array("x", 1001).array("y", 1001).array("zx", 1012)
///     .param("q", 1.0).param("r", 2.0).param("t", 3.0)
///     .store("x", 0,
///         param("q") + load("y", 0)
///             * (param("r") * load("zx", 10) + param("t") * load("zx", 11)));
/// let ma = analyze_ma(&lfk1);
/// assert_eq!((ma.f_a, ma.f_m, ma.loads, ma.stores), (2, 3, 2, 1));
/// assert_eq!(ma.t_ma_cpl(), 3.0);
/// assert_eq!(ma.t_ma_cpf(), 0.6);
/// ```
pub fn analyze_ma(kernel: &Kernel) -> MaWorkload {
    // An ideal compiler hoists loop-invariant scalar arithmetic, so the
    // MA flop counts come from the folded body (else a real compiler
    // that folds could beat the "ideal" bound).
    let body = kernel.folded_body();
    let mut f_a = 0;
    let mut f_m = 0;
    for stmt in &body {
        let (a, m) = stmt.value().flops();
        f_a += a;
        f_m += m;
        if matches!(stmt, Stmt::Reduce { .. }) {
            f_a += 1;
        }
    }
    let step = kernel.loop_step();
    let mut load_classes: BTreeSet<(String, i64, i64)> = BTreeSet::new();
    let mut store_classes: BTreeSet<(String, i64, i64)> = BTreeSet::new();
    for stmt in &body {
        let mut refs = Vec::new();
        stmt.value().collect_loads(&mut refs);
        for r in &refs {
            load_classes.insert(reuse_class(r, step));
        }
        if let Stmt::Store { target, .. } = stmt {
            store_classes.insert(reuse_class(target, step));
        }
    }
    MaWorkload {
        f_a,
        f_m,
        loads: load_classes.len() as u32,
        stores: store_classes.len() as u32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{load, load_strided, param};

    #[test]
    fn lfk1_ma() {
        let k = Kernel::new("lfk1")
            .array("x", 1001)
            .array("y", 1001)
            .array("zx", 1012)
            .param("q", 0.0)
            .param("r", 0.0)
            .param("t", 0.0)
            .store(
                "x",
                0,
                param("q")
                    + load("y", 0) * (param("r") * load("zx", 10) + param("t") * load("zx", 11)),
            );
        let ma = analyze_ma(&k);
        assert_eq!(ma.f_a, 2);
        assert_eq!(ma.f_m, 3);
        assert_eq!(ma.loads, 2); // zx collapses, y
        assert_eq!(ma.stores, 1);
        assert_eq!(ma.t_ma_cpl(), 3.0);
    }

    #[test]
    fn lfk2_step2_reuse() {
        // X(k) = X(k) - V(k)*X(k-1) - V(k+1)*X(k+1), step 2:
        // X(k±1) are one stream (offsets congruent mod 2), X(k) another;
        // V(k) and V(k+1) are distinct. 4 loads + 1 store = 5 = t_MA.
        let k = Kernel::new("lfk2ish")
            .array("x", 1001)
            .array("v", 1001)
            .array("xout", 1001)
            .step(2)
            .store(
                "xout",
                0,
                load("x", 0) - load("v", 0) * load("x", -1) - load("v", 1) * load("x", 1),
            );
        let ma = analyze_ma(&k);
        assert_eq!(ma.f_a, 2);
        assert_eq!(ma.f_m, 2);
        assert_eq!(ma.loads, 4);
        assert_eq!(ma.stores, 1);
        assert_eq!(ma.t_ma_cpl(), 5.0);
        assert_eq!(ma.t_ma_cpf(), 1.25);
    }

    #[test]
    fn lfk7_heavy_reuse() {
        // 8 adds, 8 muls, u/y/z collapse to 3 loads + 1 store: t_MA = 8.
        let u = |o| load("u", o);
        let k = Kernel::new("lfk7ish")
            .array("x", 1001)
            .array("u", 1007)
            .array("y", 1001)
            .array("z", 1001)
            .param("r", 0.0)
            .param("t", 0.0)
            .store(
                "x",
                0,
                u(0) + param("r") * (load("z", 0) + param("r") * load("y", 0))
                    + param("t")
                        * (u(3)
                            + param("r") * (u(2) + param("r") * u(1))
                            + param("t") * (u(6) + param("r") * (u(5) + param("r") * u(4)))),
            );
        let ma = analyze_ma(&k);
        assert_eq!((ma.f_a, ma.f_m), (8, 8));
        assert_eq!((ma.loads, ma.stores), (3, 1));
        assert_eq!(ma.t_ma_cpl(), 8.0);
        assert_eq!(ma.t_ma_cpf(), 0.5);
    }

    #[test]
    fn strided_streams_do_not_collapse() {
        // PX(25k+4) and PX(25k+5) are distinct streams.
        let k = Kernel::new("lfk9ish").array("px", 4000).store(
            "px",
            0,
            load_strided("px", 4, 25) + load_strided("px", 5, 25),
        );
        let ma = analyze_ma(&k);
        assert_eq!(ma.loads, 2);
    }

    #[test]
    fn duplicate_refs_count_once() {
        let k = Kernel::new("dup").array("a", 10).array("o", 10).store(
            "o",
            0,
            load("a", 0) * load("a", 0),
        );
        assert_eq!(analyze_ma(&k).loads, 1);
    }

    #[test]
    #[should_panic(expected = "no flops")]
    fn cpf_without_flops_panics() {
        let k = Kernel::new("copy")
            .array("a", 10)
            .array("b", 10)
            .store("b", 0, load("a", 0));
        let _ = analyze_ma(&k).t_ma_cpf();
    }

    #[test]
    fn negative_offsets_group_correctly() {
        // step 1: offsets -3 and 5 are the same stream.
        let k = Kernel::new("n").array("a", 10).array("o", 10).store(
            "o",
            0,
            load("a", -3) + load("a", 5),
        );
        assert_eq!(analyze_ma(&k).loads, 1);
    }
}
