//! Per-point outcome accounting for supervised sweeps.
//!
//! The sweep server classifies every input point into exactly one
//! terminal outcome (ok, resumed from a journal, rejected by validation,
//! timed out, panicked, or duplicate-of-an-earlier-line) and additionally
//! counts how many points needed retries. [`SweepOutcomes`] is the
//! machine-readable tally the server emits as its end-of-stream summary
//! row (schema `c240-sweep-summary/v1`) — the at-a-glance answer to "did
//! this grid degrade gracefully or silently lose points".

use std::fmt;

use crate::json::Json;

/// Schema identifier of the summary row built by
/// [`SweepOutcomes::to_json`].
pub const SWEEP_SUMMARY_SCHEMA: &str = "c240-sweep-summary/v1";

/// Tally of terminal point outcomes in one sweep run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SweepOutcomes {
    /// Points that computed successfully (on any attempt).
    pub ok: u64,
    /// Points answered verbatim from the resume journal.
    pub resumed: u64,
    /// Lines rejected before evaluation: malformed JSON, protocol
    /// violations, unknown kernels, or configurations that failed
    /// validation.
    pub invalid: u64,
    /// Points whose every attempt exceeded its deadline.
    pub timed_out: u64,
    /// Points whose every attempt panicked.
    pub panicked: u64,
    /// Input lines skipped because an earlier line in the same run had
    /// the same point key.
    pub duplicate: u64,
    /// Points answered from the coordinator's in-memory result cache
    /// (or deduplicated against an identical in-flight point) without
    /// re-simulating.
    pub cached: u64,
    /// Points refused with a structured `overloaded` error row because
    /// the coordinator's admission queue was full.
    pub overloaded: u64,
    /// Points that needed more than one attempt, whatever the final
    /// outcome (a subset indicator, not a terminal class).
    pub retried: u64,
}

impl SweepOutcomes {
    /// A zeroed tally.
    pub fn new() -> Self {
        SweepOutcomes::default()
    }

    /// Total input lines that reached a terminal outcome.
    pub fn points(&self) -> u64 {
        self.ok
            + self.resumed
            + self.invalid
            + self.timed_out
            + self.panicked
            + self.duplicate
            + self.cached
            + self.overloaded
    }

    /// Points blacklisted after exhausting their retry budget (the
    /// poison-point count: timeouts plus panics).
    pub fn poisoned(&self) -> u64 {
        self.timed_out + self.panicked
    }

    /// The summary row (schema [`SWEEP_SUMMARY_SCHEMA`]).
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("schema", SWEEP_SUMMARY_SCHEMA)
            .field("points", self.points())
            .field("ok", self.ok)
            .field("resumed", self.resumed)
            .field("invalid", self.invalid)
            .field("timed_out", self.timed_out)
            .field("panicked", self.panicked)
            .field("poisoned", self.poisoned())
            .field("duplicate", self.duplicate)
            .field("cached", self.cached)
            .field("overloaded", self.overloaded)
            .field("retried", self.retried)
    }
}

impl fmt::Display for SweepOutcomes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} points: {} ok, {} resumed, {} invalid, {} timed out, {} panicked, \
             {} duplicate, {} cached, {} overloaded ({} retried)",
            self.points(),
            self.ok,
            self.resumed,
            self.invalid,
            self.timed_out,
            self.panicked,
            self.duplicate,
            self.cached,
            self.overloaded,
            self.retried
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_partition_the_points() {
        let o = SweepOutcomes {
            ok: 5,
            resumed: 2,
            invalid: 3,
            timed_out: 1,
            panicked: 1,
            duplicate: 1,
            cached: 4,
            overloaded: 2,
            retried: 2,
        };
        assert_eq!(o.points(), 19);
        assert_eq!(o.poisoned(), 2);
        let j = o.to_json();
        assert_eq!(
            j.get("schema").and_then(Json::as_str),
            Some(SWEEP_SUMMARY_SCHEMA)
        );
        assert_eq!(j.get("points").and_then(Json::as_f64), Some(19.0));
        assert_eq!(j.get("poisoned").and_then(Json::as_f64), Some(2.0));
        assert_eq!(j.get("cached").and_then(Json::as_f64), Some(4.0));
        assert_eq!(j.get("overloaded").and_then(Json::as_f64), Some(2.0));
        assert_eq!(j.get("retried").and_then(Json::as_f64), Some(2.0));
    }

    #[test]
    fn display_mentions_every_class() {
        let text = SweepOutcomes::new().to_string();
        for word in [
            "ok",
            "resumed",
            "invalid",
            "timed out",
            "panicked",
            "duplicate",
            "cached",
            "overloaded",
        ] {
            assert!(text.contains(word), "missing {word} in {text}");
        }
    }
}
