//! Hierarchical wall-clock spans for the sweep service.
//!
//! The MACS methodology attributes every simulated cycle; this module
//! does the same for the *service's* wall-clock. A [`Tracer`] hands out
//! [`Span`] guards — `sweep → point → attempt → phase` — whose lifetimes
//! measure a monotonic interval each. Finished spans land in a small set
//! of sharded buffers (one mutex acquisition per span *finish*, never
//! per event, and threads hash to different shards, so the hot path of
//! the simulator is untouched and the service path is contention-free in
//! practice). The collected records export two ways:
//!
//! * [`spans_to_ndjson`] — one `c240-span/v1` object per line, the
//!   journal-friendly form;
//! * [`spans_to_chrome`] — a Chrome `trace_event` document (`ph:"X"`
//!   complete events) that loads directly in Perfetto or
//!   `chrome://tracing`, so a whole sweep's timeline is inspectable.
//!
//! Every timestamp is nanoseconds on the process-wide monotonic clock
//! ([`crate::monotonic_ns`]); the simulator's cycle-domain pipeline
//! traces are stamped with the same clock's origin, so both kinds of
//! trace correlate in one timeline.
//!
//! Span trees are well-nested by construction: a child guard borrows its
//! parent's id and is finished (dropped) before the parent, so a child's
//! interval lies within its parent's and sequential siblings are
//! disjoint — which is what makes "per-phase durations sum to ≤ point
//! duration" an invariant rather than a hope (asserted in the bench
//! crate's integration tests).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::json::Json;
use crate::monotonic_ns;

/// Schema identifier of NDJSON span records.
pub const SPAN_SCHEMA: &str = "c240-span/v1";

/// Buffer shards; finishing threads hash to a shard by thread id.
const SHARDS: usize = 8;

/// Default cap on buffered records — a long-running server must not grow
/// without bound between drains. Past the cap, finishes are counted in
/// [`Tracer::dropped`] instead of stored (mirroring `c240_sim::Trace`).
pub const DEFAULT_SPAN_CAP: usize = 1 << 16;

/// One finished span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Unique id within this tracer (1-based; ids are allocated at span
    /// *start*, so parents have smaller ids than their children).
    pub id: u64,
    /// Parent span id, 0 for roots.
    pub parent: u64,
    /// Span name (e.g. `point`, `simulate`).
    pub name: String,
    /// Small integer identifying the finishing thread.
    pub tid: u64,
    /// Start, nanoseconds on the process monotonic clock.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Free-form annotations (point id, attempt number, …).
    pub args: Vec<(String, Json)>,
}

impl SpanRecord {
    /// The NDJSON form (schema [`SPAN_SCHEMA`]).
    pub fn to_json(&self) -> Json {
        let mut j = Json::obj()
            .field("schema", SPAN_SCHEMA)
            .field("id", self.id)
            .field("parent", self.parent)
            .field("name", self.name.as_str())
            .field("tid", self.tid)
            .field("start_ns", self.start_ns)
            .field("dur_ns", self.dur_ns);
        if !self.args.is_empty() {
            let mut args = Json::obj();
            for (k, v) in &self.args {
                args = args.field(k, v.clone());
            }
            j = j.field("args", args);
        }
        j
    }

    /// End of the interval, nanoseconds.
    pub fn end_ns(&self) -> u64 {
        self.start_ns + self.dur_ns
    }
}

#[derive(Debug, Default)]
struct Inner {
    next_id: AtomicU64,
    dropped: AtomicU64,
    cap: usize,
    shards: [Mutex<Vec<SpanRecord>>; SHARDS],
}

/// A shareable span collector (`Clone` is a cheap handle).
#[derive(Debug, Clone)]
pub struct Tracer {
    inner: Arc<Inner>,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new()
    }
}

/// A small per-thread integer for trace rows (Chrome tracks need one).
fn thread_tid() -> u64 {
    use std::cell::Cell;
    static NEXT_TID: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: Cell<u64> = const { Cell::new(0) };
    }
    TID.with(|t| {
        if t.get() == 0 {
            t.set(NEXT_TID.fetch_add(1, Ordering::Relaxed));
        }
        t.get()
    })
}

impl Tracer {
    /// A fresh tracer with the default record cap.
    pub fn new() -> Self {
        Tracer::with_cap(DEFAULT_SPAN_CAP)
    }

    /// A fresh tracer keeping at most `cap` buffered records between
    /// drains; further finishes are counted as dropped.
    pub fn with_cap(cap: usize) -> Self {
        Tracer {
            inner: Arc::new(Inner {
                next_id: AtomicU64::new(1),
                dropped: AtomicU64::new(0),
                cap,
                shards: Default::default(),
            }),
        }
    }

    /// Opens a root span.
    pub fn span(&self, name: impl Into<String>) -> Span {
        self.open(name.into(), 0)
    }

    /// Opens a span under the span with id `parent` (0 for a root).
    ///
    /// This is the cross-thread form of [`Span::child`]: a worker thread
    /// holds only its parent's *id* (a `Span` guard lives on the thread
    /// that opened it), so it parents its spans by id. The caller is
    /// responsible for finishing the child before the parent ends if the
    /// tree is to stay well-nested.
    pub fn span_under(&self, name: impl Into<String>, parent: u64) -> Span {
        self.open(name.into(), parent)
    }

    fn open(&self, name: String, parent: u64) -> Span {
        Span {
            tracer: self.clone(),
            id: self.inner.next_id.fetch_add(1, Ordering::Relaxed),
            parent,
            name,
            start_ns: monotonic_ns(),
            args: Vec::new(),
            recorded: false,
        }
    }

    fn record(&self, rec: SpanRecord) {
        let shard = (rec.tid as usize) % SHARDS;
        let mut buf = self.inner.shards[shard].lock().expect("span shard lock");
        let buffered: usize = buf.len();
        // The cap is per shard (cap / SHARDS each) so no shard can starve
        // the others; the sum is bounded by `cap`.
        if buffered < self.inner.cap.div_ceil(SHARDS) {
            buf.push(rec);
        } else {
            drop(buf);
            self.inner.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Removes and returns every buffered record, sorted by start time
    /// (ties by id, so parents precede children).
    pub fn drain(&self) -> Vec<SpanRecord> {
        let mut all = Vec::new();
        for shard in &self.inner.shards {
            all.append(&mut shard.lock().expect("span shard lock"));
        }
        all.sort_by(|a, b| a.start_ns.cmp(&b.start_ns).then(a.id.cmp(&b.id)));
        all
    }

    /// Spans finished past the cap and not stored.
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }
}

/// A live span: measures from creation to [`Span::end`] (or drop).
#[derive(Debug)]
pub struct Span {
    tracer: Tracer,
    id: u64,
    parent: u64,
    name: String,
    start_ns: u64,
    args: Vec<(String, Json)>,
    recorded: bool,
}

impl Span {
    /// This span's id (for cross-referencing, e.g. row provenance).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Opens a child span; finish (drop) it before `self` so the tree
    /// stays well-nested.
    pub fn child(&self, name: impl Into<String>) -> Span {
        self.tracer.open(name.into(), self.id)
    }

    /// Attaches an annotation.
    pub fn arg(&mut self, key: &str, value: impl Into<Json>) {
        self.args.push((key.to_string(), value.into()));
    }

    /// Finishes the span now and returns its duration in nanoseconds.
    pub fn end(mut self) -> u64 {
        self.finish()
    }

    fn finish(&mut self) -> u64 {
        if self.recorded {
            return 0;
        }
        self.recorded = true;
        let dur_ns = monotonic_ns().saturating_sub(self.start_ns);
        self.tracer.record(SpanRecord {
            id: self.id,
            parent: self.parent,
            name: std::mem::take(&mut self.name),
            tid: thread_tid(),
            start_ns: self.start_ns,
            dur_ns,
            args: std::mem::take(&mut self.args),
        });
        dur_ns
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.finish();
    }
}

/// Renders records as NDJSON (one [`SPAN_SCHEMA`] object per line).
pub fn spans_to_ndjson(records: &[SpanRecord]) -> String {
    let mut out = String::new();
    for rec in records {
        out.push_str(&rec.to_json().to_string());
        out.push('\n');
    }
    out
}

/// Renders records as a Chrome `trace_event` document (JSON object
/// format, `ph:"X"` complete events, microsecond timestamps) that loads
/// in Perfetto / `chrome://tracing`.
///
/// Span args ride along under `args`, with the span/parent ids added so
/// rows can be matched back to NDJSON records and row provenance.
pub fn spans_to_chrome(records: &[SpanRecord]) -> Json {
    let events: Vec<Json> = records
        .iter()
        .map(|rec| {
            let mut args = Json::obj()
                .field("span", rec.id)
                .field("parent", rec.parent);
            for (k, v) in &rec.args {
                args = args.field(k, v.clone());
            }
            Json::obj()
                .field("name", rec.name.as_str())
                .field("cat", "macs")
                .field("ph", "X")
                .field("ts", rec.start_ns as f64 / 1e3)
                .field("dur", rec.dur_ns as f64 / 1e3)
                .field("pid", 1u64)
                .field("tid", rec.tid)
                .field("args", args)
        })
        .collect();
    Json::obj()
        .field("traceEvents", Json::Arr(events))
        .field("displayTimeUnit", "ms")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_account() {
        let tracer = Tracer::new();
        let mut sweep = tracer.span("sweep");
        sweep.arg("grid", "smoke");
        let point = sweep.child("point");
        let a = point.child("validate");
        drop(a);
        let b = point.child("simulate");
        let sim_ns = b.end();
        drop(point);
        drop(sweep);

        let recs = tracer.drain();
        assert_eq!(recs.len(), 4);
        let by_name = |n: &str| recs.iter().find(|r| r.name == n).unwrap();
        let sweep = by_name("sweep");
        let point = by_name("point");
        let validate = by_name("validate");
        let simulate = by_name("simulate");
        assert_eq!(sweep.parent, 0);
        assert_eq!(point.parent, sweep.id);
        assert_eq!(validate.parent, point.id);
        assert_eq!(simulate.parent, point.id);
        assert_eq!(simulate.dur_ns, sim_ns);
        // Well-nested: children within parents, phases sum ≤ point.
        for (child, parent) in [(point, sweep), (validate, point), (simulate, point)] {
            assert!(child.start_ns >= parent.start_ns);
            assert!(child.end_ns() <= parent.end_ns());
        }
        assert!(validate.dur_ns + simulate.dur_ns <= point.dur_ns);
        assert_eq!(tracer.dropped(), 0);
        // Sorted parents-first.
        assert!(recs[0].name == "sweep");
    }

    #[test]
    fn drain_empties_the_buffers() {
        let tracer = Tracer::new();
        drop(tracer.span("a"));
        assert_eq!(tracer.drain().len(), 1);
        assert!(tracer.drain().is_empty());
    }

    #[test]
    fn cap_bounds_storage_and_counts_drops() {
        let tracer = Tracer::with_cap(SHARDS); // one record per shard
        for _ in 0..20 {
            drop(tracer.span("s"));
        }
        // This thread maps to one shard, which holds one record.
        assert_eq!(tracer.drain().len(), 1);
        assert_eq!(tracer.dropped(), 19);
    }

    #[test]
    fn ndjson_and_chrome_exports() {
        let tracer = Tracer::new();
        let mut s = tracer.span("point");
        s.arg("id", "lfk1 \"quoted\"");
        drop(s);
        let recs = tracer.drain();

        let ndjson = spans_to_ndjson(&recs);
        let parsed = Json::parse(ndjson.trim()).unwrap();
        assert_eq!(
            parsed.get("schema").and_then(Json::as_str),
            Some(SPAN_SCHEMA)
        );
        assert_eq!(
            parsed
                .get("args")
                .and_then(|a| a.get("id"))
                .and_then(Json::as_str),
            Some("lfk1 \"quoted\"")
        );

        let chrome = spans_to_chrome(&recs);
        let events = chrome.get("traceEvents").and_then(Json::as_arr).unwrap();
        assert_eq!(events.len(), 1);
        let e = &events[0];
        assert_eq!(e.get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(e.get("name").and_then(Json::as_str), Some("point"));
        assert!(e.get("ts").and_then(Json::as_f64).is_some());
        assert!(e.get("dur").and_then(Json::as_f64).is_some());
        // The document round-trips through the parser (valid JSON).
        assert_eq!(Json::parse(&chrome.to_string()).unwrap(), chrome);
    }

    #[test]
    fn ids_are_unique_and_allocated_at_start() {
        let tracer = Tracer::new();
        let a = tracer.span("a");
        let b = tracer.span("b");
        assert_ne!(a.id(), b.id());
        let child = a.child("c");
        assert!(child.id() > a.id());
    }
}
