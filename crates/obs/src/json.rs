//! A minimal JSON value and writer.
//!
//! The build environment is offline, so serde is unavailable; reports
//! are assembled as [`Json`] trees and rendered with [`fmt::Display`].
//! Only what the telemetry artifacts need is implemented: objects keep
//! insertion order (schema stability), numbers render like Rust's `{}`
//! for `f64` (shortest round-trip form), and strings are escaped per
//! RFC 8259.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A finite number (non-finite values render as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Adds (or replaces) a key on an object, builder-style.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(pairs) => {
                let value = value.into();
                if let Some(slot) = pairs.iter_mut().find(|(k, _)| k == key) {
                    slot.1 = value;
                } else {
                    pairs.push((key.to_string(), value));
                }
            }
            _ => panic!("Json::field on a non-object"),
        }
        self
    }

    /// Looks up a key on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Renders with two-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    out.push_str(&format!("{}: ", Json::Str(k.clone())));
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
            other => {
                out.push_str(&other.to_string());
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.is_finite() {
                    write!(f, "{n}")
                } else {
                    f.write_str("null")
                }
            }
            Json::Str(s) => {
                f.write_str("\"")?;
                for c in s.chars() {
                    match c {
                        '"' => f.write_str("\\\"")?,
                        '\\' => f.write_str("\\\\")?,
                        '\n' => f.write_str("\\n")?,
                        '\r' => f.write_str("\\r")?,
                        '\t' => f.write_str("\\t")?,
                        c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
                        c => f.write_fmt(format_args!("{c}"))?,
                    }
                }
                f.write_str("\"")
            }
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{}:{v}", Json::Str(k.clone()))?;
                }
                f.write_str("}")
            }
        }
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<u32> for Json {
    fn from(n: u32) -> Json {
        Json::Num(f64::from(n))
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compact_and_ordered() {
        let j = Json::obj()
            .field("name", "k01")
            .field("cycles", 1234.5)
            .field("ok", true)
            .field("items", vec![Json::Num(1.0), Json::Null]);
        assert_eq!(
            j.to_string(),
            r#"{"name":"k01","cycles":1234.5,"ok":true,"items":[1,null]}"#
        );
    }

    #[test]
    fn escapes_strings() {
        let j = Json::Str("a\"b\\c\nd\u{1}".to_string());
        assert_eq!(j.to_string(), r#""a\"b\\c\nd\u0001""#);
    }

    #[test]
    fn field_replaces_existing_key() {
        let j = Json::obj().field("x", 1.0).field("x", 2.0);
        assert_eq!(j.to_string(), r#"{"x":2}"#);
        assert_eq!(j.get("x").and_then(Json::as_f64), Some(2.0));
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn pretty_prints_with_indentation() {
        let j = Json::obj().field("a", vec![Json::Num(1.0)]);
        assert_eq!(j.pretty(), "{\n  \"a\": [\n    1\n  ]\n}\n");
    }
}
