//! A minimal JSON value, writer, and parser.
//!
//! The build environment is offline, so serde is unavailable; reports
//! are assembled as [`Json`] trees and rendered with [`fmt::Display`].
//! Only what the telemetry artifacts need is implemented: objects keep
//! insertion order (schema stability), numbers render like Rust's `{}`
//! for `f64` (shortest round-trip form), and strings are escaped per
//! RFC 8259. [`Json::parse`] is the matching recursive-descent reader
//! used by the sweep server's wire protocol and journal; it accepts any
//! RFC 8259 document (duplicate object keys keep the last value) and
//! reports errors with a byte offset.

use std::error::Error;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A finite number (non-finite values render as `null`).
    Num(f64),
    /// An integer above 2⁵³, past `f64`'s contiguous integer range. Kept
    /// separate so nanosecond timestamps and tick counts survive a round
    /// trip bit-exact (even a large float that *is* representable prints
    /// a rounded shortest-form decimal, so the split must be by
    /// magnitude, not representability). Integers ≤ 2⁵³ are always
    /// [`Json::Num`], both when built ([`From<u64>`]) and when parsed,
    /// so equality stays canonical.
    UInt(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Adds (or replaces) a key on an object, builder-style.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(pairs) => {
                let value = value.into();
                if let Some(slot) = pairs.iter_mut().find(|(k, _)| k == key) {
                    slot.1 = value;
                } else {
                    pairs.push((key.to_string(), value));
                }
            }
            _ => panic!("Json::field on a non-object"),
        }
        self
    }

    /// Looks up a key on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number ([`Json::UInt`] values are
    /// rounded to the nearest `f64`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            Json::UInt(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The exact unsigned integer value, if this is a number holding
    /// one: a [`Json::UInt`], or a [`Json::Num`] that is a non-negative
    /// integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(n) => Some(*n),
            // `u64::MAX as f64` rounds up to 2^64, which is out of range.
            Json::Num(n) if *n >= 0.0 && *n < u64::MAX as f64 && n.fract() == 0.0 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Renders with two-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    out.push_str(&format!("{}: ", Json::Str(k.clone())));
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
            other => {
                out.push_str(&other.to_string());
            }
        }
    }
}

/// A parse failure: what was expected and the byte offset it failed at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What the parser was looking for.
    pub expected: &'static str,
    /// Byte offset into the input where the failure occurred.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "expected {} at byte {}", self.expected, self.offset)
    }
}

impl Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

/// Nesting bound: the parser recurses per container, so wire input must
/// not be able to overflow the stack.
const MAX_DEPTH: usize = 128;

impl<'a> Parser<'a> {
    fn err<T>(&self, expected: &'static str) -> Result<T, JsonError> {
        Err(JsonError {
            expected,
            offset: self.pos,
        })
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_literal(&mut self, lit: &'static str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            self.err(lit)
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.expect_literal("null", Json::Null),
            Some(b't') => self.expect_literal("true", Json::Bool(true)),
            Some(b'f') => self.expect_literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => self.err("a JSON value"),
        }
    }

    fn enter(&mut self) -> Result<(), JsonError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            self.err("shallower nesting")
        } else {
            Ok(())
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.enter()?;
        self.pos += 1; // consume '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            if self.eat(b']') {
                self.depth -= 1;
                return Ok(Json::Arr(items));
            }
            if !self.eat(b',') {
                return self.err("',' or ']'");
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.enter()?;
        self.pos += 1; // consume '{'
        let mut obj = Json::obj();
        self.skip_ws();
        if self.eat(b'}') {
            self.depth -= 1;
            return Ok(obj);
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return self.err("an object key string");
            }
            let key = self.string()?;
            self.skip_ws();
            if !self.eat(b':') {
                return self.err("':'");
            }
            let value = self.value()?;
            obj = obj.field(&key, value);
            self.skip_ws();
            if self.eat(b'}') {
                self.depth -= 1;
                return Ok(obj);
            }
            if !self.eat(b',') {
                return self.err("',' or '}'");
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.pos += 1; // consume '"'
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes up to the next escape/quote.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            match std::str::from_utf8(&self.bytes[start..self.pos]) {
                Ok(s) => out.push_str(s),
                Err(_) => return self.err("valid UTF-8"),
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let unit = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&unit) {
                                // High surrogate: require \uXXXX low half.
                                if !(self.eat(b'\\') && self.eat(b'u')) {
                                    return self.err("a low surrogate escape");
                                }
                                let low = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&low) {
                                    return self.err("a low surrogate value");
                                }
                                let cp = 0x10000 + ((unit - 0xd800) << 10) + (low - 0xdc00);
                                char::from_u32(cp)
                            } else {
                                char::from_u32(unit)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return self.err("a valid code point"),
                            }
                            continue; // hex4 already advanced pos
                        }
                        _ => return self.err("a string escape"),
                    }
                    self.pos += 1;
                }
                _ => return self.err("'\"'"),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return self.err("four hex digits"),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        self.eat(b'-');
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.eat(b'.') {
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if !self.eat(b'+') {
                self.eat(b'-');
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number");
        // Integer text above 2^53 becomes `UInt`, matching `From<u64>`,
        // so the parsed form of a rendered value compares equal to the
        // original.
        if let Ok(n) = text.parse::<u64>() {
            if n > MAX_SAFE_INTEGER {
                return Ok(Json::UInt(n));
            }
        }
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Json::Num(n)),
            _ => self.err("a finite number"),
        }
    }
}

impl Json {
    /// Parses one RFC 8259 document (surrounding whitespace allowed,
    /// trailing garbage rejected).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] naming what was expected and the byte
    /// offset of the failure.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
            depth: 0,
        };
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return p.err("end of input");
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.is_finite() {
                    write!(f, "{n}")
                } else {
                    f.write_str("null")
                }
            }
            Json::UInt(n) => write!(f, "{n}"),
            Json::Str(s) => {
                f.write_str("\"")?;
                for c in s.chars() {
                    match c {
                        '"' => f.write_str("\\\"")?,
                        '\\' => f.write_str("\\\\")?,
                        '\n' => f.write_str("\\n")?,
                        '\r' => f.write_str("\\r")?,
                        '\t' => f.write_str("\\t")?,
                        c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
                        c => f.write_fmt(format_args!("{c}"))?,
                    }
                }
                f.write_str("\"")
            }
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{}:{v}", Json::Str(k.clone()))?;
                }
                f.write_str("}")
            }
        }
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

/// 2⁵³ — the largest integer below which every integer is exactly one
/// `f64` value and `f64` Display prints it in plain exact decimal.
const MAX_SAFE_INTEGER: u64 = 1 << 53;

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        if n <= MAX_SAFE_INTEGER {
            Json::Num(n as f64)
        } else {
            Json::UInt(n)
        }
    }
}

impl From<u32> for Json {
    fn from(n: u32) -> Json {
        Json::Num(f64::from(n))
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compact_and_ordered() {
        let j = Json::obj()
            .field("name", "k01")
            .field("cycles", 1234.5)
            .field("ok", true)
            .field("items", vec![Json::Num(1.0), Json::Null]);
        assert_eq!(
            j.to_string(),
            r#"{"name":"k01","cycles":1234.5,"ok":true,"items":[1,null]}"#
        );
    }

    #[test]
    fn escapes_strings() {
        let j = Json::Str("a\"b\\c\nd\u{1}".to_string());
        assert_eq!(j.to_string(), r#""a\"b\\c\nd\u0001""#);
    }

    #[test]
    fn field_replaces_existing_key() {
        let j = Json::obj().field("x", 1.0).field("x", 2.0);
        assert_eq!(j.to_string(), r#"{"x":2}"#);
        assert_eq!(j.get("x").and_then(Json::as_f64), Some(2.0));
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn pretty_prints_with_indentation() {
        let j = Json::obj().field("a", vec![Json::Num(1.0)]);
        assert_eq!(j.pretty(), "{\n  \"a\": [\n    1\n  ]\n}\n");
    }

    #[test]
    fn parses_every_value_kind() {
        let j = Json::parse(
            r#" {"s":"a\n\"b\\","n":-12.5e2,"t":true,"f":false,"z":null,"a":[1,{"x":2}],"o":{}} "#,
        )
        .unwrap();
        assert_eq!(j.get("s").and_then(Json::as_str), Some("a\n\"b\\"));
        assert_eq!(j.get("n").and_then(Json::as_f64), Some(-1250.0));
        assert_eq!(j.get("t"), Some(&Json::Bool(true)));
        assert_eq!(j.get("f"), Some(&Json::Bool(false)));
        assert_eq!(j.get("z"), Some(&Json::Null));
        let arr = j.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(arr[1].get("x").and_then(Json::as_f64), Some(2.0));
        assert_eq!(j.get("o"), Some(&Json::obj()));
    }

    #[test]
    fn parse_roundtrips_rendered_documents() {
        let original = Json::obj()
            .field("name", "k01 \"quoted\"\n")
            .field("cycles", 1234.5)
            .field("ok", true)
            .field(
                "items",
                vec![Json::Num(1.0), Json::Null, Json::Str("x".into())],
            )
            .field("nested", Json::obj().field("k", 2.0));
        assert_eq!(Json::parse(&original.to_string()).unwrap(), original);
        assert_eq!(Json::parse(&original.pretty()).unwrap(), original);
    }

    #[test]
    fn parses_unicode_escapes_and_surrogate_pairs() {
        let j = Json::parse(r#""café 😀""#).unwrap();
        assert_eq!(j.as_str(), Some("café 😀"));
        assert!(Json::parse(r#""\ud83d""#).is_err(), "lone high surrogate");
        assert!(Json::parse(r#""\udc00""#).is_err(), "lone low surrogate");
    }

    #[test]
    fn parse_errors_carry_offsets() {
        let e = Json::parse("{\"a\":}").unwrap_err();
        assert_eq!(e.offset, 5);
        assert!(e.to_string().contains("byte 5"));
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\":1,}").is_err());
        assert!(Json::parse("nulla").is_err(), "trailing garbage");
        assert!(Json::parse("1 2").is_err(), "two documents");
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("truth").is_err());
        assert!(Json::parse("-").is_err());
        assert!(Json::parse("1e999").is_err(), "non-finite overflow");
    }

    #[test]
    fn parse_rejects_unbounded_nesting() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(Json::parse(&deep).is_err());
        let ok = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn large_u64_round_trips_exactly() {
        // Everything above 2^53 is UInt and renders in exact decimal.
        for n in [
            (1u64 << 53) + 1,
            1u64 << 60,
            u64::MAX,
            u64::MAX - 1,
            123_456_789_012_345_678,
        ] {
            let j = Json::from(n);
            assert_eq!(j, Json::UInt(n), "{n} should be UInt");
            assert_eq!(j.to_string(), n.to_string());
            let back = Json::parse(&j.to_string()).unwrap();
            assert_eq!(back, j, "{n} changed across a round trip");
            assert_eq!(back.as_u64(), Some(n));
        }
        // Integers up to 2^53 stay Num on both paths, so rendered and
        // parsed forms compare equal.
        for n in [0u64, 1, 1 << 53] {
            let j = Json::from(n);
            assert_eq!(j, Json::Num(n as f64), "{n} is exact in f64");
            assert_eq!(Json::parse(&j.to_string()).unwrap(), j);
            assert_eq!(j.as_u64(), Some(n));
        }
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(1.5).as_u64(), None);
        assert_eq!(Json::Str("1".into()).as_u64(), None);
    }

    #[test]
    fn trace_and_metrics_records_round_trip() {
        // Mirror the shapes span/metrics rows take on the wire, with
        // adversarial string content and a lossy-u64 timestamp.
        let record = Json::obj()
            .field("schema", "c240-span/v1")
            .field("name", "point \"slow\"\n\\path")
            .field("start_ns", (1u64 << 62) + 3)
            .field("dur_ns", 12_345u64)
            .field(
                "args",
                Json::obj().field("outcome", "ok").field("attempts", 1u64),
            );
        let text = record.to_string();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, record);
        assert_eq!(
            back.get("start_ns").and_then(Json::as_u64),
            Some((1u64 << 62) + 3)
        );
        assert_eq!(
            back.get("name").and_then(Json::as_str),
            Some("point \"slow\"\n\\path")
        );
    }

    #[test]
    fn duplicate_keys_keep_the_last_value() {
        let j = Json::parse(r#"{"x":1,"x":2}"#).unwrap();
        assert_eq!(j.get("x").and_then(Json::as_f64), Some(2.0));
    }
}
