//! Cycle-accounting telemetry for the C-240 simulator.
//!
//! The MACS methodology (Boyd & Davidson, ISCA 1993) is an exercise in
//! *attribution*: each gap in the bounds hierarchy t_MA → t_MAC →
//! t_MACS → t_p is blamed on a specific machine or compiler mechanism.
//! This crate gives the simulator the measurement substrate to do the
//! same from the other direction — every cycle a functional unit is not
//! making progress is tagged with a [`StallCause`], so a run produces a
//! complete wall-clock partition per [`Lane`]:
//!
//! ```text
//! cycles == busy + Σ stall(cause) + idle        (exactly, per lane)
//! ```
//!
//! The simulator reports events through the [`Probe`] trait, which is
//! monomorphized into the hot path: with the default [`NoProbe`] every
//! hook is an empty inline function and `Probe::ENABLED` is `false`, so
//! attribution arithmetic is skipped entirely and the instrumented
//! simulator compiles to the same code as the uninstrumented one.
//! [`CounterProbe`] accumulates totals, per-lane and per-pc breakdowns.
//!
//! The [`json`] module hosts the small writer used for `RunReport` and
//! `BENCH_<date>.json` artifacts (the build environment is offline, so
//! no serde). The [`span`] and [`metrics`] modules extend the same
//! attribution discipline from simulated cycles to the wall clock of the
//! sweep service itself: hierarchical spans partition where a point's
//! real time went, and the metrics registry keeps service-level counters
//! that reconcile exactly with [`SweepOutcomes`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod metrics;
pub mod span;
pub mod sweep;

pub use metrics::{Metrics, METRICS_SCHEMA};
pub use span::{Span, SpanRecord, Tracer, SPAN_SCHEMA};
pub use sweep::{SweepOutcomes, SWEEP_SUMMARY_SCHEMA};

use std::collections::BTreeMap;
use std::fmt;
use std::sync::OnceLock;
use std::time::Instant;

/// Nanoseconds since the process's monotonic origin (first call wins;
/// every span, metrics snapshot, and trace anchor in the process shares
/// this clock, so wall-clock spans and sim-cycle traces correlate on one
/// timeline).
pub fn monotonic_ns() -> u64 {
    static ORIGIN: OnceLock<Instant> = OnceLock::new();
    let origin = *ORIGIN.get_or_init(Instant::now);
    Instant::now().duration_since(origin).as_nanos() as u64
}

/// Grid points per cycle of the machine's timing quantum. Private copy of
/// `c240_isa::timing::TICKS_PER_CYCLE` — this crate is dependency-free.
const TICKS_PER_CYCLE: f64 = 20.0;

/// Rounds to the canonical `f64` of the nearest 1/20-cycle grid point, so
/// accumulated counters stay a pure function of their integer tick count
/// (see `c240_isa::timing::quantize`).
#[inline]
fn q(x: f64) -> f64 {
    (x * TICKS_PER_CYCLE).round() / TICKS_PER_CYCLE
}

/// Why a lane spent a cycle not making progress.
///
/// The taxonomy follows the paper's gap commentary (§4.4): memory-side
/// causes first (the M and A of MACS), then dependence/issue causes
/// (C and S), then the structural hazards the case study calls out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(usize)]
pub enum StallCause {
    /// Memory bank still cycling from an earlier access (§3.1 stride
    /// degree of freedom D).
    BankBusy,
    /// DRAM refresh window stole the cycle (Table 1's 1.58% tax).
    Refresh,
    /// A background CPU's request won the bank this cycle (§4.2).
    Contention,
    /// Waiting for a chained operand to be produced element-by-element
    /// (§3.3 — chaining hides most, but not all, of this).
    ChainWait,
    /// Chaining disabled: waiting for a producer to *complete* before
    /// the first element may start (the Cray-2-style drain).
    OperandBarrier,
    /// Instruction issue blocked behind an earlier instruction on the
    /// same pipe or an unresolved scalar dependence (RAW interlock).
    IssueInterlock,
    /// The tailgating restriction's inter-instruction bubble B (Eq. 13).
    TailgateBubble,
    /// Post-reduction pipe drain: a reduction ties up all pipes until
    /// its scalar result is ready.
    ReductionDrain,
    /// Waiting for the pipe's previous vector instruction to finish
    /// streaming, beyond any tailgate bubble (structural pipe busy).
    PipeDrain,
    /// Register-pair read/write port conflict delayed issue (§3.2's
    /// "fourth degree of freedom").
    PairConflict,
    /// Scalar load missed the scalar cache and paid the memory penalty.
    ScalarCacheMiss,
    /// Scalar memory access serialized against vector memory streams
    /// (shared memory-port fence).
    MemPortConflict,
}

impl StallCause {
    /// Every cause, in display order.
    pub const ALL: [StallCause; 12] = [
        StallCause::BankBusy,
        StallCause::Refresh,
        StallCause::Contention,
        StallCause::ChainWait,
        StallCause::OperandBarrier,
        StallCause::IssueInterlock,
        StallCause::TailgateBubble,
        StallCause::ReductionDrain,
        StallCause::PipeDrain,
        StallCause::PairConflict,
        StallCause::ScalarCacheMiss,
        StallCause::MemPortConflict,
    ];

    /// Number of distinct causes.
    pub const COUNT: usize = Self::ALL.len();

    /// Stable snake_case name used in JSON reports and CSV headers.
    pub fn key(self) -> &'static str {
        match self {
            StallCause::BankBusy => "bank_busy",
            StallCause::Refresh => "refresh",
            StallCause::Contention => "contention",
            StallCause::ChainWait => "chain_wait",
            StallCause::OperandBarrier => "operand_barrier",
            StallCause::IssueInterlock => "issue_interlock",
            StallCause::TailgateBubble => "tailgate_bubble",
            StallCause::ReductionDrain => "reduction_drain",
            StallCause::PipeDrain => "pipe_drain",
            StallCause::PairConflict => "pair_conflict",
            StallCause::ScalarCacheMiss => "scalar_cache_miss",
            StallCause::MemPortConflict => "mem_port_conflict",
        }
    }

    /// True for the causes that make up vector memory wait time — the
    /// bank/refresh/contention split of `memory_wait_cycles`.
    pub fn is_memory_wait(self) -> bool {
        matches!(
            self,
            StallCause::BankBusy | StallCause::Refresh | StallCause::Contention
        )
    }

    /// True for the causes the roofline cross-check charges to the
    /// *memory* side: the vector memory waits plus the scalar memory
    /// hazards (cache misses and the shared memory-port fence).
    pub fn is_memory_side(self) -> bool {
        self.is_memory_wait()
            || matches!(
                self,
                StallCause::ScalarCacheMiss | StallCause::MemPortConflict
            )
    }

    /// True for the causes the roofline cross-check charges to the
    /// *compute* side: dependence, issue, and structural hazards between
    /// the function-unit pipes (everything that is not a memory-side
    /// wait).
    pub fn is_compute_wait(self) -> bool {
        !self.is_memory_side()
    }
}

impl fmt::Display for StallCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.key())
    }
}

/// A functional-unit lane whose time is being accounted.
///
/// The three vector pipes mirror `c240_isa::Pipe`; the two scalar lanes
/// separate scalar execution from scalar memory traffic, which stalls
/// for different reasons (cache misses and the shared memory port).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(usize)]
pub enum Lane {
    /// Vector load/store pipe.
    Ld,
    /// Vector add pipe.
    Add,
    /// Vector multiply pipe.
    Mul,
    /// Scalar execution (issue, branches, integer/fp scalar ops).
    Scalar,
    /// Scalar memory accesses (through the scalar cache).
    ScalarMem,
}

impl Lane {
    /// Every lane, in display order.
    pub const ALL: [Lane; 5] = [
        Lane::Ld,
        Lane::Add,
        Lane::Mul,
        Lane::Scalar,
        Lane::ScalarMem,
    ];

    /// Number of lanes.
    pub const COUNT: usize = Self::ALL.len();

    /// Stable snake_case name used in JSON reports and CSV headers.
    pub fn key(self) -> &'static str {
        match self {
            Lane::Ld => "ld",
            Lane::Add => "add",
            Lane::Mul => "mul",
            Lane::Scalar => "scalar",
            Lane::ScalarMem => "scalar_mem",
        }
    }
}

impl fmt::Display for Lane {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.key())
    }
}

/// Cycles lost per [`StallCause`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StallCounters {
    cycles: [f64; StallCause::COUNT],
}

impl StallCounters {
    /// All-zero counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `cycles` to `cause`.
    pub fn add(&mut self, cause: StallCause, cycles: f64) {
        self.cycles[cause as usize] = q(self.cycles[cause as usize] + cycles);
    }

    /// Cycles charged to `cause`.
    pub fn get(&self, cause: StallCause) -> f64 {
        self.cycles[cause as usize]
    }

    /// Total stalled cycles across all causes.
    pub fn total(&self) -> f64 {
        self.cycles.iter().sum()
    }

    /// Total over the memory-wait causes (bank busy + refresh +
    /// contention).
    pub fn memory_wait(&self) -> f64 {
        StallCause::ALL
            .iter()
            .filter(|c| c.is_memory_wait())
            .map(|&c| self.get(c))
            .sum()
    }

    /// Total over the memory-side causes — [`Self::memory_wait`] plus
    /// the scalar memory hazards (see [`StallCause::is_memory_side`]).
    pub fn memory_side(&self) -> f64 {
        StallCause::ALL
            .iter()
            .filter(|c| c.is_memory_side())
            .map(|&c| self.get(c))
            .sum()
    }

    /// Total over the compute-side causes (see
    /// [`StallCause::is_compute_wait`]); `memory_side() +
    /// compute_wait() == total()` identically.
    pub fn compute_wait(&self) -> f64 {
        StallCause::ALL
            .iter()
            .filter(|c| c.is_compute_wait())
            .map(|&c| self.get(c))
            .sum()
    }

    /// Accumulates `other` into `self`.
    pub fn merge(&mut self, other: &StallCounters) {
        for (a, b) in self.cycles.iter_mut().zip(other.cycles.iter()) {
            *a += b;
        }
    }

    /// `(cause, cycles)` pairs with nonzero cycles, largest first.
    pub fn nonzero(&self) -> Vec<(StallCause, f64)> {
        let mut v: Vec<(StallCause, f64)> = StallCause::ALL
            .iter()
            .map(|&c| (c, self.get(c)))
            .filter(|&(_, cy)| cy > 0.0)
            .collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1));
        v
    }
}

/// The complete wall-clock partition of one lane.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LaneAccount {
    /// Cycles the lane was doing useful work (streaming elements,
    /// executing a scalar op, servicing a hit).
    pub busy: f64,
    /// Cycles lost to attributed stalls.
    pub stalls: StallCounters,
    /// Cycles with nothing scheduled on the lane.
    pub idle: f64,
}

impl LaneAccount {
    /// `busy + stalls + idle` — equals wall-clock cycles when the
    /// account is complete.
    pub fn accounted(&self) -> f64 {
        self.busy + self.stalls.total() + self.idle
    }

    /// Accumulates `other` into `self` (machine-level roll-up across
    /// co-simulated CPUs).
    pub fn merge(&mut self, other: &LaneAccount) {
        self.busy += other.busy;
        self.idle += other.idle;
        self.stalls.merge(&other.stalls);
    }

    /// Busy fraction of the accounted time (0 when nothing accounted).
    pub fn utilization(&self) -> f64 {
        let t = self.accounted();
        if t > 0.0 {
            self.busy / t
        } else {
            0.0
        }
    }
}

/// Observation hooks the simulator drives.
///
/// Implementations with `ENABLED == false` (the default, [`NoProbe`])
/// compile every hook away; the simulator also uses `P::ENABLED` to
/// skip the bookkeeping that *prepares* hook arguments, so a disabled
/// probe costs nothing beyond monomorphization.
pub trait Probe {
    /// Whether the simulator should compute attribution at all.
    const ENABLED: bool = false;

    /// `lane` lost `cycles` to `cause` while executing the instruction
    /// at `pc`.
    #[inline(always)]
    fn stall(&mut self, lane: Lane, cause: StallCause, cycles: f64, pc: usize) {
        let _ = (lane, cause, cycles, pc);
    }

    /// `lane` did useful work for `cycles` on behalf of `pc`.
    #[inline(always)]
    fn busy(&mut self, lane: Lane, cycles: f64, pc: usize) {
        let _ = (lane, cycles, pc);
    }

    /// `lane` had nothing scheduled for `cycles`.
    #[inline(always)]
    fn idle(&mut self, lane: Lane, cycles: f64) {
        let _ = (lane, cycles);
    }

    /// Flattens every accumulated counter into a deterministic `Vec` so
    /// the simulator's steady-state fast-forward can compute per-period
    /// deltas and later scale them (see `c240-sim`'s fast-forward docs).
    ///
    /// Returning `None` (the default for external probes) declares the
    /// probe opaque: the simulator then never fast-forwards a probed run,
    /// falling back to exact element stepping.
    fn ff_counters(&self) -> Option<Vec<f64>> {
        None
    }

    /// Adds `k · deltas[i]` to the counter at flattened index `i`, in the
    /// same order [`Probe::ff_counters`] produced. Only called with
    /// deltas previously derived from this probe's own `ff_counters`.
    fn ff_apply(&mut self, deltas: &[f64], k: f64) {
        let _ = (deltas, k);
    }
}

/// The zero-cost probe: every hook is a no-op and `ENABLED` is false.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoProbe;

impl Probe for NoProbe {
    fn ff_counters(&self) -> Option<Vec<f64>> {
        Some(Vec::new())
    }
}

/// Accumulating probe: totals, per-lane accounts, and a per-pc stall
/// breakdown.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CounterProbe {
    lanes: [LaneAccount; Lane::COUNT],
    by_pc: BTreeMap<usize, StallCounters>,
}

impl CounterProbe {
    /// A fresh, all-zero probe.
    pub fn new() -> Self {
        Self::default()
    }

    /// The account for one lane.
    pub fn lane(&self, lane: Lane) -> &LaneAccount {
        &self.lanes[lane as usize]
    }

    /// All lanes in display order.
    pub fn lanes(&self) -> impl Iterator<Item = (Lane, &LaneAccount)> {
        Lane::ALL.iter().map(move |&l| (l, &self.lanes[l as usize]))
    }

    /// Stall totals summed over every lane.
    pub fn totals(&self) -> StallCounters {
        let mut t = StallCounters::new();
        for account in &self.lanes {
            t.merge(&account.stalls);
        }
        t
    }

    /// Busy cycles summed over every lane.
    pub fn busy_total(&self) -> f64 {
        self.lanes.iter().map(|a| a.busy).sum()
    }

    /// Per-pc stall breakdown (pcs with at least one attributed stall).
    pub fn by_pc(&self) -> &BTreeMap<usize, StallCounters> {
        &self.by_pc
    }

    /// The `n` pcs losing the most cycles, largest first.
    pub fn hottest_pcs(&self, n: usize) -> Vec<(usize, f64)> {
        let mut v: Vec<(usize, f64)> = self.by_pc.iter().map(|(&pc, c)| (pc, c.total())).collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(n);
        v
    }

    /// Accumulates `other` into `self`: lane accounts add, per-pc stall
    /// maps union-and-add. Used to roll a co-simulated machine's per-CPU
    /// probes up into machine totals.
    pub fn merge(&mut self, other: &CounterProbe) {
        for (mine, theirs) in self.lanes.iter_mut().zip(other.lanes.iter()) {
            mine.merge(theirs);
        }
        for (&pc, counters) in &other.by_pc {
            self.by_pc.entry(pc).or_default().merge(counters);
        }
    }
}

/// One [`CounterProbe`] per co-simulated CPU, plus a machine roll-up.
///
/// The per-CPU probes keep the exact `busy + stalls + idle == cycles`
/// partition *per CPU* (each CPU has its own wall clock); the
/// [`CoSimProbes::combined`] roll-up sums them for machine-level views,
/// where the partition holds against the sum of the CPUs' cycle counts.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CoSimProbes {
    probes: Vec<CounterProbe>,
}

impl CoSimProbes {
    /// `n` fresh probes (one per CPU).
    pub fn new(n: usize) -> Self {
        CoSimProbes {
            probes: vec![CounterProbe::new(); n],
        }
    }

    /// Number of per-CPU probes.
    pub fn len(&self) -> usize {
        self.probes.len()
    }

    /// Whether there are no probes.
    pub fn is_empty(&self) -> bool {
        self.probes.is_empty()
    }

    /// CPU `i`'s probe.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn cpu(&self, i: usize) -> &CounterProbe {
        &self.probes[i]
    }

    /// All per-CPU probes in CPU order.
    pub fn all(&self) -> &[CounterProbe] {
        &self.probes
    }

    /// Mutable slice to hand to a co-sim driver (one probe per CPU, in
    /// CPU order).
    pub fn as_mut_slice(&mut self) -> &mut [CounterProbe] {
        &mut self.probes
    }

    /// Machine-level roll-up: every CPU's accounts summed.
    pub fn combined(&self) -> CounterProbe {
        let mut total = CounterProbe::new();
        for p in &self.probes {
            total.merge(p);
        }
        total
    }
}

impl Probe for CounterProbe {
    const ENABLED: bool = true;

    #[inline]
    fn stall(&mut self, lane: Lane, cause: StallCause, cycles: f64, pc: usize) {
        debug_assert!(cycles >= -1e-9, "negative stall: {cycles} for {cause:?}");
        if cycles <= 0.0 {
            return;
        }
        self.lanes[lane as usize].stalls.add(cause, cycles);
        self.by_pc.entry(pc).or_default().add(cause, cycles);
    }

    #[inline]
    fn busy(&mut self, lane: Lane, cycles: f64, pc: usize) {
        let _ = pc;
        debug_assert!(cycles >= -1e-9, "negative busy: {cycles}");
        if cycles > 0.0 {
            let a = &mut self.lanes[lane as usize];
            a.busy = q(a.busy + cycles);
        }
    }

    #[inline]
    fn idle(&mut self, lane: Lane, cycles: f64) {
        debug_assert!(cycles >= -1e-9, "negative idle: {cycles}");
        if cycles > 0.0 {
            let a = &mut self.lanes[lane as usize];
            a.idle = q(a.idle + cycles);
        }
    }

    /// Layout: per lane `[busy, idle, stalls × 12]`, then per `by_pc`
    /// entry (ascending pc) `[pc, stalls × 12]`. Embedding the pc makes a
    /// change in the pc set show up as a nonzero/non-stale delta, which
    /// the fast-forward detector rejects.
    fn ff_counters(&self) -> Option<Vec<f64>> {
        let mut v = Vec::with_capacity(
            Lane::COUNT * (2 + StallCause::COUNT) + self.by_pc.len() * (1 + StallCause::COUNT),
        );
        for account in &self.lanes {
            v.push(account.busy);
            v.push(account.idle);
            v.extend_from_slice(&account.stalls.cycles);
        }
        for (&pc, counters) in &self.by_pc {
            v.push(pc as f64);
            v.extend_from_slice(&counters.cycles);
        }
        Some(v)
    }

    fn ff_apply(&mut self, deltas: &[f64], k: f64) {
        // Deltas arrive in ticks (1/20 cycle); translating in integer tick
        // arithmetic reproduces the canonical value the element-stepped
        // run would have accumulated.
        let translate = |c: &mut f64, d: f64| {
            *c = ((*c * TICKS_PER_CYCLE).round() + k * d) / TICKS_PER_CYCLE;
        };
        let mut it = deltas.iter();
        let mut next = || *it.next().expect("ff delta layout mismatch");
        for account in &mut self.lanes {
            translate(&mut account.busy, next());
            translate(&mut account.idle, next());
            for c in &mut account.stalls.cycles {
                translate(c, next());
            }
        }
        for counters in self.by_pc.values_mut() {
            let _pc = next();
            for c in &mut counters.cycles {
                translate(c, next());
            }
        }
        assert!(it.next().is_none(), "ff delta layout mismatch");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_sum_and_merge() {
        let mut a = StallCounters::new();
        a.add(StallCause::BankBusy, 3.0);
        a.add(StallCause::Refresh, 2.0);
        let mut b = StallCounters::new();
        b.add(StallCause::BankBusy, 1.0);
        b.add(StallCause::ChainWait, 4.0);
        a.merge(&b);
        assert_eq!(a.get(StallCause::BankBusy), 4.0);
        assert_eq!(a.total(), 10.0);
        assert_eq!(a.memory_wait(), 6.0);
        let nz = a.nonzero();
        assert_eq!(nz[0], (StallCause::BankBusy, 4.0));
        assert_eq!(nz.len(), 3);
    }

    #[test]
    fn lane_account_partition() {
        let mut p = CounterProbe::new();
        p.busy(Lane::Ld, 10.0, 3);
        p.stall(Lane::Ld, StallCause::BankBusy, 2.5, 3);
        p.idle(Lane::Ld, 7.5);
        let acct = p.lane(Lane::Ld);
        assert_eq!(acct.accounted(), 20.0);
        assert_eq!(acct.utilization(), 0.5);
        assert_eq!(p.by_pc()[&3].get(StallCause::BankBusy), 2.5);
    }

    #[test]
    fn zero_and_negative_events_ignored() {
        let mut p = CounterProbe::new();
        p.stall(Lane::Add, StallCause::ChainWait, 0.0, 1);
        p.busy(Lane::Add, 0.0, 1);
        assert_eq!(p.totals().total(), 0.0);
        assert!(p.by_pc().is_empty());
    }

    #[test]
    fn hottest_pcs_orders_by_lost_cycles() {
        let mut p = CounterProbe::new();
        p.stall(Lane::Ld, StallCause::BankBusy, 1.0, 10);
        p.stall(Lane::Add, StallCause::ChainWait, 5.0, 20);
        p.stall(Lane::Mul, StallCause::TailgateBubble, 3.0, 30);
        let hot = p.hottest_pcs(2);
        assert_eq!(hot, vec![(20, 5.0), (30, 3.0)]);
    }

    #[test]
    fn cosim_probes_roll_up() {
        let mut probes = CoSimProbes::new(2);
        {
            let s = probes.as_mut_slice();
            s[0].busy(Lane::Ld, 4.0, 1);
            s[0].stall(Lane::Ld, StallCause::Contention, 2.0, 1);
            s[0].idle(Lane::Ld, 1.0);
            s[1].busy(Lane::Ld, 3.0, 1);
            s[1].stall(Lane::Ld, StallCause::BankBusy, 5.0, 2);
        }
        assert_eq!(probes.len(), 2);
        let total = probes.combined();
        let lane = total.lane(Lane::Ld);
        assert_eq!(lane.busy, 7.0);
        assert_eq!(lane.idle, 1.0);
        assert_eq!(lane.stalls.get(StallCause::Contention), 2.0);
        assert_eq!(lane.stalls.get(StallCause::BankBusy), 5.0);
        // Per-pc union: pc 1 from CPU 0, pc 2 from CPU 1.
        assert_eq!(total.by_pc()[&1].get(StallCause::Contention), 2.0);
        assert_eq!(total.by_pc()[&2].get(StallCause::BankBusy), 5.0);
        // Roll-up accounted == sum of per-CPU accounted.
        let per_cpu: f64 = probes
            .all()
            .iter()
            .map(|p| p.lane(Lane::Ld).accounted())
            .sum();
        assert_eq!(lane.accounted(), per_cpu);
    }

    #[test]
    fn noprobe_is_disabled() {
        const { assert!(!<NoProbe as Probe>::ENABLED) };
        const { assert!(<CounterProbe as Probe>::ENABLED) };
    }

    #[test]
    fn sides_partition_the_taxonomy() {
        // Every cause is on exactly one side of the roofline rollup.
        for cause in StallCause::ALL {
            assert_ne!(cause.is_memory_side(), cause.is_compute_wait(), "{cause}");
        }
        let mut c = StallCounters::new();
        for cause in StallCause::ALL {
            c.add(cause, 1.0);
        }
        assert_eq!(c.memory_side() + c.compute_wait(), c.total());
        assert_eq!(c.memory_wait(), 3.0);
        assert_eq!(c.memory_side(), 5.0);
        assert_eq!(c.compute_wait(), 7.0);
    }

    #[test]
    fn keys_are_stable_and_unique() {
        let mut keys: Vec<&str> = StallCause::ALL.iter().map(|c| c.key()).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), StallCause::COUNT);
        let mut lanes: Vec<&str> = Lane::ALL.iter().map(|l| l.key()).collect();
        lanes.sort_unstable();
        lanes.dedup();
        assert_eq!(lanes.len(), Lane::COUNT);
    }
}
