//! A zero-dependency metrics registry: atomic counters, gauges, and
//! log-bucketed latency histograms.
//!
//! The sweep service needs operational telemetry a scrape can read while
//! a sweep is running, so every instrument is a plain atomic behind an
//! `Arc` — incrementing never takes a lock (the registry's mutex guards
//! only *registration*, a once-per-name event). Rendering follows the
//! Prometheus text exposition format (`GET /metrics` on the sweep
//! server's listener), and [`Metrics::snapshot_json`] produces the
//! [`METRICS_SCHEMA`] rows the server periodically appends to its
//! checkpoint journal so a crashed run's telemetry is diagnosable post
//! mortem.
//!
//! Naming conventions (documented in DESIGN.md §14): every metric is
//! prefixed `macs_`, counters end `_total`, durations are nanoseconds
//! and say so (`_ns`), and label values are the stable snake_case keys
//! the rest of the repo already uses (`outcome="timed_out"`,
//! `cause="bank_busy"`).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::json::Json;
use crate::monotonic_ns;

/// Schema identifier of journal metrics-snapshot rows.
pub const METRICS_SCHEMA: &str = "c240-metrics/v1";

/// Histogram bucket upper bounds in nanoseconds: powers of 4 from 1 µs
/// to ~4.6 h, plus +Inf. Log-bucketed so the whole latency range of a
/// sweep point (microseconds to poisoned-deadline minutes) is covered in
/// 17 buckets.
pub const BUCKET_BOUNDS_NS: [u64; 16] = [
    1 << 10,
    1 << 12,
    1 << 14,
    1 << 16,
    1 << 18,
    1 << 20,
    1 << 22,
    1 << 24,
    1 << 26,
    1 << 28,
    1 << 30,
    1 << 32,
    1 << 34,
    1 << 36,
    1 << 38,
    1 << 40,
];

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A log-bucketed latency histogram (bounds [`BUCKET_BOUNDS_NS`]).
#[derive(Debug, Default)]
pub struct HistogramInner {
    buckets: [AtomicU64; BUCKET_BOUNDS_NS.len() + 1],
    sum_ns: AtomicU64,
    count: AtomicU64,
}

/// A shareable handle to a histogram.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    /// Records one observation of `ns` nanoseconds.
    pub fn observe(&self, ns: u64) {
        let i = BUCKET_BOUNDS_NS.partition_point(|&b| ns > b);
        self.0.buckets[i].fetch_add(1, Ordering::Relaxed);
        self.0.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of observations, nanoseconds.
    pub fn sum_ns(&self) -> u64 {
        self.0.sum_ns.load(Ordering::Relaxed)
    }

    /// Non-cumulative per-bucket counts (last entry is the overflow
    /// bucket, `+Inf`).
    fn bucket_counts(&self) -> Vec<u64> {
        self.0
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }
}

/// An instrument's identity: name plus rendered label pairs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Key {
    name: String,
    /// Rendered `k="v",k2="v2"` (escaped), empty for label-less metrics.
    labels: String,
}

impl Key {
    fn new(name: &str, labels: &[(&str, &str)]) -> Key {
        let labels = labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
            .collect::<Vec<_>>()
            .join(",");
        Key {
            name: name.to_string(),
            labels,
        }
    }

    /// The exposition/identifier form: `name` or `name{k="v"}`.
    fn canonical(&self) -> String {
        if self.labels.is_empty() {
            self.name.clone()
        } else {
            format!("{}{{{}}}", self.name, self.labels)
        }
    }
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

#[derive(Debug, Default)]
struct Registry {
    counters: Mutex<BTreeMap<Key, Counter>>,
    gauges: Mutex<BTreeMap<Key, Gauge>>,
    histograms: Mutex<BTreeMap<Key, Histogram>>,
}

/// A shareable metrics registry (`Clone` is a cheap handle).
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    registry: Arc<Registry>,
}

impl Metrics {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// The counter `name{labels}`, registered on first use.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        self.registry
            .counters
            .lock()
            .expect("metrics lock")
            .entry(Key::new(name, labels))
            .or_default()
            .clone()
    }

    /// The gauge `name{labels}`, registered on first use.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        self.registry
            .gauges
            .lock()
            .expect("metrics lock")
            .entry(Key::new(name, labels))
            .or_default()
            .clone()
    }

    /// The histogram `name{labels}`, registered on first use.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        self.registry
            .histograms
            .lock()
            .expect("metrics lock")
            .entry(Key::new(name, labels))
            .or_default()
            .clone()
    }

    /// Renders every instrument in the Prometheus text exposition
    /// format (version 0.0.4): `# TYPE` comments per family, then one
    /// `name{labels} value` sample per line, families and samples in
    /// deterministic (sorted) order.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_family = String::new();
        let mut family = |out: &mut String, name: &str, kind: &str| {
            if last_family != name {
                last_family = name.to_string();
                out.push_str(&format!("# TYPE {name} {kind}\n"));
            }
        };
        for (key, c) in self.registry.counters.lock().expect("metrics lock").iter() {
            family(&mut out, &key.name, "counter");
            out.push_str(&format!("{} {}\n", key.canonical(), c.get()));
        }
        for (key, g) in self.registry.gauges.lock().expect("metrics lock").iter() {
            family(&mut out, &key.name, "gauge");
            out.push_str(&format!("{} {}\n", key.canonical(), g.get()));
        }
        for (key, h) in self
            .registry
            .histograms
            .lock()
            .expect("metrics lock")
            .iter()
        {
            family(&mut out, &key.name, "histogram");
            let mut cumulative = 0u64;
            for (i, count) in h.bucket_counts().iter().enumerate() {
                cumulative += count;
                let le = match BUCKET_BOUNDS_NS.get(i) {
                    Some(b) => format!("le=\"{b}\""),
                    None => "le=\"+Inf\"".to_string(),
                };
                let labels = if key.labels.is_empty() {
                    le
                } else {
                    format!("{},{le}", key.labels)
                };
                out.push_str(&format!("{}_bucket{{{labels}}} {cumulative}\n", key.name));
            }
            out.push_str(&format!(
                "{}_sum{} {}\n",
                key.name,
                braces(&key.labels),
                h.sum_ns()
            ));
            out.push_str(&format!(
                "{}_count{} {}\n",
                key.name,
                braces(&key.labels),
                h.count()
            ));
        }
        out
    }

    /// A machine-readable snapshot (schema [`METRICS_SCHEMA`]): every
    /// counter and gauge by canonical name, histograms as
    /// `{count, sum_ns}`. This is the row the sweep server appends to
    /// its journal so telemetry survives a kill -9.
    pub fn snapshot_json(&self) -> Json {
        let mut counters = Json::obj();
        for (key, c) in self.registry.counters.lock().expect("metrics lock").iter() {
            counters = counters.field(&key.canonical(), c.get());
        }
        let mut gauges = Json::obj();
        for (key, g) in self.registry.gauges.lock().expect("metrics lock").iter() {
            gauges = gauges.field(&key.canonical(), Json::Num(g.get() as f64));
        }
        let mut histograms = Json::obj();
        for (key, h) in self
            .registry
            .histograms
            .lock()
            .expect("metrics lock")
            .iter()
        {
            histograms = histograms.field(
                &key.canonical(),
                Json::obj()
                    .field("count", h.count())
                    .field("sum_ns", h.sum_ns()),
            );
        }
        Json::obj()
            .field("schema", METRICS_SCHEMA)
            .field("monotonic_ns", monotonic_ns())
            .field("counters", counters)
            .field("gauges", gauges)
            .field("histograms", histograms)
    }
}

fn braces(labels: &str) -> String {
    if labels.is_empty() {
        String::new()
    } else {
        format!("{{{labels}}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_histograms_accumulate() {
        let m = Metrics::new();
        let ok = m.counter("macs_points_total", &[("outcome", "ok")]);
        ok.inc();
        ok.add(2);
        assert_eq!(ok.get(), 3);
        // The same name+labels resolves to the same instrument.
        assert_eq!(
            m.counter("macs_points_total", &[("outcome", "ok")]).get(),
            3
        );

        let depth = m.gauge("macs_queue_depth", &[]);
        depth.add(5);
        depth.add(-2);
        assert_eq!(depth.get(), 3);
        depth.set(0);
        assert_eq!(depth.get(), 0);

        let h = m.histogram("macs_point_duration_ns", &[]);
        h.observe(500);
        h.observe(2_000_000);
        h.observe(u64::from(u32::MAX) * 512); // past the last bound
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum_ns(), 500 + 2_000_000 + u64::from(u32::MAX) * 512);
    }

    #[test]
    fn prometheus_rendering_is_deterministic_and_typed() {
        let m = Metrics::new();
        m.counter("macs_points_total", &[("outcome", "ok")]).add(7);
        m.counter("macs_points_total", &[("outcome", "invalid")])
            .inc();
        m.gauge("macs_workers_busy", &[]).set(2);
        let h = m.histogram("macs_point_duration_ns", &[]);
        h.observe(1_000);
        h.observe(5_000);
        let text = m.render_prometheus();
        assert!(text.contains("# TYPE macs_points_total counter"));
        assert!(text.contains("macs_points_total{outcome=\"ok\"} 7"));
        assert!(text.contains("macs_points_total{outcome=\"invalid\"} 1"));
        assert!(text.contains("# TYPE macs_workers_busy gauge"));
        assert!(text.contains("macs_workers_busy 2"));
        assert!(text.contains("# TYPE macs_point_duration_ns histogram"));
        // 1_000 ≤ 1024 lands in the first bucket; buckets are cumulative.
        assert!(text.contains("macs_point_duration_ns_bucket{le=\"1024\"} 1"));
        assert!(text.contains("macs_point_duration_ns_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("macs_point_duration_ns_sum 6000"));
        assert!(text.contains("macs_point_duration_ns_count 2"));
        // Deterministic: same registry renders identically.
        assert_eq!(text, m.render_prometheus());
        // One TYPE line per family even with several label sets.
        assert_eq!(text.matches("# TYPE macs_points_total").count(), 1);
    }

    #[test]
    fn label_values_are_escaped() {
        let m = Metrics::new();
        m.counter("macs_errors_total", &[("message", "a\"b\\c\nd")])
            .inc();
        let text = m.render_prometheus();
        assert!(text.contains(r#"message="a\"b\\c\nd""#), "{text}");
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let m = Metrics::new();
        m.counter("macs_points_total", &[("outcome", "ok")]).add(12);
        m.gauge("macs_queue_depth", &[]).set(-3);
        m.histogram("macs_point_duration_ns", &[]).observe(42);
        let snap = m.snapshot_json();
        assert_eq!(
            snap.get("schema").and_then(Json::as_str),
            Some(METRICS_SCHEMA)
        );
        let again = Json::parse(&snap.to_string()).unwrap();
        assert_eq!(again, snap);
        assert_eq!(
            again
                .get("counters")
                .and_then(|c| c.get("macs_points_total{outcome=\"ok\"}"))
                .and_then(Json::as_f64),
            Some(12.0)
        );
        assert_eq!(
            again
                .get("gauges")
                .and_then(|g| g.get("macs_queue_depth"))
                .and_then(Json::as_f64),
            Some(-3.0)
        );
        assert_eq!(
            again
                .get("histograms")
                .and_then(|h| h.get("macs_point_duration_ns"))
                .and_then(|h| h.get("count"))
                .and_then(Json::as_f64),
            Some(1.0)
        );
    }

    #[test]
    fn bucket_bounds_are_increasing() {
        for w in BUCKET_BOUNDS_NS.windows(2) {
            assert!(w[0] < w[1]);
        }
    }
}
