//! Process-level tests of `macs-bench --serve`: the wire protocol, the
//! supervision behavior, checkpoint/resume across a `kill -9`, and the
//! bit-identity of served rows against the in-process evaluation path.

use std::io::{BufRead, BufReader, Write};
use std::process::{Child, Command, Stdio};

use c240_obs::json::Json;
use c240_sim::SimConfig;
use macs_bench::eval_point;
use macs_core::supervise::RetryPolicy;
use macs_core::sweep::parse_point;

fn serve_cmd(extra: &[&str]) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_macs-bench"));
    cmd.arg("--serve")
        .args(extra)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    cmd
}

/// Runs the server over `input` and returns (parsed rows, summary).
fn serve_once(input: &str, extra: &[&str]) -> (Vec<Json>, Json) {
    let mut child = serve_cmd(extra).spawn().expect("server spawns");
    child
        .stdin
        .take()
        .expect("piped stdin")
        .write_all(input.as_bytes())
        .expect("requests written");
    let out = child.wait_with_output().expect("server exits");
    assert!(
        out.status.success(),
        "server must exit 0, got {:?}",
        out.status
    );
    let mut rows: Vec<Json> = String::from_utf8(out.stdout)
        .expect("utf-8 output")
        .lines()
        .map(|l| Json::parse(l).unwrap_or_else(|e| panic!("bad output line {l:?}: {e}")))
        .collect();
    let summary = rows.pop().expect("summary row present");
    assert_eq!(
        summary.get("schema").and_then(Json::as_str),
        Some("c240-sweep-summary/v1"),
        "last line is the summary"
    );
    (rows, summary)
}

fn field_str<'a>(row: &'a Json, key: &str) -> Option<&'a str> {
    row.get(key).and_then(Json::as_str)
}

fn field_num(row: &Json, key: &str) -> Option<f64> {
    row.get(key).and_then(Json::as_f64)
}

fn row_by_id<'a>(rows: &'a [Json], id: &str) -> &'a Json {
    rows.iter()
        .find(|r| field_str(r, "id") == Some(id))
        .unwrap_or_else(|| panic!("no row with id {id}"))
}

#[test]
fn empty_input_produces_only_the_summary() {
    let (rows, summary) = serve_once("", &[]);
    assert!(rows.is_empty());
    assert_eq!(field_num(&summary, "points"), Some(0.0));
}

#[test]
fn hostile_streams_become_error_rows_never_a_dead_server() {
    let input = concat!(
        "{\"id\":\"ok1\",\"kernel\":12}\n",
        "garbage that is not json\n",
        "{\"kernel\":1,\"surprise\":true}\n",
        "{\"id\":\"badcfg\",\"kernel\":1,\"config\":{\"banks\":0}}\n",
        "{\"id\":\"nokern\",\"kernel\":11}\n",
        "{\"id\":\"badpass\",\"kernel\":1,\"passes\":-3}\n",
        "[1,2,3]\n",
        "{\"id\":\"deep\",\"kernel\":1,\"config\":{\"cpus\":999}}\n",
    );
    let (rows, summary) = serve_once(input, &[]);
    assert_eq!(rows.len(), 8, "every line is answered");
    assert_eq!(field_num(&summary, "ok"), Some(1.0));
    assert_eq!(field_num(&summary, "invalid"), Some(7.0));
    assert_eq!(
        field_str(row_by_id(&rows, "badcfg"), "error_kind"),
        Some("invalid_config")
    );
    assert_eq!(
        field_str(row_by_id(&rows, "nokern"), "error_kind"),
        Some("unknown_kernel")
    );
    assert_eq!(
        field_str(row_by_id(&rows, "badpass"), "error_kind"),
        Some("invalid_passes")
    );
    assert_eq!(
        field_str(row_by_id(&rows, "deep"), "error_kind"),
        Some("invalid_config")
    );
    let protocol_rows = rows
        .iter()
        .filter(|r| field_str(r, "error_kind") == Some("protocol"))
        .count();
    assert_eq!(protocol_rows, 3, "garbage, unknown field, non-object");
}

#[test]
fn served_rows_are_bit_identical_to_in_process_evaluation() {
    let lines = [
        "{\"id\":\"base\",\"kernel\":1}",
        "{\"id\":\"nochain\",\"kernel\":1,\"config\":{\"chaining\":false}}",
        "{\"id\":\"k8\",\"kernel\":8,\"config\":{\"refresh\":false}}",
    ];
    let (rows, _) = serve_once(&(lines.join("\n") + "\n"), &[]);
    let base = SimConfig::c240();
    for line in lines {
        let point = parse_point(line).expect("test lines are valid");
        let direct = eval_point(&point, &base, None, &RetryPolicy::default());
        let served = row_by_id(&rows, &point.id);
        assert_eq!(
            served.to_string(),
            direct.row.to_string(),
            "transport must add nothing for {}",
            point.id
        );
    }
}

#[test]
fn served_cpl_matches_the_suite_analysis_path() {
    let (rows, _) = serve_once("{\"id\":\"lfk1\",\"kernel\":1}\n", &[]);
    let suite =
        macs_experiments::Suite::run_with(&SimConfig::c240(), &macs_core::ChimeConfig::c240());
    let t_p = suite.row(1).expect("LFK1 in suite").analysis.t_p_cpl();
    let served = field_num(row_by_id(&rows, "lfk1"), "cpl").expect("cpl present");
    assert_eq!(
        served, t_p,
        "server CPL must equal the in-process suite CPL"
    );
}

#[test]
fn panicking_point_is_retried_then_poisoned() {
    let input = "{\"id\":\"boom\",\"kernel\":1,\"inject\":\"panic\"}\n\
                 {\"id\":\"fine\",\"kernel\":12}\n";
    let (rows, summary) = serve_once(input, &["--max-attempts", "3", "--backoff-ms", "1"]);
    let boom = row_by_id(&rows, "boom");
    assert_eq!(field_str(boom, "error_kind"), Some("panic"));
    assert_eq!(field_num(boom, "attempts"), Some(3.0));
    assert_eq!(boom.get("poisoned"), Some(&Json::Bool(true)));
    let backoffs = boom
        .get("backoff_ms")
        .and_then(Json::as_arr)
        .expect("backoff metadata");
    assert_eq!(backoffs.len(), 2, "two failed retries → two backoffs");
    assert_eq!(field_str(row_by_id(&rows, "fine"), "status"), Some("ok"));
    assert_eq!(field_num(&summary, "panicked"), Some(1.0));
    assert_eq!(field_num(&summary, "retried"), Some(1.0));
}

#[test]
fn deadline_blows_become_timeout_rows() {
    let input =
        "{\"id\":\"slow\",\"kernel\":1,\"inject\":{\"sleep_ms\":5000},\"deadline_ms\":50}\n\
                 {\"id\":\"fast\",\"kernel\":12}\n";
    let (rows, summary) = serve_once(input, &["--max-attempts", "1"]);
    let slow = row_by_id(&rows, "slow");
    assert_eq!(field_str(slow, "error_kind"), Some("timeout"));
    assert_eq!(slow.get("poisoned"), Some(&Json::Bool(true)));
    assert_eq!(field_str(row_by_id(&rows, "fast"), "status"), Some("ok"));
    assert_eq!(field_num(&summary, "timed_out"), Some(1.0));
}

/// The headline robustness property: `kill -9` mid-sweep, then
/// `--resume` completes the grid with every valid point computed exactly
/// once and the already-computed rows re-emitted verbatim.
#[test]
fn kill_nine_mid_sweep_then_resume_completes_exactly_once() {
    let dir = std::env::temp_dir().join(format!("macs-serve-kill-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let journal = dir.join("journal.ndjson");
    let journal_arg = journal.to_str().expect("utf-8 temp path");

    // A grid big enough that the kill lands mid-sweep.
    let grid: Vec<String> = lfk_suite::IDS
        .iter()
        .flat_map(|k| {
            [
                format!("{{\"id\":\"lfk{k}-base\",\"kernel\":{k}}}"),
                format!("{{\"id\":\"lfk{k}-nochain\",\"kernel\":{k},\"config\":{{\"chaining\":false}}}}"),
            ]
        })
        .collect();
    let input = grid.join("\n") + "\n";

    // Phase 1: serve on one worker (so rows complete serially), kill -9
    // after the second completed row.
    let mut child: Child = serve_cmd(&["--journal", journal_arg, "--workers", "1"])
        .spawn()
        .expect("server spawns");
    let mut stdin = child.stdin.take().expect("piped stdin");
    stdin.write_all(input.as_bytes()).expect("grid written");
    // Keep stdin open: the kill must interrupt a *running* sweep.
    let stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
    let mut completed = 0;
    for line in stdout.lines() {
        let line = line.expect("readable output");
        if !line.is_empty() {
            completed += 1;
        }
        if completed == 2 {
            break;
        }
    }
    child.kill().expect("kill -9");
    child.wait().expect("reaped");
    drop(stdin);

    let checkpointed = macs_core::sweep::Journal::load(&journal).expect("journal readable");
    assert!(
        !checkpointed.is_empty(),
        "some points were checkpointed before the kill"
    );
    assert!(
        checkpointed.len() < grid.len(),
        "the kill landed mid-sweep ({} of {} done)",
        checkpointed.len(),
        grid.len()
    );

    // Phase 2: resume over the same grid.
    let (rows, summary) = serve_once(&input, &["--journal", journal_arg, "--resume", journal_arg]);
    assert_eq!(rows.len(), grid.len(), "every point answered");
    assert_eq!(
        field_num(&summary, "ok").unwrap() + field_num(&summary, "resumed").unwrap(),
        grid.len() as f64,
        "all points ok or resumed: {summary}"
    );
    assert_eq!(
        field_num(&summary, "resumed"),
        Some(checkpointed.len() as f64),
        "exactly the checkpointed points were skipped"
    );
    // Resumed rows are the journaled rows verbatim.
    for (key, row) in &checkpointed {
        let emitted = rows
            .iter()
            .find(|r| field_str(r, "key") == Some(key))
            .expect("checkpointed row re-emitted");
        assert_eq!(emitted.to_string(), row.to_string());
    }
    // The final journal holds every point exactly once (dedupe check).
    let final_journal = macs_core::sweep::Journal::load(&journal).expect("journal readable");
    assert_eq!(final_journal.len(), grid.len());

    std::fs::remove_dir_all(&dir).ok();
}

/// A deterministic fuzz sweep: pseudo-random lines (valid points, hostile
/// configs, fault injections, garbage) must each produce exactly one row,
/// and the server must exit cleanly.
#[test]
fn fuzzed_streams_answer_every_line_and_exit_zero() {
    let mut state = 0x2545_f491_4f6c_dd1du64;
    let mut next = move |bound: u64| {
        // xorshift64* — deterministic across runs and platforms.
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_f491_4f6c_dd1d) % bound
    };
    let mut lines: Vec<String> = Vec::new();
    for i in 0..40 {
        let line = match next(8) {
            0 => format!("{{\"id\":\"f{i}\",\"kernel\":{}}}", [1, 3, 12][next(3) as usize]),
            1 => format!("{{\"id\":\"f{i}\",\"kernel\":{}}}", next(20)),
            2 => format!(
                "{{\"id\":\"f{i}\",\"kernel\":12,\"config\":{{\"cpus\":{},\"banks\":{}}}}}",
                next(40),
                next(40)
            ),
            3 => format!("{{\"id\":\"f{i}\",\"kernel\":12,\"passes\":{}}}", next(7) as i64 - 3),
            4 => format!("{{\"id\":\"f{i}\",\"kernel\":1,\"inject\":\"panic\"}}"),
            5 => format!(
                "{{\"id\":\"f{i}\",\"kernel\":1,\"inject\":{{\"sleep_ms\":2000}},\"deadline_ms\":20}}"
            ),
            6 => format!("{{\"id\":\"f{i}\",\"nonsense\":{}}}", next(100)),
            _ => format!("f{i}: not even json {{"),
        };
        lines.push(line);
    }
    let input = lines.join("\n") + "\n";
    let (rows, summary) = serve_once(&input, &["--max-attempts", "1", "--deadline-ms", "3000"]);
    // Duplicates collapse identical semantic points, so rows count must
    // still equal the line count (duplicate rows are rows too).
    assert_eq!(rows.len(), lines.len(), "one row per input line");
    assert_eq!(field_num(&summary, "points"), Some(lines.len() as f64));
    for row in &rows {
        let status = field_str(row, "status").expect("every row has a status");
        assert!(
            matches!(status, "ok" | "error"),
            "unexpected status {status}"
        );
    }
}

#[test]
fn machine_presets_serve_with_distinct_keys_and_labels() {
    let input = concat!(
        "{\"id\":\"base\",\"kernel\":1}\n",
        "{\"id\":\"wide\",\"kernel\":1,\"machine\":\"c240-64b\"}\n",
        "{\"id\":\"dual\",\"kernel\":1,\"machine\":\"dual-port\"}\n",
        "{\"id\":\"ghost\",\"kernel\":1,\"machine\":\"c241\"}\n",
    );
    let (rows, summary) = serve_once(input, &[]);
    assert_eq!(rows.len(), 4, "every line is answered");
    assert_eq!(field_num(&summary, "ok"), Some(3.0));
    // Evaluated rows are labeled with the machine they ran on.
    assert_eq!(field_str(row_by_id(&rows, "base"), "machine"), Some("c240"));
    assert_eq!(
        field_str(row_by_id(&rows, "wide"), "machine"),
        Some("c240-64b")
    );
    assert_eq!(
        field_str(row_by_id(&rows, "dual"), "machine"),
        Some("dual-port")
    );
    // An unknown preset is a structured error row, never a dead server,
    // and the message names both the stranger and the known presets.
    let ghost = row_by_id(&rows, "ghost");
    assert_eq!(field_str(ghost, "status"), Some("error"));
    assert_eq!(field_str(ghost, "error_kind"), Some("unknown_machine"));
    let message = field_str(ghost, "message").expect("error rows carry a message");
    assert!(message.contains("c241") && message.contains("c240-64b"));
    // The valid preset names ride along as a structured field, so a
    // client can self-correct without parsing prose.
    let known: Vec<&str> = ghost
        .get("known_machines")
        .and_then(Json::as_arr)
        .expect("unknown_machine rows list the valid presets")
        .iter()
        .filter_map(Json::as_str)
        .collect();
    assert_eq!(known, c240_isa::PRESET_NAMES);
    // Same kernel on three machines: three distinct journal keys, so
    // per-machine results coexist in one journal without collisions.
    let keys: std::collections::HashSet<&str> = rows
        .iter()
        .filter(|r| field_str(r, "status") == Some("ok"))
        .map(|r| field_str(r, "key").expect("ok rows carry a key"))
        .collect();
    assert_eq!(keys.len(), 3, "machine name is part of the point key");
    // The 64-bank chassis runs the same kernel in fewer (or equal)
    // cycles than the stock C-240 — the machine field actually changes
    // the evaluated machine, not just the label.
    let base_cycles = field_num(row_by_id(&rows, "base"), "cycles").unwrap();
    let wide_cycles = field_num(row_by_id(&rows, "wide"), "cycles").unwrap();
    assert!(wide_cycles <= base_cycles, "{wide_cycles} vs {base_cycles}");
}

#[test]
fn roofline_flag_annotates_rows_and_its_absence_changes_nothing() {
    let input = concat!(
        "{\"id\":\"one\",\"kernel\":1}\n",
        "{\"id\":\"four\",\"kernel\":1,\"config\":{\"cpus\":4}}\n",
    );
    let (rows, _) = serve_once(input, &["--roofline"]);
    // A probed 1-CPU row carries the full provenance: analytic class,
    // measured stall-taxonomy class, and a cross-check verdict.
    let rf = row_by_id(&rows, "one")
        .get("roofline")
        .expect("--roofline annotates ok rows");
    assert_eq!(
        rf.get("schema").and_then(Json::as_str),
        Some(macs_core::ROOFLINE_SCHEMA)
    );
    assert_eq!(rf.get("verdict").and_then(Json::as_str), Some("agree"));
    assert_eq!(
        rf.get("bound_class").and_then(Json::as_str),
        rf.get("measured_class").and_then(Json::as_str),
        "agree means the two classifications match"
    );
    for key in ["intensity", "ridge", "peak_mflops", "attainable_mflops"] {
        assert!(
            rf.get(key).and_then(Json::as_f64).is_some(),
            "missing {key}"
        );
    }
    // Multi-CPU co-sim rows are not probed, so the verdict is honest
    // about it rather than inventing a measured class.
    let rf4 = row_by_id(&rows, "four")
        .get("roofline")
        .expect("co-sim rows are annotated too");
    assert_eq!(rf4.get("verdict").and_then(Json::as_str), Some("unchecked"));
    assert!(rf4.get("measured_class").is_none());
    // Without the flag the field is absent and rows stay bit-identical
    // to the in-process evaluation path (no opt-out drift).
    let (plain, _) = serve_once(input, &[]);
    for row in &plain {
        assert!(row.get("roofline").is_none(), "flagless rows are unchanged");
    }
    let point = parse_point("{\"id\":\"one\",\"kernel\":1}").expect("valid line");
    let direct = eval_point(&point, &SimConfig::c240(), None, &RetryPolicy::default());
    assert_eq!(row_by_id(&plain, "one").to_string(), direct.row.to_string());
}

/// Roofline annotations are pure functions of simulated quantities, so a
/// journaled row written with `--roofline` resumes verbatim — the
/// annotation never breaks checkpoint/resume bit-identity.
#[test]
fn roofline_rows_resume_verbatim_from_the_journal() {
    let dir = std::env::temp_dir().join(format!("macs-serve-roofline-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let journal = dir.join("journal.ndjson");
    let journal_arg = journal.to_str().expect("utf-8 temp path");

    let input = "{\"id\":\"p\",\"kernel\":7}\n";
    let (first, _) = serve_once(input, &["--roofline", "--journal", journal_arg]);
    let (second, summary) = serve_once(
        input,
        &[
            "--roofline",
            "--journal",
            journal_arg,
            "--resume",
            journal_arg,
        ],
    );
    assert_eq!(field_num(&summary, "resumed"), Some(1.0));
    assert_eq!(
        row_by_id(&first, "p").to_string(),
        row_by_id(&second, "p").to_string(),
        "resumed roofline rows are byte-for-byte the journaled ones"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_machine_flag_sets_the_base_machine() {
    let input = "{\"id\":\"p\",\"kernel\":1}\n";
    let (rows, _) = serve_once(input, &["--machine", "c240-64b"]);
    assert_eq!(
        field_str(row_by_id(&rows, "p"), "machine"),
        Some("c240-64b")
    );
    // A bad preset name fails flag parsing up front (exit nonzero).
    let out = serve_cmd(&["--machine", "c241"])
        .spawn()
        .expect("server spawns")
        .wait_with_output()
        .expect("server exits");
    assert!(!out.status.success(), "unknown preset must not serve");
}
