//! End-to-end tests of the multi-tenant coordinator: bit-identity with
//! a lone server, cache hits, journal warm starts, exactly-once under
//! chaos kills, and graceful overload.

use std::io::Cursor;
use std::path::PathBuf;
use std::time::Duration;

use c240_obs::json::Json;
use macs_bench::{eval_point, ChaosSpec, CoordinateOptions, Coordinator, ServeObs, ServeOptions};
use macs_core::sweep::parse_point;
use macs_core::RetryPolicy;

/// The real `macs-bench` binary, which the coordinator spawns as its
/// workers.
fn worker_program() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_macs-bench"))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "macs-coordinate-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn base_opts() -> CoordinateOptions {
    CoordinateOptions {
        fleet: 2,
        worker_program: Some(worker_program()),
        worker_args: vec!["--workers".into(), "2".into()],
        lease: Duration::from_secs(20),
        obs: Some(ServeObs::default()),
        ..CoordinateOptions::default()
    }
}

/// A grid of `n` unique, cheap points: the huge `deadline_ms` varies
/// the content-addressed key without changing the (never-hit) deadline
/// semantics or the simulated work.
fn grid(n: usize) -> String {
    (0..n)
        .map(|i| {
            format!(
                "{{\"id\":\"u{i}\",\"kernel\":12,\"passes\":1,\"deadline_ms\":{}}}\n",
                1_000_000 + i
            )
        })
        .collect()
}

fn run_client(coordinator: &Coordinator, input: &str) -> (Vec<Json>, c240_obs::SweepOutcomes) {
    let mut out = Vec::new();
    let outcomes = coordinator
        .client(Cursor::new(input.to_string()), &mut out)
        .expect("client stream succeeds");
    let rows = String::from_utf8(out)
        .expect("output is UTF-8")
        .lines()
        .map(|l| Json::parse(l).expect("every output line is JSON"))
        .collect();
    (rows, outcomes)
}

fn keyed_rows(rows: &[Json]) -> Vec<&Json> {
    rows.iter().filter(|r| r.get("key").is_some()).collect()
}

#[test]
fn coordinated_rows_are_bit_identical_to_direct_eval_and_cache_dedups() {
    let dir = temp_dir("cache");
    let mut opts = base_opts();
    opts.journal = Some(dir.join("cache.ndjson"));
    let input = grid(6);
    let coordinator = Coordinator::start(&opts).expect("coordinator starts");

    // First client: all misses, computed by the fleet.
    let (rows, outcomes) = run_client(&coordinator, &input);
    assert_eq!(outcomes.ok, 6, "{outcomes}");
    assert_eq!(keyed_rows(&rows).len(), 6);
    let serve_defaults = ServeOptions::default();
    for line in input.lines() {
        let point = parse_point(line).expect("grid lines parse");
        let deadline = point.deadline_ms.map(Duration::from_millis);
        let direct = eval_point(
            &point,
            &serve_defaults.base,
            deadline,
            &serve_defaults.retry,
        );
        let got = rows
            .iter()
            .find(|r| r.get("key").and_then(Json::as_str) == Some(point.key().as_str()))
            .expect("a row per point");
        assert_eq!(
            got, &direct.row,
            "coordinated row must be bit-identical to a direct eval"
        );
    }

    // Second client, same grid: answered from the cache, nothing
    // re-simulated.
    let (rows2, outcomes2) = run_client(&coordinator, &input);
    assert_eq!(outcomes2.cached, 6, "{outcomes2}");
    assert_eq!(outcomes2.ok, 0);
    for row in keyed_rows(&rows) {
        assert!(rows2.contains(row), "cached row must re-emit verbatim");
    }
    let metrics = &opts.obs.as_ref().unwrap().metrics;
    assert!(metrics.counter("macs_cache_hits_total", &[]).get() >= 6);
    assert_eq!(metrics.counter("macs_cache_misses_total", &[]).get(), 6);
    coordinator.shutdown().expect("clean shutdown");

    // A fresh coordinator on the same journal warm-starts: the whole
    // grid resumes without any worker computing anything.
    let coordinator = Coordinator::start(&opts).expect("warm restart");
    let (rows3, outcomes3) = run_client(&coordinator, &input);
    assert_eq!(outcomes3.resumed, 6, "{outcomes3}");
    for row in keyed_rows(&rows) {
        assert!(rows3.contains(row), "journaled row must re-emit verbatim");
    }
    coordinator.shutdown().expect("clean shutdown");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn chaos_kills_still_answer_every_point_exactly_once() {
    let dir = temp_dir("chaos");
    let mut opts = base_opts();
    opts.fleet = 3;
    opts.journal = Some(dir.join("chaos.ndjson"));
    opts.chaos = Some(ChaosSpec {
        kill_every: 13,
        hang_every: 0,
        corrupt_every: 7,
    });
    opts.jitter_seed = Some(42);
    opts.lease = Duration::from_secs(15);
    opts.restart_backoff = RetryPolicy {
        max_attempts: u32::MAX,
        backoff_base: Duration::from_millis(10),
        backoff_cap: Duration::from_millis(50),
        jitter_seed: None,
    };
    let n = 80;
    let input = grid(n);
    let coordinator = Coordinator::start(&opts).expect("coordinator starts");
    let (rows, outcomes) = run_client(&coordinator, &input);

    // Exactly one row per point, every one of them healthy.
    assert_eq!(outcomes.ok, n as u64, "{outcomes}");
    let keyed = keyed_rows(&rows);
    assert_eq!(keyed.len(), n);
    let mut keys: Vec<&str> = keyed
        .iter()
        .filter_map(|r| r.get("key").and_then(Json::as_str))
        .collect();
    keys.sort_unstable();
    keys.dedup();
    assert_eq!(keys.len(), n, "no key may be answered twice");

    // The chaos actually fired and the fleet actually recovered.
    let metrics = &opts.obs.as_ref().unwrap().metrics;
    let killed = metrics
        .counter("macs_chaos_injected_total", &[("action", "kill")])
        .get();
    assert!(killed >= 2, "expected multiple kills, got {killed}");
    assert!(
        metrics.counter("macs_redispatch_total", &[]).get() > 0
            || metrics.counter("macs_worker_deaths_total", &[]).get() > 0,
        "kills must surface as deaths/redispatches"
    );
    assert!(metrics.counter("macs_worker_restarts_total", &[]).get() > 0);
    coordinator.shutdown().expect("clean shutdown");

    // The journal holds exactly one record per point — the
    // exactly-once guarantee survives the crashes.
    let journal = macs_core::sweep::Journal::load(&opts.journal.clone().unwrap())
        .expect("chaos journal loads");
    assert_eq!(journal.len(), n, "one journal record per point");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn a_full_queue_degrades_to_structured_overload_rows() {
    let mut opts = base_opts();
    opts.fleet = 1;
    opts.queue_max = 2;
    opts.worker_inflight_max = 1;
    opts.worker_args = vec![
        "--workers".into(),
        "1".into(),
        "--max-attempts".into(),
        "1".into(),
    ];
    let n = 30;
    // Each point sleeps 30ms against a 10ms deadline: fast, deadline-
    // classed rows that still occupy the lone worker long enough for
    // the 2-deep queue to fill.
    let input: String = (0..n)
        .map(|i| {
            format!(
                "{{\"id\":\"s{i}\",\"kernel\":12,\"passes\":1,\
                 \"inject\":{{\"sleep_ms\":30}},\"deadline_ms\":{}}}\n",
                10 + i
            )
        })
        .collect();
    let coordinator = Coordinator::start(&opts).expect("coordinator starts");
    let (rows, outcomes) = run_client(&coordinator, &input);
    assert_eq!(outcomes.points(), n as u64, "one outcome per line");
    assert!(
        outcomes.overloaded > 0,
        "queue_max=2 with a saturated single worker must shed load: {outcomes}"
    );
    assert!(
        outcomes.timed_out > 0,
        "admitted points complete: {outcomes}"
    );
    let shed = rows
        .iter()
        .find(|r| r.get("error_kind").and_then(Json::as_str) == Some("overloaded"))
        .expect("overloaded rows are emitted");
    assert!(shed
        .get("message")
        .and_then(Json::as_str)
        .unwrap()
        .contains("admission queue is full"));
    let metrics = &opts.obs.as_ref().unwrap().metrics;
    assert_eq!(
        metrics.counter("macs_overloaded_total", &[]).get(),
        outcomes.overloaded
    );
    coordinator.shutdown().expect("clean shutdown");
}

#[test]
fn concurrent_clients_share_one_computation_per_key() {
    let mut opts = base_opts();
    opts.fleet = 2;
    let input = grid(5);
    let coordinator = Coordinator::start(&opts).expect("coordinator starts");
    let (a, b) = std::thread::scope(|scope| {
        let ra = scope.spawn(|| run_client(&coordinator, &input));
        let rb = scope.spawn(|| run_client(&coordinator, &input));
        (ra.join().expect("client a"), rb.join().expect("client b"))
    });
    let (rows_a, out_a) = a;
    let (rows_b, out_b) = b;
    // Between the two clients: 5 computations total, the rest deduped
    // against the cache or the in-flight set — and both see all 5 rows.
    assert_eq!(out_a.ok + out_b.ok, 5, "a: {out_a} / b: {out_b}");
    assert_eq!(out_a.cached + out_b.cached, 5);
    assert_eq!(keyed_rows(&rows_a).len(), 5);
    assert_eq!(keyed_rows(&rows_b).len(), 5);
    for row in keyed_rows(&rows_a) {
        assert!(rows_b.contains(row), "both clients see identical rows");
    }
    let metrics = &opts.obs.as_ref().unwrap().metrics;
    assert_eq!(metrics.counter("macs_cache_misses_total", &[]).get(), 5);
    coordinator.shutdown().expect("clean shutdown");
}
