//! End-to-end acceptance of the observability plane: a 12-point grid
//! through [`macs_bench::serve`] with [`macs_bench::ServeObs`] attached
//! must produce (a) a valid Chrome trace whose span tree is well-nested
//! with per-phase durations summing to ≤ their point, (b) Prometheus
//! counters that reconcile *exactly* with the end-of-stream
//! [`SweepOutcomes`] summary, (c) a `trace` provenance object on every
//! ok and error row, and (d) metrics snapshot rows in the journal.

use std::collections::BTreeMap;
use std::path::PathBuf;

use c240_obs::json::Json;
use c240_obs::METRICS_SCHEMA;
use macs_bench::{serve, ServeObs, ServeOptions};
use macs_core::supervise::RetryPolicy;

/// The smoke grid: nine healthy kernels (small pass counts for debug
/// builds), one invalid config, one unknown kernel, one slow point whose
/// watchdog fires long before its sleep ends (the sleeping attempt
/// thread outlives the sweep, so its span is never recorded — recorded
/// trees stay well-nested).
fn grid() -> String {
    let mut lines = String::new();
    for id in [1u32, 2, 3, 4, 6, 7, 8, 9, 10] {
        lines.push_str(&format!(
            "{{\"id\":\"k{id}\",\"kernel\":{id},\"passes\":4}}\n"
        ));
    }
    lines.push_str("{\"id\":\"badcfg\",\"kernel\":1,\"config\":{\"cpus\":0}}\n");
    lines.push_str("{\"id\":\"nokern\",\"kernel\":5}\n");
    lines.push_str(
        "{\"id\":\"slow\",\"kernel\":1,\"inject\":{\"sleep_ms\":60000},\"deadline_ms\":50}\n",
    );
    lines
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("macs-obs-test-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

struct SpanRow {
    id: u64,
    parent: u64,
    name: String,
    start_ns: u64,
    dur_ns: u64,
}

fn parse_spans(ndjson: &str) -> Vec<SpanRow> {
    ndjson
        .lines()
        .map(|line| {
            let j = Json::parse(line).expect("span line is JSON");
            assert_eq!(
                j.get("schema").and_then(Json::as_str),
                Some(c240_obs::SPAN_SCHEMA)
            );
            let u = |k: &str| j.get(k).and_then(Json::as_u64).unwrap();
            SpanRow {
                id: u("id"),
                parent: u("parent"),
                name: j.get("name").and_then(Json::as_str).unwrap().to_string(),
                start_ns: u("start_ns"),
                dur_ns: u("dur_ns"),
            }
        })
        .collect()
}

/// `name value` sample lookup in a Prometheus text exposition.
fn sample(prom: &str, name: &str) -> Option<u64> {
    prom.lines()
        .find(|l| {
            l.strip_prefix(name)
                .is_some_and(|rest| rest.starts_with(' '))
        })
        .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
}

#[test]
fn observed_sweep_produces_trace_metrics_and_provenance() {
    let dir = temp_dir("sweep");
    let trace_out = dir.join("trace.json");
    let spans_out = dir.join("spans.ndjson");
    let journal = dir.join("journal.ndjson");
    let obs = ServeObs {
        snapshot_every: 4,
        trace_out: Some(trace_out.clone()),
        spans_out: Some(spans_out.clone()),
        ..ServeObs::default()
    };
    let opts = ServeOptions {
        workers: 2,
        retry: RetryPolicy::once(),
        journal: Some(journal.clone()),
        obs: Some(obs.clone()),
        ..ServeOptions::default()
    };

    let mut out = Vec::new();
    let outcomes = serve(grid().as_bytes(), &mut out, &opts).expect("serve succeeds");
    assert_eq!(outcomes.ok, 9);
    assert_eq!(outcomes.invalid, 2);
    assert_eq!(outcomes.timed_out, 1);

    // (c) Every keyed row — ok and error alike — carries provenance:
    // a span id, phase durations, and for ok rows the ff stats.
    let rows: Vec<Json> = String::from_utf8(out)
        .unwrap()
        .lines()
        .map(|l| Json::parse(l).unwrap())
        .collect();
    let keyed: Vec<&Json> = rows.iter().filter(|r| r.get("key").is_some()).collect();
    assert_eq!(keyed.len(), 12);
    for row in &keyed {
        let id = row.get("id").and_then(Json::as_str).unwrap();
        let trace = row
            .get("trace")
            .unwrap_or_else(|| panic!("row {id} lacks trace provenance"));
        assert!(trace.get("span").and_then(Json::as_u64).unwrap() > 0);
        assert!(trace.get("validate_ns").and_then(Json::as_u64).is_some());
        assert!(trace.get("attempts").and_then(Json::as_u64).is_some());
        if row.get("status").and_then(Json::as_str) == Some("ok") {
            let ff = trace
                .get("ff")
                .unwrap_or_else(|| panic!("row {id} lacks ff stats"));
            assert!(ff.get("probes").and_then(Json::as_u64).is_some());
            assert!(trace.get("simulate_ns").and_then(Json::as_u64).is_some());
            assert!(trace.get("schedule_ns").and_then(Json::as_u64).is_some());
        }
    }

    // (b) Prometheus counters reconcile exactly with the summary.
    let prom = obs.metrics.render_prometheus();
    let outcome = |o: &str| sample(&prom, &format!("macs_points_total{{outcome=\"{o}\"}}"));
    assert_eq!(outcome("ok"), Some(outcomes.ok));
    assert_eq!(outcome("invalid"), Some(outcomes.invalid));
    assert_eq!(outcome("timed_out"), Some(outcomes.timed_out));
    assert_eq!(outcome("panicked"), None, "no panics, never registered");
    assert_eq!(
        sample(&prom, "macs_watchdog_fires_total"),
        Some(1),
        "the slow point's single attempt fired the watchdog once"
    );
    assert_eq!(sample(&prom, "macs_point_duration_ns_count"), Some(12));
    assert!(sample(&prom, "macs_ff_probes_total").unwrap_or(0) > 0);
    assert!(sample(&prom, "macs_busy_ticks_total").unwrap_or(0) > 0);
    assert!(prom.contains("# TYPE macs_points_total counter"));
    assert!(prom.contains("macs_point_duration_ns_bucket{le=\"+Inf\"} 12"));
    // Queue drained, no worker left busy.
    assert_eq!(sample(&prom, "macs_queue_depth"), Some(0));
    assert_eq!(sample(&prom, "macs_workers_busy"), Some(0));

    // (a) The span tree: one sweep root; every point under it; phases
    // under points, intervals nested, phase durations summing ≤ point.
    let spans = parse_spans(&std::fs::read_to_string(&spans_out).unwrap());
    let by_id: BTreeMap<u64, &SpanRow> = spans.iter().map(|s| (s.id, s)).collect();
    let sweep: Vec<&&SpanRow> = by_id.values().filter(|s| s.name == "sweep").collect();
    assert_eq!(sweep.len(), 1);
    let sweep_id = sweep[0].id;
    let points: Vec<&&SpanRow> = by_id.values().filter(|s| s.name == "point").collect();
    assert_eq!(points.len(), 12);
    let mut child_sum: BTreeMap<u64, u64> = BTreeMap::new();
    for span in &spans {
        match span.name.as_str() {
            "sweep" => assert_eq!(span.parent, 0),
            "point" | "parse" | "report" => assert_eq!(span.parent, sweep_id),
            "validate" | "schedule" | "simulate" => {
                let parent = by_id[&span.parent];
                assert_eq!(parent.name, "point");
                *child_sum.entry(parent.id).or_default() += span.dur_ns;
            }
            "attempt" => assert_eq!(by_id[&span.parent].name, "simulate"),
            other => panic!("unexpected span name {other:?}"),
        }
        if span.parent != 0 {
            let parent = by_id[&span.parent];
            assert!(
                span.start_ns >= parent.start_ns,
                "{} starts early",
                span.name
            );
            assert!(
                span.start_ns + span.dur_ns <= parent.start_ns + parent.dur_ns,
                "{} (id {}) ends after its parent {}",
                span.name,
                span.id,
                parent.name
            );
        }
    }
    for (point_id, sum) in &child_sum {
        assert!(
            *sum <= by_id[point_id].dur_ns,
            "phase durations exceed their point span"
        );
    }

    // The Chrome export is valid JSON with one complete event per span.
    let chrome = Json::parse(&std::fs::read_to_string(&trace_out).unwrap())
        .expect("chrome trace is valid JSON");
    let events = chrome.get("traceEvents").and_then(Json::as_arr).unwrap();
    assert_eq!(events.len(), spans.len());
    for e in events {
        assert_eq!(e.get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(e.get("pid").and_then(Json::as_u64), Some(1));
        assert!(e.get("ts").and_then(Json::as_f64).is_some());
        assert!(e.get("dur").and_then(Json::as_f64).is_some());
        assert!(e.get("name").and_then(Json::as_str).is_some());
    }

    // (d) The journal interleaves metrics snapshots (12 rows at
    // snapshot_every=4 → at least 3 mid-stream + 1 final) that the
    // loader skips: a resume still sees exactly the 12 point rows.
    let journal_text = std::fs::read_to_string(&journal).unwrap();
    let snapshots = journal_text
        .lines()
        .filter(|l| {
            Json::parse(l)
                .ok()
                .and_then(|j| j.get("schema").and_then(Json::as_str).map(String::from))
                .as_deref()
                == Some(METRICS_SCHEMA)
        })
        .count();
    assert!(snapshots >= 4, "expected >= 4 snapshots, got {snapshots}");
    let loaded = macs_core::sweep::Journal::load(&journal).unwrap();
    assert_eq!(loaded.len(), 12);

    std::fs::remove_dir_all(&dir).ok();
}

/// With both planes on, the roofline annotations surface on the metrics
/// registry: a bound-class counter that reconciles with the served rows
/// and per-(machine, cpus) ceiling gauges.
#[test]
fn roofline_sweep_registers_bound_class_counter_and_ceiling_gauges() {
    let obs = ServeObs::default();
    let opts = ServeOptions {
        workers: 2,
        roofline: true,
        obs: Some(obs.clone()),
        ..ServeOptions::default()
    };
    let input = "{\"id\":\"k1\",\"kernel\":1,\"passes\":4}\n\
                 {\"id\":\"k7\",\"kernel\":7,\"passes\":4}\n";
    let mut out = Vec::new();
    serve(input.as_bytes(), &mut out, &opts).expect("serve succeeds");

    let rows: Vec<Json> = String::from_utf8(out)
        .unwrap()
        .lines()
        .map(|l| Json::parse(l).unwrap())
        .collect();
    let classes: Vec<&str> = rows
        .iter()
        .filter_map(|r| r.get("roofline"))
        .map(|rf| rf.get("bound_class").and_then(Json::as_str).unwrap())
        .collect();
    assert_eq!(classes.len(), 2, "both ok rows are annotated");

    let prom = obs.metrics.render_prometheus();
    let by_class = |c: &str| {
        sample(
            &prom,
            &format!("macs_points_by_bound_class{{class=\"{c}\"}}"),
        )
    };
    let counted = by_class("memory").unwrap_or(0) + by_class("compute").unwrap_or(0);
    assert_eq!(counted, 2, "the counter reconciles with the served rows");
    assert_eq!(
        sample(
            &prom,
            "macs_roofline_peak_mflops{machine=\"c240\",cpus=\"1\"}"
        ),
        Some(50),
        "the 1-CPU peak gauge carries the machine's 50 MFLOPS roof"
    );
    assert!(
        prom.contains("macs_roofline_bandwidth_milliwords_per_cycle{machine=\"c240\",cpus=\"1\"}"),
        "the bandwidth gauge is registered"
    );
}

/// The default (obs-less) path must not change: rows carry no `trace`
/// field and are bit-identical to the pre-observability wire format.
#[test]
fn rows_without_obs_carry_no_provenance() {
    let opts = ServeOptions {
        workers: 2,
        ..ServeOptions::default()
    };
    let mut out = Vec::new();
    serve(
        "{\"id\":\"k12\",\"kernel\":12}\n".as_bytes(),
        &mut out,
        &opts,
    )
    .unwrap();
    let row = Json::parse(String::from_utf8(out).unwrap().lines().next().unwrap()).unwrap();
    assert_eq!(row.get("status").and_then(Json::as_str), Some("ok"));
    assert!(row.get("trace").is_none(), "no obs, no trace field");
}
