//! Quick interactive check of the steady-state fast-forward: runs every
//! LFK kernel at `scale`× its default pass count (first CLI argument,
//! default 100) with fast-forward on and off, asserts the two runs'
//! statistics are identical, and prints the per-kernel and suite
//! speedups plus the fraction of instructions warped over.
//!
//! ```text
//! cargo run --release -p macs-bench --example ffspeed -- 1000
//! ```
//!
//! The committed perf trajectory uses `macs-bench` (which records the
//! same measurement in `BENCH_<date>.json`); this example exists for
//! fast iteration on the detector itself.

use std::time::Instant;

use c240_sim::{Cpu, SimConfig};

fn main() {
    let scale: i64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100);
    let mut tot_ff = 0.0;
    let mut tot_ex = 0.0;
    for k in lfk_suite::all() {
        let passes = k.passes() * scale;
        let program = k.program_with_passes(passes);
        let run = |cfg: SimConfig| {
            let mut cpu = Cpu::new(cfg);
            k.setup(&mut cpu);
            let t0 = Instant::now();
            let stats = cpu.run(&program).expect("scaled kernel simulates cleanly");
            (
                t0.elapsed().as_secs_f64(),
                stats,
                cpu.fast_forwarded_instructions(),
            )
        };
        let (t_ff, s_ff, skipped) = run(SimConfig::c240());
        let (t_ex, s_ex, _) = run(SimConfig::c240().without_fast_forward());
        assert_eq!(s_ff, s_ex, "LFK{} diverged", k.id());
        tot_ff += t_ff;
        tot_ex += t_ex;
        println!(
            "LFK{:2} passes {:6}: ff {:7.3}s exact {:7.3}s speedup {:5.1}x warped {:.1}%",
            k.id(),
            passes,
            t_ff,
            t_ex,
            t_ex / t_ff,
            100.0 * skipped as f64 / s_ff.instructions.total() as f64
        );
    }
    println!(
        "suite: ff {tot_ff:.2}s exact {tot_ex:.2}s speedup {:.1}x",
        tot_ex / tot_ff
    );
}
