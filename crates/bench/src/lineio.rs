//! A bounded, timeout-aware line reader for hostile byte streams.
//!
//! The sweep listeners accept lines from arbitrary network peers, which
//! makes the naive `BufRead::lines` loop two separate denial-of-service
//! vectors: a peer can stream an unterminated line forever (unbounded
//! memory), or dribble one byte per minute and pin a connection thread
//! indefinitely (slowloris). [`BoundedLines`] reads newline-delimited
//! text with a hard per-line byte ceiling and surfaces socket read
//! timeouts as first-class events, so the server can answer both abuses
//! with a structured protocol-error row instead of degrading.

use std::io::{self, ErrorKind, Read};

/// What one [`BoundedLines::next_event`] call produced.
#[derive(Debug, PartialEq, Eq)]
pub enum LineEvent {
    /// A complete line (terminator stripped, invalid UTF-8 replaced).
    Line(String),
    /// A line exceeded the byte ceiling. The overlong tail has been
    /// drained up to (and including) its newline so the stream is
    /// re-synchronized; `length` is the bytes seen before draining
    /// stopped counting (at least the ceiling).
    Oversized {
        /// Bytes observed in the oversized line before the reader
        /// stopped counting.
        length: usize,
    },
    /// The underlying read timed out (the peer is stalling). The bytes
    /// of any partial line are kept; a later call resumes accumulating.
    Stalled,
    /// End of stream. Any unterminated final line is returned as a
    /// [`LineEvent::Line`] first; the next call then reports `Eof`.
    Eof,
}

/// How a freshly accepted connection opened.
#[derive(Debug, PartialEq, Eq)]
pub enum Sniff {
    /// An HTTP `GET`/`HEAD` request line (terminator stripped).
    Http(String),
    /// An NDJSON sweep stream; the sniffed bytes must be replayed ahead
    /// of the remaining stream.
    Stream(Vec<u8>),
    /// The peer closed without sending anything.
    Empty,
}

/// Reads just enough of a fresh connection to tell an HTTP metrics
/// scrape (`GET `/`HEAD `) from an NDJSON sweep stream, without ever
/// issuing an unbounded or indefinitely blocking line read: the verb
/// needs at most 5 bytes, the HTTP request line is capped at
/// `max_line_bytes`, and a read timeout or over-long line mid-sniff
/// degrades to [`Sniff::Stream`] so the bounded line reader downstream
/// answers with its structured `stalled`/`protocol` row instead of the
/// connection dying silently.
///
/// # Errors
///
/// Propagates I/O errors other than the timeout kinds, which degrade to
/// `Stream` as described above.
pub fn sniff_http(source: &mut impl Read, max_line_bytes: usize) -> io::Result<Sniff> {
    let mut seen: Vec<u8> = Vec::new();
    let mut byte = [0u8; 1];
    let http = loop {
        match source.read(&mut byte) {
            Ok(0) => {
                return Ok(if seen.is_empty() {
                    Sniff::Empty
                } else {
                    Sniff::Stream(seen)
                });
            }
            Ok(_) => {
                seen.push(byte[0]);
                let verbs: [&[u8]; 2] = [b"GET ", b"HEAD "];
                if verbs.contains(&seen.as_slice()) {
                    break seen.clone();
                }
                if !verbs.iter().any(|v| v.starts_with(&seen)) {
                    return Ok(Sniff::Stream(seen));
                }
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                return Ok(Sniff::Stream(seen));
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    };
    // The verb matched; collect the rest of the request line, still
    // bounded and still timeout-aware.
    let mut line = http;
    loop {
        if line.len() > max_line_bytes.max(64) {
            return Ok(Sniff::Stream(line));
        }
        match source.read(&mut byte) {
            Ok(0) => return Ok(Sniff::Stream(line)),
            Ok(_) if byte[0] == b'\n' => {
                while line.last() == Some(&b'\r') {
                    line.pop();
                }
                return Ok(Sniff::Http(String::from_utf8_lossy(&line).into_owned()));
            }
            Ok(_) => line.push(byte[0]),
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                return Ok(Sniff::Stream(line));
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// A line reader with a per-line byte ceiling and timeout passthrough.
pub struct BoundedLines<R: Read> {
    source: R,
    max_line_bytes: usize,
    buf: Vec<u8>,
    /// Bytes of the current oversized line already discarded (None when
    /// the current line is within bounds).
    oversized: Option<usize>,
    eof: bool,
}

impl<R: Read> BoundedLines<R> {
    /// Wraps `source`, capping complete lines at `max_line_bytes` bytes
    /// (terminator excluded). A ceiling of 0 is treated as 1.
    pub fn new(source: R, max_line_bytes: usize) -> Self {
        BoundedLines {
            source,
            max_line_bytes: max_line_bytes.max(1),
            buf: Vec::new(),
            oversized: None,
            eof: false,
        }
    }

    /// Reads until one of: a complete line, the byte ceiling, a read
    /// timeout, or end of stream.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors other than the timeout kinds
    /// (`WouldBlock`/`TimedOut`), which map to [`LineEvent::Stalled`].
    pub fn next_event(&mut self) -> io::Result<LineEvent> {
        loop {
            // Deliver a complete line already buffered before touching
            // the socket again.
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                let mut line: Vec<u8> = self.buf.drain(..=pos).collect();
                line.pop(); // the \n
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                if let Some(seen) = self.oversized.take() {
                    // This newline ends a line we already condemned.
                    return Ok(LineEvent::Oversized { length: seen });
                }
                if line.len() > self.max_line_bytes {
                    // The whole line arrived in one read, ahead of the
                    // incremental ceiling check.
                    return Ok(LineEvent::Oversized { length: line.len() });
                }
                return Ok(LineEvent::Line(String::from_utf8_lossy(&line).into_owned()));
            }
            if self.oversized.is_none() && self.buf.len() > self.max_line_bytes {
                // Condemn the line; keep draining until its newline but
                // stop accumulating.
                self.oversized = Some(self.buf.len());
                self.buf.clear();
            }
            if self.eof {
                if let Some(seen) = self.oversized.take() {
                    return Ok(LineEvent::Oversized { length: seen });
                }
                if self.buf.is_empty() {
                    return Ok(LineEvent::Eof);
                }
                let line = std::mem::take(&mut self.buf);
                if line.len() > self.max_line_bytes {
                    return Ok(LineEvent::Oversized { length: line.len() });
                }
                return Ok(LineEvent::Line(String::from_utf8_lossy(&line).into_owned()));
            }
            let mut chunk = [0u8; 4096];
            match self.source.read(&mut chunk) {
                Ok(0) => self.eof = true,
                Ok(n) => {
                    if let Some(seen) = self.oversized.as_mut() {
                        // Drain mode: count, look for the newline, keep
                        // only what follows it.
                        *seen += n;
                        if let Some(pos) = chunk[..n].iter().position(|&b| b == b'\n') {
                            self.buf.extend_from_slice(&chunk[pos + 1..n]);
                            *seen -= n - pos;
                            return Ok(LineEvent::Oversized {
                                length: self.oversized.take().unwrap_or(0),
                            });
                        }
                    } else {
                        self.buf.extend_from_slice(&chunk[..n]);
                    }
                }
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    return Ok(LineEvent::Stalled);
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events(input: &[u8], cap: usize) -> Vec<LineEvent> {
        let mut reader = BoundedLines::new(input, cap);
        let mut out = Vec::new();
        loop {
            let event = reader.next_event().expect("in-memory reads don't fail");
            let done = event == LineEvent::Eof;
            out.push(event);
            if done {
                return out;
            }
        }
    }

    #[test]
    fn splits_lines_and_strips_terminators() {
        assert_eq!(
            events(b"alpha\nbeta\r\ngamma", 64),
            vec![
                LineEvent::Line("alpha".into()),
                LineEvent::Line("beta".into()),
                LineEvent::Line("gamma".into()),
                LineEvent::Eof,
            ]
        );
    }

    #[test]
    fn oversized_line_is_reported_and_stream_resynchronizes() {
        let long = vec![b'x'; 100];
        let mut input = long.clone();
        input.push(b'\n');
        input.extend_from_slice(b"ok\n");
        let got = events(&input, 10);
        assert!(
            matches!(got[0], LineEvent::Oversized { length } if length >= 10),
            "first event should be Oversized, got {:?}",
            got[0]
        );
        assert_eq!(got[1], LineEvent::Line("ok".into()));
        assert_eq!(got[2], LineEvent::Eof);
    }

    #[test]
    fn oversized_line_at_eof_is_still_reported() {
        let got = events(&[b'y'; 50], 10);
        assert!(matches!(got[0], LineEvent::Oversized { .. }));
        assert_eq!(got[1], LineEvent::Eof);
    }

    #[test]
    fn invalid_utf8_is_replaced_not_fatal() {
        let got = events(b"a\xff\xfeb\n", 64);
        match &got[0] {
            LineEvent::Line(s) => {
                assert!(s.starts_with('a') && s.ends_with('b'));
                assert!(s.contains('\u{fffd}'));
            }
            other => panic!("expected a line, got {other:?}"),
        }
    }

    #[test]
    fn timeout_surfaces_as_stalled_and_partial_line_survives() {
        struct Dribble {
            feed: Vec<&'static [u8]>,
        }
        impl Read for Dribble {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                match self.feed.pop() {
                    Some([]) => Err(io::Error::new(ErrorKind::WouldBlock, "stall")),
                    Some(chunk) => {
                        buf[..chunk.len()].copy_from_slice(chunk);
                        Ok(chunk.len())
                    }
                    None => Ok(0),
                }
            }
        }
        // Feed is popped from the back: "par", stall, "tial\n", EOF.
        let mut reader = BoundedLines::new(
            Dribble {
                feed: vec![b"tial\n", b"", b"par"],
            },
            64,
        );
        assert_eq!(reader.next_event().unwrap(), LineEvent::Stalled);
        assert_eq!(
            reader.next_event().unwrap(),
            LineEvent::Line("partial".into())
        );
        assert_eq!(reader.next_event().unwrap(), LineEvent::Eof);
    }

    #[test]
    fn sniff_tells_http_from_ndjson_and_never_blocks_on_a_stall() {
        let mut get = &b"GET /metrics HTTP/1.0\r\nHost: x\r\n\r\n"[..];
        assert_eq!(
            sniff_http(&mut get, 8192).unwrap(),
            Sniff::Http("GET /metrics HTTP/1.0".into())
        );

        let mut ndjson = &b"{\"id\":\"p\",\"kernel\":1}\n"[..];
        match sniff_http(&mut ndjson, 8192).unwrap() {
            // One sniffed byte suffices: '{' is no HTTP verb prefix.
            Sniff::Stream(seen) => assert_eq!(seen, b"{"),
            other => panic!("expected Stream, got {other:?}"),
        }

        // "GE" then EOF: the partial verb is handed back for replay.
        let mut partial = &b"GE"[..];
        assert_eq!(
            sniff_http(&mut partial, 8192).unwrap(),
            Sniff::Stream(b"GE".to_vec())
        );

        let mut empty = &b""[..];
        assert_eq!(sniff_http(&mut empty, 8192).unwrap(), Sniff::Empty);

        // A stall before any byte degrades to an (empty) stream — the
        // caller's bounded reader then reports Stalled — instead of
        // hanging or erroring the connection.
        struct Stall;
        impl Read for Stall {
            fn read(&mut self, _: &mut [u8]) -> io::Result<usize> {
                Err(io::Error::new(ErrorKind::WouldBlock, "stall"))
            }
        }
        assert_eq!(
            sniff_http(&mut Stall, 8192).unwrap(),
            Sniff::Stream(Vec::new())
        );
    }

    #[test]
    fn sniff_caps_a_runaway_http_request_line() {
        let mut hostile: Vec<u8> = b"GET /".to_vec();
        hostile.extend(std::iter::repeat_n(b'a', 100_000));
        let mut source = &hostile[..];
        match sniff_http(&mut source, 1024).unwrap() {
            Sniff::Stream(seen) => assert!(seen.len() <= 1024 + 2),
            other => panic!("expected the capped line as Stream, got {other:?}"),
        }
    }

    #[test]
    fn empty_lines_pass_through() {
        assert_eq!(
            events(b"\n\nx\n", 8),
            vec![
                LineEvent::Line(String::new()),
                LineEvent::Line(String::new()),
                LineEvent::Line("x".into()),
                LineEvent::Eof,
            ]
        );
    }
}
