//! A small wall-clock timing harness.
//!
//! The build environment has no network access, so the benches cannot
//! use an external framework; this module provides the subset we need:
//! warm-up, automatic iteration-count calibration, a handful of timed
//! samples, and a median-of-samples report. Results print one line per
//! benchmark, e.g.
//!
//! ```text
//! paper/table3_bounds            median   41.2 ms/iter  (7 samples x 4 iters)
//! ```
//!
//! Medians over several samples keep one scheduler hiccup from skewing
//! a result; the spread (min..max) is printed so noisy runs are visible.

use std::time::{Duration, Instant};

/// Target wall-clock time for one timed sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(60);
/// Timed samples per benchmark.
const SAMPLES: usize = 7;

/// One benchmark's timing summary, in nanoseconds per iteration.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Full benchmark name (`group/function`).
    pub name: String,
    /// Median over the timed samples.
    pub median_ns: f64,
    /// Fastest sample.
    pub min_ns: f64,
    /// Slowest sample.
    pub max_ns: f64,
    /// Iterations per sample after calibration.
    pub iters: u64,
}

impl BenchResult {
    /// Renders `ns` with an auto-selected unit.
    fn human(ns: f64) -> String {
        if ns >= 1e9 {
            format!("{:.2} s", ns / 1e9)
        } else if ns >= 1e6 {
            format!("{:.2} ms", ns / 1e6)
        } else if ns >= 1e3 {
            format!("{:.2} us", ns / 1e3)
        } else {
            format!("{ns:.0} ns")
        }
    }
}

/// A named group of benchmarks, printed as it runs.
pub struct Bench {
    group: String,
    results: Vec<BenchResult>,
}

impl Bench {
    /// Starts a benchmark group; `group` prefixes every name.
    pub fn group(group: &str) -> Self {
        Bench {
            group: group.to_string(),
            results: Vec::new(),
        }
    }

    /// Times `f` and records the result under `group/name`.
    ///
    /// The closure's return value is passed through [`std::hint::black_box`]
    /// so the measured body cannot be optimized away.
    pub fn bench<T>(&mut self, name: &str, mut f: impl FnMut() -> T) -> &BenchResult {
        let full = if self.group.is_empty() {
            name.to_string()
        } else {
            format!("{}/{name}", self.group)
        };

        // Warm up and calibrate: find how many iterations fill the
        // sample target, growing geometrically from one.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= SAMPLE_TARGET || iters >= 1 << 20 {
                break;
            }
            // Aim straight for the target, but at most 8x at a time.
            let scale = if elapsed.is_zero() {
                8
            } else {
                (SAMPLE_TARGET.as_nanos() / elapsed.as_nanos().max(1)).clamp(2, 8) as u64
            };
            iters = iters.saturating_mul(scale);
        }

        let mut samples: Vec<f64> = (0..SAMPLES)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..iters {
                    std::hint::black_box(f());
                }
                start.elapsed().as_nanos() as f64 / iters as f64
            })
            .collect();
        samples.sort_by(|a, b| a.total_cmp(b));

        let result = BenchResult {
            name: full,
            median_ns: samples[samples.len() / 2],
            min_ns: samples[0],
            max_ns: samples[samples.len() - 1],
            iters,
        };
        println!(
            "{:<42} median {:>10}/iter  ({} samples x {} iters, {}..{})",
            result.name,
            BenchResult::human(result.median_ns),
            SAMPLES,
            result.iters,
            BenchResult::human(result.min_ns),
            BenchResult::human(result.max_ns),
        );
        self.results.push(result);
        self.results.last().expect("just pushed")
    }

    /// All results recorded so far, in run order.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Consumes the group and returns its results.
    pub fn finish(self) -> Vec<BenchResult> {
        self.results
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_times_a_trivial_closure() {
        let mut g = Bench::group("test");
        let r = g.bench("nop", || 1 + 1).clone();
        assert_eq!(r.name, "test/nop");
        assert!(r.median_ns >= 0.0);
        assert!(r.min_ns <= r.median_ns && r.median_ns <= r.max_ns);
        assert!(r.iters >= 1);
        assert_eq!(g.finish().len(), 1);
    }
}
