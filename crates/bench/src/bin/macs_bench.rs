//! `macs-bench` — the perf-trajectory harness.
//!
//! ```text
//! macs-bench [OUT_DIR]        (default: results)
//! ```
//!
//! Runs every LFK kernel once under the counting probe, times the LFK1
//! simulation with and without the probe (the zero-overhead check for
//! the monomorphized `Probe` plumbing), and writes
//! `OUT_DIR/BENCH_<date>.json`: per-kernel cycles/CPL/CPF, the stall
//! breakdown in CPL units, and the measured probe overhead. Committing
//! one such file per working day gives a performance trajectory that is
//! diffable across commits.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::{SystemTime, UNIX_EPOCH};

use c240_obs::json::Json;
use c240_obs::{CounterProbe, StallCause};
use c240_sim::{Cpu, SimConfig};
use macs_bench::timing::Bench;

/// Today's civil date (UTC) as `(year, month, day)`, computed from the
/// Unix time directly — the environment has no date/time crates.
/// Uses the days-to-civil algorithm of Howard Hinnant's `chrono`-
/// compatible date notes (exact for the proleptic Gregorian calendar).
fn civil_date_utc() -> (i64, u32, u32) {
    let secs = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs() as i64)
        .unwrap_or(0);
    let days = secs.div_euclid(86_400);
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = (if mp < 10 { mp + 3 } else { mp - 9 }) as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

fn main() -> ExitCode {
    let out_dir = PathBuf::from(std::env::args().nth(1).unwrap_or_else(|| "results".into()));
    let sim = SimConfig::c240();

    eprintln!("running the ten-kernel suite under the counting probe...");
    let mut kernels: Vec<Json> = Vec::new();
    for kernel in lfk_suite::all() {
        let mut cpu = Cpu::new(sim.clone());
        kernel.setup(&mut cpu);
        let mut probe = CounterProbe::new();
        let stats = match cpu.run_probed(&kernel.program(), &mut probe) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("LFK{}: simulation failed: {e}", kernel.id());
                return ExitCode::FAILURE;
            }
        };
        let iters = kernel.iterations().max(1) as f64;
        let cpl = stats.cpl(kernel.iterations());
        let totals = probe.totals();
        let mut stall_cpl = Json::obj();
        for cause in StallCause::ALL {
            stall_cpl = stall_cpl.field(cause.key(), totals.get(cause) / iters);
        }
        kernels.push(
            Json::obj()
                .field("id", kernel.id())
                .field("name", kernel.name())
                .field("cycles", stats.cycles)
                .field("iterations", kernel.iterations())
                .field("cpl", cpl)
                .field("cpf", cpl / f64::from(kernel.flops_total().max(1)))
                .field("memory_wait_cpl", stats.memory_wait_cycles / iters)
                .field("stall_cpl", stall_cpl)
                .field("stall_total_cpl", totals.total() / iters),
        );
    }

    // The no-op probe must cost nothing: time the same LFK1 simulation
    // through `run` (NoProbe) and `run_probed` (CounterProbe).
    eprintln!("timing probe overhead on LFK1...");
    let k1 = lfk_suite::by_id(1).expect("LFK1 is in the registry");
    let program = k1.program();
    let mut bench = Bench::group("probe-overhead");
    let base = bench
        .bench("lfk1_noprobe", || {
            let mut cpu = Cpu::new(sim.clone());
            k1.setup(&mut cpu);
            cpu.run(&program).expect("LFK1 simulates cleanly").cycles
        })
        .clone();
    let probed = bench
        .bench("lfk1_counterprobe", || {
            let mut cpu = Cpu::new(sim.clone());
            k1.setup(&mut cpu);
            let mut probe = CounterProbe::new();
            cpu.run_probed(&program, &mut probe)
                .expect("LFK1 simulates cleanly")
                .cycles
        })
        .clone();
    let relative = probed.median_ns / base.median_ns - 1.0;
    eprintln!("probe overhead: {:+.1}%", 100.0 * relative);

    let (y, m, d) = civil_date_utc();
    let date = format!("{y:04}-{m:02}-{d:02}");
    let doc = Json::obj()
        .field("schema", "c240-bench/v1")
        .field("date", date.as_str())
        .field("kernels", Json::Arr(kernels))
        .field(
            "probe_overhead",
            Json::obj()
                .field("kernel", "LFK1")
                .field("noprobe_median_ns", base.median_ns)
                .field("counterprobe_median_ns", probed.median_ns)
                .field("relative", relative),
        );

    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("cannot create {}: {e}", out_dir.display());
        return ExitCode::FAILURE;
    }
    let path = out_dir.join(format!("BENCH_{date}.json"));
    if let Err(e) = std::fs::write(&path, doc.pretty()) {
        eprintln!("cannot write {}: {e}", path.display());
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {}", path.display());
    ExitCode::SUCCESS
}
