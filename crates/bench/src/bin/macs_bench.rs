//! `macs-bench` — the perf-trajectory harness and sweep server.
//!
//! ```text
//! macs-bench [OUT_DIR]        (default: results)
//! macs-bench --serve [--journal FILE] [--resume FILE] [--workers N]
//!            [--deadline-ms N] [--max-attempts N] [--backoff-ms N]
//!            [--backoff-cap-ms N] [--jitter-seed N] [--machine PRESET]
//!            [--max-line-bytes N] [--read-timeout-ms N]
//!            [--listen ADDR | --unix PATH]
//!            [--metrics] [--trace-out FILE] [--spans-out FILE]
//!            [--snapshot-every N] [--roofline]
//! macs-bench --coordinate [--fleet N] [--journal FILE] [--resume FILE]
//!            [--lease-ms N] [--queue-max N] [--chaos kill=N,hang=N,corrupt=N]
//!            [--jitter-seed N] [--restart-backoff-ms N]
//!            [--restart-backoff-cap-ms N] [--max-line-bytes N]
//!            [--read-timeout-ms N] [--listen ADDR | --unix PATH] [--metrics]
//!            [-- WORKER_FLAGS...]
//! ```
//!
//! `--coordinate` runs the multi-tenant sweep coordinator (DESIGN.md
//! §17, [`macs_bench::coordinate`]): a fleet of `--fleet` spawned
//! `--serve` worker processes behind a shared content-addressed result
//! cache (`--journal`, warm-started if the file exists), per-point
//! leases with redispatch (`--lease-ms`), bounded admission
//! (`--queue-max`, structured `overloaded` rows past it), and optional
//! fault injection (`--chaos`). Flags after `--` go to each worker's
//! `--serve` invocation verbatim (e.g. `-- --workers 1 --max-attempts 2`).
//!
//! `--serve` turns the binary into the fault-tolerant sweep server
//! (see [`macs_bench::serve`]): newline-delimited JSON sweep points in
//! on stdin (or the given TCP/Unix socket), result rows out on stdout,
//! one summary row at end of stream. `--journal` checkpoints every
//! completed point; `--resume` re-emits already-computed rows verbatim
//! and evaluates only the rest, so a killed sweep loses at most its
//! in-flight points. `--machine` picks the base machine preset the
//! sweep evaluates against (default `c240`); individual points may
//! still name their own preset via the protocol's `machine` field.
//!
//! `--metrics` enables the observability plane: spans, a metrics
//! registry served as Prometheus text on `GET /metrics` over the
//! `--listen`/`--unix` socket (and snapshotted into the journal every
//! `--snapshot-every` rows), and per-row `trace` provenance.
//! `--trace-out` additionally writes a Chrome `trace_event` JSON file
//! per stream (open it in Perfetto or `chrome://tracing`); `--spans-out`
//! writes the same spans as NDJSON. Either implies `--metrics`.
//!
//! `--roofline` stamps every healthy row with a `roofline` object
//! (schema `c240-roofline/v1`, DESIGN.md §16): operational intensity,
//! the resolved machine's ceilings, the analytic memory/compute
//! `bound_class`, and — on probed single-CPU rows — the cross-check
//! verdict against the measured stall taxonomy. With `--metrics` it
//! also feeds `macs_points_by_bound_class{class}` and the per-machine
//! ceiling gauges.
//!
//! Runs every LFK kernel once under the counting probe (in parallel on
//! the [`macs_core::pool`]), times the LFK1 simulation with and without
//! the probe (the zero-overhead check for the monomorphized `Probe`
//! plumbing), measures the steady-state fast-forward against exact
//! element stepping at paper-scale pass counts, and writes
//! `OUT_DIR/BENCH_<date>.json`: per-kernel cycles/CPL/CPF plus wall
//! time, the stall breakdown in CPL units, the probe overhead, the
//! fast-forward speedup, and the multi-CPU co-simulation wall-clock at
//! 1/2/4 CPUs (schema `c240-bench/v3`). Committing one such file per
//! working day gives a performance trajectory that is diffable across
//! commits.
//!
//! Environment:
//!
//! * `MACS_THREADS` — pool width (default: all cores).
//! * `MACS_FF=0` — disable fast-forward everywhere. CI's exactness
//!   smoke runs the harness twice (with and without) and diffs the two
//!   JSON artifacts modulo wall-clock fields: every simulated quantity
//!   must be byte-identical.
//! * `MACS_BENCH_FF_SCALE` — pass multiplier for the paper-scale
//!   fast-forward section (default 1000).
//!
//! The binary exits nonzero if any kernel's fast-forward run diverges
//! from its element-stepped run.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use c240_isa::{MachineDescription, PRESET_NAMES};
use c240_obs::json::Json;
use c240_obs::{CounterProbe, StallCause};
use c240_sim::{Cpu, Machine, SimConfig};
use macs_bench::timing::Bench;
use macs_bench::{serve, ChaosSpec, CoordinateOptions, ServeObs, ServeOptions};

/// Observability overhead budgets, checked by the harness and
/// documented in DESIGN.md §14. `MACS_BENCH_OVERHEAD_CHECK=0` downgrades
/// a blown budget from a failure to a warning (for very noisy hosts).
///
/// The counting probe may cost at most this fraction over `NoProbe` on
/// the LFK1 simulation (the monomorphized plumbing is near-zero; a real
/// regression shows up as 2-10x, far beyond scheduler noise).
const PROBE_OVERHEAD_BUDGET: f64 = 0.50;
/// A span open + one arg + end may cost at most this many nanoseconds
/// (median), including its amortized share of a periodic drain.
const SPAN_HOOK_BUDGET_NS: f64 = 2_000.0;

/// Today's civil date (UTC) as `(year, month, day)`, computed from the
/// Unix time directly — the environment has no date/time crates.
/// Uses the days-to-civil algorithm of Howard Hinnant's `chrono`-
/// compatible date notes (exact for the proleptic Gregorian calendar).
fn civil_date_utc() -> (i64, u32, u32) {
    let secs = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs() as i64)
        .unwrap_or(0);
    let days = secs.div_euclid(86_400);
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = (if mp < 10 { mp + 3 } else { mp - 9 }) as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// The harness's simulator configuration: the named machine preset
/// (the standard C-240 when `None`), with fast-forward switched off
/// when `MACS_FF=0` (the CI exactness smoke).
fn harness_config(machine: Option<&str>) -> Result<SimConfig, String> {
    let cfg = match machine {
        None => SimConfig::c240(),
        Some(name) => {
            let desc = MachineDescription::preset(name).ok_or_else(|| {
                format!(
                    "unknown machine preset {name:?} (known presets: {})",
                    PRESET_NAMES.join(", ")
                )
            })?;
            SimConfig::for_machine(&desc)
        }
    };
    Ok(if std::env::var("MACS_FF").as_deref() == Ok("0") {
        cfg.without_fast_forward()
    } else {
        cfg
    })
}

/// One probed run of a kernel's default workload: the per-kernel JSON
/// row (cycles, CPL/CPF, stall breakdown, wall time).
fn kernel_row(kernel: &dyn lfk_suite::LfkKernel, sim: &SimConfig) -> Result<Json, String> {
    let mut cpu = Cpu::new(sim.clone());
    kernel.setup(&mut cpu);
    let mut probe = CounterProbe::new();
    let t0 = Instant::now();
    let stats = cpu
        .run_probed(&kernel.program(), &mut probe)
        .map_err(|e| format!("LFK{}: simulation failed: {e}", kernel.id()))?;
    let wall_ns = t0.elapsed().as_nanos() as u64;
    let iters = kernel.iterations().max(1) as f64;
    let cpl = stats.cpl(kernel.iterations());
    let totals = probe.totals();
    let mut stall_cpl = Json::obj();
    for cause in StallCause::ALL {
        stall_cpl = stall_cpl.field(cause.key(), totals.get(cause) / iters);
    }
    Ok(Json::obj()
        .field("id", kernel.id())
        .field("name", kernel.name())
        .field("cycles", stats.cycles)
        .field("iterations", kernel.iterations())
        .field("cpl", cpl)
        .field("cpf", cpl / f64::from(kernel.flops_total().max(1)))
        .field("memory_wait_cpl", stats.memory_wait_cycles / iters)
        .field("stall_cpl", stall_cpl)
        .field("stall_total_cpl", totals.total() / iters)
        .field("wall_ns", wall_ns))
}

/// One kernel's paper-scale fast-forward measurement: the same scaled
/// workload simulated with the harness configuration (fast-forward on,
/// unless `MACS_FF=0`) and with exact element stepping; the two runs
/// must produce identical statistics.
fn ff_row(kernel: &dyn lfk_suite::LfkKernel, sim: &SimConfig, scale: i64) -> Result<Json, String> {
    let passes = kernel.passes() * scale;
    let program = kernel.program_with_passes(passes);
    let run = |cfg: SimConfig| {
        let mut cpu = Cpu::new(cfg);
        kernel.setup(&mut cpu);
        let t0 = Instant::now();
        let stats = cpu
            .run(&program)
            .map_err(|e| format!("LFK{}: scaled simulation failed: {e}", kernel.id()))?;
        Ok::<_, String>((
            t0.elapsed().as_nanos() as u64,
            stats,
            cpu.fast_forwarded_instructions(),
        ))
    };
    let (ff_ns, ff_stats, skipped) = run(sim.clone())?;
    let (exact_ns, exact_stats, _) = run(sim.clone().without_fast_forward())?;
    if ff_stats != exact_stats {
        return Err(format!(
            "LFK{}: fast-forward diverged from exact element stepping at {passes} passes",
            kernel.id()
        ));
    }
    Ok(Json::obj()
        .field("id", kernel.id())
        .field("passes", passes as u64)
        .field("cycles", ff_stats.cycles)
        .field("instructions", ff_stats.instructions.total())
        .field(
            "warped_pct",
            100.0 * skipped as f64 / ff_stats.instructions.total().max(1) as f64,
        )
        .field("fast_forward_wall_ns", ff_ns)
        .field("exact_wall_ns", exact_ns)
        .field("speedup", exact_ns as f64 / ff_ns.max(1) as f64))
}

/// Parses the `--serve` flag set into [`ServeOptions`] plus the optional
/// socket to listen on. Returns an error message on unknown or malformed
/// flags — the server must not start half-configured.
fn parse_serve_args(
    args: &[String],
) -> Result<(ServeOptions, Option<String>, Option<PathBuf>), String> {
    let mut opts = ServeOptions::default();
    let mut listen: Option<String> = None;
    let mut unix: Option<PathBuf> = None;
    let mut machine: Option<String> = None;
    let mut metrics = false;
    let mut trace_out: Option<PathBuf> = None;
    let mut spans_out: Option<PathBuf> = None;
    let mut snapshot_every: usize = 8;
    let mut it = args.iter();
    fn value<'a>(
        it: &mut impl Iterator<Item = &'a String>,
        flag: &str,
    ) -> Result<&'a String, String> {
        it.next().ok_or_else(|| format!("{flag} needs a value"))
    }
    fn number<T: std::str::FromStr>(raw: &str, flag: &str) -> Result<T, String> {
        raw.parse()
            .map_err(|_| format!("{flag} needs a non-negative integer, got {raw:?}"))
    }
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--journal" => opts.journal = Some(PathBuf::from(value(&mut it, flag)?)),
            "--resume" => opts.resume = Some(PathBuf::from(value(&mut it, flag)?)),
            "--workers" => opts.workers = number(value(&mut it, flag)?, flag)?,
            "--deadline-ms" => {
                opts.deadline = Some(Duration::from_millis(number(value(&mut it, flag)?, flag)?))
            }
            "--max-attempts" => {
                opts.retry.max_attempts = number::<u32>(value(&mut it, flag)?, flag)?.max(1)
            }
            "--backoff-ms" => {
                opts.retry.backoff_base =
                    Duration::from_millis(number(value(&mut it, flag)?, flag)?)
            }
            "--backoff-cap-ms" => {
                opts.retry.backoff_cap = Duration::from_millis(number(value(&mut it, flag)?, flag)?)
            }
            "--jitter-seed" => opts.retry.jitter_seed = Some(number(value(&mut it, flag)?, flag)?),
            "--max-line-bytes" => {
                opts.max_line_bytes = number::<usize>(value(&mut it, flag)?, flag)?.max(1)
            }
            "--read-timeout-ms" => {
                let ms: u64 = number(value(&mut it, flag)?, flag)?;
                opts.read_timeout = (ms > 0).then(|| Duration::from_millis(ms));
            }
            "--machine" => machine = Some(value(&mut it, flag)?.clone()),
            "--listen" => listen = Some(value(&mut it, flag)?.clone()),
            "--unix" => unix = Some(PathBuf::from(value(&mut it, flag)?)),
            "--metrics" => metrics = true,
            "--roofline" => opts.roofline = true,
            "--trace-out" => trace_out = Some(PathBuf::from(value(&mut it, flag)?)),
            "--spans-out" => spans_out = Some(PathBuf::from(value(&mut it, flag)?)),
            "--snapshot-every" => snapshot_every = number(value(&mut it, flag)?, flag)?,
            other => return Err(format!("unknown --serve flag {other:?}")),
        }
    }
    if listen.is_some() && unix.is_some() {
        return Err("--listen and --unix are mutually exclusive".into());
    }
    if metrics || trace_out.is_some() || spans_out.is_some() {
        opts.obs = Some(ServeObs {
            snapshot_every,
            trace_out,
            spans_out,
            ..ServeObs::default()
        });
    }
    opts.base = harness_config(machine.as_deref())?;
    Ok((opts, listen, unix))
}

/// The `--serve` entry point: stdin/stdout by default, a socket with
/// `--listen`/`--unix`.
fn serve_main(args: &[String]) -> ExitCode {
    let (opts, listen, unix) = match parse_serve_args(args) {
        Ok(parsed) => parsed,
        Err(message) => {
            eprintln!("macs-bench --serve: {message}");
            return ExitCode::FAILURE;
        }
    };
    let served = if let Some(addr) = listen {
        macs_bench::serve::serve_tcp(&addr, &opts).map(|()| None)
    } else if let Some(path) = unix {
        macs_bench::serve::serve_unix(&path, &opts).map(|()| None)
    } else {
        // StdinLock is not Send (the reader runs on its own thread), so
        // buffer the Stdin handle directly.
        let input = std::io::BufReader::new(std::io::stdin());
        let stdout = std::io::stdout();
        serve(input, stdout.lock(), &opts).map(Some)
    };
    match served {
        Ok(Some(outcomes)) => {
            eprintln!("macs-bench: {outcomes}");
            ExitCode::SUCCESS
        }
        Ok(None) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("macs-bench --serve: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Parses the `--coordinate` flag set into [`CoordinateOptions`] plus
/// the optional socket to listen on. Everything after a literal `--` is
/// forwarded verbatim to each spawned `--serve` worker.
fn parse_coordinate_args(
    args: &[String],
) -> Result<(CoordinateOptions, Option<String>, Option<PathBuf>), String> {
    let mut opts = CoordinateOptions::default();
    let mut listen: Option<String> = None;
    let mut unix: Option<PathBuf> = None;
    let mut metrics = false;
    let mut trace_out: Option<PathBuf> = None;
    let mut spans_out: Option<PathBuf> = None;
    let (own, forwarded) = match args.iter().position(|a| a == "--") {
        Some(at) => (&args[..at], &args[at + 1..]),
        None => (args, &args[..0]),
    };
    opts.worker_args = forwarded.to_vec();
    let mut it = own.iter();
    fn value<'a>(
        it: &mut impl Iterator<Item = &'a String>,
        flag: &str,
    ) -> Result<&'a String, String> {
        it.next().ok_or_else(|| format!("{flag} needs a value"))
    }
    fn number<T: std::str::FromStr>(raw: &str, flag: &str) -> Result<T, String> {
        raw.parse()
            .map_err(|_| format!("{flag} needs a non-negative integer, got {raw:?}"))
    }
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--fleet" => opts.fleet = number::<usize>(value(&mut it, flag)?, flag)?.max(1),
            "--worker-program" => opts.worker_program = Some(PathBuf::from(value(&mut it, flag)?)),
            "--journal" => opts.journal = Some(PathBuf::from(value(&mut it, flag)?)),
            "--resume" => opts.resume = Some(PathBuf::from(value(&mut it, flag)?)),
            "--lease-ms" => {
                opts.lease =
                    Duration::from_millis(number::<u64>(value(&mut it, flag)?, flag)?.max(1))
            }
            "--queue-max" => opts.queue_max = number::<usize>(value(&mut it, flag)?, flag)?.max(1),
            "--restart-backoff-ms" => {
                opts.restart_backoff.backoff_base =
                    Duration::from_millis(number(value(&mut it, flag)?, flag)?)
            }
            "--restart-backoff-cap-ms" => {
                opts.restart_backoff.backoff_cap =
                    Duration::from_millis(number(value(&mut it, flag)?, flag)?)
            }
            "--jitter-seed" => opts.jitter_seed = Some(number(value(&mut it, flag)?, flag)?),
            "--chaos" => opts.chaos = Some(ChaosSpec::parse(value(&mut it, flag)?)?),
            "--max-line-bytes" => {
                opts.max_line_bytes = number::<usize>(value(&mut it, flag)?, flag)?.max(1)
            }
            "--read-timeout-ms" => {
                let ms: u64 = number(value(&mut it, flag)?, flag)?;
                opts.read_timeout = (ms > 0).then(|| Duration::from_millis(ms));
            }
            "--listen" => listen = Some(value(&mut it, flag)?.clone()),
            "--unix" => unix = Some(PathBuf::from(value(&mut it, flag)?)),
            "--metrics" => metrics = true,
            "--trace-out" => trace_out = Some(PathBuf::from(value(&mut it, flag)?)),
            "--spans-out" => spans_out = Some(PathBuf::from(value(&mut it, flag)?)),
            other => return Err(format!("unknown --coordinate flag {other:?}")),
        }
    }
    if listen.is_some() && unix.is_some() {
        return Err("--listen and --unix are mutually exclusive".into());
    }
    if metrics || trace_out.is_some() || spans_out.is_some() {
        opts.obs = Some(ServeObs {
            trace_out,
            spans_out,
            ..ServeObs::default()
        });
    }
    Ok((opts, listen, unix))
}

/// The `--coordinate` entry point: one stdin/stdout stream by default,
/// a multi-tenant socket with `--listen`/`--unix`.
fn coordinate_main(args: &[String]) -> ExitCode {
    let (opts, listen, unix) = match parse_coordinate_args(args) {
        Ok(parsed) => parsed,
        Err(message) => {
            eprintln!("macs-bench --coordinate: {message}");
            return ExitCode::FAILURE;
        }
    };
    let served = if let Some(addr) = listen {
        macs_bench::coordinate::coordinate_tcp(&addr, &opts).map(|()| None)
    } else if let Some(path) = unix {
        macs_bench::coordinate::coordinate_unix(&path, &opts).map(|()| None)
    } else {
        let input = std::io::BufReader::new(std::io::stdin());
        let stdout = std::io::stdout();
        macs_bench::coordinate(input, stdout.lock(), &opts).map(Some)
    };
    match served {
        Ok(Some(outcomes)) => {
            eprintln!("macs-bench: {outcomes}");
            ExitCode::SUCCESS
        }
        Ok(None) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("macs-bench --coordinate: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--serve") {
        return serve_main(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("--coordinate") {
        return coordinate_main(&args[1..]);
    }
    let out_dir = PathBuf::from(args.first().cloned().unwrap_or_else(|| "results".into()));
    let sim = harness_config(None).expect("the default machine always resolves");
    let threads = macs_core::threads();

    eprintln!("running the ten-kernel suite under the counting probe ({threads} threads)...");
    let suite_t0 = Instant::now();
    let rows =
        macs_core::parallel_map(lfk_suite::all(), |kernel| kernel_row(kernel.as_ref(), &sim));
    let suite_wall_ns = suite_t0.elapsed().as_nanos() as u64;
    let mut kernels: Vec<Json> = Vec::new();
    for row in rows {
        match row {
            Ok(j) => kernels.push(j),
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
    }

    // The no-op probe must cost nothing: time the same LFK1 simulation
    // through `run` (NoProbe) and `run_probed` (CounterProbe).
    eprintln!("timing probe overhead on LFK1...");
    let k1 = lfk_suite::by_id(1).expect("LFK1 is in the registry");
    let program = k1.program();
    let mut bench = Bench::group("probe-overhead");
    let base = bench
        .bench("lfk1_noprobe", || {
            let mut cpu = Cpu::new(sim.clone());
            k1.setup(&mut cpu);
            cpu.run(&program).expect("LFK1 simulates cleanly").cycles
        })
        .clone();
    let probed = bench
        .bench("lfk1_counterprobe", || {
            let mut cpu = Cpu::new(sim.clone());
            k1.setup(&mut cpu);
            let mut probe = CounterProbe::new();
            cpu.run_probed(&program, &mut probe)
                .expect("LFK1 simulates cleanly")
                .cycles
        })
        .clone();
    let relative = probed.median_ns / base.median_ns - 1.0;
    eprintln!("probe overhead: {:+.1}%", 100.0 * relative);

    // Span hooks: open + one arg + end, with the amortized share of a
    // periodic drain (a full buffer would flip spans to the cheaper
    // drop-counting path and hide the real record cost).
    let tracer = c240_obs::Tracer::new();
    let mut span_count: u64 = 0;
    let span_hook = bench
        .bench("span_open_arg_end", || {
            let mut s = tracer.span("bench");
            s.arg("i", 1u64);
            let ns = s.end();
            span_count += 1;
            if span_count.is_multiple_of(4096) {
                std::hint::black_box(tracer.drain().len());
            }
            ns
        })
        .clone();
    drop(tracer);

    // The observability regression guard: both hooks must stay within
    // their documented budgets, or the harness exits nonzero (CI fails).
    let overhead_enforced = std::env::var("MACS_BENCH_OVERHEAD_CHECK").as_deref() != Ok("0");
    let mut overhead_ok = true;
    if relative > PROBE_OVERHEAD_BUDGET {
        eprintln!(
            "probe overhead {:+.1}% exceeds the {:.0}% budget",
            100.0 * relative,
            100.0 * PROBE_OVERHEAD_BUDGET
        );
        overhead_ok = false;
    }
    if span_hook.median_ns > SPAN_HOOK_BUDGET_NS {
        eprintln!(
            "span hook {:.0} ns/span exceeds the {SPAN_HOOK_BUDGET_NS:.0} ns budget",
            span_hook.median_ns
        );
        overhead_ok = false;
    }
    if !overhead_ok && overhead_enforced {
        eprintln!(
            "observability overhead budget blown (set MACS_BENCH_OVERHEAD_CHECK=0 to warn only)"
        );
        return ExitCode::FAILURE;
    }

    // Paper-scale fast-forward vs exact element stepping. Wall times are
    // summed per kernel (a serial-equivalent measure independent of the
    // pool width); the runs themselves go through the pool.
    let scale: i64 = std::env::var("MACS_BENCH_FF_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(1000);
    eprintln!("measuring fast-forward vs exact stepping at {scale}x passes...");
    let ff_rows = macs_core::parallel_map(lfk_suite::all(), |kernel| {
        ff_row(kernel.as_ref(), &sim, scale)
    });
    let mut ff_kernels: Vec<Json> = Vec::new();
    let (mut suite_ff_ns, mut suite_exact_ns) = (0u64, 0u64);
    for row in ff_rows {
        match row {
            Ok(j) => {
                let ns = |key: &str| j.get(key).and_then(Json::as_f64).unwrap_or(0.0) as u64;
                suite_ff_ns += ns("fast_forward_wall_ns");
                suite_exact_ns += ns("exact_wall_ns");
                ff_kernels.push(j);
            }
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let suite_speedup = suite_exact_ns as f64 / suite_ff_ns.max(1) as f64;
    eprintln!(
        "fast-forward suite: {:.2}s -> {:.2}s ({suite_speedup:.1}x)",
        suite_exact_ns as f64 / 1e9,
        suite_ff_ns as f64 / 1e9,
    );

    // Multi-CPU co-simulation wall-clock: lockstep LFK1 at 1/2/4 CPUs.
    // More than one CPU forgoes fast-forward (the shared banks break
    // periodicity), so this row tracks the real cost of the mode, not
    // just N× the single-CPU time.
    eprintln!("timing multi-CPU co-simulation (lockstep LFK1 at 1/2/4 CPUs)...");
    let mut cosim_rows: Vec<Json> = Vec::new();
    let mut cosim_solo_cycles = 0.0f64;
    for cpus in [1u32, 2, 4] {
        let mut machine = Machine::new(sim.clone().with_cpus(cpus));
        let programs: Vec<_> = (0..cpus as usize)
            .map(|i| {
                k1.setup(machine.cpu_mut(i));
                k1.program()
            })
            .collect();
        let t0 = Instant::now();
        let stats = match machine.run(&programs) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("co-sim at {cpus} CPUs failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        let wall_ns = t0.elapsed().as_nanos() as u64;
        let mean_cycles = stats.iter().map(|s| s.cycles).sum::<f64>() / f64::from(cpus);
        if cpus == 1 {
            cosim_solo_cycles = mean_cycles;
        }
        let slowdown = mean_cycles / cosim_solo_cycles;
        eprintln!(
            "  {cpus} CPUs: {:.2}ms wall, mean slowdown {slowdown:.3}x",
            wall_ns as f64 / 1e6
        );
        cosim_rows.push(
            Json::obj()
                .field("cpus", cpus)
                .field("mean_cycles", mean_cycles)
                .field("mean_slowdown", slowdown)
                .field(
                    "contention_wait_cycles",
                    machine.shared().wait_breakdown().contention,
                )
                .field("wall_ns", wall_ns)
                .field("wall_ns_per_cpu", wall_ns / u64::from(cpus)),
        );
    }

    let (y, m, d) = civil_date_utc();
    let date = format!("{y:04}-{m:02}-{d:02}");
    let doc = Json::obj()
        .field("schema", "c240-bench/v3")
        .field("date", date.as_str())
        .field("threads", threads)
        .field("suite_wall_ns", suite_wall_ns)
        .field("kernels", Json::Arr(kernels))
        .field(
            "probe_overhead",
            Json::obj()
                .field("kernel", "LFK1")
                .field("noprobe_median_ns", base.median_ns)
                .field("counterprobe_median_ns", probed.median_ns)
                .field("relative", relative)
                .field("relative_budget", PROBE_OVERHEAD_BUDGET)
                .field("span_hook_median_ns", span_hook.median_ns)
                .field("span_hook_budget_ns", SPAN_HOOK_BUDGET_NS)
                .field("within_budget", overhead_ok),
        )
        .field(
            "fast_forward",
            Json::obj()
                .field("scale", scale as u64)
                .field("suite_fast_forward_ns", suite_ff_ns)
                .field("suite_exact_ns", suite_exact_ns)
                .field("suite_speedup", suite_speedup)
                .field("kernels", Json::Arr(ff_kernels)),
        )
        .field("cosim", Json::Arr(cosim_rows));

    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("cannot create {}: {e}", out_dir.display());
        return ExitCode::FAILURE;
    }
    let path = out_dir.join(format!("BENCH_{date}.json"));
    if let Err(e) = std::fs::write(&path, doc.pretty()) {
        eprintln!("cannot write {}: {e}", path.display());
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {}", path.display());
    ExitCode::SUCCESS
}
