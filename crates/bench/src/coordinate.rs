//! The multi-tenant sweep coordinator behind `macs-bench --coordinate`.
//!
//! The coordinator sits in front of a fleet of spawned `macs-bench
//! --serve` worker processes and gives many concurrent clients one
//! shared, fault-tolerant view of the sweep space (DESIGN.md §17):
//!
//! * **Multi-tenancy** — every TCP/Unix connection is an independent
//!   request stream served concurrently (no serialization, unlike a
//!   single `--serve` process); each client gets exactly one row back
//!   per input line plus its own end-of-stream summary.
//! * **Content-addressed result cache** — points are identified by
//!   their FNV key ([`SweepPoint::key`], which excludes the free-form
//!   `id`), so a point any client already computed — or that is merely
//!   *in flight* for another client — is answered from the cache
//!   without re-simulating. The cache persists as the standard
//!   checkpoint [`Journal`]: a restarted coordinator warm-starts from
//!   it, and cached rows re-emit verbatim (the same bit-identity
//!   contract as `--serve --resume`).
//! * **Worker-fleet supervision** — each dispatched point carries a
//!   lease; a worker that crashes, is `kill -9`ed, or hangs (all of
//!   which `--chaos` injects on a deterministic schedule) has its
//!   in-flight points redispatched to surviving workers and is
//!   restarted under capped, optionally jittered backoff. The cache
//!   entry — not the dispatch — is what resolves a point, so a
//!   redispatch race resolves exactly once and late duplicate answers
//!   are dropped.
//! * **Graceful overload** — admission is a bounded queue; past the
//!   bound, new points are refused with a structured `overloaded`
//!   error row instead of unbounded memory growth. Redispatched points
//!   are exempt (they were already admitted once).
//!
//! Workers run the plain `--serve` stdin protocol with no coordinator-
//! specific code, so a row computed through the coordinator is
//! bit-identical to the row the same point produces under a lone
//! `--serve` process.

use std::collections::{HashMap, VecDeque};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpListener;
use std::path::PathBuf;
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use c240_obs::json::Json;
use c240_obs::SweepOutcomes;
use macs_core::supervise::RetryPolicy;
use macs_core::sweep::{parse_point, Journal, SweepPoint, SWEEP_ROW_SCHEMA};

use crate::lineio::{sniff_http, BoundedLines, LineEvent, Sniff};
use crate::serve::{answer_http, ServeObs};

/// Fault-injection schedule: every Nth dispatch triggers the named
/// action against the worker it was dispatched to (0 = never). The
/// schedule counts *dispatches*, so a given grid and fleet replay the
/// same injection points deterministically; which points are in flight
/// when the blast lands is timing-dependent, which is exactly what the
/// exactly-once machinery must absorb.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosSpec {
    /// `kill -9` the worker every Nth dispatch.
    pub kill_every: u64,
    /// `kill -STOP` (hang) the worker every Nth dispatch; the hung
    /// worker is detected by lease expiry, killed, and restarted.
    pub hang_every: u64,
    /// Write a garbage line to the worker's stdin every Nth dispatch
    /// (the worker answers with a keyless protocol row, which the
    /// coordinator drops).
    pub corrupt_every: u64,
}

impl ChaosSpec {
    /// Parses `kill=N,hang=N,corrupt=N` (any subset, any order).
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed clause.
    pub fn parse(spec: &str) -> Result<ChaosSpec, String> {
        let mut chaos = ChaosSpec::default();
        for clause in spec.split(',').filter(|c| !c.trim().is_empty()) {
            let (action, every) = clause
                .split_once('=')
                .ok_or_else(|| format!("chaos clause {clause:?} is not action=N"))?;
            let every: u64 = every
                .trim()
                .parse()
                .map_err(|_| format!("chaos clause {clause:?} needs an integer period"))?;
            match action.trim() {
                "kill" => chaos.kill_every = every,
                "hang" => chaos.hang_every = every,
                "corrupt" => chaos.corrupt_every = every,
                other => return Err(format!("unknown chaos action {other:?}")),
            }
        }
        Ok(chaos)
    }

    fn is_off(&self) -> bool {
        self.kill_every == 0 && self.hang_every == 0 && self.corrupt_every == 0
    }
}

/// How the coordinator runs its fleet and cache.
#[derive(Debug, Clone)]
pub struct CoordinateOptions {
    /// Worker processes to keep running.
    pub fleet: usize,
    /// The worker executable (`None` = this binary, via
    /// `std::env::current_exe`). Tests point this at the built
    /// `macs-bench` binary.
    pub worker_program: Option<PathBuf>,
    /// Extra flags appended to each worker's `--serve` invocation
    /// (e.g. `--workers 1 --machine c240-64b --max-attempts 2`).
    pub worker_args: Vec<String>,
    /// The persistent result cache: every first-time result is appended
    /// here, and an existing journal warm-starts the in-memory cache.
    pub journal: Option<PathBuf>,
    /// Warm-start the cache from this journal instead of `journal`
    /// (when unset, `journal` itself is loaded if it exists).
    pub resume: Option<PathBuf>,
    /// How long a dispatched point may stay unanswered before its
    /// worker is declared hung, killed, and the point redispatched.
    pub lease: Duration,
    /// Admission-queue bound; new points past it are refused with an
    /// `overloaded` row. Redispatched points are exempt.
    pub queue_max: usize,
    /// Unanswered-point cap per worker. Beyond it a worker takes no new
    /// dispatches, which keeps stdin writes inside the pipe buffer (a
    /// blocked write while holding the fleet lock would stall
    /// supervision) and bounds one worker's blast radius.
    pub worker_inflight_max: usize,
    /// Pacing for worker restarts: `backoff(consecutive_failures)`,
    /// capped, with optional full jitter.
    pub restart_backoff: RetryPolicy,
    /// Seed for restart jitter *and* the per-worker `--jitter-seed`
    /// flags passed to spawned workers (worker i gets `seed + i`), so
    /// a fleet decorrelates its retry storms yet replays exactly.
    /// `None` = no jitter anywhere.
    pub jitter_seed: Option<u64>,
    /// Fault injection; `None` (or an all-zero spec) = off.
    pub chaos: Option<ChaosSpec>,
    /// Per-line byte ceiling on client streams (see
    /// [`crate::serve::ServeOptions::max_line_bytes`]).
    pub max_line_bytes: usize,
    /// Socket read timeout for client connections (slowloris guard).
    pub read_timeout: Option<Duration>,
    /// Observability plane shared by every client and the supervisor.
    pub obs: Option<ServeObs>,
}

impl Default for CoordinateOptions {
    fn default() -> Self {
        CoordinateOptions {
            fleet: 3,
            worker_program: None,
            worker_args: Vec::new(),
            journal: None,
            resume: None,
            lease: Duration::from_secs(10),
            queue_max: 4096,
            worker_inflight_max: WORKER_INFLIGHT_MAX,
            restart_backoff: RetryPolicy {
                max_attempts: u32::MAX,
                backoff_base: Duration::from_millis(50),
                backoff_cap: Duration::from_secs(2),
                jitter_seed: None,
            },
            jitter_seed: None,
            chaos: None,
            max_line_bytes: 64 * 1024,
            read_timeout: Some(Duration::from_secs(30)),
            obs: None,
        }
    }
}

/// Default for [`CoordinateOptions::worker_inflight_max`]: comfortably
/// inside the OS pipe buffer at protocol-sized lines.
const WORKER_INFLIGHT_MAX: usize = 64;

/// How a row reached this client, for the per-client tally.
enum RowClass {
    /// Computed by a worker for this client (the cache miss that
    /// created the entry).
    Fresh,
    /// Answered from the in-memory cache (or deduplicated against an
    /// in-flight computation another client started).
    Cached,
    /// Answered from the journal loaded at startup.
    Resumed,
}

/// One row headed back to a specific client.
struct ClientRow {
    row: Json,
    class: RowClass,
}

/// A client waiting on an in-flight point.
struct Waiter {
    tx: mpsc::Sender<ClientRow>,
    /// The waiter whose registration created the entry (its tally says
    /// `ok`/`error`, everyone else's says `cached`).
    creator: bool,
}

/// Cache entry for one point key.
enum Entry {
    /// Dispatched (or queued) but unanswered; `waiters` drain on the
    /// first resolution.
    InFlight { waiters: Vec<Waiter> },
    /// Terminal row, re-emitted verbatim to every later asker.
    Done { row: Json, from_journal: bool },
}

/// One queued dispatch.
struct Job {
    key: String,
    line: String,
}

/// Per-point lease: what was dispatched and when it expires.
struct Lease {
    line: String,
    deadline: Instant,
}

/// One worker process slot (a fixed fleet index across restarts).
struct WorkerSlot {
    index: usize,
    child: Option<Child>,
    stdin: Option<ChildStdin>,
    inflight: HashMap<String, Lease>,
    consecutive_failures: u32,
    /// `Some(when)` while the slot is down, waiting to restart.
    restart_at: Option<Instant>,
    alive_gauge: Option<c240_obs::metrics::Gauge>,
}

impl WorkerSlot {
    fn is_up(&self) -> bool {
        self.child.is_some() && self.stdin.is_some()
    }
}

/// Shared coordinator state. Lock discipline: `cache` may nest `queue`
/// or `journal` inside it (registration and resolution); nothing else
/// nests — `workers` and `queue` are only ever held one at a time, so
/// the dispatcher (queue → then workers) and the supervisor (workers →
/// then queue) cannot deadlock.
struct Hub {
    opts: CoordinateOptions,
    cache: Mutex<HashMap<String, Entry>>,
    queue: Mutex<VecDeque<Job>>,
    queue_cv: Condvar,
    journal: Mutex<Option<Journal>>,
    workers: Mutex<Vec<WorkerSlot>>,
    shutdown: AtomicBool,
    dispatched: AtomicU64,
}

impl Hub {
    fn obs(&self) -> Option<&ServeObs> {
        self.opts.obs.as_ref()
    }

    fn count(&self, name: &'static str) {
        if let Some(o) = self.obs() {
            o.metrics.counter(name, &[]).inc();
        }
    }

    fn queue_depth(&self, depth: usize) {
        if let Some(o) = self.obs() {
            o.metrics
                .gauge("macs_coord_queue_depth", &[])
                .set(depth.min(i64::MAX as usize) as i64);
        }
    }

    fn worker_alive(&self, slot: &WorkerSlot, up: bool) {
        if let Some(g) = &slot.alive_gauge {
            g.set(i64::from(up));
        }
    }
}

/// A running coordinator: fleet + dispatcher + supervisor. Create with
/// [`Coordinator::start`], attach clients with [`Coordinator::client`],
/// stop with [`Coordinator::shutdown`].
pub struct Coordinator {
    hub: Arc<Hub>,
    dispatcher: Option<std::thread::JoinHandle<()>>,
    supervisor: Option<std::thread::JoinHandle<()>>,
}

impl Coordinator {
    /// Warm-starts the cache, spawns the fleet, and starts the
    /// dispatcher and supervisor threads.
    ///
    /// # Errors
    ///
    /// Fails if the warm-start journal is corrupt, the journal cannot
    /// be opened for append, or no worker can be spawned at all.
    pub fn start(opts: &CoordinateOptions) -> io::Result<Coordinator> {
        let warm: HashMap<String, Entry> = {
            let path = opts.resume.as_ref().or(opts.journal.as_ref());
            match path {
                Some(p) if p.exists() => Journal::load(p)?
                    .into_iter()
                    .map(|(k, row)| {
                        (
                            k,
                            Entry::Done {
                                row,
                                from_journal: true,
                            },
                        )
                    })
                    .collect(),
                _ => HashMap::new(),
            }
        };
        let journal = match &opts.journal {
            Some(p) => Some(Journal::open_append(p)?),
            None => None,
        };
        let fleet = opts.fleet.max(1);
        let hub = Arc::new(Hub {
            opts: CoordinateOptions {
                fleet,
                ..opts.clone()
            },
            cache: Mutex::new(warm),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            journal: Mutex::new(journal),
            workers: Mutex::new(Vec::new()),
            shutdown: AtomicBool::new(false),
            dispatched: AtomicU64::new(0),
        });
        if let Some(o) = hub.obs() {
            o.metrics
                .gauge("macs_coord_queue_limit", &[])
                .set(hub.opts.queue_max.min(i64::MAX as usize) as i64);
        }
        {
            let mut workers = hub.workers.lock().expect("workers lock");
            for index in 0..fleet {
                let label = index.to_string();
                let mut slot = WorkerSlot {
                    index,
                    child: None,
                    stdin: None,
                    inflight: HashMap::new(),
                    consecutive_failures: 0,
                    restart_at: None,
                    alive_gauge: hub
                        .obs()
                        .map(|o| o.metrics.gauge("macs_worker_alive", &[("worker", &label)])),
                };
                match spawn_worker(&hub, &mut slot) {
                    Ok(()) => {}
                    Err(e) if index == 0 => return Err(e),
                    Err(e) => {
                        eprintln!("macs-bench --coordinate: worker {index} failed to spawn: {e}");
                        slot.restart_at = Some(Instant::now());
                    }
                }
                workers.push(slot);
            }
        }
        if let Some(journal) = hub.journal.lock().expect("journal lock").as_mut() {
            // Provenance: which fleet shape produced the records that
            // follow. Metadata rows are skipped by the loader.
            let _ = journal.meta(
                &Json::obj()
                    .field("schema", "c240-coordinator/v1")
                    .field("fleet", fleet as u64)
                    .field("lease_ms", hub.opts.lease.as_millis() as u64)
                    .field("queue_max", hub.opts.queue_max as u64),
            );
        }
        let dispatcher = {
            let hub = Arc::clone(&hub);
            Some(std::thread::spawn(move || dispatcher_loop(&hub)))
        };
        let supervisor = {
            let hub = Arc::clone(&hub);
            Some(std::thread::spawn(move || supervisor_loop(&hub)))
        };
        Ok(Coordinator {
            hub,
            dispatcher,
            supervisor,
        })
    }

    /// Serves one client request stream to completion: every input line
    /// is answered with exactly one row (from the cache, a worker, or a
    /// structured error), then the client's own summary row.
    ///
    /// # Errors
    ///
    /// Fails on `output` write errors; input errors end the stream
    /// cleanly.
    pub fn client(
        &self,
        input: impl BufRead + Send,
        output: impl Write,
    ) -> io::Result<SweepOutcomes> {
        client_stream(&self.hub, input, output)
    }

    /// Stops the fleet: closes every worker's stdin (EOF lets them
    /// finish in-flight points and emit their summaries), waits
    /// briefly, kills stragglers, and joins the coordinator threads.
    ///
    /// # Errors
    ///
    /// Propagates journal I/O errors from the final metrics snapshot.
    pub fn shutdown(mut self) -> io::Result<()> {
        self.hub.shutdown.store(true, Ordering::SeqCst);
        self.hub.queue_cv.notify_all();
        {
            let mut workers = self.hub.workers.lock().expect("workers lock");
            for slot in workers.iter_mut() {
                slot.stdin = None; // drop = EOF
            }
            for slot in workers.iter_mut() {
                if let Some(child) = slot.child.as_mut() {
                    let deadline = Instant::now() + Duration::from_secs(5);
                    loop {
                        match child.try_wait() {
                            Ok(Some(_)) => break,
                            Ok(None) if Instant::now() < deadline => {
                                std::thread::sleep(Duration::from_millis(20));
                            }
                            _ => {
                                let _ = child.kill();
                                let _ = child.wait();
                                break;
                            }
                        }
                    }
                }
                slot.child = None;
                self.hub.worker_alive(slot, false);
            }
        }
        for handle in [self.dispatcher.take(), self.supervisor.take()]
            .into_iter()
            .flatten()
        {
            let _ = handle.join();
        }
        if let Some(o) = self.hub.obs() {
            if let Some(journal) = self.hub.journal.lock().expect("journal lock").as_mut() {
                journal.meta(&o.metrics.snapshot_json())?;
            }
            o.export()?;
        }
        Ok(())
    }
}

/// Spawns (or respawns) the worker for `slot` and starts its stdout
/// pump thread.
fn spawn_worker(hub: &Arc<Hub>, slot: &mut WorkerSlot) -> io::Result<()> {
    let program = match &hub.opts.worker_program {
        Some(p) => p.clone(),
        None => std::env::current_exe()?,
    };
    let mut cmd = Command::new(program);
    cmd.arg("--serve");
    cmd.args(&hub.opts.worker_args);
    if let Some(seed) = hub.opts.jitter_seed {
        cmd.args([
            "--jitter-seed".to_string(),
            seed.wrapping_add(slot.index as u64).to_string(),
        ]);
    }
    cmd.stdin(Stdio::piped());
    cmd.stdout(Stdio::piped());
    cmd.stderr(Stdio::null());
    let mut child = cmd.spawn()?;
    let stdin = child.stdin.take().expect("worker stdin is piped");
    let stdout = child.stdout.take().expect("worker stdout is piped");
    slot.stdin = Some(stdin);
    slot.child = Some(child);
    slot.restart_at = None;
    hub.worker_alive(slot, true);
    let pump_hub = Arc::clone(hub);
    let index = slot.index;
    std::thread::spawn(move || worker_pump(&pump_hub, index, stdout));
    Ok(())
}

/// Reads one worker generation's stdout until EOF, resolving keyed rows.
/// Runs detached: when the worker dies the pipe closes and the thread
/// exits on its own.
fn worker_pump(hub: &Arc<Hub>, index: usize, stdout: std::process::ChildStdout) {
    for line in BufReader::new(stdout).lines() {
        let Ok(line) = line else { break };
        let Ok(row) = Json::parse(&line) else {
            continue;
        };
        let key = match row.get("key").and_then(Json::as_str) {
            Some(k) => k.to_string(),
            None => {
                // Keyless output: the worker's end-of-stream summary, or
                // its protocol row answering a chaos-corrupted line.
                if row.get("error_kind").and_then(Json::as_str) == Some("protocol") {
                    hub.count("macs_worker_protocol_rows_total");
                }
                continue;
            }
        };
        {
            let mut workers = hub.workers.lock().expect("workers lock");
            if let Some(slot) = workers.get_mut(index) {
                slot.inflight.remove(&key);
                slot.consecutive_failures = 0;
            }
        }
        resolve(hub, &key, row);
    }
}

/// Transitions a key to `Done` exactly once: journals the row, answers
/// every waiter, and drops late duplicates from redispatch races.
fn resolve(hub: &Arc<Hub>, key: &str, row: Json) {
    let mut cache = hub.cache.lock().expect("cache lock");
    match cache.get_mut(key) {
        Some(Entry::Done { .. }) => {
            // A redispatched copy already resolved this key (or a slow
            // worker answered after its lease was given away).
            drop(cache);
            hub.count("macs_duplicate_results_total");
        }
        Some(entry @ Entry::InFlight { .. }) => {
            let waiters = match std::mem::replace(
                entry,
                Entry::Done {
                    row: row.clone(),
                    from_journal: false,
                },
            ) {
                Entry::InFlight { waiters } => waiters,
                Entry::Done { .. } => unreachable!("matched InFlight above"),
            };
            // Journal inside the cache lock: the InFlight→Done edge
            // happens once, so the journal gets exactly one record per
            // key.
            if let Some(journal) = hub.journal.lock().expect("journal lock").as_mut() {
                let _ = journal.record(key, &row);
                if let Some(o) = hub.obs() {
                    o.metrics
                        .gauge("macs_journal_bytes", &[])
                        .set(journal.bytes_written().min(i64::MAX as u64) as i64);
                }
            }
            drop(cache);
            for waiter in waiters {
                let class = if waiter.creator {
                    RowClass::Fresh
                } else {
                    RowClass::Cached
                };
                let _ = waiter.tx.send(ClientRow {
                    row: row.clone(),
                    class,
                });
            }
        }
        None => {
            // A row for a key nobody asked for (e.g. a worker answering
            // chaos garbage with a keyed row — impossible today, but a
            // hostile worker binary could). Drop it.
            drop(cache);
            hub.count("macs_unsolicited_results_total");
        }
    }
}

/// Pulls jobs off the admission queue and writes them to workers,
/// injecting chaos on schedule.
fn dispatcher_loop(hub: &Arc<Hub>) {
    loop {
        let job = {
            let mut queue = hub.queue.lock().expect("queue lock");
            loop {
                if let Some(job) = queue.pop_front() {
                    hub.queue_depth(queue.len());
                    break Some(job);
                }
                if hub.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                let (q, _) = hub
                    .queue_cv
                    .wait_timeout(queue, Duration::from_millis(50))
                    .expect("queue lock");
                queue = q;
            }
        };
        let Some(job) = job else { return };
        if !dispatch(hub, job) {
            // No worker could take it; park it at the front and let the
            // supervisor bring a worker back.
            std::thread::sleep(Duration::from_millis(20));
        }
    }
}

/// Tries to hand `job` to a worker; on failure requeues it at the front
/// and returns false.
fn dispatch(hub: &Arc<Hub>, job: Job) -> bool {
    let n = hub.dispatched.fetch_add(1, Ordering::SeqCst) + 1;
    let chaos = hub.opts.chaos.filter(|c| !c.is_off());
    let mut workers = hub.workers.lock().expect("workers lock");
    let fleet = workers.len().max(1);
    // Key-hash affinity, falling back to the least-loaded live worker
    // with lease capacity.
    let affinity = (u64::from_str_radix(&job.key, 16).unwrap_or(0) % fleet as u64) as usize;
    let pick = |workers: &[WorkerSlot]| -> Option<usize> {
        let fits =
            |s: &WorkerSlot| s.is_up() && s.inflight.len() < hub.opts.worker_inflight_max.max(1);
        if workers.get(affinity).is_some_and(fits) {
            return Some(affinity);
        }
        workers
            .iter()
            .filter(|s| fits(s))
            .min_by_key(|s| s.inflight.len())
            .map(|s| s.index)
    };
    let Some(index) = pick(&workers) else {
        drop(workers);
        hub.dispatched.fetch_sub(1, Ordering::SeqCst);
        requeue(hub, vec![job]);
        return false;
    };
    let slot = &mut workers[index];
    let wrote = slot
        .stdin
        .as_mut()
        .map(|stdin| writeln!(stdin, "{}", job.line).and_then(|()| stdin.flush()));
    match wrote {
        Some(Ok(())) => {
            slot.inflight.insert(
                job.key.clone(),
                Lease {
                    line: job.line.clone(),
                    deadline: Instant::now() + hub.opts.lease,
                },
            );
        }
        _ => {
            // The pipe is gone: the worker died under us. Take it down
            // for the supervisor and requeue everything it owed.
            let mut lost = take_down(hub, slot, Instant::now());
            lost.push(job);
            drop(workers);
            hub.count("macs_dispatch_failures_total");
            requeue(hub, lost);
            return false;
        }
    }
    if let Some(chaos) = chaos {
        inject_chaos(hub, &mut workers[index], chaos, n);
    }
    true
}

/// Applies whichever chaos actions are due at dispatch `n` to the
/// worker that just received the dispatch.
fn inject_chaos(hub: &Arc<Hub>, slot: &mut WorkerSlot, chaos: ChaosSpec, n: u64) {
    let due = |every: u64| every > 0 && n.is_multiple_of(every);
    let mark = |action: &str| {
        if let Some(o) = hub.obs() {
            o.metrics
                .counter("macs_chaos_injected_total", &[("action", action)])
                .inc();
        }
    };
    if due(chaos.kill_every) {
        if let Some(child) = slot.child.as_mut() {
            let _ = child.kill();
            mark("kill");
        }
    } else if due(chaos.hang_every) {
        if let Some(child) = slot.child.as_ref() {
            // SIGSTOP via the kill(1) binary — std has no signal API.
            // The stopped worker stops answering, its leases expire, and
            // the supervisor SIGKILLs and restarts it.
            #[cfg(unix)]
            {
                let _ = Command::new("kill")
                    .args(["-STOP", &child.id().to_string()])
                    .status();
                mark("hang");
            }
            #[cfg(not(unix))]
            {
                let _ = child;
                mark("hang");
            }
        }
    } else if due(chaos.corrupt_every) {
        if let Some(stdin) = slot.stdin.as_mut() {
            let _ = writeln!(stdin, "\u{1}garbage from chaos\u{1}");
            let _ = stdin.flush();
            mark("corrupt");
        }
    }
}

/// Marks a slot dead and strips its leases for redispatch. Caller holds
/// the workers lock and requeues the returned jobs *after* releasing it.
fn take_down(hub: &Arc<Hub>, slot: &mut WorkerSlot, now: Instant) -> Vec<Job> {
    if let Some(mut child) = slot.child.take() {
        let _ = child.kill();
        let _ = child.wait();
    }
    slot.stdin = None;
    slot.consecutive_failures = slot.consecutive_failures.saturating_add(1);
    slot.restart_at = Some(now + restart_pause(hub, slot));
    hub.worker_alive(slot, false);
    slot.inflight
        .drain()
        .map(|(key, lease)| Job {
            key,
            line: lease.line,
        })
        .collect()
}

fn restart_pause(hub: &Arc<Hub>, slot: &WorkerSlot) -> Duration {
    let policy = RetryPolicy {
        jitter_seed: hub
            .opts
            .jitter_seed
            .map(|s| s.wrapping_add(0x5eed).wrapping_add(slot.index as u64)),
        ..hub.opts.restart_backoff
    };
    let mut rng = policy.jitter_rng();
    policy.jittered_backoff(slot.consecutive_failures, &mut rng)
}

/// Puts jobs back at the *front* of the queue (they were already
/// admitted once; they bypass the bound and run before new work).
fn requeue(hub: &Arc<Hub>, jobs: Vec<Job>) {
    if jobs.is_empty() {
        return;
    }
    let count = jobs.len() as u64;
    {
        let mut queue = hub.queue.lock().expect("queue lock");
        for job in jobs {
            queue.push_front(job);
        }
        hub.queue_depth(queue.len());
    }
    hub.queue_cv.notify_all();
    if let Some(o) = hub.obs() {
        o.metrics.counter("macs_redispatch_total", &[]).add(count);
    }
}

/// Watches the fleet: reaps crashed workers, expires leases on hung
/// ones, and restarts dead slots once their backoff elapses.
fn supervisor_loop(hub: &Arc<Hub>) {
    while !hub.shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(25));
        let now = Instant::now();
        let mut lost: Vec<Job> = Vec::new();
        {
            let mut workers = hub.workers.lock().expect("workers lock");
            for slot in workers.iter_mut() {
                if let Some(child) = slot.child.as_mut() {
                    let exited = matches!(child.try_wait(), Ok(Some(_)));
                    let expired = slot.inflight.values().any(|l| l.deadline < now);
                    if exited {
                        hub.count("macs_worker_deaths_total");
                        lost.append(&mut take_down(hub, slot, now));
                    } else if expired {
                        hub.count("macs_lease_expired_total");
                        lost.append(&mut take_down(hub, slot, now));
                    }
                } else if slot.restart_at.is_some_and(|at| at <= now)
                    && !hub.shutdown.load(Ordering::SeqCst)
                {
                    match spawn_worker(hub, slot) {
                        Ok(()) => hub.count("macs_worker_restarts_total"),
                        Err(_) => {
                            slot.consecutive_failures = slot.consecutive_failures.saturating_add(1);
                            slot.restart_at = Some(now + restart_pause(hub, slot));
                        }
                    }
                }
            }
        }
        requeue(hub, lost);
    }
}

fn overloaded_row(point: &SweepPoint, key: &str, queue_max: usize) -> Json {
    Json::obj()
        .field("schema", SWEEP_ROW_SCHEMA)
        .field("id", point.id.as_str())
        .field("key", key)
        .field("kernel", point.kernel)
        .field("status", "error")
        .field("error_kind", "overloaded")
        .field(
            "message",
            format!("coordinator admission queue is full ({queue_max} points); retry later"),
        )
}

fn stream_error_row(kind: &str, message: &str) -> Json {
    Json::obj()
        .field("schema", SWEEP_ROW_SCHEMA)
        .field("status", "error")
        .field("error_kind", kind)
        .field("message", message)
}

/// Registers one parsed point for a client: cache hit, join-in-flight,
/// enqueue, or overload refusal. Returns a row to emit immediately, or
/// `None` when the answer will arrive through `tx`.
fn register(hub: &Arc<Hub>, point: &SweepPoint, tx: &mpsc::Sender<ClientRow>) -> Option<ClientRow> {
    let key = point.key();
    let mut cache = hub.cache.lock().expect("cache lock");
    match cache.get_mut(&key) {
        Some(Entry::Done { row, from_journal }) => {
            let class = if *from_journal {
                RowClass::Resumed
            } else {
                RowClass::Cached
            };
            let row = row.clone();
            drop(cache);
            hub.count("macs_cache_hits_total");
            Some(ClientRow { row, class })
        }
        Some(Entry::InFlight { waiters }) => {
            waiters.push(Waiter {
                tx: tx.clone(),
                creator: false,
            });
            drop(cache);
            hub.count("macs_cache_hits_total");
            None
        }
        None => {
            // Admission control nests queue inside cache so the entry
            // and its job appear atomically.
            let mut queue = hub.queue.lock().expect("queue lock");
            if queue.len() >= hub.opts.queue_max {
                drop(queue);
                drop(cache);
                hub.count("macs_overloaded_total");
                return Some(ClientRow {
                    row: overloaded_row(point, &key, hub.opts.queue_max),
                    class: RowClass::Fresh, // tallied as overloaded via the row
                });
            }
            queue.push_back(Job {
                key: key.clone(),
                line: point.request_line(),
            });
            hub.queue_depth(queue.len());
            drop(queue);
            cache.insert(
                key,
                Entry::InFlight {
                    waiters: vec![Waiter {
                        tx: tx.clone(),
                        creator: true,
                    }],
                },
            );
            drop(cache);
            hub.queue_cv.notify_all();
            hub.count("macs_cache_misses_total");
            None
        }
    }
}

/// Classifies a fresh (worker-computed or overloaded) row for the
/// client tally.
fn tally_fresh(outcomes: &mut SweepOutcomes, row: &Json) {
    match row.get("status").and_then(Json::as_str) {
        Some("ok") => outcomes.ok += 1,
        _ => match row.get("error_kind").and_then(Json::as_str) {
            Some("timeout") => outcomes.timed_out += 1,
            Some("panic") => outcomes.panicked += 1,
            Some("overloaded") => outcomes.overloaded += 1,
            _ => outcomes.invalid += 1,
        },
    }
}

/// One client request stream against the hub (the body of
/// [`Coordinator::client`]).
fn client_stream(
    hub: &Arc<Hub>,
    input: impl BufRead + Send,
    mut output: impl Write,
) -> io::Result<SweepOutcomes> {
    let (tx, rx) = mpsc::channel::<ClientRow>();
    let mut outcomes = SweepOutcomes::new();
    let client_span = hub.obs().map(|o| o.tracer.span("coordinate-client"));
    std::thread::scope(|scope| -> io::Result<()> {
        let reader_hub = Arc::clone(hub);
        let reader_tx = tx;
        let max_line_bytes = hub.opts.max_line_bytes;
        scope.spawn(move || {
            let mut lines = BoundedLines::new(input, max_line_bytes);
            loop {
                match lines.next_event() {
                    Err(_) | Ok(LineEvent::Eof) => break,
                    Ok(LineEvent::Stalled) => {
                        reader_hub.count("macs_streams_stalled_total");
                        let _ = reader_tx.send(ClientRow {
                            row: stream_error_row(
                                "stalled",
                                "no complete request line within the read timeout; \
                                 closing the stream",
                            ),
                            class: RowClass::Fresh,
                        });
                        break;
                    }
                    Ok(LineEvent::Oversized { length }) => {
                        reader_hub.count("macs_lines_oversized_total");
                        let _ = reader_tx.send(ClientRow {
                            row: stream_error_row(
                                "oversized",
                                &format!(
                                    "request line of {length}+ bytes exceeds the \
                                     {max_line_bytes}-byte limit"
                                ),
                            ),
                            class: RowClass::Fresh,
                        });
                    }
                    Ok(LineEvent::Line(line)) => {
                        if line.trim().is_empty() {
                            continue;
                        }
                        match parse_point(&line) {
                            Err(e) => {
                                let _ = reader_tx.send(ClientRow {
                                    row: stream_error_row("protocol", &e.to_string()),
                                    class: RowClass::Fresh,
                                });
                            }
                            Ok(point) => {
                                if let Some(row) = register(&reader_hub, &point, &reader_tx) {
                                    let _ = reader_tx.send(row);
                                }
                            }
                        }
                    }
                }
            }
            // reader_tx drops here; rx closes once every registered
            // waiter has also resolved and dropped its clone.
        });
        for delivered in rx {
            match delivered.class {
                RowClass::Fresh => tally_fresh(&mut outcomes, &delivered.row),
                RowClass::Cached => outcomes.cached += 1,
                RowClass::Resumed => outcomes.resumed += 1,
            }
            writeln!(output, "{}", delivered.row)?;
            output.flush()?;
        }
        Ok(())
    })?;
    writeln!(output, "{}", outcomes.to_json())?;
    output.flush()?;
    if let Some(mut s) = client_span {
        s.arg("points", outcomes.points());
        s.end();
    }
    Ok(outcomes)
}

/// One-shot mode: start a fleet, serve a single request stream (stdin →
/// stdout in the CLI), and shut the fleet down.
///
/// # Errors
///
/// Propagates startup, output, and shutdown errors.
pub fn coordinate(
    input: impl BufRead + Send,
    output: impl Write,
    opts: &CoordinateOptions,
) -> io::Result<SweepOutcomes> {
    let coordinator = Coordinator::start(opts)?;
    let outcomes = coordinator.client(input, output);
    coordinator.shutdown()?;
    outcomes
}

/// Binds `addr` and coordinates TCP clients forever. Unlike
/// [`crate::serve::serve_tcp`], client streams run *concurrently* —
/// that is the point of the coordinator — and `GET /metrics` is served
/// off the same listener.
///
/// # Errors
///
/// Fails if the address cannot be bound, accepting fails, or the fleet
/// cannot start.
pub fn coordinate_tcp(addr: &str, opts: &CoordinateOptions) -> io::Result<()> {
    let coordinator = Arc::new(Coordinator::start(opts)?);
    let listener = TcpListener::bind(addr)?;
    eprintln!("macs-bench: coordinating on tcp {}", listener.local_addr()?);
    loop {
        let (stream, peer) = listener.accept()?;
        if let Some(t) = opts.read_timeout.filter(|t| !t.is_zero()) {
            let _ = stream.set_read_timeout(Some(t));
        }
        let coordinator = Arc::clone(&coordinator);
        std::thread::spawn(move || {
            let Ok(reader_half) = stream.try_clone() else {
                return;
            };
            match handle_client(&coordinator, stream, reader_half) {
                Ok(Some(outcomes)) => eprintln!("macs-bench: {peer}: {outcomes}"),
                Ok(None) => {}
                Err(e) => eprintln!("macs-bench: {peer}: client failed: {e}"),
            }
        });
    }
}

/// Binds a Unix socket and coordinates clients forever; see
/// [`coordinate_tcp`]. A stale socket file is removed first.
///
/// # Errors
///
/// Fails if the socket cannot be bound, accepting fails, or the fleet
/// cannot start.
#[cfg(unix)]
pub fn coordinate_unix(path: &std::path::Path, opts: &CoordinateOptions) -> io::Result<()> {
    use std::os::unix::net::UnixListener;
    if path.exists() {
        std::fs::remove_file(path)?;
    }
    let coordinator = Arc::new(Coordinator::start(opts)?);
    let listener = UnixListener::bind(path)?;
    eprintln!("macs-bench: coordinating on unix socket {}", path.display());
    loop {
        let (stream, _) = listener.accept()?;
        if let Some(t) = opts.read_timeout.filter(|t| !t.is_zero()) {
            let _ = stream.set_read_timeout(Some(t));
        }
        let coordinator = Arc::clone(&coordinator);
        std::thread::spawn(move || {
            let Ok(reader_half) = stream.try_clone() else {
                return;
            };
            match handle_client(&coordinator, stream, reader_half) {
                Ok(Some(outcomes)) => eprintln!("macs-bench: {outcomes}"),
                Ok(None) => {}
                Err(e) => eprintln!("macs-bench: client failed: {e}"),
            }
        });
    }
}

/// Sniffs one accepted connection: `GET`/`HEAD` becomes a metrics
/// scrape, anything else a coordinated sweep stream.
fn handle_client<S: Read + Write + Send>(
    coordinator: &Coordinator,
    stream: S,
    reader_half: S,
) -> io::Result<Option<SweepOutcomes>> {
    let mut reader = BufReader::new(reader_half);
    // Bounded, timeout-aware sniff: a peer that stalls or never sends a
    // newline still reaches the hardened client stream (and gets its
    // structured `stalled`/`protocol` row) instead of erroring out here.
    let sniffed = match sniff_http(&mut reader, coordinator.hub.opts.max_line_bytes)? {
        Sniff::Empty => return Ok(None),
        Sniff::Http(request_line) => {
            answer_http(&request_line, &mut reader, stream, coordinator.hub.obs())?;
            return Ok(None);
        }
        Sniff::Stream(seen) => seen,
    };
    let input = io::Cursor::new(sniffed).chain(reader);
    coordinator.client(input, stream).map(Some)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_spec_parses_any_subset() {
        assert_eq!(
            ChaosSpec::parse("kill=199,corrupt=57").unwrap(),
            ChaosSpec {
                kill_every: 199,
                hang_every: 0,
                corrupt_every: 57,
            }
        );
        assert_eq!(ChaosSpec::parse("").unwrap(), ChaosSpec::default());
        assert!(ChaosSpec::parse("explode=3").is_err());
        assert!(ChaosSpec::parse("kill").is_err());
        assert!(ChaosSpec::parse("kill=many").is_err());
        assert!(ChaosSpec::default().is_off());
    }

    #[test]
    fn overload_row_names_the_bound() {
        let point = parse_point("{\"id\":\"p\",\"kernel\":1}").unwrap();
        let row = overloaded_row(&point, &point.key(), 7);
        assert_eq!(
            row.get("error_kind").and_then(Json::as_str),
            Some("overloaded")
        );
        assert!(row
            .get("message")
            .and_then(Json::as_str)
            .unwrap()
            .contains("7 points"));
        let mut outcomes = SweepOutcomes::new();
        tally_fresh(&mut outcomes, &row);
        assert_eq!(outcomes.overloaded, 1);
    }
}
