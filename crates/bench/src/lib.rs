//! Benchmark harness for the MACS reproduction.
//!
//! The benches live in `benches/` (all `harness = false`, driven by the
//! in-tree [`timing`] module rather than an external framework, so they
//! build with no network access):
//!
//! * `tables` — one benchmark group per paper table/figure, each
//!   regenerating the artifact (the timed body is the full experiment);
//! * `ablations` — the machine-model design choices the paper calls out,
//!   toggled one at a time (bubbles, refresh, chaining, register-pair
//!   ports, contention, vector length, stride, bank count, schedule);
//! * `simulator` — raw simulator throughput.
//!
//! The `macs-bench` binary runs the perf-trajectory harness and writes
//! `BENCH_<date>.json` (per-kernel CPL, stall summaries, probe
//! overhead); see `src/bin/macs_bench.rs`.
//!
//! This library crate hosts the shared workloads and the timing harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coordinate;
pub mod lineio;
pub mod serve;
pub mod timing;

pub use coordinate::{coordinate, ChaosSpec, CoordinateOptions, Coordinator};
pub use lineio::{sniff_http, BoundedLines, LineEvent, Sniff};
pub use macs_core::{parallel_map, pool::THREADS_ENV, threads};
pub use serve::{
    eval_point, eval_point_observed, serve, Evaluated, PointClass, ServeObs, ServeOptions,
};

use std::error::Error;
use std::fmt;

use c240_isa::{Program, ProgramBuilder};

/// A chime count outside the 1..=7 the ablation workload supports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidChimes {
    /// The offending count.
    pub chimes: u32,
}

impl fmt::Display for InvalidChimes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "chime count {} outside the supported 1..=7", self.chimes)
    }
}

impl Error for InvalidChimes {}

/// Fallible form of [`memory_loop`] for chime counts arriving from
/// untrusted input.
///
/// # Errors
///
/// Returns [`InvalidChimes`] unless `1 <= chimes <= 7`.
pub fn try_memory_loop(
    chimes: u32,
    strips: i64,
    vl: u32,
    stride: i64,
) -> Result<Program, InvalidChimes> {
    if !(1..=7).contains(&chimes) {
        return Err(InvalidChimes { chimes });
    }
    let mut b = ProgramBuilder::new();
    b.set_vl_imm(vl);
    b.mov_int(strips, "s0");
    b.label("L");
    for c in 0..chimes {
        if stride == 1 {
            b.vload("a1", i64::from(c) * 8192, &format!("v{c}"));
        } else {
            b.vload_strided("a1", i64::from(c) * 8192, stride, &format!("v{c}"));
        }
    }
    b.int_op_imm("sub", 1, "s0");
    b.cmp_imm("lt", 0, "s0");
    b.branch_true("L");
    b.halt();
    Ok(b.build().expect("memory loop is valid"))
}

/// Builds a strip loop of `chimes` one-load chimes over `strips` strips
/// at the given vector length — the standard ablation workload.
///
/// # Panics
///
/// Panics if `chimes == 0` or `chimes > 7`;
/// [`try_memory_loop`] is the fallible form.
pub fn memory_loop(chimes: u32, strips: i64, vl: u32, stride: i64) -> Program {
    try_memory_loop(chimes, strips, vl, stride).expect("1..=7 load chimes supported")
}

/// A chained load/multiply/add/store loop — the standard compute-and-
/// memory ablation workload.
pub fn triad_loop(strips: i64, vl: u32) -> Program {
    let mut b = ProgramBuilder::new();
    b.set_vl_imm(vl);
    b.mov_int(strips, "s0");
    b.label("L");
    b.vload("a1", 0, "v0");
    b.vmul("v0", "s1", "v1");
    b.vload("a2", 0, "v2");
    b.vadd("v1", "v2", "v3");
    b.vstore("v3", "a3", 0);
    b.int_op_imm("add", 1024, "a1");
    b.int_op_imm("add", 1024, "a2");
    b.int_op_imm("add", 1024, "a3");
    b.int_op_imm("sub", 1, "s0");
    b.cmp_imm("lt", 0, "s0");
    b.branch_true("L");
    b.halt();
    b.build().expect("triad loop is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use c240_sim::{Cpu, SimConfig};

    #[test]
    fn workloads_run() {
        let mut cpu = Cpu::new(SimConfig::c240());
        cpu.set_areg(1, 0);
        cpu.set_areg(2, 160000);
        cpu.set_areg(3, 320000);
        cpu.set_sreg_fp(1, 2.0);
        assert!(cpu.run(&memory_loop(3, 10, 128, 1)).unwrap().cycles > 0.0);
        assert!(cpu.run(&triad_loop(10, 128)).unwrap().cycles > 0.0);
    }

    #[test]
    #[should_panic(expected = "load chimes")]
    fn zero_chimes_rejected() {
        let _ = memory_loop(0, 1, 128, 1);
    }

    #[test]
    fn try_memory_loop_rejects_without_panicking() {
        assert_eq!(
            try_memory_loop(0, 1, 128, 1),
            Err(InvalidChimes { chimes: 0 })
        );
        assert_eq!(
            try_memory_loop(8, 1, 128, 1),
            Err(InvalidChimes { chimes: 8 })
        );
        assert!(InvalidChimes { chimes: 8 }.to_string().contains('8'));
        assert!(try_memory_loop(3, 1, 128, 1).is_ok());
    }
}
