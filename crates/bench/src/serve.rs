//! The fault-tolerant sweep server behind `macs-bench --serve`.
//!
//! The server reads newline-delimited sweep requests (the wire protocol
//! of [`macs_core::sweep`]) from stdin, a Unix socket, or a TCP socket,
//! evaluates each point on a supervised worker pool, and streams result
//! rows (schema [`SWEEP_ROW_SCHEMA`]) back as NDJSON, ending with one
//! [`SweepOutcomes`] summary row. The contract is *no dead server*: a
//! malformed line, an invalid configuration, a panicking point, or a
//! point that blows its deadline each become a structured error row while
//! every other point keeps flowing.
//!
//! Supervision is [`macs_core::supervise`]: per-point deadline (the
//! request's `deadline_ms`, falling back to the server-wide
//! `--deadline-ms`), capped exponential backoff between retries, and a
//! poison-point blacklist — a point that exhausts its retry budget is
//! journaled as failed, so a `--resume` run does not burn the budget on
//! it again.
//!
//! Checkpointing is the append-only [`Journal`]: every terminal keyed
//! row (ok and failed alike) is flushed line-by-line as it completes, so
//! a `kill -9` loses at most the in-flight points; `--resume <journal>`
//! re-emits completed rows verbatim and computes only the rest. Healthy
//! rows carry only simulated quantities (no wall-clock), which is what
//! makes fresh and resumed runs bit-identical.

use std::collections::{BTreeMap, HashSet};
use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use c240_obs::json::Json;
use c240_obs::SweepOutcomes;
use c240_sim::{Cpu, Machine, SimConfig};
use macs_core::supervise::{supervise, FailureKind, RetryPolicy};
use macs_core::sweep::{parse_point, Fault, Journal, ProtocolError, SweepPoint, SWEEP_ROW_SCHEMA};
use macs_core::{measure_probed, Measurement};

/// How the server evaluates and checkpoints a sweep.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// The base machine every point's overrides apply to.
    pub base: SimConfig,
    /// Worker threads (0 = [`macs_core::threads`]).
    pub workers: usize,
    /// Server-wide per-point deadline; a request's `deadline_ms`
    /// overrides it.
    pub deadline: Option<Duration>,
    /// Retry budget and backoff shape.
    pub retry: RetryPolicy,
    /// Append completed points to this checkpoint journal.
    pub journal: Option<PathBuf>,
    /// Skip points already completed in this journal, re-emitting their
    /// rows verbatim.
    pub resume: Option<PathBuf>,
}

impl Default for ServeOptions {
    /// The paper's C-240, auto worker count, no deadline, default
    /// retries, no checkpointing.
    fn default() -> Self {
        ServeOptions {
            base: SimConfig::c240(),
            workers: 0,
            deadline: None,
            retry: RetryPolicy::default(),
            journal: None,
            resume: None,
        }
    }
}

/// Terminal classification of one evaluated point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PointClass {
    /// Computed successfully.
    Ok,
    /// Rejected (unknown kernel, invalid config/passes) or failed inside
    /// the simulator — deterministic, not retried.
    Invalid,
    /// Every attempt exceeded its deadline.
    TimedOut,
    /// Every attempt panicked.
    Panicked,
}

/// One evaluated point: the output row plus its accounting.
#[derive(Debug, Clone)]
pub struct Evaluated {
    /// The NDJSON row to emit (and journal).
    pub row: Json,
    /// Terminal class, for the summary tally.
    pub class: PointClass,
    /// Whether more than one attempt was needed.
    pub retried: bool,
}

/// The simulated quantities of a healthy row — deliberately free of
/// wall-clock so fresh and resumed runs are bit-identical.
struct Measured {
    cycles: f64,
    instructions: u64,
    iterations: u64,
    cpl: f64,
    cpf: f64,
    mflops: f64,
    memory_wait_cpl: f64,
}

impl Measured {
    fn of(m: &Measurement) -> Measured {
        Measured {
            cycles: m.stats.cycles,
            instructions: m.stats.instructions.total(),
            iterations: m.iterations,
            cpl: m.cpl(),
            cpf: m.cpf(),
            mflops: m.mflops(),
            memory_wait_cpl: m.stats.memory_wait_cycles / m.iterations.max(1) as f64,
        }
    }
}

fn base_row(point: &SweepPoint, key: &str) -> Json {
    Json::obj()
        .field("schema", SWEEP_ROW_SCHEMA)
        .field("id", point.id.as_str())
        .field("key", key)
        .field("kernel", point.kernel)
}

fn error_row(
    point: &SweepPoint,
    key: &str,
    kind: &str,
    message: &str,
    attempts: u32,
    backoff_ms: &[u64],
    poisoned: bool,
) -> Json {
    base_row(point, key)
        .field("status", "error")
        .field("error_kind", kind)
        .field("message", message)
        .field("attempts", attempts)
        .field(
            "backoff_ms",
            Json::Arr(backoff_ms.iter().map(|&ms| Json::from(ms)).collect()),
        )
        .field("poisoned", poisoned)
}

/// Evaluates one parsed point against the base machine, under full
/// supervision. This is the *same* code path the server's workers run —
/// tests compare server output rows against direct `eval_point` calls to
/// prove the transport adds nothing.
pub fn eval_point(
    point: &SweepPoint,
    base: &SimConfig,
    deadline: Option<Duration>,
    retry: &RetryPolicy,
) -> Evaluated {
    let key = point.key();
    let reject = |kind: &str, message: &str| Evaluated {
        row: error_row(point, &key, kind, message, 0, &[], false),
        class: PointClass::Invalid,
        retried: false,
    };
    let Some(kernel) = lfk_suite::by_id(point.kernel) else {
        return reject(
            "unknown_kernel",
            &format!("LFK{} is not part of the case study", point.kernel),
        );
    };
    let cfg = point.config(base);
    if let Err(e) = cfg.validate() {
        return reject("invalid_config", &e.to_string());
    }
    let passes = point.passes.unwrap_or_else(|| kernel.passes());
    let program = match kernel.try_program_with_passes(passes) {
        Ok(p) => p,
        Err(e) => return reject("invalid_passes", &e.to_string()),
    };
    let iterations = kernel.iterations_with_passes(passes);
    let flops = kernel.flops_total();
    let fault = point.inject;
    let cpus = cfg.cpus as usize;
    let run = move || -> Result<Measured, String> {
        match fault {
            Some(Fault::Panic) => panic!("injected fault"),
            Some(Fault::SleepMs(ms)) => std::thread::sleep(Duration::from_millis(ms)),
            None => {}
        }
        if cpus <= 1 {
            // Mirrors `analyze_kernel`'s measured run exactly: fresh CPU,
            // kernel setup, probed measurement.
            let mut cpu = Cpu::new(cfg.clone());
            kernel.setup(&mut cpu);
            let (m, _probe) =
                measure_probed(&mut cpu, &program, iterations, flops).map_err(|e| e.to_string())?;
            Ok(Measured::of(&m))
        } else {
            // Lockstep co-simulation: the kernel on every CPU, reporting
            // CPU 0 (all CPUs are symmetric under lockstep).
            let mut machine = Machine::new(cfg.clone());
            let programs: Vec<_> = (0..cpus)
                .map(|i| {
                    kernel.setup(machine.cpu_mut(i));
                    program.clone()
                })
                .collect();
            let mut stats = machine.run(&programs).map_err(|e| e.to_string())?;
            let m = Measurement {
                stats: stats.swap_remove(0),
                iterations,
                flops_per_iteration: flops,
            };
            Ok(Measured::of(&m))
        }
    };
    let s = supervise(run, deadline, retry);
    let retried = s.retried();
    match s.result {
        Ok(Ok(m)) => Evaluated {
            row: base_row(point, &key)
                .field("status", "ok")
                .field("attempts", s.attempts)
                .field("cpus", cpus as u64)
                .field("passes", passes as f64)
                .field("cycles", m.cycles)
                .field("instructions", m.instructions)
                .field("iterations", m.iterations)
                .field("cpl", m.cpl)
                .field("cpf", m.cpf)
                .field("mflops", m.mflops)
                .field("memory_wait_cpl", m.memory_wait_cpl),
            class: PointClass::Ok,
            retried,
        },
        Ok(Err(sim_message)) => Evaluated {
            row: error_row(
                point,
                &key,
                "sim",
                &sim_message,
                s.attempts,
                &s.backoff_ms,
                false,
            ),
            class: PointClass::Invalid,
            retried,
        },
        Err(failure) => Evaluated {
            row: error_row(
                point,
                &key,
                failure.kind(),
                &failure.message(),
                s.attempts,
                &s.backoff_ms,
                true,
            ),
            class: match failure {
                FailureKind::Panic { .. } => PointClass::Panicked,
                FailureKind::Deadline { .. } => PointClass::TimedOut,
            },
            retried,
        },
    }
}

/// What flows from reader/workers to the single writer.
struct Emit {
    /// The journal key; `None` for rows without a stable identity
    /// (protocol errors).
    key: Option<String>,
    row: Json,
    kind: EmitKind,
    retried: bool,
}

enum EmitKind {
    Point(PointClass),
    Resumed,
    Duplicate,
    Protocol,
}

impl Emit {
    /// Terminal keyed rows — ok and poisoned/rejected alike — are
    /// checkpointed; resumed rows are already in the journal and
    /// protocol errors and duplicates have no computation to record.
    fn journaled(&self) -> bool {
        self.key.is_some() && matches!(self.kind, EmitKind::Point(_))
    }

    fn tally(&self, outcomes: &mut SweepOutcomes) {
        match self.kind {
            EmitKind::Point(PointClass::Ok) => outcomes.ok += 1,
            EmitKind::Point(PointClass::Invalid) | EmitKind::Protocol => outcomes.invalid += 1,
            EmitKind::Point(PointClass::TimedOut) => outcomes.timed_out += 1,
            EmitKind::Point(PointClass::Panicked) => outcomes.panicked += 1,
            EmitKind::Resumed => outcomes.resumed += 1,
            EmitKind::Duplicate => outcomes.duplicate += 1,
        }
        if self.retried {
            outcomes.retried += 1;
        }
    }
}

fn protocol_row(error: &ProtocolError, line: &str) -> Json {
    let mut shown: String = line.chars().take(200).collect();
    if shown.len() < line.len() {
        shown.push('…');
    }
    Json::obj()
        .field("schema", SWEEP_ROW_SCHEMA)
        .field("status", "error")
        .field("error_kind", "protocol")
        .field("message", error.to_string())
        .field("line", shown)
}

fn duplicate_row(point: &SweepPoint, key: &str) -> Json {
    error_row(
        point,
        key,
        "duplicate",
        &format!("point key {key} was already submitted in this run"),
        0,
        &[],
        false,
    )
}

/// Serves one request stream to completion: evaluates every line,
/// streams rows to `output` as they finish (completion order, not input
/// order — rows carry their `id` and `key`), then emits the summary row
/// and returns the tally.
///
/// # Errors
///
/// Fails on journal I/O errors and on `output` write errors. Input
/// errors (including a mid-stream EOF) end the stream cleanly — every
/// fully received line is still answered and the summary still emitted.
pub fn serve(
    input: impl BufRead + Send,
    mut output: impl Write,
    opts: &ServeOptions,
) -> io::Result<SweepOutcomes> {
    let resumed: BTreeMap<String, Json> = match &opts.resume {
        Some(path) => Journal::load(path)?,
        None => BTreeMap::new(),
    };
    let mut journal = match &opts.journal {
        Some(path) => Some(Journal::open_append(path)?),
        None => None,
    };
    let workers = if opts.workers == 0 {
        macs_core::threads()
    } else {
        opts.workers
    };
    let (job_tx, job_rx) = mpsc::channel::<SweepPoint>();
    let job_rx = Arc::new(Mutex::new(job_rx));
    let (out_tx, out_rx) = mpsc::channel::<Emit>();
    let mut outcomes = SweepOutcomes::new();
    let resumed = &resumed;
    std::thread::scope(|scope| -> io::Result<()> {
        let reader_tx = out_tx.clone();
        scope.spawn(move || {
            // Send failures below mean the writer already bailed on an
            // output error; keep draining input so the scope can join.
            let mut seen: HashSet<String> = HashSet::new();
            for line in input.lines() {
                let Ok(line) = line else { break };
                if line.trim().is_empty() {
                    continue;
                }
                match parse_point(&line) {
                    Err(e) => {
                        let _ = reader_tx.send(Emit {
                            key: None,
                            row: protocol_row(&e, &line),
                            kind: EmitKind::Protocol,
                            retried: false,
                        });
                    }
                    Ok(point) => {
                        let key = point.key();
                        if !seen.insert(key.clone()) {
                            let _ = reader_tx.send(Emit {
                                key: Some(key.clone()),
                                row: duplicate_row(&point, &key),
                                kind: EmitKind::Duplicate,
                                retried: false,
                            });
                        } else if let Some(row) = resumed.get(&key) {
                            let _ = reader_tx.send(Emit {
                                key: Some(key),
                                row: row.clone(),
                                kind: EmitKind::Resumed,
                                retried: false,
                            });
                        } else {
                            let _ = job_tx.send(point);
                        }
                    }
                }
            }
        });
        for _ in 0..workers {
            let job_rx = Arc::clone(&job_rx);
            let tx = out_tx.clone();
            let base = opts.base.clone();
            let retry = opts.retry;
            let deadline = opts.deadline;
            scope.spawn(move || loop {
                let job = job_rx.lock().expect("job queue lock").recv();
                let Ok(point) = job else { break };
                let point_deadline = point.deadline_ms.map(Duration::from_millis).or(deadline);
                let evaluated = eval_point(&point, &base, point_deadline, &retry);
                let _ = tx.send(Emit {
                    key: Some(point.key()),
                    row: evaluated.row,
                    kind: EmitKind::Point(evaluated.class),
                    retried: evaluated.retried,
                });
            });
        }
        drop(out_tx);
        for emit in out_rx {
            writeln!(output, "{}", emit.row)?;
            output.flush()?;
            if emit.journaled() {
                if let (Some(journal), Some(key)) = (journal.as_mut(), emit.key.as_deref()) {
                    journal.record(key, &emit.row)?;
                }
            }
            emit.tally(&mut outcomes);
        }
        Ok(())
    })?;
    writeln!(output, "{}", outcomes.to_json())?;
    output.flush()?;
    Ok(outcomes)
}

/// Binds `addr` and serves TCP connections one at a time, forever (the
/// process is stopped externally). Each connection is an independent
/// request stream; with `--journal`/`--resume` pointed at the same file,
/// later connections resume from earlier ones' checkpoints.
///
/// # Errors
///
/// Fails if the address cannot be bound or accepting fails.
pub fn serve_tcp(addr: &str, opts: &ServeOptions) -> io::Result<()> {
    let listener = TcpListener::bind(addr)?;
    eprintln!("macs-bench: serving on tcp {}", listener.local_addr()?);
    loop {
        let (stream, peer) = listener.accept()?;
        let reader = BufReader::new(stream.try_clone()?);
        match serve(reader, &stream, opts) {
            Ok(outcomes) => eprintln!("macs-bench: {peer}: {outcomes}"),
            Err(e) => eprintln!("macs-bench: {peer}: connection failed: {e}"),
        }
    }
}

/// Binds a Unix socket at `path` and serves connections one at a time,
/// forever; see [`serve_tcp`]. A stale socket file at `path` is removed
/// first.
///
/// # Errors
///
/// Fails if the socket cannot be bound or accepting fails.
#[cfg(unix)]
pub fn serve_unix(path: &std::path::Path, opts: &ServeOptions) -> io::Result<()> {
    use std::os::unix::net::UnixListener;
    if path.exists() {
        std::fs::remove_file(path)?;
    }
    let listener = UnixListener::bind(path)?;
    eprintln!("macs-bench: serving on unix socket {}", path.display());
    loop {
        let (stream, _) = listener.accept()?;
        let reader = BufReader::new(stream.try_clone()?);
        match serve(reader, &stream, opts) {
            Ok(outcomes) => eprintln!("macs-bench: {outcomes}"),
            Err(e) => eprintln!("macs-bench: connection failed: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn serve_lines(lines: &str, opts: &ServeOptions) -> (Vec<Json>, SweepOutcomes) {
        let mut out = Vec::new();
        let outcomes = serve(lines.as_bytes(), &mut out, opts).expect("serve succeeds");
        let rows = String::from_utf8(out)
            .unwrap()
            .lines()
            .map(|l| Json::parse(l).expect("every output line is JSON"))
            .collect();
        (rows, outcomes)
    }

    fn fast_opts() -> ServeOptions {
        ServeOptions {
            workers: 2,
            retry: RetryPolicy {
                max_attempts: 2,
                backoff_base: Duration::from_millis(1),
                backoff_cap: Duration::from_millis(2),
            },
            ..ServeOptions::default()
        }
    }

    #[test]
    fn empty_input_yields_just_the_summary() {
        let (rows, outcomes) = serve_lines("", &fast_opts());
        assert_eq!(outcomes.points(), 0);
        assert_eq!(rows.len(), 1);
        assert_eq!(
            rows[0].get("schema").and_then(Json::as_str),
            Some(c240_obs::SWEEP_SUMMARY_SCHEMA)
        );
    }

    #[test]
    fn a_mixed_stream_degrades_gracefully() {
        let input = "\
            {\"id\":\"good\",\"kernel\":12}\n\
            this is not json\n\
            {\"id\":\"badcfg\",\"kernel\":1,\"config\":{\"cpus\":0}}\n\
            {\"id\":\"nokernel\",\"kernel\":5}\n\
            {\"id\":\"boom\",\"kernel\":1,\"inject\":\"panic\"}\n\
            {\"id\":\"dup\",\"kernel\":12}\n";
        let (rows, outcomes) = serve_lines(input, &fast_opts());
        assert_eq!(outcomes.ok, 1);
        assert_eq!(outcomes.invalid, 3, "{outcomes}");
        assert_eq!(outcomes.panicked, 1);
        assert_eq!(outcomes.duplicate, 1);
        assert_eq!(rows.len(), 7, "six rows plus the summary");
        let by_id = |id: &str| {
            rows.iter()
                .find(|r| r.get("id").and_then(Json::as_str) == Some(id))
                .unwrap_or_else(|| panic!("row {id} missing"))
        };
        assert_eq!(
            by_id("good").get("status").and_then(Json::as_str),
            Some("ok")
        );
        assert_eq!(
            by_id("badcfg").get("error_kind").and_then(Json::as_str),
            Some("invalid_config")
        );
        assert_eq!(
            by_id("nokernel").get("error_kind").and_then(Json::as_str),
            Some("unknown_kernel")
        );
        let boom = by_id("boom");
        assert_eq!(boom.get("error_kind").and_then(Json::as_str), Some("panic"));
        assert_eq!(boom.get("attempts").and_then(Json::as_f64), Some(2.0));
        assert_eq!(boom.get("poisoned"), Some(&Json::Bool(true)));
    }

    #[test]
    fn server_rows_match_direct_eval() {
        let opts = fast_opts();
        let line = "{\"id\":\"k12\",\"kernel\":12,\"config\":{\"chaining\":false}}";
        let (rows, _) = serve_lines(&format!("{line}\n"), &opts);
        let direct = eval_point(&parse_point(line).unwrap(), &opts.base, None, &opts.retry);
        assert_eq!(rows[0], direct.row, "transport must add nothing");
    }

    #[test]
    fn journal_and_resume_round_trip() {
        let dir = std::env::temp_dir().join(format!("macs-serve-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let journal = dir.join("j.ndjson");
        let input = "{\"id\":\"a\",\"kernel\":12}\n{\"id\":\"b\",\"kernel\":3}\n";
        let mut opts = fast_opts();
        opts.journal = Some(journal.clone());
        let (fresh_rows, fresh) = serve_lines(input, &opts);
        assert_eq!(fresh.ok, 2);
        opts.resume = Some(journal.clone());
        let (resumed_rows, resumed) = serve_lines(input, &opts);
        assert_eq!(resumed.resumed, 2);
        assert_eq!(resumed.ok, 0);
        // Resumed rows are the journaled rows verbatim — bit-identical.
        for row in fresh_rows.iter().filter(|r| r.get("key").is_some()) {
            assert!(resumed_rows.contains(row), "row not re-emitted verbatim");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn deadline_produces_a_timeout_row_and_the_server_survives() {
        let input =
            "{\"id\":\"slow\",\"kernel\":1,\"inject\":{\"sleep_ms\":2000},\"deadline_ms\":30}\n\
                     {\"id\":\"fast\",\"kernel\":12}\n";
        let mut opts = fast_opts();
        opts.retry = RetryPolicy::once();
        let (rows, outcomes) = serve_lines(input, &opts);
        assert_eq!(outcomes.timed_out, 1);
        assert_eq!(outcomes.ok, 1);
        let slow = rows
            .iter()
            .find(|r| r.get("id").and_then(Json::as_str) == Some("slow"))
            .unwrap();
        assert_eq!(
            slow.get("error_kind").and_then(Json::as_str),
            Some("timeout")
        );
    }
}
