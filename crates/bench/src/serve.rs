//! The fault-tolerant sweep server behind `macs-bench --serve`.
//!
//! The server reads newline-delimited sweep requests (the wire protocol
//! of [`macs_core::sweep`]) from stdin, a Unix socket, or a TCP socket,
//! evaluates each point on a supervised worker pool, and streams result
//! rows (schema [`SWEEP_ROW_SCHEMA`]) back as NDJSON, ending with one
//! [`SweepOutcomes`] summary row. The contract is *no dead server*: a
//! malformed line, an invalid configuration, a panicking point, or a
//! point that blows its deadline each become a structured error row while
//! every other point keeps flowing.
//!
//! Supervision is [`macs_core::supervise`]: per-point deadline (the
//! request's `deadline_ms`, falling back to the server-wide
//! `--deadline-ms`), capped exponential backoff between retries, and a
//! poison-point blacklist — a point that exhausts its retry budget is
//! journaled as failed, so a `--resume` run does not burn the budget on
//! it again.
//!
//! Checkpointing is the append-only [`Journal`]: every terminal keyed
//! row (ok and failed alike) is flushed line-by-line as it completes, so
//! a `kill -9` loses at most the in-flight points; `--resume <journal>`
//! re-emits completed rows verbatim and computes only the rest. Healthy
//! rows carry only simulated quantities (no wall-clock), which is what
//! makes fresh and resumed runs bit-identical.
//!
//! Observability is opt-in via [`ServeObs`]: hierarchical wall-clock
//! spans (sweep → parse/point → validate/schedule/simulate → attempt),
//! a metrics registry scraped as Prometheus text on `GET /metrics` over
//! the same TCP/Unix listener and snapshotted into the journal as
//! [`c240_obs::METRICS_SCHEMA`] rows, and a per-row `trace` provenance
//! object. All wall-clock lives in the `trace` object and the span
//! buffers — the simulated quantities on a row are untouched, so the
//! resume bit-identity above is preserved row-for-row (a resumed row
//! re-emits the journaled `trace` verbatim).

use std::collections::{BTreeMap, HashSet};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::lineio::{sniff_http, BoundedLines, LineEvent, Sniff};
use c240_isa::{MachineDescription, PRESET_NAMES};
use c240_obs::json::Json;
use c240_obs::span::{spans_to_chrome, spans_to_ndjson};
use c240_obs::{Metrics, Span, StallCause, SweepOutcomes, Tracer};
use c240_sim::{Cpu, FfStats, Machine, SimConfig, StallRollup};
use macs_core::supervise::{
    supervise, supervise_observed, FailureKind, RetryPolicy, SuperviseEvent,
};
use macs_core::sweep::{parse_point, Fault, Journal, ProtocolError, SweepPoint, SWEEP_ROW_SCHEMA};
use macs_core::{
    compiled_intensity, measure_probed, measured_class, operational_intensity, ChimeConfig,
    KernelBounds, MachineCeilings, Measurement, RooflineVerdict, ROOFLINE_SCHEMA,
};

/// Ticks per simulated cycle: stall-cycle metrics are exported as
/// integer *ticks* (1/20 cycle) because the simulator quantizes all
/// timing to this grid, so the conversion is exact.
const TICKS_PER_CYCLE: f64 = 20.0;

fn ticks(cycles: f64) -> u64 {
    (cycles * TICKS_PER_CYCLE).round().max(0.0) as u64
}

/// The observability plane threaded through a sweep: a span tracer, a
/// metrics registry, and export knobs. Cloning shares the underlying
/// buffers/registry, so the caller keeps a handle to scrape or drain.
#[derive(Debug, Clone, Default)]
pub struct ServeObs {
    /// Records the sweep → point → attempt span hierarchy.
    pub tracer: Tracer,
    /// Counters, gauges, and latency histograms; rendered on
    /// `GET /metrics` and by [`Metrics::render_prometheus`].
    pub metrics: Metrics,
    /// Journal a [`c240_obs::METRICS_SCHEMA`] snapshot every this many
    /// journaled rows (0 = only one snapshot, at end of stream).
    pub snapshot_every: usize,
    /// Write a Chrome `trace_event` JSON file (loads in Perfetto /
    /// `chrome://tracing`) here at end of stream. Each stream overwrites
    /// the file with its own spans.
    pub trace_out: Option<PathBuf>,
    /// Write the same spans as NDJSON ([`c240_obs::SPAN_SCHEMA`]) here
    /// at end of stream.
    pub spans_out: Option<PathBuf>,
}

impl ServeObs {
    /// Drains the tracer and writes the configured trace exports.
    pub(crate) fn export(&self) -> io::Result<()> {
        if self.trace_out.is_none() && self.spans_out.is_none() {
            return Ok(());
        }
        let records = self.tracer.drain();
        if let Some(path) = &self.spans_out {
            std::fs::write(path, spans_to_ndjson(&records))?;
        }
        if let Some(path) = &self.trace_out {
            std::fs::write(path, spans_to_chrome(&records).to_string())?;
        }
        Ok(())
    }
}

/// How the server evaluates and checkpoints a sweep.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// The base machine every point's overrides apply to.
    pub base: SimConfig,
    /// Worker threads (0 = [`macs_core::threads`]).
    pub workers: usize,
    /// Server-wide per-point deadline; a request's `deadline_ms`
    /// overrides it.
    pub deadline: Option<Duration>,
    /// Retry budget and backoff shape.
    pub retry: RetryPolicy,
    /// Append completed points to this checkpoint journal.
    pub journal: Option<PathBuf>,
    /// Skip points already completed in this journal, re-emitting their
    /// rows verbatim.
    pub resume: Option<PathBuf>,
    /// Observability plane (spans + metrics + per-row `trace`
    /// provenance). `None` (the default) compiles down to the pre-obs
    /// hot path: no spans, no metrics, rows without a `trace` field.
    pub obs: Option<ServeObs>,
    /// Stamp every healthy row with a `roofline` object (DESIGN.md §16):
    /// both operational intensities, the resolved machine's ceilings,
    /// the analytic `bound_class`, and the stall-taxonomy cross-check
    /// verdict. Off by default, keeping unflagged rows bit-identical to
    /// the pre-roofline output. Roofline fields are pure functions of
    /// simulated quantities, so journaled rows resume bit-identically.
    pub roofline: bool,
    /// Hard per-line byte ceiling on request streams. A longer line is
    /// answered with a structured `oversized` protocol-error row and
    /// drained to its newline instead of growing an unbounded buffer.
    pub max_line_bytes: usize,
    /// Socket read timeout for TCP/Unix connections. A peer that stalls
    /// mid-line past this long (slowloris) gets a structured `stalled`
    /// protocol-error row plus the summary, then the stream closes —
    /// instead of pinning a connection thread forever. `None` disables
    /// the timeout; stdin streams are never timed out.
    pub read_timeout: Option<Duration>,
}

impl Default for ServeOptions {
    /// The paper's C-240, auto worker count, no deadline, default
    /// retries, no checkpointing.
    fn default() -> Self {
        ServeOptions {
            base: SimConfig::c240(),
            workers: 0,
            deadline: None,
            retry: RetryPolicy::default(),
            journal: None,
            resume: None,
            obs: None,
            roofline: false,
            max_line_bytes: 64 * 1024,
            read_timeout: Some(Duration::from_secs(30)),
        }
    }
}

/// Terminal classification of one evaluated point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PointClass {
    /// Computed successfully.
    Ok,
    /// Rejected (unknown kernel, invalid config/passes) or failed inside
    /// the simulator — deterministic, not retried.
    Invalid,
    /// Every attempt exceeded its deadline.
    TimedOut,
    /// Every attempt panicked.
    Panicked,
}

/// One evaluated point: the output row plus its accounting.
#[derive(Debug, Clone)]
pub struct Evaluated {
    /// The NDJSON row to emit (and journal).
    pub row: Json,
    /// Terminal class, for the summary tally.
    pub class: PointClass,
    /// Whether more than one attempt was needed.
    pub retried: bool,
}

/// The simulated quantities of a healthy row — deliberately free of
/// wall-clock so fresh and resumed runs are bit-identical.
struct Measured {
    cycles: f64,
    instructions: u64,
    iterations: u64,
    cpl: f64,
    cpf: f64,
    mflops: f64,
    memory_wait_cpl: f64,
}

impl Measured {
    fn of(m: &Measurement) -> Measured {
        Measured {
            cycles: m.stats.cycles,
            instructions: m.stats.instructions.total(),
            iterations: m.iterations,
            cpl: m.cpl(),
            cpf: m.cpf(),
            mflops: m.mflops(),
            memory_wait_cpl: m.stats.memory_wait_cycles / m.iterations.max(1) as f64,
        }
    }
}

fn base_row(point: &SweepPoint, key: &str) -> Json {
    Json::obj()
        .field("schema", SWEEP_ROW_SCHEMA)
        .field("id", point.id.as_str())
        .field("key", key)
        .field("kernel", point.kernel)
}

fn error_row(
    point: &SweepPoint,
    key: &str,
    kind: &str,
    message: &str,
    attempts: u32,
    backoff_ms: &[u64],
    poisoned: bool,
) -> Json {
    base_row(point, key)
        .field("status", "error")
        .field("error_kind", kind)
        .field("message", message)
        .field("attempts", attempts)
        .field(
            "backoff_ms",
            Json::Arr(backoff_ms.iter().map(|&ms| Json::from(ms)).collect()),
        )
        .field("poisoned", poisoned)
}

/// Per-run telemetry that rides alongside the measurement: fast-forward
/// effectiveness and the stall taxonomy, fed into the metrics registry.
/// Wall-clock-free, like [`Measured`].
#[derive(Default)]
struct RunTelemetry {
    ff: FfStats,
    stalls: c240_obs::StallCounters,
    busy_cycles: f64,
    /// Memory-vs-compute occupancy of the probed run, for the roofline
    /// cross-check. `None` on the (unprobed) multi-CPU path and when
    /// roofline stamping is off.
    rollup: Option<StallRollup>,
}

/// Per-row wall-clock provenance, attached as the row's `trace` object
/// when the observability plane is enabled.
#[derive(Default)]
struct Provenance {
    span: u64,
    validate_ns: Option<u64>,
    schedule_ns: Option<u64>,
    simulate_ns: Option<u64>,
    attempts: u32,
    ff: Option<FfStats>,
}

impl Provenance {
    fn to_json(&self) -> Json {
        let mut t = Json::obj().field("span", self.span);
        if let Some(ns) = self.validate_ns {
            t = t.field("validate_ns", ns);
        }
        if let Some(ns) = self.schedule_ns {
            t = t.field("schedule_ns", ns);
        }
        if let Some(ns) = self.simulate_ns {
            t = t.field("simulate_ns", ns);
        }
        t = t.field("attempts", self.attempts);
        if let Some(ff) = self.ff {
            t = t.field(
                "ff",
                Json::obj()
                    .field("probes", ff.probes)
                    .field("warps", ff.warps)
                    .field("skipped_instructions", ff.skipped_instructions),
            );
        }
        t
    }
}

/// Closes out one evaluation: ends the point span with its outcome,
/// feeds the duration histograms, and stamps the row with its `trace`
/// provenance. A no-op without `obs`.
fn finish_eval(
    span: Option<Span>,
    obs: Option<(&ServeObs, u64)>,
    mut evaluated: Evaluated,
    prov: &Provenance,
) -> Evaluated {
    let Some((o, _)) = obs else {
        return evaluated;
    };
    let outcome = match evaluated.class {
        PointClass::Ok => "ok",
        PointClass::Invalid => "invalid",
        PointClass::TimedOut => "timed_out",
        PointClass::Panicked => "panicked",
    };
    if let Some(mut s) = span {
        s.arg("outcome", outcome);
        let ns = s.end();
        o.metrics
            .histogram("macs_point_duration_ns", &[])
            .observe(ns);
    }
    if let Some(ns) = prov.simulate_ns {
        o.metrics
            .histogram("macs_simulate_duration_ns", &[])
            .observe(ns);
    }
    let row = std::mem::replace(&mut evaluated.row, Json::Null);
    evaluated.row = row.field("trace", prov.to_json());
    evaluated
}

/// Evaluates one parsed point against the base machine, under full
/// supervision. This is the *same* code path the server's workers run —
/// tests compare server output rows against direct `eval_point` calls to
/// prove the transport adds nothing.
pub fn eval_point(
    point: &SweepPoint,
    base: &SimConfig,
    deadline: Option<Duration>,
    retry: &RetryPolicy,
) -> Evaluated {
    eval_point_observed(point, base, deadline, retry, None, false)
}

/// [`eval_point`] with the observability plane attached. When `obs` is
/// `Some((plane, parent))`, opens a `point` span under `parent` (a span
/// id, usually the sweep span) with `validate`/`schedule`/`simulate`
/// phase children and one `attempt` span per supervised attempt, feeds
/// the retry/watchdog/fast-forward/stall counters of `plane.metrics`,
/// and stamps the returned row with a `trace` provenance object. With
/// `None` this is exactly [`eval_point`].
///
/// `roofline` additionally stamps healthy rows with the roofline
/// object of [`ServeOptions::roofline`] and, when metrics are on,
/// feeds the `macs_points_by_bound_class` counter and the per-machine
/// ceiling gauges.
pub fn eval_point_observed(
    point: &SweepPoint,
    base: &SimConfig,
    deadline: Option<Duration>,
    retry: &RetryPolicy,
    obs: Option<(&ServeObs, u64)>,
    roofline: bool,
) -> Evaluated {
    let key = point.key();
    let point_span = obs.map(|(o, parent)| {
        let mut s = o.tracer.span_under("point", parent);
        s.arg("id", point.id.as_str());
        s.arg("key", key.as_str());
        s.arg("kernel", point.kernel);
        s
    });
    let mut prov = Provenance {
        span: point_span.as_ref().map(Span::id).unwrap_or(0),
        ..Provenance::default()
    };
    let reject = |span, prov: &Provenance, kind: &str, message: &str| {
        finish_eval(
            span,
            obs,
            Evaluated {
                row: error_row(point, &key, kind, message, 0, &[], false),
                class: PointClass::Invalid,
                retried: false,
            },
            prov,
        )
    };

    // Validate: kernel lookup, machine-preset resolution, configuration
    // validation.
    let vspan = point_span.as_ref().map(|s| s.child("validate"));
    let checked = match lfk_suite::by_id(point.kernel) {
        None => Err(format!("LFK{} is not part of the case study", point.kernel)),
        Some(k) => Ok(k),
    };
    let cfg = match point.config(base) {
        Ok(cfg) => cfg,
        Err(e) => {
            prov.validate_ns = vspan.map(Span::end);
            // Structured sibling of the prose message: the resolvable
            // preset names, so sweep drivers can self-correct without
            // parsing the error text.
            let row = error_row(
                point,
                &key,
                "unknown_machine",
                &e.to_string(),
                0,
                &[],
                false,
            )
            .field(
                "known_machines",
                Json::Arr(PRESET_NAMES.iter().map(|&n| Json::from(n)).collect()),
            );
            return finish_eval(
                point_span,
                obs,
                Evaluated {
                    row,
                    class: PointClass::Invalid,
                    retried: false,
                },
                &prov,
            );
        }
    };
    let checked = checked.map(|k| cfg.validate().map(|()| k).map_err(|e| e.to_string()));
    prov.validate_ns = vspan.map(Span::end);
    let kernel = match checked {
        Err(message) => return reject(point_span, &prov, "unknown_kernel", &message),
        Ok(Err(message)) => return reject(point_span, &prov, "invalid_config", &message),
        Ok(Ok(k)) => k,
    };

    // Schedule: build the kernel's program (instruction scheduling).
    let sspan = point_span.as_ref().map(|s| s.child("schedule"));
    let passes = point.passes.unwrap_or_else(|| kernel.passes());
    let program = kernel.try_program_with_passes(passes);
    prov.schedule_ns = sspan.map(Span::end);
    let program = match program {
        Ok(p) => p,
        Err(e) => return reject(point_span, &prov, "invalid_passes", &e.to_string()),
    };

    let iterations = kernel.iterations_with_passes(passes);
    let flops = kernel.flops_total();
    let fault = point.inject;
    let cpus = cfg.cpus as usize;
    let machine = cfg.machine.clone();

    // Roofline context (DESIGN.md §16): ceilings read off the resolved
    // machine's geometry with the point's bank/refresh overrides folded
    // in, plus the kernel's two operational intensities. Everything here
    // is a pure function of the configuration and the program — no
    // wall-clock — so stamped rows journal and resume bit-identically.
    let roofline_ctx = roofline.then(|| {
        let mut md = MachineDescription::preset(&machine).unwrap_or_else(MachineDescription::c240);
        md.banks = cfg.mem.banks;
        md.bank_busy = cfg.mem.bank_busy;
        md.refresh_enabled = cfg.mem.refresh_enabled;
        let ceilings = MachineCeilings::of(&md, cfg.cpus);
        let bounds = KernelBounds::compute(
            &format!("LFK{}", point.kernel),
            kernel.ma(),
            &program,
            &ChimeConfig::for_machine(&md),
        );
        let i_ma = operational_intensity(&bounds.ma);
        (ceilings, bounds, i_ma)
    });

    // Simulate: the supervised run, covering every attempt and backoff.
    // Attempt spans are opened by the run closure on the watchdog's
    // thread, parented by id under the simulate span; an attempt
    // abandoned by the watchdog never records a span (its thread dies
    // with the process), keeping recorded trees well-nested.
    let sim_span = point_span.as_ref().map(|s| s.child("simulate"));
    let attempt_ctx = obs.map(|(o, _)| {
        (
            o.tracer.clone(),
            sim_span.as_ref().map(Span::id).unwrap_or(0),
            Arc::new(AtomicU32::new(0)),
        )
    });
    let run = move || -> Result<(Measured, RunTelemetry), String> {
        let mut attempt_span = attempt_ctx.as_ref().map(|(tracer, parent, count)| {
            let mut s = tracer.span_under("attempt", *parent);
            s.arg("attempt", count.fetch_add(1, Ordering::Relaxed) + 1);
            s
        });
        match fault {
            Some(Fault::Panic) => panic!("injected fault"),
            Some(Fault::SleepMs(ms)) => std::thread::sleep(Duration::from_millis(ms)),
            None => {}
        }
        if cpus <= 1 {
            // Mirrors `analyze_kernel`'s measured run exactly: fresh CPU,
            // kernel setup, probed measurement.
            let mut cpu = Cpu::new(cfg.clone());
            kernel.setup(&mut cpu);
            let (m, probe) =
                measure_probed(&mut cpu, &program, iterations, flops).map_err(|e| e.to_string())?;
            let telemetry = RunTelemetry {
                ff: cpu.ff_stats(),
                stalls: probe.totals(),
                busy_cycles: probe.busy_total(),
                rollup: roofline.then(|| StallRollup::of_probe(&probe)),
            };
            if let Some(s) = attempt_span.as_mut() {
                s.arg("ff_skipped_instructions", telemetry.ff.skipped_instructions);
            }
            Ok((Measured::of(&m), telemetry))
        } else {
            // Lockstep co-simulation: the kernel on every CPU, reporting
            // CPU 0 (all CPUs are symmetric under lockstep).
            let mut machine = Machine::new(cfg.clone());
            let programs: Vec<_> = (0..cpus)
                .map(|i| {
                    kernel.setup(machine.cpu_mut(i));
                    program.clone()
                })
                .collect();
            let mut stats = machine.run(&programs).map_err(|e| e.to_string())?;
            let m = Measurement {
                stats: stats.swap_remove(0),
                iterations,
                flops_per_iteration: flops,
            };
            Ok((Measured::of(&m), RunTelemetry::default()))
        }
    };
    let s = match obs {
        Some((o, _)) => {
            let metrics = &o.metrics;
            supervise_observed(run, deadline, retry, &mut |event| match event {
                SuperviseEvent::AttemptFailed { failure, .. } => {
                    metrics
                        .counter("macs_attempt_failures_total", &[("kind", failure.kind())])
                        .inc();
                    if matches!(failure, FailureKind::Deadline { .. }) {
                        metrics.counter("macs_watchdog_fires_total", &[]).inc();
                    }
                }
                SuperviseEvent::Backoff { ms } => {
                    metrics.counter("macs_backoff_sleeps_total", &[]).inc();
                    metrics.counter("macs_backoff_ms_total", &[]).add(ms);
                }
            })
        }
        None => supervise(run, deadline, retry),
    };
    prov.simulate_ns = sim_span.map(Span::end);
    prov.attempts = s.attempts;
    let retried = s.retried();
    let evaluated = match s.result {
        Ok(Ok((m, telemetry))) => {
            prov.ff = Some(telemetry.ff);
            if let Some((o, _)) = obs {
                let metrics = &o.metrics;
                metrics
                    .counter("macs_ff_probes_total", &[])
                    .add(telemetry.ff.probes);
                metrics
                    .counter("macs_ff_warps_total", &[])
                    .add(telemetry.ff.warps);
                metrics
                    .counter("macs_ff_skipped_instructions_total", &[])
                    .add(telemetry.ff.skipped_instructions);
                for cause in StallCause::ALL {
                    let t = ticks(telemetry.stalls.get(cause));
                    if t > 0 {
                        metrics
                            .counter("macs_stall_ticks_total", &[("cause", cause.key())])
                            .add(t);
                    }
                }
                metrics
                    .counter("macs_busy_ticks_total", &[])
                    .add(ticks(telemetry.busy_cycles));
            }
            let mut row = base_row(point, &key)
                .field("status", "ok")
                .field("machine", machine.as_str())
                .field("attempts", s.attempts)
                .field("cpus", cpus as u64)
                .field("passes", passes as f64)
                .field("cycles", m.cycles)
                .field("instructions", m.instructions)
                .field("iterations", m.iterations)
                .field("cpl", m.cpl)
                .field("cpf", m.cpf)
                .field("mflops", m.mflops)
                .field("memory_wait_cpl", m.memory_wait_cpl);
            if let Some((ceilings, bounds, i_ma)) = &roofline_ctx {
                let i = compiled_intensity(bounds);
                let rp = ceilings.place(i);
                let verdict = match &telemetry.rollup {
                    Some(r) => RooflineVerdict::check(rp.bound_class, r),
                    None => RooflineVerdict::Unchecked,
                };
                if let Some((o, _)) = obs {
                    let cpus_label = ceilings.cpus.to_string();
                    let labels = [("machine", machine.as_str()), ("cpus", cpus_label.as_str())];
                    o.metrics
                        .counter(
                            "macs_points_by_bound_class",
                            &[("class", rp.bound_class.key())],
                        )
                        .inc();
                    o.metrics
                        .gauge("macs_roofline_peak_mflops", &labels)
                        .set(ceilings.peak_mflops.round() as i64);
                    o.metrics
                        .gauge("macs_roofline_bandwidth_milliwords_per_cycle", &labels)
                        .set((ceilings.bandwidth_words_per_cycle * 1000.0).round() as i64);
                }
                let mut rf = Json::obj()
                    .field("schema", ROOFLINE_SCHEMA)
                    .field("intensity_ma", *i_ma)
                    .field("intensity", i)
                    .field("ridge", ceilings.ridge)
                    .field("peak_mflops", ceilings.peak_mflops)
                    .field("bandwidth_mwords", ceilings.bandwidth_mwords())
                    .field("attainable_mflops", rp.attainable_mflops)
                    .field("bound_class", rp.bound_class.key())
                    .field("verdict", verdict.key());
                if let Some(r) = &telemetry.rollup {
                    rf = rf.field("measured_class", measured_class(r).key());
                }
                if let Some(finding) = verdict.finding(&rp, ceilings.ridge) {
                    rf = rf.field("finding", finding.to_string());
                }
                row = row.field("roofline", rf);
            }
            Evaluated {
                row,
                class: PointClass::Ok,
                retried,
            }
        }
        Ok(Err(sim_message)) => Evaluated {
            row: error_row(
                point,
                &key,
                "sim",
                &sim_message,
                s.attempts,
                &s.backoff_ms,
                false,
            ),
            class: PointClass::Invalid,
            retried,
        },
        Err(failure) => Evaluated {
            row: error_row(
                point,
                &key,
                failure.kind(),
                &failure.message(),
                s.attempts,
                &s.backoff_ms,
                true,
            ),
            class: match failure {
                FailureKind::Panic { .. } => PointClass::Panicked,
                FailureKind::Deadline { .. } => PointClass::TimedOut,
            },
            retried,
        },
    };
    finish_eval(point_span, obs, evaluated, &prov)
}

/// What flows from reader/workers to the single writer.
struct Emit {
    /// The journal key; `None` for rows without a stable identity
    /// (protocol errors).
    key: Option<String>,
    row: Json,
    kind: EmitKind,
    retried: bool,
}

enum EmitKind {
    Point(PointClass),
    Resumed,
    Duplicate,
    Protocol,
}

impl Emit {
    /// Terminal keyed rows — ok and poisoned/rejected alike — are
    /// checkpointed; resumed rows are already in the journal and
    /// protocol errors and duplicates have no computation to record.
    fn journaled(&self) -> bool {
        self.key.is_some() && matches!(self.kind, EmitKind::Point(_))
    }

    fn tally(&self, outcomes: &mut SweepOutcomes) {
        match self.kind {
            EmitKind::Point(PointClass::Ok) => outcomes.ok += 1,
            EmitKind::Point(PointClass::Invalid) | EmitKind::Protocol => outcomes.invalid += 1,
            EmitKind::Point(PointClass::TimedOut) => outcomes.timed_out += 1,
            EmitKind::Point(PointClass::Panicked) => outcomes.panicked += 1,
            EmitKind::Resumed => outcomes.resumed += 1,
            EmitKind::Duplicate => outcomes.duplicate += 1,
        }
        if self.retried {
            outcomes.retried += 1;
        }
    }

    /// Mirrors [`Emit::tally`] into the metrics registry, increment for
    /// increment, so `macs_points_total{outcome=...}` reconciles exactly
    /// with the end-of-stream [`SweepOutcomes`] summary.
    fn tally_metrics(&self, metrics: &Metrics) {
        let outcome = match self.kind {
            EmitKind::Point(PointClass::Ok) => "ok",
            EmitKind::Point(PointClass::Invalid) | EmitKind::Protocol => "invalid",
            EmitKind::Point(PointClass::TimedOut) => "timed_out",
            EmitKind::Point(PointClass::Panicked) => "panicked",
            EmitKind::Resumed => "resumed",
            EmitKind::Duplicate => "duplicate",
        };
        metrics
            .counter("macs_points_total", &[("outcome", outcome)])
            .inc();
        if self.retried {
            metrics.counter("macs_points_retried_total", &[]).inc();
        }
    }
}

/// A structured protocol-error row for stream-level abuse (oversized
/// lines, stalled peers) where there is no line text worth echoing.
fn limit_row(kind: &str, message: &str) -> Json {
    Json::obj()
        .field("schema", SWEEP_ROW_SCHEMA)
        .field("status", "error")
        .field("error_kind", kind)
        .field("message", message)
}

fn protocol_row(error: &ProtocolError, line: &str) -> Json {
    let mut shown: String = line.chars().take(200).collect();
    if shown.len() < line.len() {
        shown.push('…');
    }
    Json::obj()
        .field("schema", SWEEP_ROW_SCHEMA)
        .field("status", "error")
        .field("error_kind", "protocol")
        .field("message", error.to_string())
        .field("line", shown)
}

fn duplicate_row(point: &SweepPoint, key: &str) -> Json {
    error_row(
        point,
        key,
        "duplicate",
        &format!("point key {key} was already submitted in this run"),
        0,
        &[],
        false,
    )
}

/// Serves one request stream to completion: evaluates every line,
/// streams rows to `output` as they finish (completion order, not input
/// order — rows carry their `id` and `key`), then emits the summary row
/// and returns the tally.
///
/// # Errors
///
/// Fails on journal I/O errors and on `output` write errors. Input
/// errors (including a mid-stream EOF) end the stream cleanly — every
/// fully received line is still answered and the summary still emitted.
pub fn serve(
    input: impl BufRead + Send,
    mut output: impl Write,
    opts: &ServeOptions,
) -> io::Result<SweepOutcomes> {
    let resumed: BTreeMap<String, Json> = match &opts.resume {
        Some(path) => Journal::load(path)?,
        None => BTreeMap::new(),
    };
    let mut journal = match &opts.journal {
        Some(path) => Some(Journal::open_append(path)?),
        None => None,
    };
    let workers = if opts.workers == 0 {
        macs_core::threads()
    } else {
        opts.workers
    };
    let obs = opts.obs.as_ref();
    let mut sweep_span = obs.map(|o| {
        let mut s = o.tracer.span("sweep");
        s.arg("workers", workers as u64);
        s
    });
    let sweep_id = sweep_span.as_ref().map(Span::id).unwrap_or(0);
    let (job_tx, job_rx) = mpsc::channel::<SweepPoint>();
    let job_rx = Arc::new(Mutex::new(job_rx));
    let (out_tx, out_rx) = mpsc::channel::<Emit>();
    let mut outcomes = SweepOutcomes::new();
    let resumed = &resumed;
    std::thread::scope(|scope| -> io::Result<()> {
        let reader_tx = out_tx.clone();
        let reader_obs = obs.map(|o| (o.tracer.clone(), o.metrics.gauge("macs_queue_depth", &[])));
        let abuse_counters = obs.map(|o| {
            (
                o.metrics.counter("macs_lines_oversized_total", &[]),
                o.metrics.counter("macs_streams_stalled_total", &[]),
            )
        });
        let max_line_bytes = opts.max_line_bytes;
        scope.spawn(move || {
            // Send failures below mean the writer already bailed on an
            // output error; keep draining input so the scope can join.
            let mut seen: HashSet<String> = HashSet::new();
            let mut lines = BoundedLines::new(input, max_line_bytes);
            loop {
                let line = match lines.next_event() {
                    Err(_) | Ok(LineEvent::Eof) => break,
                    Ok(LineEvent::Stalled) => {
                        // The peer dribbled past the read timeout: answer
                        // with a structured row and end the stream, so a
                        // slowloris costs one row, not a pinned thread.
                        if let Some((_, stalled)) = abuse_counters.as_ref() {
                            stalled.inc();
                        }
                        let _ = reader_tx.send(Emit {
                            key: None,
                            row: limit_row(
                                "stalled",
                                "no complete request line within the read timeout; closing the stream",
                            ),
                            kind: EmitKind::Protocol,
                            retried: false,
                        });
                        break;
                    }
                    Ok(LineEvent::Oversized { length }) => {
                        if let Some((oversized, _)) = abuse_counters.as_ref() {
                            oversized.inc();
                        }
                        let _ = reader_tx.send(Emit {
                            key: None,
                            row: limit_row(
                                "oversized",
                                &format!(
                                    "request line of {length}+ bytes exceeds the \
                                     {max_line_bytes}-byte limit"
                                ),
                            ),
                            kind: EmitKind::Protocol,
                            retried: false,
                        });
                        continue;
                    }
                    Ok(LineEvent::Line(line)) => line,
                };
                if line.trim().is_empty() {
                    continue;
                }
                let parse_span = reader_obs
                    .as_ref()
                    .map(|(tracer, _)| tracer.span_under("parse", sweep_id));
                let parsed = parse_point(&line);
                drop(parse_span);
                match parsed {
                    Err(e) => {
                        let _ = reader_tx.send(Emit {
                            key: None,
                            row: protocol_row(&e, &line),
                            kind: EmitKind::Protocol,
                            retried: false,
                        });
                    }
                    Ok(point) => {
                        let key = point.key();
                        if !seen.insert(key.clone()) {
                            let _ = reader_tx.send(Emit {
                                key: Some(key.clone()),
                                row: duplicate_row(&point, &key),
                                kind: EmitKind::Duplicate,
                                retried: false,
                            });
                        } else if let Some(row) = resumed.get(&key) {
                            let _ = reader_tx.send(Emit {
                                key: Some(key),
                                row: row.clone(),
                                kind: EmitKind::Resumed,
                                retried: false,
                            });
                        } else {
                            if let Some((_, depth)) = reader_obs.as_ref() {
                                depth.add(1);
                            }
                            let _ = job_tx.send(point);
                        }
                    }
                }
            }
        });
        for _ in 0..workers {
            let job_rx = Arc::clone(&job_rx);
            let tx = out_tx.clone();
            let base = opts.base.clone();
            let retry = opts.retry;
            let deadline = opts.deadline;
            let roofline = opts.roofline;
            let worker_obs = obs.map(|o| {
                (
                    o.clone(),
                    o.metrics.gauge("macs_queue_depth", &[]),
                    o.metrics.gauge("macs_workers_busy", &[]),
                )
            });
            scope.spawn(move || loop {
                let job = job_rx.lock().expect("job queue lock").recv();
                let Ok(point) = job else { break };
                if let Some((_, depth, busy)) = worker_obs.as_ref() {
                    depth.add(-1);
                    busy.add(1);
                }
                let point_deadline = point.deadline_ms.map(Duration::from_millis).or(deadline);
                let evaluated = eval_point_observed(
                    &point,
                    &base,
                    point_deadline,
                    &retry,
                    worker_obs.as_ref().map(|(o, _, _)| (o, sweep_id)),
                    roofline,
                );
                if let Some((_, _, busy)) = worker_obs.as_ref() {
                    busy.add(-1);
                }
                let _ = tx.send(Emit {
                    key: Some(point.key()),
                    row: evaluated.row,
                    kind: EmitKind::Point(evaluated.class),
                    retried: evaluated.retried,
                });
            });
        }
        drop(out_tx);
        let mut since_snapshot = 0usize;
        for emit in out_rx {
            let report_span = obs.map(|o| o.tracer.span_under("report", sweep_id));
            writeln!(output, "{}", emit.row)?;
            output.flush()?;
            emit.tally(&mut outcomes);
            if let Some(o) = obs {
                emit.tally_metrics(&o.metrics);
            }
            if emit.journaled() {
                if let (Some(journal), Some(key)) = (journal.as_mut(), emit.key.as_deref()) {
                    journal.record(key, &emit.row)?;
                    if let Some(o) = obs {
                        since_snapshot += 1;
                        if o.snapshot_every > 0 && since_snapshot >= o.snapshot_every {
                            journal.meta(&o.metrics.snapshot_json())?;
                            since_snapshot = 0;
                        }
                        o.metrics
                            .gauge("macs_journal_bytes", &[])
                            .set(journal.bytes_written().min(i64::MAX as u64) as i64);
                    }
                }
            }
            drop(report_span);
        }
        Ok(())
    })?;
    writeln!(output, "{}", outcomes.to_json())?;
    output.flush()?;
    if let Some(o) = obs {
        if let Some(mut s) = sweep_span.take() {
            s.arg("points", outcomes.points());
            s.end();
        }
        // One final snapshot so the journal's last metrics row reflects
        // the whole stream, then flush the configured trace exports.
        if let Some(journal) = journal.as_mut() {
            journal.meta(&o.metrics.snapshot_json())?;
            o.metrics
                .gauge("macs_journal_bytes", &[])
                .set(journal.bytes_written().min(i64::MAX as u64) as i64);
        }
        o.export()?;
    }
    Ok(outcomes)
}

/// Answers an HTTP request sniffed off a sweep listener. Only
/// `GET /metrics` is served (the Prometheus text exposition,
/// `version=0.0.4`); anything else is a 404. The request's remaining
/// header lines are drained (bounded) so well-behaved HTTP clients see
/// a clean close.
pub(crate) fn answer_http(
    request_line: &str,
    reader: &mut impl BufRead,
    mut writer: impl Write,
    obs: Option<&ServeObs>,
) -> io::Result<()> {
    for _ in 0..64 {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 || header.trim().is_empty() {
            break;
        }
    }
    let path = request_line.split_whitespace().nth(1).unwrap_or("");
    let (status, body) = match (path, obs) {
        ("/metrics", Some(o)) => ("200 OK", o.metrics.render_prometheus()),
        ("/metrics", None) => (
            "404 Not Found",
            "metrics disabled: start the server with --metrics\n".to_string(),
        ),
        _ => (
            "404 Not Found",
            "only /metrics is served here\n".to_string(),
        ),
    };
    write!(
        writer,
        "HTTP/1.0 {status}\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    writer.flush()
}

/// One accepted connection: sniffs the first line to dispatch between a
/// metrics scrape (`GET ...`) and a sweep request stream. Sweep streams
/// serialize on `sweeps` so concurrent connections never interleave
/// journal writes; metrics scrapes bypass the lock, which is what makes
/// mid-sweep scraping work.
fn handle_connection<S: Read + Write + Send>(
    stream: S,
    reader_half: S,
    opts: &ServeOptions,
    sweeps: &Mutex<()>,
) -> io::Result<Option<SweepOutcomes>> {
    let mut reader = BufReader::new(reader_half);
    // Bounded, timeout-aware sniff: a peer that stalls or never sends a
    // newline still reaches the hardened request loop (and gets its
    // structured `stalled`/`protocol` row) instead of erroring out here.
    let sniffed = match sniff_http(&mut reader, opts.max_line_bytes)? {
        Sniff::Empty => return Ok(None),
        Sniff::Http(request_line) => {
            answer_http(&request_line, &mut reader, stream, opts.obs.as_ref())?;
            return Ok(None);
        }
        Sniff::Stream(seen) => seen,
    };
    let _guard = sweeps.lock().expect("sweep serialization lock");
    let input = io::Cursor::new(sniffed).chain(reader);
    serve(input, stream, opts).map(Some)
}

/// Binds `addr` and serves TCP connections forever (the process is
/// stopped externally). Each connection is either a metrics scrape
/// (`GET /metrics`, answered concurrently) or an independent sweep
/// request stream; sweep streams are serialized, and with
/// `--journal`/`--resume` pointed at the same file, later connections
/// resume from earlier ones' checkpoints.
///
/// # Errors
///
/// Fails if the address cannot be bound or accepting fails.
pub fn serve_tcp(addr: &str, opts: &ServeOptions) -> io::Result<()> {
    let listener = TcpListener::bind(addr)?;
    eprintln!("macs-bench: serving on tcp {}", listener.local_addr()?);
    let opts = Arc::new(opts.clone());
    let sweeps = Arc::new(Mutex::new(()));
    loop {
        let (stream, peer) = listener.accept()?;
        // A zero-duration timeout is invalid at the socket layer; treat
        // it as "no timeout" rather than killing the connection.
        if let Some(t) = opts.read_timeout.filter(|t| !t.is_zero()) {
            let _ = stream.set_read_timeout(Some(t));
        }
        let opts = Arc::clone(&opts);
        let sweeps = Arc::clone(&sweeps);
        std::thread::spawn(move || {
            let reader_half = match stream.try_clone() {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("macs-bench: {peer}: clone failed: {e}");
                    return;
                }
            };
            match handle_connection(stream, reader_half, &opts, &sweeps) {
                Ok(Some(outcomes)) => eprintln!("macs-bench: {peer}: {outcomes}"),
                Ok(None) => {}
                Err(e) => eprintln!("macs-bench: {peer}: connection failed: {e}"),
            }
        });
    }
}

/// Binds a Unix socket at `path` and serves connections forever; see
/// [`serve_tcp`] (including `GET /metrics`). A stale socket file at
/// `path` is removed first.
///
/// # Errors
///
/// Fails if the socket cannot be bound or accepting fails.
#[cfg(unix)]
pub fn serve_unix(path: &std::path::Path, opts: &ServeOptions) -> io::Result<()> {
    use std::os::unix::net::UnixListener;
    if path.exists() {
        std::fs::remove_file(path)?;
    }
    let listener = UnixListener::bind(path)?;
    eprintln!("macs-bench: serving on unix socket {}", path.display());
    let opts = Arc::new(opts.clone());
    let sweeps = Arc::new(Mutex::new(()));
    loop {
        let (stream, _) = listener.accept()?;
        if let Some(t) = opts.read_timeout.filter(|t| !t.is_zero()) {
            let _ = stream.set_read_timeout(Some(t));
        }
        let opts = Arc::clone(&opts);
        let sweeps = Arc::clone(&sweeps);
        std::thread::spawn(move || {
            let reader_half = match stream.try_clone() {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("macs-bench: clone failed: {e}");
                    return;
                }
            };
            match handle_connection(stream, reader_half, &opts, &sweeps) {
                Ok(Some(outcomes)) => eprintln!("macs-bench: {outcomes}"),
                Ok(None) => {}
                Err(e) => eprintln!("macs-bench: connection failed: {e}"),
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn serve_lines(lines: &str, opts: &ServeOptions) -> (Vec<Json>, SweepOutcomes) {
        let mut out = Vec::new();
        let outcomes = serve(lines.as_bytes(), &mut out, opts).expect("serve succeeds");
        let rows = String::from_utf8(out)
            .unwrap()
            .lines()
            .map(|l| Json::parse(l).expect("every output line is JSON"))
            .collect();
        (rows, outcomes)
    }

    fn fast_opts() -> ServeOptions {
        ServeOptions {
            workers: 2,
            retry: RetryPolicy {
                max_attempts: 2,
                backoff_base: Duration::from_millis(1),
                backoff_cap: Duration::from_millis(2),
                jitter_seed: None,
            },
            ..ServeOptions::default()
        }
    }

    #[test]
    fn empty_input_yields_just_the_summary() {
        let (rows, outcomes) = serve_lines("", &fast_opts());
        assert_eq!(outcomes.points(), 0);
        assert_eq!(rows.len(), 1);
        assert_eq!(
            rows[0].get("schema").and_then(Json::as_str),
            Some(c240_obs::SWEEP_SUMMARY_SCHEMA)
        );
    }

    #[test]
    fn a_mixed_stream_degrades_gracefully() {
        let input = "\
            {\"id\":\"good\",\"kernel\":12}\n\
            this is not json\n\
            {\"id\":\"badcfg\",\"kernel\":1,\"config\":{\"cpus\":0}}\n\
            {\"id\":\"nokernel\",\"kernel\":5}\n\
            {\"id\":\"boom\",\"kernel\":1,\"inject\":\"panic\"}\n\
            {\"id\":\"dup\",\"kernel\":12}\n";
        let (rows, outcomes) = serve_lines(input, &fast_opts());
        assert_eq!(outcomes.ok, 1);
        assert_eq!(outcomes.invalid, 3, "{outcomes}");
        assert_eq!(outcomes.panicked, 1);
        assert_eq!(outcomes.duplicate, 1);
        assert_eq!(rows.len(), 7, "six rows plus the summary");
        let by_id = |id: &str| {
            rows.iter()
                .find(|r| r.get("id").and_then(Json::as_str) == Some(id))
                .unwrap_or_else(|| panic!("row {id} missing"))
        };
        assert_eq!(
            by_id("good").get("status").and_then(Json::as_str),
            Some("ok")
        );
        assert_eq!(
            by_id("badcfg").get("error_kind").and_then(Json::as_str),
            Some("invalid_config")
        );
        assert_eq!(
            by_id("nokernel").get("error_kind").and_then(Json::as_str),
            Some("unknown_kernel")
        );
        let boom = by_id("boom");
        assert_eq!(boom.get("error_kind").and_then(Json::as_str), Some("panic"));
        assert_eq!(boom.get("attempts").and_then(Json::as_f64), Some(2.0));
        assert_eq!(boom.get("poisoned"), Some(&Json::Bool(true)));
    }

    #[test]
    fn server_rows_match_direct_eval() {
        let opts = fast_opts();
        let line = "{\"id\":\"k12\",\"kernel\":12,\"config\":{\"chaining\":false}}";
        let (rows, _) = serve_lines(&format!("{line}\n"), &opts);
        let direct = eval_point(&parse_point(line).unwrap(), &opts.base, None, &opts.retry);
        assert_eq!(rows[0], direct.row, "transport must add nothing");
    }

    #[test]
    fn journal_and_resume_round_trip() {
        let dir = std::env::temp_dir().join(format!("macs-serve-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let journal = dir.join("j.ndjson");
        let input = "{\"id\":\"a\",\"kernel\":12}\n{\"id\":\"b\",\"kernel\":3}\n";
        let mut opts = fast_opts();
        opts.journal = Some(journal.clone());
        let (fresh_rows, fresh) = serve_lines(input, &opts);
        assert_eq!(fresh.ok, 2);
        opts.resume = Some(journal.clone());
        let (resumed_rows, resumed) = serve_lines(input, &opts);
        assert_eq!(resumed.resumed, 2);
        assert_eq!(resumed.ok, 0);
        // Resumed rows are the journaled rows verbatim — bit-identical.
        for row in fresh_rows.iter().filter(|r| r.get("key").is_some()) {
            assert!(resumed_rows.contains(row), "row not re-emitted verbatim");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn an_oversized_line_becomes_a_structured_row_and_the_stream_continues() {
        let mut opts = fast_opts();
        opts.max_line_bytes = 128;
        let huge = format!("{{\"id\":\"big\",\"junk\":\"{}\"}}", "x".repeat(4096));
        let input = format!("{huge}\n{{\"id\":\"ok\",\"kernel\":12}}\n");
        let (rows, outcomes) = serve_lines(&input, &opts);
        assert_eq!(outcomes.invalid, 1, "{outcomes}");
        assert_eq!(outcomes.ok, 1);
        let abuse = rows
            .iter()
            .find(|r| r.get("error_kind").and_then(Json::as_str) == Some("oversized"))
            .expect("oversized row present");
        assert!(abuse
            .get("message")
            .and_then(Json::as_str)
            .unwrap()
            .contains("128-byte limit"));
    }

    #[test]
    fn invalid_utf8_degrades_to_a_protocol_row_not_a_dead_stream() {
        let mut input = Vec::new();
        input.extend_from_slice(b"\xff\xfe\xfd\n");
        input.extend_from_slice(b"{\"id\":\"ok\",\"kernel\":12}\n");
        let mut out = Vec::new();
        let outcomes = serve(&input[..], &mut out, &fast_opts()).expect("serve survives");
        assert_eq!(outcomes.invalid, 1);
        assert_eq!(outcomes.ok, 1);
    }

    #[test]
    fn deadline_produces_a_timeout_row_and_the_server_survives() {
        let input =
            "{\"id\":\"slow\",\"kernel\":1,\"inject\":{\"sleep_ms\":2000},\"deadline_ms\":30}\n\
                     {\"id\":\"fast\",\"kernel\":12}\n";
        let mut opts = fast_opts();
        opts.retry = RetryPolicy::once();
        let (rows, outcomes) = serve_lines(input, &opts);
        assert_eq!(outcomes.timed_out, 1);
        assert_eq!(outcomes.ok, 1);
        let slow = rows
            .iter()
            .find(|r| r.get("id").and_then(Json::as_str) == Some("slow"))
            .unwrap();
        assert_eq!(
            slow.get("error_kind").and_then(Json::as_str),
            Some("timeout")
        );
    }
}
