//! Ablations of the machine-model design choices the paper calls out:
//! each group measures a workload's simulated cycles (reported via
//! "cycles" prints) while timing the simulation itself.
//!
//! The pre-timing cycle computations of each sweep are independent
//! model evaluations and run on the [`macs_core::pool`]; the `Bench`
//! wall-clock measurements themselves stay strictly serial so that
//! concurrent workers never distort a timed body.

use std::hint::black_box;

use c240_mem::ContentionConfig;
use c240_sim::{Cpu, SimConfig};
use macs_bench::timing::Bench;
use macs_bench::{memory_loop, triad_loop};
use macs_compiler::{compile, CompileOptions, Kernel, ScheduleStrategy};
use macs_compiler::{load, param};
use macs_core::{partition_chimes, ChimeConfig};

fn run_cycles(config: &SimConfig, program: &c240_isa::Program) -> f64 {
    let mut cpu = Cpu::new(config.clone());
    cpu.set_areg(1, 0);
    cpu.set_areg(2, 320000);
    cpu.set_areg(3, 640000);
    cpu.set_sreg_fp(1, 2.0);
    cpu.run(program).expect("ablation workload runs").cycles
}

/// Eq. 5 vs Eq. 13: the tailgating bubble `B` on and off, and refresh
/// on and off.
fn bench_bubbles_refresh() {
    let program = triad_loop(40, 128);
    let points = vec![
        ("c240", SimConfig::c240()),
        ("no_bubbles", SimConfig::c240().without_bubbles()),
        ("no_refresh", SimConfig::c240().without_refresh()),
        (
            "neither",
            SimConfig::c240().without_bubbles().without_refresh(),
        ),
    ];
    let cycles =
        macs_core::parallel_map(points.clone(), |(_, config)| run_cycles(&config, &program));
    let mut g = Bench::group("bubbles_refresh");
    for ((name, config), cycles) in points.into_iter().zip(cycles) {
        println!("bubbles_refresh/{name}: {cycles:.1} simulated cycles");
        g.bench(name, || black_box(run_cycles(&config, &program)));
    }
}

/// Chaining on vs off (§3.3: 162 vs 422 cycles for one chime).
fn bench_chaining() {
    let program = triad_loop(40, 128);
    let points = vec![
        ("chained", SimConfig::c240()),
        ("cray2_style", SimConfig::c240().without_chaining()),
    ];
    let cycles =
        macs_core::parallel_map(points.clone(), |(_, config)| run_cycles(&config, &program));
    let mut g = Bench::group("chaining");
    for ((name, config), cycles) in points.into_iter().zip(cycles) {
        println!("chaining/{name}: {cycles:.1} simulated cycles");
        g.bench(name, || black_box(run_cycles(&config, &program)));
    }
}

/// Stride sweep: bank conflicts emerge at power-of-two strides (§3.1's
/// "fifth degree of freedom, D").
fn bench_strides() {
    let strides = vec![1i64, 2, 5, 8, 16, 25, 32];
    let points = macs_core::parallel_map(strides, |stride| {
        let program = memory_loop(2, 20, 128, stride);
        let cycles = run_cycles(&SimConfig::c240(), &program);
        (stride, program, cycles)
    });
    let mut g = Bench::group("stride");
    for (stride, program, cycles) in points {
        println!("stride/{stride}: {cycles:.1} simulated cycles");
        g.bench(&stride.to_string(), || {
            black_box(run_cycles(&SimConfig::c240(), &program))
        });
    }
}

/// Vector-length sweep: short vectors lose the steady state (§3.2, the
/// LFK 2/6 story).
fn bench_vector_length() {
    let points = macs_core::parallel_map(vec![8u32, 16, 32, 64, 128], |vl| {
        let program = triad_loop(40, vl);
        let cycles = run_cycles(&SimConfig::c240(), &program);
        (vl, program, cycles)
    });
    let mut g = Bench::group("vector_length");
    for (vl, program, cycles) in points {
        let per_elem = cycles / (40.0 * f64::from(vl));
        println!("vector_length/{vl}: {per_elem:.3} cycles/element");
        g.bench(&vl.to_string(), || {
            black_box(run_cycles(&SimConfig::c240(), &program))
        });
    }
}

/// Contention sweep (Figure 3 / §4.2's rules of thumb).
fn bench_contention() {
    let settings = vec![
        ("idle", ContentionConfig::idle()),
        ("lockstep3", ContentionConfig::lockstep(3)),
        ("mixed3", ContentionConfig::mixed(3)),
    ];
    let points = macs_core::parallel_map(settings, |(name, contention)| {
        let config = SimConfig {
            mem: SimConfig::c240().mem.with_contention(contention),
            ..SimConfig::c240()
        };
        let program = memory_loop(2, 40, 128, 1);
        let cycles = run_cycles(&config, &program);
        (name, config, program, cycles)
    });
    let mut g = Bench::group("contention");
    for (name, config, program, cycles) in points {
        println!("contention/{name}: {cycles:.1} simulated cycles");
        g.bench(name, || black_box(run_cycles(&config, &program)));
    }
}

/// Bank-count sweep.
fn bench_banks() {
    let points = macs_core::parallel_map(vec![8u32, 16, 32, 64], |banks| {
        let config = SimConfig {
            mem: SimConfig::c240().mem.with_banks(banks),
            ..SimConfig::c240()
        };
        let program = memory_loop(2, 20, 128, 8);
        let cycles = run_cycles(&config, &program);
        (banks, config, program, cycles)
    });
    let mut g = Bench::group("banks");
    for (banks, config, program, cycles) in points {
        println!("banks/{banks} (stride 8): {cycles:.1} simulated cycles");
        g.bench(&banks.to_string(), || {
            black_box(run_cycles(&config, &program))
        });
    }
}

/// Schedule sensitivity: the same kernel compiled with the interleaved
/// vs loads-first schedule has a different MACS bound — the "S" of MACS.
fn bench_schedules() {
    let kernel = Kernel::new("triad")
        .array("x", 6000)
        .array("y", 6000)
        .array("z", 6000)
        .param("a", 3.0)
        .store("x", 0, load("y", 0) + param("a") * load("z", 0));
    let mut g = Bench::group("schedule");
    for (name, strategy) in [
        ("interleaved", ScheduleStrategy::Interleaved),
        ("loads_first", ScheduleStrategy::LoadsFirst),
    ] {
        let compiled = compile(
            &kernel,
            5000,
            CompileOptions {
                schedule: strategy,
                ..CompileOptions::default()
            },
        )
        .expect("triad compiles");
        let l = compiled.program.innermost_loop().expect("strip loop");
        let part = partition_chimes(compiled.program.loop_body(l), &ChimeConfig::c240());
        println!(
            "schedule/{name}: t_MACS = {:.3} CPL ({} chimes)",
            part.cpl(),
            part.chimes().len()
        );
        g.bench(name, || {
            let l = compiled.program.innermost_loop().unwrap();
            black_box(partition_chimes(
                compiled.program.loop_body(l),
                &ChimeConfig::c240(),
            ))
        });
    }
}

/// Reduction timing sensitivity: Table 1 footnote b (Z between 1.35 and
/// 1.5).
fn bench_reduction_z() {
    use c240_isa::timing::{TimingClass, VectorTiming};
    let mut g = Bench::group("reduction_z");
    let body = {
        let p = c240_isa::asm::assemble(
            "L:
            ld.l 0(a1),v0
            mul.d v0,s1,v1
            rsub.d v1,s4
            jbrs.t L
            halt",
        )
        .unwrap();
        let l = p.innermost_loop().unwrap();
        p.loop_body(l).to_vec()
    };
    for z in [1.0f64, 1.35, 1.5] {
        let mut chime = ChimeConfig::c240();
        let t = chime.timing.get(TimingClass::Reduction);
        chime
            .timing
            .set(TimingClass::Reduction, VectorTiming { z, ..t });
        let part = partition_chimes(&body, &chime);
        println!("reduction_z/{z}: t_MACS = {:.3} CPL", part.cpl());
        g.bench(&z.to_string(), || {
            black_box(partition_chimes(&body, &chime))
        });
    }
}

/// MACS vs MACS-D on strided workloads (the paper's "fifth degree of
/// freedom, D").
fn bench_macs_d() {
    use macs_core::BankModel;
    let mut g = Bench::group("macs_d");
    for stride in [1i64, 8, 16, 32] {
        let program = memory_loop(2, 20, 128, stride);
        let l = program.innermost_loop().unwrap();
        let body = program.loop_body(l).to_vec();
        let plain = partition_chimes(&body, &ChimeConfig::c240());
        let with_d = partition_chimes(
            &body,
            &ChimeConfig::c240().with_bank_model(BankModel::c240()),
        );
        println!(
            "macs_d/stride {stride}: plain {:.2} CPL, MACS-D {:.2} CPL",
            plain.cpl(),
            with_d.cpl()
        );
        g.bench(&stride.to_string(), || {
            black_box(partition_chimes(
                &body,
                &ChimeConfig::c240().with_bank_model(BankModel::c240()),
            ))
        });
    }
}

/// The rescheduler's cost and benefit on a loads-first stencil.
fn bench_rescheduler() {
    use macs_core::reschedule_for_chimes;
    let kernel = Kernel::new("stencil")
        .array("x", 6100)
        .array("y", 6100)
        .param("a", 0.2)
        .store(
            "y",
            0,
            param("a") * (load("x", 0) + load("x", 1) + load("x", 2) + load("x", 3) + load("x", 4)),
        );
    let compiled = compile(
        &kernel,
        5000,
        CompileOptions {
            schedule: ScheduleStrategy::LoadsFirst,
            ..CompileOptions::default()
        },
    )
    .expect("stencil compiles");
    let l = compiled.program.innermost_loop().unwrap();
    let body = compiled.program.loop_body(l).to_vec();
    let cfg = ChimeConfig::c240();
    let before = partition_chimes(&body, &cfg).cpl();
    let after = partition_chimes(&reschedule_for_chimes(&body, &cfg), &cfg).cpl();
    println!("rescheduler: {before:.2} -> {after:.2} CPL");
    let mut g = Bench::group("rescheduler");
    g.bench("stencil", || black_box(reschedule_for_chimes(&body, &cfg)));
}

fn main() {
    bench_bubbles_refresh();
    bench_chaining();
    bench_strides();
    bench_vector_length();
    bench_contention();
    bench_banks();
    bench_schedules();
    bench_reduction_z();
    bench_macs_d();
    bench_rescheduler();
}
