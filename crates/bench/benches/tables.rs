//! One benchmark per paper table/figure: the timed body regenerates the
//! artifact, so `cargo bench` both re-derives every number and reports
//! how long the reproduction machinery takes.

use std::hint::black_box;

use c240_sim::SimConfig;
use macs_bench::timing::Bench;
use macs_core::ChimeConfig;
use macs_experiments::{figures, tables, worked_example, Suite};

fn main() {
    let mut g = Bench::group("paper");

    g.bench("table1_calibration", || {
        black_box(tables::table1(&SimConfig::c240()).render())
    });

    // The five suite-based artifacts share one suite per iteration to
    // keep the cost proportional to one case-study run.
    g.bench("suite_case_study", || black_box(Suite::run()));

    let suite = Suite::run();
    g.bench("table2_workload", || {
        black_box(tables::table2(&suite).render())
    });
    g.bench("table3_bounds", || {
        black_box(tables::table3(&suite).render())
    });
    g.bench("table4_comparison", || {
        black_box(tables::table4(&suite).render())
    });
    g.bench("table5_ax", || black_box(tables::table5(&suite).render()));
    g.bench("fig1_hierarchy", || black_box(figures::fig1(&suite)));
    g.bench("fig2_chaining", || {
        black_box(figures::fig2(&SimConfig::c240()))
    });
    g.bench("fig3_contention", || {
        black_box(figures::fig3(&suite).render())
    });
    g.bench("lfk1_worked_example", || {
        black_box(worked_example(&SimConfig::c240(), &ChimeConfig::c240()))
    });

    // Print the artifacts once so `cargo bench | tee` archives them.
    println!("{}", tables::table1(&SimConfig::c240()).render());
    println!("{}", tables::table2(&suite).render());
    println!("{}", tables::table3(&suite).render());
    println!("{}", tables::table4(&suite).render());
    println!("{}", tables::table5(&suite).render());
    println!("{}", figures::fig2(&SimConfig::c240()));
    println!("{}", figures::fig3(&suite).render());
    println!(
        "{}",
        worked_example(&SimConfig::c240(), &ChimeConfig::c240())
    );
}
