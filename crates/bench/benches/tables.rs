//! One benchmark per paper table/figure: the timed body regenerates the
//! artifact, so `cargo bench` both re-derives every number and reports
//! how long the reproduction machinery takes.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use c240_sim::SimConfig;
use macs_core::ChimeConfig;
use macs_experiments::{figures, tables, worked_example, Suite};

fn bench_tables(c: &mut Criterion) {
    let mut g = c.benchmark_group("paper");
    g.sample_size(10);

    g.bench_function("table1_calibration", |b| {
        b.iter(|| black_box(tables::table1(&SimConfig::c240()).render()))
    });

    // The five suite-based artifacts share one suite per iteration to
    // keep the cost proportional to one case-study run.
    g.bench_function("suite_case_study", |b| {
        b.iter(|| black_box(Suite::run()))
    });

    let suite = Suite::run();
    g.bench_function("table2_workload", |b| {
        b.iter(|| black_box(tables::table2(&suite).render()))
    });
    g.bench_function("table3_bounds", |b| {
        b.iter(|| black_box(tables::table3(&suite).render()))
    });
    g.bench_function("table4_comparison", |b| {
        b.iter(|| black_box(tables::table4(&suite).render()))
    });
    g.bench_function("table5_ax", |b| {
        b.iter(|| black_box(tables::table5(&suite).render()))
    });
    g.bench_function("fig1_hierarchy", |b| {
        b.iter(|| black_box(figures::fig1(&suite)))
    });
    g.bench_function("fig2_chaining", |b| {
        b.iter(|| black_box(figures::fig2(&SimConfig::c240())))
    });
    g.bench_function("fig3_contention", |b| {
        b.iter(|| black_box(figures::fig3(&suite).render()))
    });
    g.bench_function("lfk1_worked_example", |b| {
        b.iter(|| black_box(worked_example(&SimConfig::c240(), &ChimeConfig::c240())))
    });
    g.finish();

    // Print the artifacts once so `cargo bench | tee` archives them.
    println!("{}", tables::table1(&SimConfig::c240()).render());
    println!("{}", tables::table2(&suite).render());
    println!("{}", tables::table3(&suite).render());
    println!("{}", tables::table4(&suite).render());
    println!("{}", tables::table5(&suite).render());
    println!("{}", figures::fig2(&SimConfig::c240()));
    println!("{}", figures::fig3(&suite).render());
    println!("{}", worked_example(&SimConfig::c240(), &ChimeConfig::c240()));
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
