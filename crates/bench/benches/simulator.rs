//! Raw throughput of the reproduction machinery itself: simulator
//! element rate, assembler, chime partitioner, and compiler.

use std::hint::black_box;

use c240_sim::{Cpu, SimConfig};
use macs_bench::timing::Bench;
use macs_bench::triad_loop;
use macs_compiler::{compile, CompileOptions, Kernel};
use macs_compiler::{load, param};
use macs_core::{partition_chimes, ChimeConfig};

fn bench_simulator_throughput() {
    let strips = 100i64;
    let program = triad_loop(strips, 128);
    let elements = (strips as u64) * 128 * 5; // 5 vector ops per strip
    let mut g = Bench::group("simulator");
    let r = g.bench("triad_elements", || {
        let mut cpu = Cpu::new(SimConfig::c240());
        cpu.set_areg(1, 0);
        cpu.set_areg(2, 320000);
        cpu.set_areg(3, 640000);
        cpu.set_sreg_fp(1, 2.0);
        black_box(cpu.run(&program).unwrap().cycles)
    });
    let elems_per_sec = elements as f64 / (r.median_ns / 1e9);
    println!(
        "simulator/triad_elements: {:.1} Melem/s",
        elems_per_sec / 1e6
    );
}

fn bench_assembler() {
    let source = lfk_text();
    let mut g = Bench::group("assembler");
    g.bench("lfk1_listing", || {
        black_box(c240_isa::asm::assemble(&source).unwrap())
    });
}

fn lfk_text() -> String {
    "L7:
        mov s0,vl
        ld.l 40120(a5),v0
        mul.d v0,s1,v1
        ld.l 40128(a5),v2
        mul.d v2,s3,v0
        add.d v1,v0,v3
        ld.l 32032(a5),v1
        mul.d v1,v3,v2
        add.d v2,s7,v0
        st.l v0,24024(a5)
        add.w #1024,a5
        sub.w #128,s0
        lt.w #0,s0
        jbrs.t L7
        halt"
        .to_string()
}

fn bench_partitioner() {
    let p = c240_isa::asm::assemble(&lfk_text()).unwrap();
    let l = p.innermost_loop().unwrap();
    let body = p.loop_body(l).to_vec();
    let mut g = Bench::group("chime_partitioner");
    g.bench("lfk1", || {
        black_box(partition_chimes(&body, &ChimeConfig::c240()))
    });
}

fn bench_compiler() {
    let kernel = Kernel::new("triad")
        .array("x", 6000)
        .array("y", 6000)
        .array("z", 6000)
        .param("a", 3.0)
        .store("x", 0, load("y", 0) + param("a") * load("z", 0));
    let mut g = Bench::group("compiler");
    g.bench("triad", || {
        black_box(compile(&kernel, 5000, CompileOptions::default()).unwrap())
    });
}

fn main() {
    bench_simulator_throughput();
    bench_assembler();
    bench_partitioner();
    bench_compiler();
}
