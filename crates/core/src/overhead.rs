//! Outer-loop and startup overhead modeling — the extension the paper
//! points to for its unexplained kernels (§4.4, LFK2: "Outer loop
//! overhead and scalar code could be modeled as in [5]").
//!
//! The steady-state MACS bound deliberately ignores everything that
//! happens *between* entries of the vectorized inner loop: the scalar
//! control block of the enclosing loop, pipeline fill on entry, and
//! drain on exit. For kernels whose vector segments are short (LFK 2's
//! halving tree, LFK 6's triangle, LFK 4's three bands) these terms
//! dominate. [`OverheadModel`] estimates them statically from the
//! program, and [`segmented_macs_cpl`] combines them with per-segment
//! chime costs into an *extended bound* `t_MACS+O`.

use c240_isa::{InstrClass, Instruction, Program};

use crate::chime::{partition_chimes, ChimeConfig};

/// Static per-entry overhead costs of a program's inner loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverheadModel {
    /// Scalar cycles executed per inner-loop *entry* (the enclosing
    /// loop's control block: issue slots, branch penalties, scalar
    /// memory accesses).
    pub scalar_cycles_per_entry: f64,
    /// Pipeline fill + drain cycles per entry (first results must
    /// traverse `X + Y`; the last chime must drain before the scalar
    /// epilogue can observe results).
    pub startup_cycles_per_entry: f64,
}

impl OverheadModel {
    /// Total per-entry overhead in cycles.
    pub fn per_entry(&self) -> f64 {
        self.scalar_cycles_per_entry + self.startup_cycles_per_entry
    }
}

/// Cost constants for scalar instructions, matching the simulator's
/// scalar timing model. Roughly half of the plain scalar control block
/// is masked under the preceding segment's vector drain (the [5]-style
/// models the paper cites fit such masking factors empirically); memory
/// accesses and taken branches serialize and are charged in full.
const ISSUE: f64 = 1.0;
const SCALAR_MASK: f64 = 0.5;
const BRANCH_PENALTY: f64 = 2.0;
const SCALAR_MEM_EXTRA: f64 = 3.0; // cache hit + port arbitration

/// Estimates the per-entry overhead of a program's innermost loop:
/// the instructions of its *enclosing* loop body (outside the inner
/// loop) are charged as the scalar control block, and the inner loop's
/// first/last chime latencies as fill/drain.
///
/// Returns `None` if the program has no loop.
pub fn analyze_overhead(program: &Program, config: &ChimeConfig) -> Option<OverheadModel> {
    let loops = program.loops();
    let inner = program.innermost_loop()?;

    // The tightest loop strictly containing the inner loop, if any.
    let enclosing = loops
        .iter()
        .filter(|l| l.head <= inner.head && l.branch >= inner.branch && l.len() > inner.len())
        .min_by_key(|l| l.len());

    let mut scalar = 0.0;
    if let Some(outer) = enclosing {
        for idx in outer.body() {
            if idx >= inner.head && idx <= inner.branch {
                continue;
            }
            let ins = &program.instructions()[idx];
            scalar += match ins.class() {
                InstrClass::ScalarMem => ISSUE + SCALAR_MEM_EXTRA,
                InstrClass::Control => ISSUE + BRANCH_PENALTY,
                InstrClass::Scalar => ISSUE * SCALAR_MASK,
                // Vector work outside the inner loop is epilogue/prologue
                // work per entry: charge its serial latency.
                InstrClass::VectorFp | InstrClass::VectorMem => {
                    let t = config
                        .timing
                        .get(ins.timing_class().expect("vector instruction"));
                    t.x + t.y
                }
            };
        }
    }

    // Fill: the first element result of the deepest chained chime needs
    // X + Y per chain level; drain symmetric. Estimate from the largest
    // chime of the body.
    let body = program.loop_body(inner);
    let part = partition_chimes(body, config);
    let _ = &part; // the partition validates the body shape
    let y_max = [
        c240_isa::TimingClass::Load,
        c240_isa::TimingClass::Mul,
        c240_isa::TimingClass::Add,
    ]
    .iter()
    .map(|&c| config.timing.get(c).y)
    .fold(0.0, f64::max);
    let startup = 2.0 + y_max;

    Some(OverheadModel {
        scalar_cycles_per_entry: scalar,
        startup_cycles_per_entry: startup,
    })
}

/// The extended bound `t_MACS+O` in CPL for a loop executed as a
/// sequence of *segments* (vector-entry lengths in iterations):
/// each segment is strip-mined at the hardware vector length, charged
/// its chime costs at the actual strip VLs, plus one per-entry overhead.
///
/// # Panics
///
/// Panics if `segments` is empty or contains a zero.
///
/// # Example
///
/// Short segments pay their startup over fewer iterations:
///
/// ```
/// use c240_isa::asm::assemble;
/// use macs_core::{segmented_macs_cpl, ChimeConfig, OverheadModel};
///
/// let p = assemble("L:\n ld.l 0(a1),v0\n add.d v0,v0,v1\n jbrs.t L\n halt")?;
/// let body = p.loop_body(p.innermost_loop().unwrap());
/// let overhead = OverheadModel {
///     scalar_cycles_per_entry: 20.0,
///     startup_cycles_per_entry: 14.0,
/// };
/// let cfg = ChimeConfig::c240();
/// let long = segmented_macs_cpl(body, &cfg, &[1024], &overhead);
/// let short = segmented_macs_cpl(body, &cfg, &[16; 64], &overhead);
/// assert!(short > 2.0 * long);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn segmented_macs_cpl(
    body: &[Instruction],
    config: &ChimeConfig,
    segments: &[u64],
    overhead: &OverheadModel,
) -> f64 {
    assert!(!segments.is_empty(), "need at least one segment");
    let max_vl = u64::from(config.vl);
    let mut total_cycles = 0.0;
    let mut total_iterations = 0u64;
    for &len in segments {
        assert!(len > 0, "segments must be nonempty");
        total_iterations += len;
        let mut remaining = len;
        while remaining > 0 {
            let vl = remaining.min(max_vl) as u32;
            let part = partition_chimes(body, &config.clone().with_vl(vl));
            total_cycles += part.cycles();
            remaining -= u64::from(vl);
        }
        total_cycles += overhead.per_entry();
    }
    total_cycles / total_iterations as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use c240_isa::asm::assemble;

    fn nested() -> Program {
        assemble(
            "   mov #10,a0
            outer:
                mov #4096,a1
                mov #1000,s0
                ld.w 0(a7),a2
            L:
                mov s0,vl
                ld.l 0(a1),v0
                add.d v0,v0,v1
                st.l v1,0(a2)
                add.w #1024,a1
                add.w #1024,a2
                sub.w #128,s0
                lt.w #0,s0
                jbrs.t L
                sub.w #1,a0
                lt.w #0,a0
                jbrs.t outer
                halt",
        )
        .unwrap()
    }

    #[test]
    fn overhead_counts_enclosing_block() {
        let m = analyze_overhead(&nested(), &ChimeConfig::c240()).unwrap();
        // Outer block: 3 movs (masked half) + 1 scalar load + sub + cmp
        // + branch.
        assert!(m.scalar_cycles_per_entry >= 8.0, "{m:?}");
        assert!(m.scalar_cycles_per_entry <= 20.0, "{m:?}");
        assert!(m.startup_cycles_per_entry >= 12.0);
    }

    #[test]
    fn no_loop_no_overhead() {
        let p = assemble("nop\nhalt").unwrap();
        assert!(analyze_overhead(&p, &ChimeConfig::c240()).is_none());
    }

    #[test]
    fn innermost_only_loop_has_no_scalar_block() {
        let p = assemble(
            "L:
            ld.l 0(a1),v0
            jbrs.t L
            halt",
        )
        .unwrap();
        let m = analyze_overhead(&p, &ChimeConfig::c240()).unwrap();
        assert_eq!(m.scalar_cycles_per_entry, 0.0);
    }

    #[test]
    fn segmented_bound_grows_as_segments_shrink() {
        let p = nested();
        let body = p.loop_body(p.innermost_loop().unwrap());
        let cfg = ChimeConfig::c240();
        let m = analyze_overhead(&p, &cfg).unwrap();
        let long = segmented_macs_cpl(body, &cfg, &[1024], &m);
        let short = segmented_macs_cpl(body, &cfg, &[64; 16], &m);
        let tiny = segmented_macs_cpl(body, &cfg, &[8; 128], &m);
        assert!(
            short > long * 1.15,
            "short-segment CPL {short} vs long {long}"
        );
        assert!(tiny > short * 1.5, "tiny {tiny} vs short {short}");
    }

    #[test]
    #[should_panic(expected = "at least one segment")]
    fn empty_segments_panic() {
        let p = nested();
        let body = p.loop_body(p.innermost_loop().unwrap());
        let m = OverheadModel {
            scalar_cycles_per_entry: 0.0,
            startup_cycles_per_entry: 0.0,
        };
        let _ = segmented_macs_cpl(body, &ChimeConfig::c240(), &[], &m);
    }
}
