//! Measurement harness: running programs on the simulator and converting
//! to the paper's units (CPL, CPF, MFLOPS).

use std::fmt;

use c240_isa::{Program, CLOCK_MHZ};
use c240_sim::{CounterProbe, Cpu, RunStats, SimError};

/// One measured run in the paper's units.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Raw simulator statistics.
    pub stats: RunStats,
    /// Source-loop iterations the run executed.
    pub iterations: u64,
    /// Source flops per iteration (the CPF divisor).
    pub flops_per_iteration: u32,
}

impl Measurement {
    /// Cycles per source-loop iteration.
    pub fn cpl(&self) -> f64 {
        self.stats.cpl(self.iterations)
    }

    /// Cycles per (source) floating point operation.
    pub fn cpf(&self) -> f64 {
        self.cpl() / f64::from(self.flops_per_iteration.max(1))
    }

    /// Delivered MFLOPS at the C-240 clock, based on *source* flops
    /// (the paper's accounting — compiler-added work does not count as
    /// useful flops).
    pub fn mflops(&self) -> f64 {
        CLOCK_MHZ / self.cpf()
    }
}

impl fmt::Display for Measurement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.1} cycles over {} iterations = {:.3} CPL = {:.3} CPF = {:.2} MFLOPS",
            self.stats.cycles,
            self.iterations,
            self.cpl(),
            self.cpf(),
            self.mflops()
        )
    }
}

/// Runs `program` on `cpu` and expresses the result per source iteration.
///
/// The caller is responsible for having initialized memory and registers
/// on the CPU (the run keeps them, see [`Cpu::run`]).
///
/// # Errors
///
/// Propagates simulator errors (runaway loop, bad address).
pub fn measure(
    cpu: &mut Cpu,
    program: &Program,
    iterations: u64,
    flops_per_iteration: u32,
) -> Result<Measurement, SimError> {
    let stats = cpu.run(program)?;
    Ok(Measurement {
        stats,
        iterations,
        flops_per_iteration,
    })
}

/// Like [`measure`], but also collects the per-lane cycle attribution of
/// the run (see [`Cpu::run_probed`]).
///
/// # Errors
///
/// Propagates simulator errors (runaway loop, bad address).
pub fn measure_probed(
    cpu: &mut Cpu,
    program: &Program,
    iterations: u64,
    flops_per_iteration: u32,
) -> Result<(Measurement, CounterProbe), SimError> {
    let mut probe = CounterProbe::new();
    let stats = cpu.run_probed(program, &mut probe)?;
    Ok((
        Measurement {
            stats,
            iterations,
            flops_per_iteration,
        },
        probe,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use c240_isa::ProgramBuilder;
    use c240_sim::SimConfig;

    #[test]
    fn measure_simple_loop() {
        let mut b = ProgramBuilder::new();
        b.mov_int(1024, "s0");
        b.label("L");
        b.set_vl("s0");
        b.vload("a1", 0, "v0");
        b.vadd("v0", "v0", "v1");
        b.vstore("v1", "a2", 0);
        b.int_op_imm("add", 1024, "a1");
        b.int_op_imm("add", 1024, "a2");
        b.int_op_imm("sub", 128, "s0");
        b.cmp_imm("lt", 0, "s0");
        b.branch_true("L");
        b.halt();
        let p = b.build().unwrap();
        let mut cpu = Cpu::new(SimConfig::c240().without_refresh());
        cpu.set_areg(2, 80000);
        let m = measure(&mut cpu, &p, 1024, 1).unwrap();
        // Two memory chimes per iteration: ~2 CPL steady state plus
        // startup amortized over 8 strips.
        assert!(m.cpl() > 2.0 && m.cpl() < 2.4, "cpl {}", m.cpl());
        assert_eq!(m.cpf(), m.cpl());
        assert!((m.mflops() - CLOCK_MHZ / m.cpf()).abs() < 1e-9);
    }

    #[test]
    fn display_mentions_units() {
        let mut b = ProgramBuilder::new();
        b.nop();
        b.halt();
        let mut cpu = Cpu::new(SimConfig::c240());
        let m = measure(&mut cpu, &b.build().unwrap(), 1, 1).unwrap();
        let text = m.to_string();
        assert!(text.contains("CPL"));
        assert!(text.contains("MFLOPS"));
    }
}
