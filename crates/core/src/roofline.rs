//! Roofline classification: operational intensity against machine
//! ceilings (DESIGN.md §16).
//!
//! The MACS hierarchy attributes lost cycles to mechanisms; the Roofline
//! model answers the complementary first question — is this kernel
//! *compute-bound* or *memory-bound* on this machine? This module joins
//! the two: operational intensity comes from the MA workload (source
//! flops per memory word under perfect compilation), ceilings come from
//! [`MachineDescription`] (peak vector flop rate, sustained memory
//! bandwidth), and the resulting analytic [`BoundClass`] is
//! cross-checked against the measured stall taxonomy of a probed run
//! ([`StallRollup`]) to produce a typed [`RooflineVerdict`].
//!
//! Ceiling formulas (all pure functions of the machine description, so
//! they hold for every preset):
//!
//! ```text
//! peak     = fp_pipes × cpus × clock                      [MFLOPS]
//! bw       = min(min(cpus, ports), banks/(busy × refresh)) [words/cycle]
//! ridge    = peak_flops_per_cycle / bw                     [flops/word]
//! attain   = min(peak, intensity × bw × clock)             [MFLOPS]
//! ```
//!
//! A kernel with intensity at or above the ridge is compute-bound: the
//! flat flop-rate roof binds before the bandwidth slope does.
//!
//! Two intensities matter, mirroring the MA→MAC distinction. The **MA
//! intensity** ([`operational_intensity`]) divides source flops by the
//! memory words a perfect compiler would move — where the kernel
//! *could* sit under the roof. The **compiled intensity**
//! ([`compiled_intensity`]) divides the same source flops by the words
//! the compiled loop actually moves (reloads included) — where the
//! kernel *does* sit, and therefore what [`BoundClass`] is judged on.
//! LFK7 is the canonical split: 4.0 flops/word at the MA level
//! (compute-bound on paper) but 1.6 compiled (memory-bound on the
//! machine), exactly the paper's compiler-inserted-reload story.

use std::fmt;

use c240_isa::MachineDescription;
use c240_sim::StallRollup;
use macs_compiler::MaWorkload;

use crate::bounds::KernelBounds;
use crate::diagnose::Finding;

/// Schema identifier of roofline rows (JSON artifact and served sweep
/// row fields).
pub const ROOFLINE_SCHEMA: &str = "c240-roofline/v1";

/// Which roof binds a point: the bandwidth slope or the flop-rate
/// ceiling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BoundClass {
    /// Intensity below the ridge: the bandwidth slope binds.
    Memory,
    /// Intensity at or above the ridge: the flop-rate ceiling binds.
    Compute,
}

impl BoundClass {
    /// Stable snake_case name used in JSON rows, CSV columns, and metric
    /// labels.
    pub fn key(self) -> &'static str {
        match self {
            BoundClass::Memory => "memory",
            BoundClass::Compute => "compute",
        }
    }
}

impl fmt::Display for BoundClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.key())
    }
}

/// The roofline ceilings of one machine at one CPU count.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineCeilings {
    /// Machine preset name the ceilings were read from.
    pub machine: String,
    /// CPU count the ceilings are scaled to.
    pub cpus: u32,
    /// Clock rate in MHz (kept so attainable MFLOPS is derivable from
    /// the words/cycle bandwidth without re-reading the description).
    pub clock_mhz: f64,
    /// Peak vector flop rate in MFLOPS (`fp_pipes × cpus × clock`).
    pub peak_mflops: f64,
    /// Sustained memory bandwidth in words per cycle
    /// (`min(min(cpus, ports), banks / (bank_busy × refresh_factor))`).
    pub bandwidth_words_per_cycle: f64,
    /// The ridge point in flops per word — where the two roofs meet.
    pub ridge: f64,
}

impl MachineCeilings {
    /// Reads the ceilings off a machine description at `cpus` CPUs.
    pub fn of(machine: &MachineDescription, cpus: u32) -> Self {
        MachineCeilings {
            machine: machine.name.clone(),
            cpus,
            clock_mhz: machine.clock_mhz,
            peak_mflops: machine.peak_mflops(cpus),
            bandwidth_words_per_cycle: machine.sustained_bandwidth_words_per_cycle(cpus),
            ridge: machine.ridge_intensity(cpus),
        }
    }

    /// Sustained bandwidth in Mwords/s.
    pub fn bandwidth_mwords(&self) -> f64 {
        self.bandwidth_words_per_cycle * self.clock_mhz
    }

    /// The roof height at `intensity`:
    /// `min(peak, intensity × bandwidth)`.
    pub fn attainable_mflops(&self, intensity: f64) -> f64 {
        self.peak_mflops.min(intensity * self.bandwidth_mwords())
    }

    /// Classifies an intensity against the ridge (at-the-ridge counts
    /// as compute-bound: the flop ceiling already binds there).
    pub fn classify(&self, intensity: f64) -> BoundClass {
        if intensity >= self.ridge {
            BoundClass::Compute
        } else {
            BoundClass::Memory
        }
    }

    /// Places a kernel with the given operational intensity under this
    /// roof.
    pub fn place(&self, intensity: f64) -> RooflinePoint {
        RooflinePoint {
            intensity,
            attainable_mflops: self.attainable_mflops(intensity),
            ceiling: self.peak_mflops,
            bound_class: self.classify(intensity),
        }
    }
}

/// Operational intensity of a kernel in source flops per memory word,
/// from its MA workload: `(f_a + f_m) / (loads + stores)` — perfect
/// compilation, perfect reuse. Infinite for a kernel that touches no
/// memory.
pub fn operational_intensity(ma: &MaWorkload) -> f64 {
    let words = ma.loads + ma.stores;
    if words == 0 {
        f64::INFINITY
    } else {
        f64::from(ma.f_a + ma.f_m) / f64::from(words)
    }
}

/// Operational intensity of the *compiled* loop: source flops (the CPF
/// numerator convention, `f_a + f_m` from the MA workload) per memory
/// word the generated code actually moves (`l' + s'` from the MAC
/// workload, compiler reloads included). This is the intensity
/// [`BoundClass`] should be judged on — the machine streams the
/// compiled traffic, not the ideal. Infinite for a loop with no vector
/// memory operations.
pub fn compiled_intensity(bounds: &KernelBounds) -> f64 {
    let words = bounds.mac.loads + bounds.mac.stores;
    if words == 0 {
        f64::INFINITY
    } else {
        f64::from(bounds.flops) / f64::from(words)
    }
}

/// One kernel placed under one machine's roof.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RooflinePoint {
    /// Operational intensity in flops per word
    /// ([`operational_intensity`]).
    pub intensity: f64,
    /// The roof height at that intensity, in MFLOPS.
    pub attainable_mflops: f64,
    /// The flat compute ceiling, in MFLOPS (the roof far to the right).
    pub ceiling: f64,
    /// Which roof binds.
    pub bound_class: BoundClass,
}

/// The measured counterpart of [`MachineCeilings::classify`]: which
/// resource a probed run *occupied* longer.
///
/// The rule deliberately weighs useful streaming time, not just stalls —
/// a unit-stride memory-bound loop keeps the load/store pipe saturated
/// with almost no attributed bank waits, so a stall-only rule would
/// misread it. Memory side: load/store streaming plus bank/refresh/
/// contention and scalar-memory waits. Compute side: the busier FP
/// pipe's streaming plus FP-lane structural stalls (bubbles, pair
/// conflicts, barriers, drains). Chain waits and scalar issue
/// interlocks belong to neither side (see
/// [`c240_sim::StallRollup`]). A tie reads as memory-bound: if the
/// memory port is occupied as long as the busiest FP pipe, the
/// bandwidth slope is already binding.
pub fn measured_class(rollup: &StallRollup) -> BoundClass {
    if rollup.memory_occupancy() >= rollup.compute_occupancy() {
        BoundClass::Memory
    } else {
        BoundClass::Compute
    }
}

/// Outcome of cross-checking the analytic classification against the
/// measured stall taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RooflineVerdict {
    /// Analytic and measured classifications agree.
    Agree {
        /// The shared classification.
        class: BoundClass,
    },
    /// The model and the measurement point at different roofs.
    Disagree {
        /// What the intensity-vs-ridge rule said.
        analytic: BoundClass,
        /// What the stall-taxonomy rollup said.
        measured: BoundClass,
    },
    /// No probe data was available (e.g. lockstep co-sim rows, which
    /// run unprobed), so only the analytic class stands.
    Unchecked,
}

impl RooflineVerdict {
    /// Compares the analytic class against a probed run's rollup.
    pub fn check(analytic: BoundClass, rollup: &StallRollup) -> Self {
        let measured = measured_class(rollup);
        if analytic == measured {
            RooflineVerdict::Agree { class: analytic }
        } else {
            RooflineVerdict::Disagree { analytic, measured }
        }
    }

    /// Stable snake_case name used in JSON rows and CSV columns.
    pub fn key(self) -> &'static str {
        match self {
            RooflineVerdict::Agree { .. } => "agree",
            RooflineVerdict::Disagree { .. } => "disagree",
            RooflineVerdict::Unchecked => "unchecked",
        }
    }

    /// Whether the verdict is a disagreement.
    pub fn is_disagreement(self) -> bool {
        matches!(self, RooflineVerdict::Disagree { .. })
    }

    /// The [`Finding`] a disagreement contributes to the diagnosis
    /// stream; `None` for agree/unchecked.
    pub fn finding(self, point: &RooflinePoint, ridge: f64) -> Option<Finding> {
        match self {
            RooflineVerdict::Disagree { analytic, measured } => Some(Finding::RooflineMismatch {
                analytic,
                measured,
                intensity: point.intensity,
                ridge,
            }),
            _ => None,
        }
    }
}

impl fmt::Display for RooflineVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.key())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c240_ceilings() -> MachineCeilings {
        MachineCeilings::of(&MachineDescription::c240(), 1)
    }

    #[test]
    fn c240_roof_numbers() {
        let c = c240_ceilings();
        assert_eq!(c.machine, "c240");
        assert_eq!(c.peak_mflops, 50.0);
        assert_eq!(c.bandwidth_words_per_cycle, 1.0);
        assert_eq!(c.bandwidth_mwords(), 25.0);
        assert_eq!(c.ridge, 2.0);
        // Below the ridge the slope binds, above it the flat roof does.
        assert_eq!(c.attainable_mflops(1.0), 25.0);
        assert_eq!(c.attainable_mflops(4.0), 50.0);
        assert_eq!(c.classify(1.999), BoundClass::Memory);
        assert_eq!(c.classify(2.0), BoundClass::Compute);
    }

    #[test]
    fn lfk1_places_memory_bound() {
        // LFK1's MA workload: 5 flops over 3 memory words.
        let ma = MaWorkload {
            f_a: 2,
            f_m: 3,
            loads: 2,
            stores: 1,
        };
        let i = operational_intensity(&ma);
        assert!((i - 5.0 / 3.0).abs() < 1e-12);
        let p = c240_ceilings().place(i);
        assert_eq!(p.bound_class, BoundClass::Memory);
        assert!((p.attainable_mflops - 25.0 * 5.0 / 3.0).abs() < 1e-9);
        assert_eq!(p.ceiling, 50.0);
    }

    #[test]
    fn no_memory_is_infinitely_intense() {
        let ma = MaWorkload {
            f_a: 1,
            f_m: 0,
            loads: 0,
            stores: 0,
        };
        let i = operational_intensity(&ma);
        assert!(i.is_infinite());
        let p = c240_ceilings().place(i);
        assert_eq!(p.bound_class, BoundClass::Compute);
        assert_eq!(p.attainable_mflops, 50.0);
    }

    #[test]
    fn verdicts_and_findings() {
        let mem_rollup = StallRollup {
            ld_busy: 10.0,
            fp_busy: 4.0,
            memory_stalls: 1.0,
            compute_stalls: 2.0,
        };
        assert_eq!(measured_class(&mem_rollup), BoundClass::Memory);
        let v = RooflineVerdict::check(BoundClass::Memory, &mem_rollup);
        assert_eq!(
            v,
            RooflineVerdict::Agree {
                class: BoundClass::Memory
            }
        );
        assert!(!v.is_disagreement());
        let point = c240_ceilings().place(1.0);
        assert!(v.finding(&point, 2.0).is_none());

        let v = RooflineVerdict::check(BoundClass::Compute, &mem_rollup);
        assert!(v.is_disagreement());
        assert_eq!(v.key(), "disagree");
        let finding = v.finding(&point, 2.0).expect("disagreement finds");
        assert!(finding.to_string().contains("roofline"));
        assert!(RooflineVerdict::Unchecked.finding(&point, 2.0).is_none());
    }

    #[test]
    fn keys_are_stable() {
        assert_eq!(BoundClass::Memory.key(), "memory");
        assert_eq!(BoundClass::Compute.key(), "compute");
        assert_eq!(RooflineVerdict::Unchecked.key(), "unchecked");
        assert_eq!(ROOFLINE_SCHEMA, "c240-roofline/v1");
    }
}
