//! A dependency-free parallel map for independent model evaluations.
//!
//! The MACS workflow is embarrassingly parallel at the (kernel ×
//! [`SimConfig`]) granularity: suite reports, ablation grids, and
//! contention sweeps all evaluate independent points. This module gives
//! them a minimal scoped-thread pool — no work stealing, no channels,
//! just an index-ordered queue drained by `std::thread::scope` workers —
//! so results are returned in input order regardless of which thread
//! finished first (deterministic output is what makes the reports
//! byte-diffable across machines).
//!
//! The worker count defaults to the machine's available parallelism and
//! can be pinned with the `MACS_THREADS` environment variable (`1`
//! forces fully serial evaluation, useful for timing baselines).
//!
//! [`SimConfig`]: c240_sim::SimConfig

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Renders a `catch_unwind` payload as the human-readable panic message.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Environment variable overriding the worker count.
pub const THREADS_ENV: &str = "MACS_THREADS";

/// Parses a `MACS_THREADS`-style value: a positive thread count, or
/// `None` for anything absent or unusable (falls back to the default).
///
/// A value that is *set but unusable* — empty, zero, negative, garbage,
/// or beyond `usize` — is rejected with a warning on stderr rather than
/// silently: a user who typed `MACS_THREADS=0` expecting "serial" or
/// "auto" should learn their run is not configured the way they think.
fn parse_threads(value: Option<&str>) -> Option<usize> {
    let raw = value?;
    let parsed = raw.trim().parse::<usize>().ok().filter(|&n| n > 0);
    if parsed.is_none() {
        eprintln!(
            "warning: ignoring {THREADS_ENV}={raw:?}: expected a positive \
             integer thread count (e.g. {THREADS_ENV}=1 for serial); \
             falling back to available parallelism"
        );
    }
    parsed
}

/// The worker count: `MACS_THREADS` if set to a positive integer,
/// otherwise the machine's available parallelism (1 if unknown).
/// Unusable `MACS_THREADS` values warn on stderr (see `parse_threads`)
/// before falling back.
pub fn threads() -> usize {
    parse_threads(std::env::var(THREADS_ENV).ok().as_deref()).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Maps `f` over `items` on up to [`threads()`] scoped workers,
/// returning results **in input order**.
///
/// Items are claimed from a shared queue one at a time, so uneven work
/// (a fast kernel next to a slow ablation point) balances naturally.
/// With one worker (or one item) it degenerates to a plain serial map
/// with no threads spawned.
///
/// # Panics
///
/// If `f` panics on some item, the pool stops handing out further work,
/// lets in-flight items finish, and re-raises a panic that names the
/// **lowest failing input index** and the original message — instead of
/// poisoning the scope join and losing which input failed. (Supervised
/// evaluation that *recovers* from per-point panics is
/// [`crate::supervise`]'s job; this map stays all-or-nothing.)
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let workers = threads().min(items.len());
    if workers <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(index, item)| {
                catch_unwind(AssertUnwindSafe(|| f(item))).unwrap_or_else(|payload| {
                    panic!(
                        "parallel_map: closure panicked on item {index}: {}",
                        panic_message(payload.as_ref())
                    )
                })
            })
            .collect();
    }
    let queue = Mutex::new(items.into_iter().enumerate());
    let results: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::new());
    let failure: Mutex<Option<(usize, String)>> = Mutex::new(None);
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                // The queue lock cannot be poisoned: nothing inside the
                // critical section can panic.
                let next = queue.lock().expect("queue lock").next();
                let Some((index, item)) = next else {
                    break;
                };
                match catch_unwind(AssertUnwindSafe(|| f(item))) {
                    Ok(result) => {
                        results.lock().expect("results lock").push((index, result));
                    }
                    Err(payload) => {
                        let message = panic_message(payload.as_ref());
                        let mut slot = failure.lock().expect("failure lock");
                        // Keep the lowest index so the re-raised message
                        // is deterministic regardless of schedule.
                        if slot.as_ref().is_none_or(|(i, _)| index < *i) {
                            *slot = Some((index, message));
                        }
                        drop(slot);
                        stop.store(true, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    if let Some((index, message)) = failure.into_inner().expect("workers finished") {
        panic!("parallel_map: closure panicked on item {index}: {message}");
    }
    let mut pairs = results.into_inner().expect("workers finished");
    pairs.sort_by_key(|&(index, _)| index);
    pairs.into_iter().map(|(_, result)| result).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        // Stagger the work so later items finish first on any schedule.
        let out = parallel_map((0..64u64).collect(), |i| {
            if i % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            i * i
        });
        assert_eq!(out, (0..64u64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_singleton_inputs_work() {
        assert_eq!(parallel_map(Vec::<u32>::new(), |x| x), Vec::<u32>::new());
        assert_eq!(parallel_map(vec![9], |x| x + 1), vec![10]);
    }

    #[test]
    fn env_override_parses_strictly() {
        assert_eq!(parse_threads(Some("4")), Some(4));
        assert_eq!(parse_threads(Some(" 2 ")), Some(2));
        assert_eq!(parse_threads(Some("0")), None);
        assert_eq!(parse_threads(Some("-3")), None);
        assert_eq!(parse_threads(Some("lots")), None);
        assert_eq!(parse_threads(None), None);
    }

    #[test]
    fn unusable_values_reject_rather_than_misconfigure() {
        // Empty / whitespace-only: set but meaningless.
        assert_eq!(parse_threads(Some("")), None);
        assert_eq!(parse_threads(Some("   ")), None);
        // Garbage and mixed garbage.
        assert_eq!(parse_threads(Some("4x")), None);
        assert_eq!(parse_threads(Some("1.5")), None);
        assert_eq!(parse_threads(Some("0x10")), None);
        // Beyond usize::MAX overflows the parse and is rejected, not
        // clamped to some surprising value.
        assert_eq!(parse_threads(Some("99999999999999999999999999")), None);
        // A huge-but-representable count is accepted verbatim; the pool
        // clamps to the item count so it is harmless.
        assert_eq!(parse_threads(Some("1000000")), Some(1_000_000));
    }

    #[test]
    fn threads_is_positive() {
        assert!(threads() >= 1);
    }

    #[test]
    fn panic_names_the_failing_item() {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            parallel_map((0..32u64).collect(), |i| {
                if i == 13 {
                    panic!("bad point LFK{i}");
                }
                i
            })
        }))
        .unwrap_err();
        let message = panic_message(caught.as_ref());
        assert!(message.contains("item 13"), "got: {message}");
        assert!(message.contains("bad point LFK13"), "got: {message}");
    }

    #[test]
    fn panic_in_serial_path_names_the_item_too() {
        // One item forces the no-thread path.
        let caught = catch_unwind(AssertUnwindSafe(|| {
            parallel_map(vec![7u64], |_| -> u64 { panic!("lone failure") })
        }))
        .unwrap_err();
        let message = panic_message(caught.as_ref());
        assert!(message.contains("item 0"), "got: {message}");
        assert!(message.contains("lone failure"), "got: {message}");
    }

    #[test]
    fn lowest_failing_index_wins_when_several_panic() {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            parallel_map((0..64u64).collect(), |i| {
                if i % 2 == 1 {
                    panic!("odd item");
                }
                i
            })
        }))
        .unwrap_err();
        let message = panic_message(caught.as_ref());
        // Item 1 is claimed first; later odd items may also fail, but
        // the report must stay deterministic.
        assert!(message.contains("item 1:"), "got: {message}");
    }
}
