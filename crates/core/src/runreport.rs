//! Structured run reports: the machine-readable artifact bundling one
//! kernel's measured statistics, stall attribution, pipe utilization,
//! and MACS bounds/gaps.
//!
//! The JSON layout is versioned by [`RUN_REPORT_SCHEMA`]; tooling that
//! tracks performance across commits (the perf-trajectory harness)
//! parses these reports, so field names are stable — additions bump the
//! schema suffix.

use c240_obs::json::Json;
use c240_sim::{Lane, StallCause};

use crate::analysis::KernelAnalysis;

/// Version tag embedded in every report.
pub const RUN_REPORT_SCHEMA: &str = "c240-run-report/v1";

/// One kernel's analysis packaged for serialization.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Kernel number (0 for ad-hoc programs).
    pub id: u32,
    /// The full analysis the report serializes.
    pub analysis: KernelAnalysis,
}

impl RunReport {
    /// Packages `analysis` under kernel number `id`.
    pub fn new(id: u32, analysis: KernelAnalysis) -> Self {
        RunReport { id, analysis }
    }

    /// The complete report as a JSON value (see [`RUN_REPORT_SCHEMA`]).
    pub fn to_json(&self) -> Json {
        let a = &self.analysis;
        let stats = &a.measured.stats;
        let iters = a.measured.iterations;

        let counts = &stats.instructions;
        let instructions = Json::obj()
            .field("vector_mem", counts.vector_mem)
            .field("vector_fp", counts.vector_fp)
            .field("scalar_mem", counts.scalar_mem)
            .field("scalar", counts.scalar)
            .field("control", counts.control)
            .field("total", counts.total());

        let waits = stats.memory_waits;
        let memory = Json::obj()
            .field("accesses", stats.memory_accesses)
            .field("wait_cycles", stats.memory_wait_cycles)
            .field(
                "waits",
                Json::obj()
                    .field("bank_busy", waits.bank_busy)
                    .field("refresh", waits.refresh)
                    .field("contention", waits.contention),
            )
            .field("cache_hits", stats.cache_hits)
            .field("cache_misses", stats.cache_misses);

        let bounds = Json::obj()
            .field("t_ma_cpl", a.bounds.t_ma_cpl())
            .field("t_mac_cpl", a.bounds.t_mac_cpl())
            .field("t_macs_cpl", a.bounds.t_macs_cpl())
            .field("t_ma_cpf", a.bounds.t_ma_cpf())
            .field("t_mac_cpf", a.bounds.t_mac_cpf())
            .field("t_macs_cpf", a.bounds.t_macs_cpf())
            .field("pct_ma", a.pct_ma())
            .field("pct_mac", a.pct_mac())
            .field("pct_macs", a.pct_macs());

        let ax = Json::obj()
            .field("t_a_cpl", a.t_a_cpl())
            .field("t_x_cpl", a.t_x_cpl())
            .field("t_p_cpl", a.t_p_cpl())
            .field("overlap", a.ax_overlap());

        let mut lanes = Json::obj();
        for (lane, acct) in a.telemetry.lanes() {
            let mut stalls = Json::obj();
            for cause in StallCause::ALL {
                stalls = stalls.field(cause.key(), acct.stalls.get(cause));
            }
            lanes = lanes.field(
                lane.key(),
                Json::obj()
                    .field("busy", acct.busy)
                    .field("stalled", acct.stalls.total())
                    .field("idle", acct.idle)
                    .field("utilization", acct.utilization())
                    .field("stalls", stalls),
            );
        }

        let totals = a.telemetry.totals();
        let mut stall_totals = Json::obj();
        for cause in StallCause::ALL {
            stall_totals = stall_totals.field(cause.key(), totals.get(cause));
        }

        let hottest: Vec<Json> = a
            .telemetry
            .hottest_pcs(8)
            .into_iter()
            .map(|(pc, cycles)| Json::obj().field("pc", pc).field("stall_cycles", cycles))
            .collect();

        let findings: Vec<Json> = a
            .findings()
            .iter()
            .map(|f| Json::from(f.to_string()))
            .collect();

        Json::obj()
            .field("schema", RUN_REPORT_SCHEMA)
            .field(
                "kernel",
                Json::obj()
                    .field("id", self.id)
                    .field("name", a.bounds.name.as_str()),
            )
            .field(
                "run",
                Json::obj()
                    .field("cycles", stats.cycles)
                    .field("iterations", iters)
                    .field("cpl", a.t_p_cpl())
                    .field("cpf", a.t_p_cpf())
                    .field("mflops", a.measured.mflops())
                    .field("flops", stats.flops)
                    .field("branches_taken", stats.branches_taken)
                    .field("instructions", instructions),
            )
            .field("memory", memory)
            .field("bounds", bounds)
            .field("ax", ax)
            .field("lanes", lanes)
            .field("stall_totals", stall_totals)
            .field("stall_total_cycles", totals.total())
            .field("hottest_pcs", Json::Arr(hottest))
            .field("findings", Json::Arr(findings))
    }

    /// The lane accounts as CSV: one row per lane, a `busy`/`idle`
    /// column pair, then one column per stall cause.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("lane,busy,idle");
        for cause in StallCause::ALL {
            out.push(',');
            out.push_str(cause.key());
        }
        out.push('\n');
        for lane in Lane::ALL {
            let acct = self.analysis.telemetry.lane(lane);
            out.push_str(lane.key());
            out.push_str(&format!(",{},{}", acct.busy, acct.idle));
            for cause in StallCause::ALL {
                out.push_str(&format!(",{}", acct.stalls.get(cause)));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze_kernel;
    use crate::chime::ChimeConfig;
    use c240_isa::asm::assemble;
    use c240_sim::SimConfig;
    use macs_compiler::MaWorkload;

    fn sample_report() -> RunReport {
        let p = assemble(
            "   mov #1280,s0
            L:
                mov s0,vl
                ld.l 0(a1),v0
                mul.d v0,s1,v1
                st.l v1,0(a2)
                add.w #1024,a1
                add.w #1024,a2
                sub.w #128,s0
                lt.w #0,s0
                jbrs.t L
                halt",
        )
        .unwrap();
        let analysis = analyze_kernel(
            "sample",
            MaWorkload {
                f_a: 0,
                f_m: 1,
                loads: 1,
                stores: 1,
            },
            &p,
            1280,
            &|cpu| {
                cpu.set_sreg_fp(1, 2.0);
                cpu.set_areg(2, 80000);
            },
            &SimConfig::c240(),
            &ChimeConfig::c240(),
        )
        .unwrap();
        RunReport::new(0, analysis)
    }

    #[test]
    fn json_has_schema_and_core_sections() {
        let report = sample_report();
        let json = report.to_json();
        assert_eq!(
            json.get("schema").and_then(Json::as_str),
            Some(RUN_REPORT_SCHEMA)
        );
        for section in [
            "kernel",
            "run",
            "memory",
            "bounds",
            "ax",
            "lanes",
            "stall_totals",
            "hottest_pcs",
            "findings",
        ] {
            assert!(json.get(section).is_some(), "missing section {section}");
        }
        // Every lane and every cause key is present.
        let lanes = json.get("lanes").unwrap();
        for lane in Lane::ALL {
            let entry = lanes
                .get(lane.key())
                .unwrap_or_else(|| panic!("lane {lane}"));
            let stalls = entry.get("stalls").unwrap();
            for cause in StallCause::ALL {
                assert!(stalls.get(cause.key()).is_some(), "missing {cause}");
            }
        }
    }

    #[test]
    fn json_stall_sum_invariant() {
        let report = sample_report();
        let json = report.to_json();
        let cycles = json
            .get("run")
            .and_then(|r| r.get("cycles"))
            .and_then(Json::as_f64)
            .unwrap();
        // Per lane: busy + stalled + idle == cycles.
        let lanes = json.get("lanes").unwrap();
        for lane in Lane::ALL {
            let entry = lanes.get(lane.key()).unwrap();
            let busy = entry.get("busy").and_then(Json::as_f64).unwrap();
            let stalled = entry.get("stalled").and_then(Json::as_f64).unwrap();
            let idle = entry.get("idle").and_then(Json::as_f64).unwrap();
            assert!(
                (busy + stalled + idle - cycles).abs() < 1e-6 * cycles,
                "lane {lane}: {busy} + {stalled} + {idle} != {cycles}"
            );
        }
    }

    #[test]
    fn csv_has_header_and_all_lanes() {
        let report = sample_report();
        let csv = report.to_csv();
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        assert!(header.starts_with("lane,busy,idle,bank_busy"));
        assert_eq!(lines.count(), Lane::COUNT);
    }
}
