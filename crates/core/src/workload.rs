//! MAC workload counting: operation counts of the *compiler-generated*
//! code (§3.1).
//!
//! Where the MA model counts operations in the high-level source with
//! perfect reuse, the MAC model counts the vector operations actually
//! present in the compiled loop body — including compiler-inserted
//! reloads and spills.

use std::fmt;

use c240_isa::{Instruction, Pipe, Program};

/// Vector operation counts of a compiled loop body.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MacWorkload {
    /// Vector add-class instructions per iteration (`f'_a`).
    pub f_a: u32,
    /// Vector multiply-class instructions per iteration (`f'_m`).
    pub f_m: u32,
    /// Vector loads per iteration (`l'`).
    pub loads: u32,
    /// Vector stores per iteration (`s'`).
    pub stores: u32,
    /// Scalar memory instructions per iteration (not part of the MAC
    /// bound, but reported because they split chimes in the MACS bound).
    pub scalar_mem: u32,
}

impl MacWorkload {
    /// Counts the vector operations of an instruction sequence
    /// (typically one inner-loop body).
    pub fn of_body(body: &[Instruction]) -> Self {
        let mut w = MacWorkload::default();
        for ins in body {
            match ins {
                Instruction::VLoad { .. } => w.loads += 1,
                Instruction::VStore { .. } => w.stores += 1,
                _ if ins.is_vector_fp() => match ins.pipe() {
                    Some(Pipe::Add) => w.f_a += 1,
                    Some(Pipe::Multiply) => w.f_m += 1,
                    _ => {}
                },
                _ if ins.is_scalar_memory() => w.scalar_mem += 1,
                _ => {}
            }
        }
        w
    }

    /// Counts the vector operations of a program's innermost loop.
    ///
    /// Returns `None` if the program has no loop.
    pub fn of_program(program: &Program) -> Option<Self> {
        let l = program.innermost_loop()?;
        Some(Self::of_body(program.loop_body(l)))
    }

    /// `t'_f = max(f'_a, f'_m)` in CPL.
    pub fn t_f(&self) -> f64 {
        f64::from(self.f_a.max(self.f_m))
    }

    /// `t'_m = l' + s'` in CPL.
    pub fn t_m(&self) -> f64 {
        f64::from(self.loads + self.stores)
    }

    /// `t_MAC = max(t'_f, t'_m)` in CPL (Eq. 1 applied to compiled code).
    pub fn t_mac_cpl(&self) -> f64 {
        self.t_f().max(self.t_m())
    }

    /// `t_MAC` in CPF (Eq. 3): CPL divided by the *source* flop count
    /// `f_a + f_m` (the denominator is always the high-level count).
    ///
    /// # Panics
    ///
    /// Panics if `source_flops` is zero.
    pub fn t_mac_cpf(&self, source_flops: u32) -> f64 {
        assert!(source_flops > 0, "CPF undefined for zero flops");
        self.t_mac_cpl() / f64::from(source_flops)
    }
}

impl fmt::Display for MacWorkload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "f'_a={} f'_m={} l'={} s'={} (t'_f={}, t'_m={}, t_MAC={} CPL)",
            self.f_a,
            self.f_m,
            self.loads,
            self.stores,
            self.t_f(),
            self.t_m(),
            self.t_mac_cpl()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use c240_isa::asm::assemble;

    /// The paper's LFK1 compiled listing (§3.5).
    fn lfk1() -> Program {
        assemble(
            "L7:
                mov s0,vl
                ld.l 40120(a5),v0
                mul.d v0,s1,v1
                ld.l 40128(a5),v2
                mul.d v2,s3,v0
                add.d v1,v0,v3
                ld.l 32032(a5),v1
                mul.d v1,v3,v2
                add.d v2,s7,v0
                st.l v0,24024(a5)
                add.w #1024,a5
                sub.w #128,s0
                lt.w #0,s0
                jbrs.t L7
                halt",
        )
        .unwrap()
    }

    #[test]
    fn lfk1_mac_counts_match_paper() {
        let w = MacWorkload::of_program(&lfk1()).unwrap();
        assert_eq!(w.f_a, 2);
        assert_eq!(w.f_m, 3);
        assert_eq!(w.loads, 3);
        assert_eq!(w.stores, 1);
        assert_eq!(w.scalar_mem, 0);
        assert_eq!(w.t_f(), 3.0);
        assert_eq!(w.t_m(), 4.0);
        assert_eq!(w.t_mac_cpl(), 4.0); // paper Table 3
        assert_eq!(w.t_mac_cpf(5), 0.8); // paper Table 4
    }

    #[test]
    fn straight_line_has_no_loop() {
        let p = assemble("nop\nhalt").unwrap();
        assert_eq!(MacWorkload::of_program(&p), None);
    }

    #[test]
    fn scalar_mem_counted_separately() {
        let p = assemble(
            "L:
                ld.l 0(a1),v0
                ld.w 0(a0),a7
                st.l v0,0(a2)
                jbrs.t L
                halt",
        )
        .unwrap();
        let w = MacWorkload::of_program(&p).unwrap();
        assert_eq!(w.loads, 1);
        assert_eq!(w.stores, 1);
        assert_eq!(w.scalar_mem, 1);
        assert_eq!(w.t_m(), 2.0);
    }

    #[test]
    fn reductions_count_as_add_class() {
        let p = assemble(
            "L:
                ld.l 0(a1),v0
                mul.d v0,v0,v1
                radd.d v1,s2
                jbrs.t L
                halt",
        )
        .unwrap();
        let w = MacWorkload::of_program(&p).unwrap();
        assert_eq!(w.f_a, 1);
        assert_eq!(w.f_m, 1);
    }

    #[test]
    #[should_panic(expected = "zero flops")]
    fn cpf_zero_flops_panics() {
        let w = MacWorkload::default();
        let _ = w.t_mac_cpf(0);
    }
}
