//! The MACS bounds hierarchy: MA, MAC and MACS for one kernel (§3).

use std::fmt;

use c240_isa::{Instruction, Program, CLOCK_MHZ};
use macs_compiler::MaWorkload;

use crate::chime::{
    body_without_fp, body_without_memory, partition_chimes, ChimeConfig, ChimePartition,
};
use crate::workload::MacWorkload;

/// The MACS bound with its reduced-instruction-list components (§3.4).
#[derive(Debug, Clone, PartialEq)]
pub struct MacsBound {
    /// Chime partition of the full loop body.
    pub full: ChimePartition,
    /// Partition of the body with vector memory deleted (`t^f_MACS`).
    pub f_only: ChimePartition,
    /// Partition of the body with vector floating point deleted
    /// (`t^m_MACS`).
    pub m_only: ChimePartition,
    /// Partition of the body with *scalar* memory instructions deleted —
    /// what the schedule would cost if the spilled scalars were hoisted
    /// (drives the optimization advisor's split-removal estimate).
    pub no_scalar_mem: ChimePartition,
}

impl MacsBound {
    /// Computes the MACS bound of a loop body.
    pub fn of_body(body: &[Instruction], config: &ChimeConfig) -> Self {
        let sans_scalar_mem: Vec<Instruction> = body
            .iter()
            .filter(|i| !i.is_scalar_memory())
            .cloned()
            .collect();
        MacsBound {
            full: partition_chimes(body, config),
            f_only: partition_chimes(&body_without_memory(body), config),
            m_only: partition_chimes(&body_without_fp(body), config),
            no_scalar_mem: partition_chimes(&sans_scalar_mem, config),
        }
    }

    /// `t_MACS` in CPL.
    pub fn cpl(&self) -> f64 {
        self.full.cpl()
    }

    /// `t^f_MACS` in CPL.
    pub fn f_cpl(&self) -> f64 {
        self.f_only.cpl()
    }

    /// `t^m_MACS` in CPL.
    pub fn m_cpl(&self) -> f64 {
        self.m_only.cpl()
    }
}

/// The complete analytic bounds hierarchy for one kernel: everything the
/// paper's Tables 2 and 3 report.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelBounds {
    /// Kernel name.
    pub name: String,
    /// Source-level flops per iteration (`f_a + f_m`), the CPF divisor.
    pub flops: u32,
    /// MA workload (source-level, perfect reuse).
    pub ma: MaWorkload,
    /// MAC workload (compiled-code operation counts).
    pub mac: MacWorkload,
    /// MACS bound (chime partition of the compiled schedule).
    pub macs: MacsBound,
    /// The analyzed loop body (kept so downstream tools — the
    /// optimization advisor, the rescheduler — can re-derive partitions
    /// under transformations).
    pub body: Vec<Instruction>,
    /// The chime model the bounds were computed with.
    pub chime_config: ChimeConfig,
}

impl KernelBounds {
    /// Computes all three bounds from the MA workload and the compiled
    /// program (whose innermost loop is the vectorized strip loop).
    ///
    /// # Panics
    ///
    /// Panics if the program has no loop or the MA workload has no flops.
    pub fn compute(
        name: &str,
        ma: MaWorkload,
        program: &Program,
        config: &ChimeConfig,
    ) -> KernelBounds {
        let l = program
            .innermost_loop()
            .expect("compiled kernel has a strip loop");
        let body = program.loop_body(l);
        let flops = ma.f_a + ma.f_m;
        assert!(flops > 0, "kernel has no floating point work");
        KernelBounds {
            name: name.to_string(),
            flops,
            ma,
            mac: MacWorkload::of_body(body),
            macs: MacsBound::of_body(body, config),
            body: body.to_vec(),
            chime_config: config.clone(),
        }
    }

    /// `t_MA` in CPL.
    pub fn t_ma_cpl(&self) -> f64 {
        self.ma.t_ma_cpl()
    }

    /// `t_MAC` in CPL.
    pub fn t_mac_cpl(&self) -> f64 {
        self.mac.t_mac_cpl()
    }

    /// `t_MACS` in CPL.
    pub fn t_macs_cpl(&self) -> f64 {
        self.macs.cpl()
    }

    /// `t_MA` in CPF.
    pub fn t_ma_cpf(&self) -> f64 {
        self.t_ma_cpl() / f64::from(self.flops)
    }

    /// `t_MAC` in CPF.
    pub fn t_mac_cpf(&self) -> f64 {
        self.t_mac_cpl() / f64::from(self.flops)
    }

    /// `t_MACS` in CPF.
    pub fn t_macs_cpf(&self) -> f64 {
        self.t_macs_cpl() / f64::from(self.flops)
    }

    /// Checks the hierarchy invariant `t_MA ≤ t_MAC ≤ t_MACS` (within
    /// floating point tolerance).
    pub fn is_monotone(&self) -> bool {
        let eps = 1e-9;
        self.t_ma_cpl() <= self.t_mac_cpl() + eps && self.t_mac_cpl() <= self.t_macs_cpl() + eps
    }
}

impl fmt::Display for KernelBounds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}:", self.name)?;
        writeln!(f, "  MA   {}", self.ma)?;
        writeln!(f, "  MAC  {}", self.mac)?;
        writeln!(
            f,
            "  MACS t_MACS={:.3} CPL ({:.3} CPF), t^f={:.3}, t^m={:.3}, {} chimes, {} scalar splits",
            self.t_macs_cpl(),
            self.t_macs_cpf(),
            self.macs.f_cpl(),
            self.macs.m_cpl(),
            self.macs.full.chimes().len(),
            self.macs.full.scalar_splits(),
        )
    }
}

/// Harmonic-mean MFLOPS over a set of per-kernel CPF values (Eq. 4):
/// `clock(MHz) / mean(CPF)`.
///
/// # Panics
///
/// Panics if `cpfs` is empty.
///
/// ```
/// // The paper's Table 4: average bound CPF 1.080 → 23.15 MFLOPS.
/// let mflops = macs_core::hmean_mflops(&[1.080]);
/// assert!((mflops - 23.15).abs() < 0.01);
/// ```
pub fn hmean_mflops(cpfs: &[f64]) -> f64 {
    assert!(!cpfs.is_empty(), "need at least one CPF value");
    let avg = cpfs.iter().sum::<f64>() / cpfs.len() as f64;
    CLOCK_MHZ / avg
}

#[cfg(test)]
mod tests {
    use super::*;
    use c240_isa::asm::assemble;

    fn lfk1_ma() -> MaWorkload {
        MaWorkload {
            f_a: 2,
            f_m: 3,
            loads: 2,
            stores: 1,
        }
    }

    fn lfk1_program() -> Program {
        assemble(
            "L7:
            mov s0,vl
            ld.l 40120(a5),v0
            mul.d v0,s1,v1
            ld.l 40128(a5),v2
            mul.d v2,s3,v0
            add.d v1,v0,v3
            ld.l 32032(a5),v1
            mul.d v1,v3,v2
            add.d v2,s7,v0
            st.l v0,24024(a5)
            add.w #1024,a5
            sub.w #128,s0
            lt.w #0,s0
            jbrs.t L7
            halt",
        )
        .unwrap()
    }

    #[test]
    fn lfk1_full_hierarchy_matches_paper() {
        let b = KernelBounds::compute("LFK1", lfk1_ma(), &lfk1_program(), &ChimeConfig::c240());
        assert_eq!(b.t_ma_cpl(), 3.0);
        assert_eq!(b.t_mac_cpl(), 4.0);
        assert!((b.t_macs_cpl() - 4.200).abs() < 0.001);
        assert_eq!(b.t_ma_cpf(), 0.600);
        assert_eq!(b.t_mac_cpf(), 0.800);
        assert!((b.t_macs_cpf() - 0.840).abs() < 0.001);
        assert!(b.is_monotone());
    }

    #[test]
    fn display_contains_all_levels() {
        let b = KernelBounds::compute("LFK1", lfk1_ma(), &lfk1_program(), &ChimeConfig::c240());
        let text = b.to_string();
        assert!(text.contains("MA "));
        assert!(text.contains("MAC "));
        assert!(text.contains("t_MACS"));
    }

    #[test]
    fn hmean() {
        // Table 4: avg measured CPF 1.900 → 13.16 MFLOPS.
        assert!((hmean_mflops(&[1.900]) - 13.16).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn hmean_empty_panics() {
        let _ = hmean_mflops(&[]);
    }

    #[test]
    fn macs_bound_components() {
        let p = lfk1_program();
        let l = p.innermost_loop().unwrap();
        let m = MacsBound::of_body(p.loop_body(l), &ChimeConfig::c240());
        assert!(m.f_cpl() < m.cpl());
        assert!(m.m_cpl() < m.cpl());
        assert!((m.f_cpl() - 3.039).abs() < 0.01);
    }
}
