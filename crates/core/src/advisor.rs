//! Goal-directed optimization advice — the paper's conclusion made
//! executable: "Aspects of the MACS bounds hierarchy could be
//! incorporated within a goal-directed optimizing compiler that would
//! efficiently assess where and how best to spend its time" (§5).
//!
//! Each gap in the hierarchy prices a specific transformation: closing
//! MA→MAC means eliminating compiler-inserted work, MAC→MACS means
//! rescheduling, MACS→measured means attacking unmodeled structure.
//! [`advise`] turns an analyzed kernel into a ranked to-do list with
//! estimated cycle savings.

use std::fmt;

use c240_isa::Instruction;

use crate::analysis::KernelAnalysis;
use crate::chime::partition_chimes;
use crate::reschedule::reschedule_for_chimes;

/// A transformation the hierarchy suggests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Action {
    /// Keep shifted reused vectors in registers (or shift them) instead
    /// of reloading — closes the MA→MAC gap (§4.4, LFK 1/7/12).
    EliminateCompilerReloads,
    /// Reorder instructions / reallocate registers for denser chimes —
    /// closes the MAC→MACS gap (§3.4).
    ImproveSchedule,
    /// Hoist spilled scalars out of the loop so scalar memory accesses
    /// stop splitting chimes (§4.4, LFK 8).
    HoistScalarMemory,
    /// Restructure the algorithm to reduce memory operations per flop —
    /// the memory port is the binding resource.
    ReduceMemoryTraffic,
    /// Lengthen vectors / fuse segments / move outer-loop work out of
    /// the hot path — the measurement is dominated by per-entry
    /// overheads the steady-state model excludes (§4.4, LFK 2/4/6).
    AmortizeOuterOverhead,
    /// Improve access/execute overlap (software pipelining across
    /// chimes; §3.6, §4.4 LFK 8).
    ImproveAxOverlap,
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let text = match self {
            Action::EliminateCompilerReloads => "eliminate compiler-inserted reloads",
            Action::ImproveSchedule => "improve the instruction schedule",
            Action::HoistScalarMemory => "hoist scalar memory accesses out of the loop",
            Action::ReduceMemoryTraffic => "reduce memory operations per flop",
            Action::AmortizeOuterOverhead => "amortize outer-loop and startup overhead",
            Action::ImproveAxOverlap => "improve access/execute overlap",
        };
        f.write_str(text)
    }
}

/// One piece of ranked advice.
#[derive(Debug, Clone, PartialEq)]
pub struct Advice {
    /// The suggested transformation.
    pub action: Action,
    /// Estimated saving in CPL if fully successful.
    pub est_saving_cpl: f64,
    /// Why the hierarchy suggests it.
    pub rationale: String,
}

impl fmt::Display for Advice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (≈{:.2} CPL): {}",
            self.action, self.est_saving_cpl, self.rationale
        )
    }
}

/// Prices every gap in the hierarchy and returns the transformations
/// ranked by estimated saving (largest first). Gaps below `min_cpl`
/// (default callers pass ~0.05) are not reported.
pub fn advise(a: &KernelAnalysis, min_cpl: f64) -> Vec<Advice> {
    let mut advice = Vec::new();
    let b = &a.bounds;

    let reload_gap = b.t_mac_cpl() - b.t_ma_cpl();
    if reload_gap > min_cpl {
        advice.push(Advice {
            action: Action::EliminateCompilerReloads,
            est_saving_cpl: reload_gap,
            rationale: format!(
                "the compiled code performs {:.0} memory ops/iteration vs {:.0} under \
                 perfect reuse; register the shifted reuse streams",
                b.mac.t_m(),
                b.ma.t_m()
            ),
        });
    }

    // Reordering and scalar hoisting are priced *exactly* by applying
    // the transformations to the body and repartitioning.
    let cfg = &b.chime_config;
    let best_with = partition_chimes(&reschedule_for_chimes(&b.body, cfg), cfg);
    let no_scalar: Vec<Instruction> = b
        .body
        .iter()
        .filter(|i| !i.is_scalar_memory())
        .cloned()
        .collect();
    let best_without = partition_chimes(&reschedule_for_chimes(&no_scalar, cfg), cfg);

    let schedule_gap = b.macs.full.cpl() - best_with.cpl();
    if schedule_gap > min_cpl {
        advice.push(Advice {
            action: Action::ImproveSchedule,
            est_saving_cpl: schedule_gap,
            rationale: format!(
                "reordering the body (dependence-safely) repacks the chimes from \
                 {:.2} to {:.2} CPL",
                b.macs.full.cpl(),
                best_with.cpl()
            ),
        });
    }

    let split_gap = best_with.cpl() - best_without.cpl();
    if split_gap > min_cpl {
        advice.push(Advice {
            action: Action::HoistScalarMemory,
            est_saving_cpl: split_gap,
            rationale: format!(
                "{} scalar memory accesses fence the memory port; hoisting them \
                 (e.g. keeping spilled coefficients in registers) saves another \
                 {split_gap:.2} CPL over the best schedule",
                b.macs.full.scalar_splits(),
            ),
        });
    }

    let imbalance = b.mac.t_m() - b.mac.t_f();
    if imbalance > min_cpl {
        advice.push(Advice {
            action: Action::ReduceMemoryTraffic,
            est_saving_cpl: imbalance,
            rationale: format!(
                "memory ({:.0} ops) outweighs arithmetic ({:.0}) per iteration; the \
                 single port is the binding resource",
                b.mac.t_m(),
                b.mac.t_f()
            ),
        });
    }

    let unmodeled = a.t_p_cpl() - b.t_macs_cpl();
    if unmodeled > min_cpl && a.pct_macs() < 0.9 {
        advice.push(Advice {
            action: Action::AmortizeOuterOverhead,
            est_saving_cpl: unmodeled,
            rationale: format!(
                "measured time exceeds the schedule bound by {:.2} CPL — short vectors, \
                 outer-loop control and startup dominate (the model's excluded terms)",
                unmodeled
            ),
        });
    }

    let overlap_gap = a.t_p_cpl() - a.t_a_cpl().max(a.t_x_cpl());
    if overlap_gap > min_cpl && a.ax_overlap() < 0.6 {
        advice.push(Advice {
            action: Action::ImproveAxOverlap,
            est_saving_cpl: overlap_gap,
            rationale: format!(
                "t_p ({:.2}) sits {:.2} CPL above max(t_a, t_x): the access and execute \
                 processes serialize instead of overlapping",
                a.t_p_cpl(),
                overlap_gap
            ),
        });
    }

    advice.sort_by(|x, y| y.est_saving_cpl.partial_cmp(&x.est_saving_cpl).unwrap());
    advice
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze_kernel;
    use crate::chime::ChimeConfig;
    use c240_sim::SimConfig;

    fn analyze_lfk(id: u32) -> KernelAnalysis {
        let kernel = lfk_suite_for_tests::by_id(id);
        analyze_kernel(
            &format!("LFK{id}"),
            kernel.0,
            &kernel.1,
            kernel.2,
            &kernel.3,
            &SimConfig::c240(),
            &ChimeConfig::c240(),
        )
        .unwrap()
    }

    /// macs-core cannot depend on lfk-suite (dependency direction), so
    /// the advisor's kernel-level behavior is tested with hand-rolled
    /// programs here and against the real kernels in the workspace
    /// integration tests.
    mod lfk_suite_for_tests {
        use c240_isa::asm::assemble;
        use c240_isa::Program;
        use c240_sim::Cpu;
        use macs_compiler::MaWorkload;

        type Setup = Box<dyn Fn(&mut Cpu)>;

        pub fn by_id(id: u32) -> (MaWorkload, Program, u64, Setup) {
            match id {
                // An LFK1-style loop: one reloaded stream.
                1 => (
                    MaWorkload {
                        f_a: 1,
                        f_m: 0,
                        loads: 1,
                        stores: 1,
                    },
                    assemble(
                        "   mov #2560,s0
                        L:
                            mov s0,vl
                            ld.l 0(a1),v0
                            ld.l 8(a1),v1
                            add.d v0,v1,v2
                            st.l v2,0(a2)
                            add.w #1024,a1
                            add.w #1024,a2
                            sub.w #128,s0
                            lt.w #0,s0
                            jbrs.t L
                            halt",
                    )
                    .unwrap(),
                    2560,
                    Box::new(|_| {}),
                ),
                // An LFK8-style loop: a spilled coefficient reloaded in
                // the loop fences the chime that would otherwise chain
                // the load with its consumers.
                8 => (
                    MaWorkload {
                        f_a: 1,
                        f_m: 1,
                        loads: 1,
                        stores: 0,
                    },
                    assemble(
                        "   mov #2560,s0
                        L:
                            mov s0,vl
                            ld.l 0(a1),v0
                            ld.d 0(a0),s1
                            mul.d s1,v0,v2
                            add.d v2,v2,v3
                            add.w #1024,a1
                            sub.w #128,s0
                            lt.w #0,s0
                            jbrs.t L
                            halt",
                    )
                    .unwrap(),
                    2560,
                    Box::new(|_| {}),
                ),
                other => panic!("no test kernel {other}"),
            }
        }
    }

    #[test]
    fn reload_advice_priced_for_lfk1_style_loop() {
        let a = analyze_lfk(1);
        let advice = advise(&a, 0.05);
        assert!(!advice.is_empty());
        let reload = advice
            .iter()
            .find(|adv| adv.action == Action::EliminateCompilerReloads)
            .expect("reload advice present");
        assert!((reload.est_saving_cpl - 1.0).abs() < 0.01);
        // The loop is memory-bound, so traffic reduction ranks first.
        assert_eq!(advice[0].action, Action::ReduceMemoryTraffic);
    }

    #[test]
    fn scalar_hoisting_advised_for_split_loop() {
        let a = analyze_lfk(8);
        let advice = advise(&a, 0.05);
        assert!(
            advice
                .iter()
                .any(|adv| adv.action == Action::HoistScalarMemory),
            "{advice:?}"
        );
        // The split saving is priced by repartitioning, so it is exact.
        let split = advice
            .iter()
            .find(|adv| adv.action == Action::HoistScalarMemory)
            .unwrap();
        assert!(split.est_saving_cpl > 0.3, "{}", split.est_saving_cpl);
    }

    #[test]
    fn savings_are_sorted_and_displayed() {
        let a = analyze_lfk(8);
        let advice = advise(&a, 0.01);
        for pair in advice.windows(2) {
            assert!(pair[0].est_saving_cpl >= pair[1].est_saving_cpl);
        }
        for adv in &advice {
            assert!(!adv.to_string().is_empty());
        }
    }

    #[test]
    fn clean_loop_gets_little_advice() {
        // A loop already at its MA bound (no reloads, perfect chimes).
        let a = {
            let p = c240_isa::asm::assemble(
                "   mov #2560,s0
                L:
                    mov s0,vl
                    ld.l 0(a1),v0
                    mul.d v0,v0,v1
                    add.d v1,v1,v2
                    st.l v2,0(a2)
                    add.w #1024,a1
                    add.w #1024,a2
                    sub.w #128,s0
                    lt.w #0,s0
                    jbrs.t L
                    halt",
            )
            .unwrap();
            analyze_kernel(
                "clean",
                macs_compiler::MaWorkload {
                    f_a: 1,
                    f_m: 1,
                    loads: 1,
                    stores: 1,
                },
                &p,
                2560,
                &|cpu| cpu.set_areg(2, 400000),
                &SimConfig::c240(),
                &ChimeConfig::c240(),
            )
            .unwrap()
        };
        let advice = advise(&a, 0.3);
        assert!(
            advice.len() <= 1,
            "clean loop should get at most marginal advice: {advice:?}"
        );
    }
}
