//! Supervised evaluation of one sweep point: panic isolation, per-point
//! deadlines, and capped-exponential-backoff retries.
//!
//! [`pool::parallel_map`] is all-or-nothing: one bad point aborts the
//! whole map (now with the point's identity, but still an abort). A
//! long-running sweep *server* needs the opposite contract — a panicking
//! or wedged point must become a structured error row while every other
//! point keeps flowing. [`supervise`] provides that contract for a single
//! evaluation:
//!
//! * the closure runs under `catch_unwind`, so a panic becomes
//!   [`FailureKind::Panic`] carrying the payload message;
//! * with a deadline, the attempt runs on a watchdog-observed worker
//!   thread; if it does not finish in time the attempt is abandoned and
//!   becomes [`FailureKind::Deadline`] (the abandoned thread parks no
//!   resources beyond its stack and dies with the simulator's
//!   `max_instructions` runaway guard or process exit);
//! * failures are retried up to [`RetryPolicy::max_attempts`] with
//!   capped exponential backoff; a point that exhausts its budget is
//!   *poisoned* — the caller blacklists it (journals the failure row) so
//!   a `--resume` run does not burn the budget again.
//!
//! [`pool::parallel_map`]: crate::pool::parallel_map

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

use crate::pool::panic_message;

/// Retry budget and backoff shape for supervised evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per point (first try included); at least 1.
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubles per further attempt.
    pub backoff_base: Duration,
    /// Upper bound every backoff is clamped to.
    pub backoff_cap: Duration,
    /// Full-jitter mode: `Some(seed)` replaces each backoff with a
    /// uniform draw from `[0, backoff(n)]` (AWS-style *full jitter*),
    /// decorrelating retries across a fleet so a shared failure does not
    /// produce a synchronized retry stampede. The seed makes the draw
    /// sequence deterministic — tests and reproductions pin it — and a
    /// per-worker seed (what the coordinator passes each spawned server)
    /// is what actually spreads the fleet. `None` keeps the exact
    /// deterministic schedule.
    pub jitter_seed: Option<u64>,
}

/// A tiny deterministic PRNG (xorshift64*) used only for backoff jitter;
/// the stream is a pure function of the seed, which is what makes
/// jittered runs reproducible.
#[derive(Debug, Clone, Copy)]
pub struct JitterRng(u64);

impl JitterRng {
    /// Seeds the generator. A zero seed is remapped (xorshift has a zero
    /// fixed point).
    pub fn new(seed: u64) -> Self {
        JitterRng(if seed == 0 {
            0x9e37_79b9_7f4a_7c15
        } else {
            seed
        })
    }

    /// The next draw in `[0, bound]` (inclusive); 0 when `bound` is 0.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        self.0 ^= self.0 >> 12;
        self.0 ^= self.0 << 25;
        self.0 ^= self.0 >> 27;
        let x = self.0.wrapping_mul(0x2545_f491_4f6c_dd1d);
        match bound.checked_add(1) {
            Some(n) => x % n,
            None => x,
        }
    }
}

impl RetryPolicy {
    /// No retries: one attempt, no backoff.
    pub fn once() -> Self {
        RetryPolicy {
            max_attempts: 1,
            backoff_base: Duration::ZERO,
            backoff_cap: Duration::ZERO,
            jitter_seed: None,
        }
    }

    /// The *ceiling* backoff after the `failed_attempts`-th failed
    /// attempt (1-based): `base · 2^(failed_attempts−1)`, clamped to the
    /// cap. With jitter enabled the slept backoff is a uniform draw below
    /// this ceiling ([`RetryPolicy::jittered_backoff`]).
    pub fn backoff(&self, failed_attempts: u32) -> Duration {
        let doublings = failed_attempts.saturating_sub(1).min(16);
        self.backoff_base
            .saturating_mul(1u32 << doublings)
            .min(self.backoff_cap)
    }

    /// The backoff actually slept after the `failed_attempts`-th failure:
    /// the deterministic [`RetryPolicy::backoff`] ceiling without jitter,
    /// or a full-jitter draw in `[0, ceiling]` from `rng` with it.
    pub fn jittered_backoff(&self, failed_attempts: u32, rng: &mut Option<JitterRng>) -> Duration {
        let ceiling = self.backoff(failed_attempts);
        match rng {
            None => ceiling,
            Some(rng) => Duration::from_millis(
                rng.next_below(ceiling.as_millis().min(u128::from(u64::MAX)) as u64),
            ),
        }
    }

    /// The jitter generator this policy starts each supervised point
    /// with: `None` without a seed (exact deterministic backoff).
    pub fn jitter_rng(&self) -> Option<JitterRng> {
        self.jitter_seed.map(JitterRng::new)
    }
}

impl Default for RetryPolicy {
    /// Three attempts, 10 ms base backoff, 1 s cap, no jitter.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_secs(1),
            jitter_seed: None,
        }
    }
}

/// Why a supervised attempt (and, terminally, a point) failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureKind {
    /// The closure panicked; the payload message is preserved.
    Panic {
        /// The panic payload, rendered as text.
        message: String,
    },
    /// The attempt exceeded its deadline and was abandoned.
    Deadline {
        /// The deadline that was exceeded.
        limit: Duration,
    },
}

impl FailureKind {
    /// The wire-protocol error-kind tag for this failure.
    pub fn kind(&self) -> &'static str {
        match self {
            FailureKind::Panic { .. } => "panic",
            FailureKind::Deadline { .. } => "timeout",
        }
    }

    /// A one-line human-readable description.
    pub fn message(&self) -> String {
        match self {
            FailureKind::Panic { message } => format!("panicked: {message}"),
            FailureKind::Deadline { limit } => {
                format!("exceeded the {} ms deadline", limit.as_millis())
            }
        }
    }
}

/// The terminal result of supervising one point.
#[derive(Debug, Clone, PartialEq)]
pub struct Supervised<R> {
    /// The value, or the *last* attempt's failure.
    pub result: Result<R, FailureKind>,
    /// Attempts actually made (1..=`max_attempts`).
    pub attempts: u32,
    /// Backoffs slept between attempts, in milliseconds, in order.
    pub backoff_ms: Vec<u64>,
}

impl<R> Supervised<R> {
    /// Whether the point exhausted its retry budget without succeeding
    /// (the poison-point condition).
    pub fn poisoned(&self) -> bool {
        self.result.is_err()
    }

    /// Whether more than one attempt was needed, whatever the outcome.
    pub fn retried(&self) -> bool {
        self.attempts > 1
    }
}

/// One attempt: inline when there is no deadline, on a watchdog-observed
/// worker thread otherwise.
fn attempt<R, F>(f: &Arc<F>, deadline: Option<Duration>) -> Result<R, FailureKind>
where
    F: Fn() -> R + Send + Sync + 'static,
    R: Send + 'static,
{
    let Some(limit) = deadline else {
        return catch_unwind(AssertUnwindSafe(|| f())).map_err(|p| FailureKind::Panic {
            message: panic_message(p.as_ref()),
        });
    };
    let (tx, rx) = mpsc::channel();
    let worker = Arc::clone(f);
    let spawned = std::thread::Builder::new()
        .name("macs-sweep-point".into())
        .spawn(move || {
            // A send failure means the supervisor already gave up on the
            // deadline and dropped the receiver; the result is discarded.
            let _ = tx.send(catch_unwind(AssertUnwindSafe(|| worker())));
        });
    if spawned.is_err() {
        // Thread exhaustion: treat as a (retryable) deadline failure
        // rather than tearing the server down.
        return Err(FailureKind::Deadline { limit });
    }
    match rx.recv_timeout(limit) {
        Ok(Ok(value)) => Ok(value),
        Ok(Err(payload)) => Err(FailureKind::Panic {
            message: panic_message(payload.as_ref()),
        }),
        Err(mpsc::RecvTimeoutError::Timeout) => Err(FailureKind::Deadline { limit }),
        // The worker vanished without sending — only possible if the
        // process is being torn down; report it as a panic.
        Err(mpsc::RecvTimeoutError::Disconnected) => Err(FailureKind::Panic {
            message: "worker thread vanished".into(),
        }),
    }
}

/// A supervision lifecycle event, reported to the observer of
/// [`supervise_observed`] *as it happens* — not summarized after the
/// fact — so a live metrics plane can count watchdog fires, retries, and
/// backoff sleeps while a point is still being retried.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SuperviseEvent<'a> {
    /// An attempt failed (the watchdog fired, or the closure panicked).
    /// More attempts may follow if the retry budget allows.
    AttemptFailed {
        /// Which attempt failed (1-based).
        attempt: u32,
        /// Why it failed.
        failure: &'a FailureKind,
    },
    /// The supervisor is about to sleep `ms` milliseconds of backoff
    /// before the next attempt.
    Backoff {
        /// The backoff about to be slept, in milliseconds.
        ms: u64,
    },
}

/// Runs `f` under supervision: panics caught, the deadline enforced per
/// attempt, failures retried per `retry`.
///
/// The closure must be `'static` because a deadline-exceeding attempt is
/// abandoned on its worker thread (which may still be running when this
/// function returns); share state with the caller through the return
/// value only.
pub fn supervise<R, F>(f: F, deadline: Option<Duration>, retry: &RetryPolicy) -> Supervised<R>
where
    F: Fn() -> R + Send + Sync + 'static,
    R: Send + 'static,
{
    supervise_observed(f, deadline, retry, &mut |_| {})
}

/// [`supervise`], reporting each [`SuperviseEvent`] to `observe` as it
/// happens. The observer runs on the supervising thread between
/// attempts, never inside the supervised closure, so it may freely touch
/// non-`'static` state (a metrics registry, a span).
pub fn supervise_observed<R, F>(
    f: F,
    deadline: Option<Duration>,
    retry: &RetryPolicy,
    observe: &mut dyn FnMut(SuperviseEvent<'_>),
) -> Supervised<R>
where
    F: Fn() -> R + Send + Sync + 'static,
    R: Send + 'static,
{
    let f = Arc::new(f);
    let budget = retry.max_attempts.max(1);
    let mut backoff_ms = Vec::new();
    let mut attempts = 0;
    let mut rng = retry.jitter_rng();
    loop {
        attempts += 1;
        match attempt(&f, deadline) {
            Ok(value) => {
                return Supervised {
                    result: Ok(value),
                    attempts,
                    backoff_ms,
                }
            }
            Err(failure) => {
                observe(SuperviseEvent::AttemptFailed {
                    attempt: attempts,
                    failure: &failure,
                });
                if attempts >= budget {
                    return Supervised {
                        result: Err(failure),
                        attempts,
                        backoff_ms,
                    };
                }
                let pause = retry.jittered_backoff(attempts, &mut rng);
                let ms = pause.as_millis() as u64;
                observe(SuperviseEvent::Backoff { ms });
                backoff_ms.push(ms);
                std::thread::sleep(pause);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn fast_retry(max_attempts: u32) -> RetryPolicy {
        RetryPolicy {
            max_attempts,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(4),
            jitter_seed: None,
        }
    }

    #[test]
    fn healthy_point_succeeds_first_try() {
        let s = supervise(|| 42u32, None, &RetryPolicy::default());
        assert_eq!(s.result, Ok(42));
        assert_eq!(s.attempts, 1);
        assert!(s.backoff_ms.is_empty());
        assert!(!s.poisoned());
        assert!(!s.retried());
    }

    #[test]
    fn panicking_point_is_poisoned_after_the_budget() {
        let s = supervise(|| -> u32 { panic!("injected fault") }, None, &fast_retry(3));
        assert_eq!(s.attempts, 3);
        assert!(s.poisoned());
        assert!(s.retried());
        assert_eq!(s.backoff_ms, vec![1, 2]);
        match s.result {
            Err(FailureKind::Panic { ref message }) => {
                assert!(message.contains("injected fault"))
            }
            other => panic!("expected a panic failure, got {other:?}"),
        }
        assert_eq!(s.result.unwrap_err().kind(), "panic");
    }

    #[test]
    fn flaky_point_recovers_within_the_budget() {
        static TRIES: AtomicU32 = AtomicU32::new(0);
        let s = supervise(
            || {
                if TRIES.fetch_add(1, Ordering::SeqCst) < 2 {
                    panic!("transient");
                }
                7u32
            },
            None,
            &fast_retry(5),
        );
        assert_eq!(s.result, Ok(7));
        assert_eq!(s.attempts, 3);
        assert!(s.retried());
        assert!(!s.poisoned());
    }

    #[test]
    fn slow_point_times_out_and_is_abandoned() {
        let s = supervise(
            || {
                std::thread::sleep(Duration::from_secs(5));
                1u32
            },
            Some(Duration::from_millis(20)),
            &fast_retry(2),
        );
        assert_eq!(s.attempts, 2);
        match s.result {
            Err(FailureKind::Deadline { limit }) => {
                assert_eq!(limit, Duration::from_millis(20))
            }
            other => panic!("expected a deadline failure, got {other:?}"),
        }
    }

    #[test]
    fn deadline_passes_through_a_fast_point() {
        let s = supervise(|| 9u32, Some(Duration::from_secs(10)), &fast_retry(1));
        assert_eq!(s.result, Ok(9));
        assert_eq!(s.attempts, 1);
    }

    #[test]
    fn observer_sees_failures_and_backoffs_in_order() {
        static TRIES: AtomicU32 = AtomicU32::new(0);
        let mut events = Vec::new();
        let s = supervise_observed(
            || {
                if TRIES.fetch_add(1, Ordering::SeqCst) < 2 {
                    panic!("transient");
                }
                7u32
            },
            None,
            &fast_retry(5),
            &mut |e| {
                events.push(match e {
                    SuperviseEvent::AttemptFailed { attempt, failure } => {
                        format!("fail#{attempt}:{}", failure.kind())
                    }
                    SuperviseEvent::Backoff { ms } => format!("backoff:{ms}"),
                });
            },
        );
        assert_eq!(s.result, Ok(7));
        assert_eq!(
            events,
            vec!["fail#1:panic", "backoff:1", "fail#2:panic", "backoff:2"]
        );
        // The observed backoffs are exactly what the summary records.
        assert_eq!(s.backoff_ms, vec![1, 2]);
    }

    #[test]
    fn observer_sees_watchdog_fires() {
        let mut timeouts = 0u32;
        let s = supervise_observed(
            || {
                std::thread::sleep(Duration::from_secs(5));
                1u32
            },
            Some(Duration::from_millis(10)),
            &fast_retry(2),
            &mut |e| {
                if let SuperviseEvent::AttemptFailed {
                    failure: FailureKind::Deadline { .. },
                    ..
                } = e
                {
                    timeouts += 1;
                }
            },
        );
        assert!(s.poisoned());
        assert_eq!(timeouts, 2, "both watchdog fires observed");
    }

    #[test]
    fn full_jitter_draws_below_the_ceiling_and_is_seed_deterministic() {
        let p = RetryPolicy {
            max_attempts: 10,
            backoff_base: Duration::from_millis(64),
            backoff_cap: Duration::from_millis(256),
            jitter_seed: Some(42),
        };
        let draw_all = || {
            let mut rng = p.jitter_rng();
            (1..=6)
                .map(|n| {
                    let d = p.jittered_backoff(n, &mut rng);
                    assert!(d <= p.backoff(n), "jitter must stay below the ceiling");
                    d.as_millis() as u64
                })
                .collect::<Vec<_>>()
        };
        // Same seed → the same draw sequence, run after run.
        assert_eq!(draw_all(), draw_all());
        // Different seeds decorrelate (the stampede-prevention property).
        let other = RetryPolicy {
            jitter_seed: Some(43),
            ..p
        };
        let mut rng = other.jitter_rng();
        let theirs: Vec<u64> = (1..=6)
            .map(|n| other.jittered_backoff(n, &mut rng).as_millis() as u64)
            .collect();
        assert_ne!(draw_all(), theirs, "distinct seeds must decorrelate");
        // Jitter actually varies across attempts (not a constant stream).
        let draws = draw_all();
        assert!(
            draws.iter().collect::<std::collections::HashSet<_>>().len() > 1,
            "{draws:?}"
        );
        // No seed → the exact deterministic ceiling (legacy behavior).
        let plain = RetryPolicy {
            jitter_seed: None,
            ..p
        };
        let mut rng = plain.jitter_rng();
        assert_eq!(plain.jittered_backoff(3, &mut rng), plain.backoff(3));
    }

    #[test]
    fn jittered_supervise_stays_reproducible_with_a_pinned_seed() {
        let retry = RetryPolicy {
            max_attempts: 4,
            backoff_base: Duration::from_millis(2),
            backoff_cap: Duration::from_millis(8),
            jitter_seed: Some(7),
        };
        let run = || supervise(|| -> u32 { panic!("always") }, None, &retry).backoff_ms;
        let first = run();
        assert_eq!(first.len(), 3, "three failed retries → three backoffs");
        assert_eq!(first, run(), "pinned seed → identical backoff schedule");
        for (n, &ms) in first.iter().enumerate() {
            assert!(ms <= retry.backoff(n as u32 + 1).as_millis() as u64);
        }
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy {
            max_attempts: 10,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(35),
            jitter_seed: None,
        };
        assert_eq!(p.backoff(1), Duration::from_millis(10));
        assert_eq!(p.backoff(2), Duration::from_millis(20));
        assert_eq!(p.backoff(3), Duration::from_millis(35));
        assert_eq!(
            p.backoff(30),
            Duration::from_millis(35),
            "deep doublings clamp"
        );
        assert_eq!(RetryPolicy::once().backoff(1), Duration::ZERO);
    }
}
