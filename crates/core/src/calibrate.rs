//! Calibration loops: deriving the machine's `X`/`Y`/`Z`/`B` parameters
//! empirically (§3.2–§3.3 of the paper, regenerating Table 1).
//!
//! The paper verified Convex's specifications with "simple test loops
//! constructed specifically for evaluating such parameters"; we do the
//! same against the simulator:
//!
//! * **Z** — the slope of standalone instruction time over a VL sweep,
//! * **Y** — the intercept (minus the specified issue overhead `X`),
//! * **B** — the excess of the steady-state tailgating period over
//!   `Z·VL`, measured by differencing two loop lengths so startup
//!   cancels.

use std::fmt;

use c240_isa::timing::{TimingClass, VectorTiming};
use c240_isa::{Program, ProgramBuilder};
use c240_sim::{Cpu, SimConfig, SimError};

/// One calibrated row of Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationRow {
    /// Instruction class.
    pub class: TimingClass,
    /// Issue overhead, taken from the machine specification (the
    /// calibration loops cannot separate `X` from `Y`; neither could
    /// the paper's).
    pub x: f64,
    /// Fitted first-result latency.
    pub y: f64,
    /// Fitted per-element slope.
    pub z: f64,
    /// Fitted tailgating bubble.
    pub b: f64,
    /// The specification the machine claims (for comparison).
    pub spec: VectorTiming,
}

impl CalibrationRow {
    /// Whether the fit agrees with the specification within `tol` cycles
    /// on Y and B and `tol/100` on Z.
    pub fn matches_spec(&self, tol: f64) -> bool {
        (self.y - self.spec.y).abs() <= tol
            && (self.b - self.spec.b).abs() <= tol
            && (self.z - self.spec.z).abs() <= tol / 100.0
    }
}

impl fmt::Display for CalibrationRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<17} X={:<4.1} Y={:<6.2} Z={:<5.2} B={:<6.2} (spec Y={} Z={} B={})",
            self.class.to_string(),
            self.x,
            self.y,
            self.z,
            self.b,
            self.spec.y,
            self.spec.z,
            self.spec.b
        )
    }
}

/// Builds a standalone single-instruction program at the given VL.
fn standalone(class: TimingClass, vl: u32) -> Program {
    let mut b = ProgramBuilder::new();
    b.set_vl_imm(vl);
    push_instr(&mut b, class);
    b.halt();
    b.build().expect("calibration program is valid")
}

/// Builds a tailgating loop repeating the instruction `iters` times.
fn tailgating_loop(class: TimingClass, vl: u32, iters: i64) -> Program {
    let mut b = ProgramBuilder::new();
    b.set_vl_imm(vl);
    b.mov_int(iters, "s0");
    b.label("L");
    push_instr(&mut b, class);
    b.int_op_imm("sub", 1, "s0");
    b.cmp_imm("lt", 0, "s0");
    b.branch_true("L");
    b.halt();
    b.build().expect("calibration program is valid")
}

fn push_instr(b: &mut ProgramBuilder, class: TimingClass) {
    match class {
        TimingClass::Load => {
            b.vload("a1", 0, "v0");
        }
        TimingClass::Store => {
            b.vstore("v0", "a1", 0);
        }
        TimingClass::Add => {
            b.vadd("v0", "v1", "v2");
        }
        TimingClass::Sub => {
            b.vsub("v0", "v1", "v2");
        }
        TimingClass::Mul => {
            b.vmul("v0", "v1", "v2");
        }
        TimingClass::Div => {
            b.vdiv("v0", "v1", "v2");
        }
        TimingClass::Reduction => {
            b.vsum("v0", "s2");
        }
        TimingClass::Neg => {
            b.vneg("v0", "v1");
        }
    }
}

fn prepared_cpu(config: &SimConfig) -> Cpu {
    let mut cpu = Cpu::new(config.clone());
    // Benign operand values (avoid 0/0 in divide calibration).
    for i in 0..8 {
        cpu.set_vreg_fill(i, 3.0 + f64::from(i));
        cpu.set_sreg_fp(i, 1.0);
    }
    cpu.set_areg(1, 8 * 1024);
    cpu
}

/// Least-squares line fit returning `(slope, intercept)`.
fn fit_line(points: &[(f64, f64)]) -> (f64, f64) {
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
    let intercept = (sy - slope * sx) / n;
    (slope, intercept)
}

/// Calibrates one instruction class against the simulator.
///
/// # Errors
///
/// Propagates simulator errors (which indicate a harness bug).
pub fn calibrate_class(class: TimingClass, config: &SimConfig) -> Result<CalibrationRow, SimError> {
    // Refresh would perturb the fits (the paper's calibration loops were
    // also chosen to avoid it); keep the machine otherwise identical.
    let quiet = config.clone().without_refresh();
    let spec = quiet.timing.get(class);

    // Z and X+Y from a VL sweep of standalone instructions. The measured
    // completion is issue + X + Z·(VL-1) + Y, so the line over VL has
    // slope Z and intercept issue + X + Y - Z.
    let mut points = Vec::new();
    for vl in [16u32, 32, 48, 64, 96, 128] {
        let mut cpu = prepared_cpu(&quiet);
        let stats = cpu.run(&standalone(class, vl))?;
        points.push((f64::from(vl), stats.cycles));
    }
    let (z, intercept) = fit_line(&points);
    let issue_overhead = 1.0; // the set-vl instruction
    let x = spec.x;
    let y = intercept - issue_overhead - x + z;

    // B from the steady-state tailgating period: run two loop lengths
    // and difference so startup cancels; the period is Z·VL + B.
    let vl = 128u32;
    let n1 = 20i64;
    let n2 = 60i64;
    let mut cpu1 = prepared_cpu(&quiet);
    let t1 = cpu1.run(&tailgating_loop(class, vl, n1))?.cycles;
    let mut cpu2 = prepared_cpu(&quiet);
    let t2 = cpu2.run(&tailgating_loop(class, vl, n2))?.cycles;
    let period = (t2 - t1) / (n2 - n1) as f64;
    let b = period - z * f64::from(vl);

    Ok(CalibrationRow {
        class,
        x,
        y,
        z,
        b,
        spec,
    })
}

/// Calibrates every instruction class — the regeneration of Table 1.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn calibrate_all(config: &SimConfig) -> Result<Vec<CalibrationRow>, SimError> {
    TimingClass::all()
        .into_iter()
        .map(|c| calibrate_class(c, config))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_calibration_recovers_table1() {
        let row = calibrate_class(TimingClass::Load, &SimConfig::c240()).unwrap();
        assert!((row.z - 1.0).abs() < 0.01, "Z = {}", row.z);
        assert!((row.y - 10.0).abs() < 0.5, "Y = {}", row.y);
        assert!((row.b - 2.0).abs() < 0.5, "B = {}", row.b);
        assert!(row.matches_spec(0.5));
    }

    #[test]
    fn store_and_mul_calibration() {
        let st = calibrate_class(TimingClass::Store, &SimConfig::c240()).unwrap();
        assert!((st.b - 4.0).abs() < 0.5, "store B = {}", st.b);
        let mul = calibrate_class(TimingClass::Mul, &SimConfig::c240()).unwrap();
        assert!((mul.y - 12.0).abs() < 0.5, "mul Y = {}", mul.y);
        assert!((mul.b - 1.0).abs() < 0.5, "mul B = {}", mul.b);
    }

    #[test]
    fn divide_calibration() {
        let div = calibrate_class(TimingClass::Div, &SimConfig::c240()).unwrap();
        assert!((div.z - 4.0).abs() < 0.05, "div Z = {}", div.z);
        assert!((div.b - 21.0).abs() < 1.0, "div B = {}", div.b);
    }

    #[test]
    fn reduction_calibration_shows_z_slope() {
        let red = calibrate_class(TimingClass::Reduction, &SimConfig::c240()).unwrap();
        // The paper's calibration measured Z between 1.39 and 1.43 and
        // modeled 1.35; ours recovers the modeled slope. B absorbs the
        // scalar-delivery serialization (the paper instead set B = 0 and
        // noted the equivalence "Z = 1, B = 45").
        assert!((red.z - 1.35).abs() < 0.02, "reduction Z = {}", red.z);
        assert!(red.b > 5.0, "reduction B = {}", red.b);
    }

    #[test]
    fn fit_line_exact() {
        let (m, c) = fit_line(&[(1.0, 3.0), (2.0, 5.0), (3.0, 7.0)]);
        assert!((m - 2.0).abs() < 1e-9);
        assert!((c - 1.0).abs() < 1e-9);
    }

    #[test]
    fn calibrate_all_covers_every_class() {
        let rows = calibrate_all(&SimConfig::c240()).unwrap();
        assert_eq!(rows.len(), 8);
        for row in &rows {
            assert!(!row.to_string().is_empty());
            assert!(row.z > 0.9, "{:?} Z = {}", row.class, row.z);
        }
    }
}
