//! A/X performance measurement code transformers (§3.6).
//!
//! The Decoupled Access–Execute view splits a code into the **A**-process
//! (memory accesses) and the **X**-process (functional execution). The
//! paper measures each alone by deleting the other's vector instructions
//! — control flow is unaffected because vectorization never covers the
//! loop-control scalars — and places the results in the hierarchy next to
//! `t^m_MACS` and `t^f_MACS`.
//!
//! The numerical outputs of transformed code are nonsense by design; the
//! X-process primes the vector registers with large, relatively prime
//! values so the garbage arithmetic stays benign.

use c240_isa::Program;
use c240_sim::Cpu;

/// The A-process: the program with all vector floating point instructions
/// deleted (memory accesses and scalar control retained).
///
/// # Example
///
/// ```
/// use c240_isa::asm::assemble;
/// let p = assemble("L: ld.l 0(a1),v0\n add.d v0,v0,v1\n st.l v1,0(a2)\n jbrs.t L\n halt")
///     .unwrap();
/// let a = macs_core::a_process(&p);
/// assert_eq!(a.instructions().iter().filter(|i| i.is_vector_fp()).count(), 0);
/// assert_eq!(a.instructions().iter().filter(|i| i.is_vector_memory()).count(), 2);
/// ```
pub fn a_process(program: &Program) -> Program {
    program.filtered(|_, i| !i.is_vector_fp())
}

/// The X-process: the program with all vector memory instructions
/// deleted (floating point and scalar control retained).
pub fn x_process(program: &Program) -> Program {
    program.filtered(|_, i| !i.is_vector_memory())
}

/// Primes every vector register with a distinct large, relatively prime,
/// nonzero value — the paper's X-process register initialization, which
/// prevents spurious exceptions when executing arithmetic on deleted-load
/// operands.
pub fn prime_registers(cpu: &mut Cpu) {
    // Large primes, pairwise coprime by construction.
    const PRIMES: [f64; 8] = [
        100003.0, 100019.0, 100043.0, 100057.0, 100069.0, 100103.0, 100109.0, 100129.0,
    ];
    for (i, &p) in PRIMES.iter().enumerate() {
        cpu.set_vreg_fill(i as u8, p);
    }
    for i in 0..8 {
        cpu.set_sreg_fp(i, 1000.0 + f64::from(i));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use c240_isa::asm::assemble;
    use c240_sim::SimConfig;

    fn sample() -> Program {
        assemble(
            "start:
            mov #1000,s0
        L:
            mov s0,vl
            ld.l 0(a1),v0
            mul.d v0,s1,v1
            add.d v1,v0,v2
            st.l v2,0(a2)
            add.w #1024,a1
            add.w #1024,a2
            sub.w #128,s0
            lt.w #0,s0
            jbrs.t L
            halt",
        )
        .unwrap()
    }

    #[test]
    fn a_process_keeps_memory_and_control() {
        let a = a_process(&sample());
        assert_eq!(a.len(), 12 - 2);
        assert!(a.instructions().iter().all(|i| !i.is_vector_fp()));
        assert!(a.innermost_loop().is_some());
        assert_eq!(a.label("L"), Some(1));
    }

    #[test]
    fn x_process_keeps_fp_and_control() {
        let x = x_process(&sample());
        assert_eq!(x.len(), 12 - 2);
        assert!(x.instructions().iter().all(|i| !i.is_vector_memory()));
        assert!(x.innermost_loop().is_some());
    }

    #[test]
    fn transformed_programs_run() {
        let mut cpu = Cpu::new(SimConfig::c240());
        prime_registers(&mut cpu);
        let a_stats = cpu.run(&a_process(&sample())).unwrap();
        assert!(a_stats.cycles > 0.0);
        let mut cpu2 = Cpu::new(SimConfig::c240());
        prime_registers(&mut cpu2);
        let x_stats = cpu2.run(&x_process(&sample())).unwrap();
        assert!(x_stats.cycles > 0.0);
        // Each transformed run is cheaper than the full code.
        let mut cpu3 = Cpu::new(SimConfig::c240());
        let full = cpu3.run(&sample()).unwrap();
        assert!(a_stats.cycles < full.cycles);
        assert!(x_stats.cycles < full.cycles);
    }

    #[test]
    fn ax_band_holds_for_sample() {
        // Eq. 18: max(t_x, t_a) ≤ t_p ≤ t_x + t_a.
        let mut cpu = Cpu::new(SimConfig::c240());
        let t_p = cpu.run(&sample()).unwrap().cycles;
        let mut cpu_a = Cpu::new(SimConfig::c240());
        let t_a = cpu_a.run(&a_process(&sample())).unwrap().cycles;
        let mut cpu_x = Cpu::new(SimConfig::c240());
        prime_registers(&mut cpu_x);
        let t_x = cpu_x.run(&x_process(&sample())).unwrap().cycles;
        assert!(t_p + 1e-6 >= t_a.max(t_x), "t_p {t_p} vs max({t_a},{t_x})");
        assert!(t_p <= t_a + t_x, "t_p {t_p} vs sum {}", t_a + t_x);
    }

    #[test]
    fn priming_fills_registers() {
        let mut cpu = Cpu::new(SimConfig::c240());
        prime_registers(&mut cpu);
        // Run a store of a primed register and observe the value.
        let p = assemble("mov #1,vl\nst.l v3,0(a1)\nhalt").unwrap();
        cpu.set_areg(1, 8000);
        cpu.run(&p).unwrap();
        assert_eq!(cpu.mem().peek(1000), 100057.0);
    }
}
