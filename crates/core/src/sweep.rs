//! The sweep wire protocol and checkpoint journal.
//!
//! A sweep point is one (kernel × [`SimConfig`]) evaluation request,
//! carried as a single line of JSON (NDJSON) over stdin or a socket:
//!
//! ```text
//! {"id":"lfk1-nochain","kernel":1,"config":{"chaining":false}}
//! {"kernel":12,"passes":10,"deadline_ms":500}
//! {"kernel":1,"config":{"cpus":4,"contention":"mixed:3"}}
//! {"kernel":3,"machine":"c240-64b"}
//! ```
//!
//! The optional top-level `machine` field names a
//! [`MachineDescription`] preset the point is evaluated on instead of
//! the server's base machine (the server's *operational* knobs — trace
//! settings, instruction limit, fast-forward, CPU count, background
//! contention — still apply, and `config` overrides still win). The
//! name is part of the canonical rendering, so rows computed on
//! different machines get different journal keys and never collide in a
//! shared checkpoint file. An unknown preset is not a protocol error —
//! the shape is valid — but config resolution fails with
//! [`UnknownMachine`], which the server turns into a structured
//! `unknown_machine` error row.
//!
//! Parsing is *strict*: unknown fields — top-level or inside `config` —
//! are protocol errors, so a typo like `"chainning"` yields an error row
//! instead of silently sweeping the wrong machine. Every semantic field
//! (everything except `id`) is folded into a canonical rendering whose
//! FNV-1a hash is the point's **key**; the key names the computation in
//! the append-only checkpoint [`Journal`] (schema
//! `c240-sweep-journal/v1`), which is what makes `--resume` skip
//! already-computed points after a crash.
//!
//! This module is deliberately kernel-agnostic (it validates shapes and
//! ranges, not kernel ids — the registry lives in `lfk-suite`, which the
//! server consults) so notebook-side grid generators and the server share
//! one definition of the protocol.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, BufRead, BufReader, LineWriter, Write};
use std::path::Path;

use c240_isa::{MachineDescription, PRESET_NAMES};
use c240_obs::json::{Json, JsonError};
use c240_sim::SimConfig;

/// Schema identifier of result rows (ok and error alike).
pub const SWEEP_ROW_SCHEMA: &str = "c240-sweep-row/v1";

/// Schema identifier of the checkpoint journal's header line.
pub const JOURNAL_SCHEMA: &str = "c240-sweep-journal/v1";

/// A deliberate fault injected into a point's evaluation — the testing
/// hook the supervision machinery (and its CI smoke) is exercised with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Panic instead of evaluating.
    Panic,
    /// Sleep this long before evaluating (trips tight deadlines).
    SleepMs(u64),
}

/// A background-contention override, by the calibrated presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Contention {
    /// No background traffic.
    Idle,
    /// `n` lockstep copies of the same executable (§4.2's 5–10% case).
    Lockstep(u32),
    /// `n` unrelated programs (§4.2's ~20% case).
    Mixed(u32),
}

/// The machine-configuration overrides a point may carry. Every field is
/// optional; unset fields keep the server's base configuration (the
/// paper's C-240 unless the server was started with ablations).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Overrides {
    /// Operand chaining between vector pipes.
    pub chaining: Option<bool>,
    /// The register-pair port constraint.
    pub pair_constraint: Option<bool>,
    /// Memory refresh.
    pub refresh: Option<bool>,
    /// Tailgating bubbles (`false` zeroes every B).
    pub bubbles: Option<bool>,
    /// Steady-state fast-forward.
    pub fast_forward: Option<bool>,
    /// Co-sim CPU count.
    pub cpus: Option<u32>,
    /// Memory bank count.
    pub banks: Option<u32>,
    /// Bank busy time in cycles.
    pub bank_busy: Option<u64>,
    /// Data-space size in words.
    pub words: Option<u64>,
    /// Runaway-loop instruction limit.
    pub max_instructions: Option<u64>,
    /// Background contention preset.
    pub contention: Option<Contention>,
}

/// One parsed sweep request.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Display identity of the point. Not part of the key; defaults to
    /// `p-<key prefix>` when the request carries none.
    pub id: String,
    /// LFK kernel number.
    pub kernel: u32,
    /// Machine preset to evaluate on ([`MachineDescription::preset`])
    /// instead of the server's base machine. Part of the journal key.
    pub machine: Option<String>,
    /// Outer-loop pass count override.
    pub passes: Option<i64>,
    /// Per-point deadline override, milliseconds.
    pub deadline_ms: Option<u64>,
    /// Fault injection for supervision testing.
    pub inject: Option<Fault>,
    /// Machine-configuration overrides.
    pub overrides: Overrides,
}

/// A violation of the wire protocol.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ProtocolError {
    /// The line is not valid JSON.
    Parse(JsonError),
    /// The line is valid JSON but not an object.
    NotAnObject,
    /// The required `kernel` field is missing.
    MissingKernel,
    /// A field this protocol version does not know.
    UnknownField {
        /// The offending key (prefixed `config.` for nested fields).
        field: String,
    },
    /// A known field with a value of the wrong type or range.
    BadField {
        /// The offending key.
        field: &'static str,
        /// What the field accepts.
        expected: &'static str,
    },
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Parse(e) => write!(f, "malformed JSON: {e}"),
            ProtocolError::NotAnObject => write!(f, "a sweep point must be a JSON object"),
            ProtocolError::MissingKernel => write!(f, "missing required field `kernel`"),
            ProtocolError::UnknownField { field } => {
                write!(f, "unknown field `{field}` (this protocol is strict)")
            }
            ProtocolError::BadField { field, expected } => {
                write!(f, "field `{field}` must be {expected}")
            }
        }
    }
}

impl Error for ProtocolError {}

/// An integer-valued number within `[0, 2^53]` (exactly representable).
fn as_integer(value: &Json) -> Option<i64> {
    let n = value.as_f64()?;
    const EXACT: f64 = 9_007_199_254_740_992.0; // 2^53
    if n.is_finite() && n.fract() == 0.0 && (-EXACT..=EXACT).contains(&n) {
        Some(n as i64)
    } else {
        None
    }
}

fn field_u64(value: &Json, field: &'static str) -> Result<u64, ProtocolError> {
    as_integer(value)
        .and_then(|n| u64::try_from(n).ok())
        .ok_or(ProtocolError::BadField {
            field,
            expected: "a non-negative integer",
        })
}

fn field_u32(value: &Json, field: &'static str) -> Result<u32, ProtocolError> {
    as_integer(value)
        .and_then(|n| u32::try_from(n).ok())
        .ok_or(ProtocolError::BadField {
            field,
            expected: "a non-negative 32-bit integer",
        })
}

fn field_bool(value: &Json, field: &'static str) -> Result<bool, ProtocolError> {
    match value {
        Json::Bool(b) => Ok(*b),
        _ => Err(ProtocolError::BadField {
            field,
            expected: "a boolean",
        }),
    }
}

fn parse_contention(value: &Json) -> Result<Contention, ProtocolError> {
    const ERR: ProtocolError = ProtocolError::BadField {
        field: "config.contention",
        expected: "\"idle\", \"lockstep:N\", or \"mixed:N\"",
    };
    let text = value.as_str().ok_or(ERR)?;
    if text == "idle" {
        return Ok(Contention::Idle);
    }
    let (preset, n) = text.split_once(':').ok_or(ERR)?;
    let n: u32 = n.parse().map_err(|_| ERR)?;
    match preset {
        "lockstep" => Ok(Contention::Lockstep(n)),
        "mixed" => Ok(Contention::Mixed(n)),
        _ => Err(ERR),
    }
}

fn parse_inject(value: &Json) -> Result<Fault, ProtocolError> {
    const ERR: ProtocolError = ProtocolError::BadField {
        field: "inject",
        expected: "\"panic\" or {\"sleep_ms\": N}",
    };
    match value {
        Json::Str(s) if s == "panic" => Ok(Fault::Panic),
        Json::Obj(pairs) => {
            if pairs.len() != 1 || pairs[0].0 != "sleep_ms" {
                return Err(ERR);
            }
            Ok(Fault::SleepMs(field_u64(&pairs[0].1, "inject.sleep_ms")?))
        }
        _ => Err(ERR),
    }
}

fn parse_overrides(value: &Json) -> Result<Overrides, ProtocolError> {
    let Json::Obj(pairs) = value else {
        return Err(ProtocolError::BadField {
            field: "config",
            expected: "an object of override fields",
        });
    };
    let mut o = Overrides::default();
    for (key, v) in pairs {
        match key.as_str() {
            "chaining" => o.chaining = Some(field_bool(v, "config.chaining")?),
            "pair_constraint" => o.pair_constraint = Some(field_bool(v, "config.pair_constraint")?),
            "refresh" => o.refresh = Some(field_bool(v, "config.refresh")?),
            "bubbles" => o.bubbles = Some(field_bool(v, "config.bubbles")?),
            "fast_forward" => o.fast_forward = Some(field_bool(v, "config.fast_forward")?),
            "cpus" => o.cpus = Some(field_u32(v, "config.cpus")?),
            "banks" => o.banks = Some(field_u32(v, "config.banks")?),
            "bank_busy" => o.bank_busy = Some(field_u64(v, "config.bank_busy")?),
            "words" => o.words = Some(field_u64(v, "config.words")?),
            "max_instructions" => {
                o.max_instructions = Some(field_u64(v, "config.max_instructions")?)
            }
            "contention" => o.contention = Some(parse_contention(v)?),
            other => {
                return Err(ProtocolError::UnknownField {
                    field: format!("config.{other}"),
                })
            }
        }
    }
    Ok(o)
}

/// Parses one request line. Strict: unknown fields are errors.
///
/// # Errors
///
/// Returns the first [`ProtocolError`] encountered.
pub fn parse_point(line: &str) -> Result<SweepPoint, ProtocolError> {
    let doc = Json::parse(line).map_err(ProtocolError::Parse)?;
    let Json::Obj(pairs) = &doc else {
        return Err(ProtocolError::NotAnObject);
    };
    let mut id: Option<String> = None;
    let mut kernel: Option<u32> = None;
    let mut machine: Option<String> = None;
    let mut passes: Option<i64> = None;
    let mut deadline_ms: Option<u64> = None;
    let mut inject: Option<Fault> = None;
    let mut overrides = Overrides::default();
    for (key, v) in pairs {
        match key.as_str() {
            "id" => {
                id = Some(
                    v.as_str()
                        .ok_or(ProtocolError::BadField {
                            field: "id",
                            expected: "a string",
                        })?
                        .to_string(),
                )
            }
            "kernel" => kernel = Some(field_u32(v, "kernel")?),
            "machine" => {
                machine = Some(
                    v.as_str()
                        .ok_or(ProtocolError::BadField {
                            field: "machine",
                            expected: "a machine preset name (a string)",
                        })?
                        .to_string(),
                )
            }
            "passes" => {
                passes = Some(as_integer(v).ok_or(ProtocolError::BadField {
                    field: "passes",
                    expected: "an integer",
                })?)
            }
            "deadline_ms" => deadline_ms = Some(field_u64(v, "deadline_ms")?),
            "inject" => inject = Some(parse_inject(v)?),
            "config" => overrides = parse_overrides(v)?,
            other => {
                return Err(ProtocolError::UnknownField {
                    field: other.to_string(),
                })
            }
        }
    }
    let kernel = kernel.ok_or(ProtocolError::MissingKernel)?;
    let mut point = SweepPoint {
        id: String::new(),
        kernel,
        machine,
        passes,
        deadline_ms,
        inject,
        overrides,
    };
    point.id = id.unwrap_or_else(|| format!("p-{}", &point.key()[..12]));
    Ok(point)
}

/// FNV-1a over the canonical rendering — the journal key.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

impl SweepPoint {
    /// The canonical rendering of the point's *semantic* fields (`id`
    /// excluded): fixed key order, unset fields omitted. Two requests
    /// with the same canonical form are the same computation.
    pub fn canonical(&self) -> Json {
        let mut c = Json::obj().field("kernel", self.kernel);
        if let Some(m) = &self.machine {
            c = c.field("machine", m.as_str());
        }
        if let Some(p) = self.passes {
            c = c.field("passes", p as f64);
        }
        if let Some(d) = self.deadline_ms {
            c = c.field("deadline_ms", d);
        }
        match self.inject {
            Some(Fault::Panic) => c = c.field("inject", "panic"),
            Some(Fault::SleepMs(ms)) => c = c.field("inject", Json::obj().field("sleep_ms", ms)),
            None => {}
        }
        let o = &self.overrides;
        let mut cfg = Json::obj();
        for (key, v) in [
            ("chaining", o.chaining),
            ("pair_constraint", o.pair_constraint),
            ("refresh", o.refresh),
            ("bubbles", o.bubbles),
            ("fast_forward", o.fast_forward),
        ] {
            if let Some(b) = v {
                cfg = cfg.field(key, b);
            }
        }
        if let Some(n) = o.cpus {
            cfg = cfg.field("cpus", n);
        }
        if let Some(n) = o.banks {
            cfg = cfg.field("banks", n);
        }
        if let Some(n) = o.bank_busy {
            cfg = cfg.field("bank_busy", n);
        }
        if let Some(n) = o.words {
            cfg = cfg.field("words", n);
        }
        if let Some(n) = o.max_instructions {
            cfg = cfg.field("max_instructions", n);
        }
        match o.contention {
            Some(Contention::Idle) => cfg = cfg.field("contention", "idle"),
            Some(Contention::Lockstep(n)) => cfg = cfg.field("contention", format!("lockstep:{n}")),
            Some(Contention::Mixed(n)) => cfg = cfg.field("contention", format!("mixed:{n}")),
            None => {}
        }
        if !matches!(&cfg, Json::Obj(p) if p.is_empty()) {
            c = c.field("config", cfg);
        }
        c
    }

    /// The point's journal key: FNV-1a of the canonical rendering, as
    /// 16 hex digits.
    pub fn key(&self) -> String {
        format!("{:016x}", fnv1a64(self.canonical().to_string().as_bytes()))
    }

    /// The request line for this point (a valid protocol line, `id`
    /// included) — what grid generators emit.
    pub fn request_line(&self) -> String {
        let Json::Obj(fields) = self.canonical() else {
            unreachable!("canonical() builds an object");
        };
        let mut line = Json::obj().field("id", self.id.as_str());
        for (key, value) in fields {
            line = line.field(&key, value);
        }
        line.to_string()
    }

    /// Resolves the point's configuration: the machine half comes from
    /// the point's `machine` preset (or the base when none is named),
    /// the base's operational knobs (tracing, instruction limit,
    /// fast-forward, CPU count, background contention) carry over, and
    /// the overrides apply last. Panic-free by construction: override
    /// fields are set raw and the *caller* runs [`SimConfig::validate`]
    /// on the result, so an out-of-range override becomes a typed error
    /// row rather than a panic.
    ///
    /// # Errors
    ///
    /// [`UnknownMachine`] when the point names a preset
    /// [`MachineDescription::preset`] does not know.
    pub fn config(&self, base: &SimConfig) -> Result<SimConfig, UnknownMachine> {
        let mut cfg = match &self.machine {
            None => base.clone(),
            Some(name) => {
                let machine = MachineDescription::preset(name)
                    .ok_or_else(|| UnknownMachine { name: name.clone() })?;
                let mut cfg = SimConfig::for_machine(&machine);
                cfg.trace = base.trace;
                cfg.trace_cap = base.trace_cap;
                cfg.max_instructions = base.max_instructions;
                cfg.fast_forward = base.fast_forward;
                cfg.cpus = base.cpus;
                cfg.mem.contention = base.mem.contention.clone();
                cfg
            }
        };
        let o = &self.overrides;
        if let Some(b) = o.chaining {
            cfg.chaining = b;
        }
        if let Some(b) = o.pair_constraint {
            cfg.pair_constraint = b;
        }
        if let Some(b) = o.refresh {
            cfg.mem.refresh_enabled = b;
        }
        if o.bubbles == Some(false) {
            cfg.timing = cfg.timing.without_bubbles();
        }
        if let Some(b) = o.fast_forward {
            cfg.fast_forward = b;
        }
        if let Some(n) = o.cpus {
            cfg.cpus = n;
        }
        if let Some(n) = o.banks {
            cfg.mem.banks = n;
        }
        if let Some(n) = o.bank_busy {
            cfg.mem.bank_busy = n;
        }
        if let Some(n) = o.words {
            cfg.mem.words = n as usize;
        }
        if let Some(n) = o.max_instructions {
            cfg.max_instructions = n;
        }
        match o.contention {
            Some(Contention::Idle) => {
                cfg.mem.contention = c240_mem::ContentionConfig::idle();
            }
            Some(Contention::Lockstep(n)) => {
                cfg.mem.contention = c240_mem::ContentionConfig::lockstep(n as usize);
            }
            Some(Contention::Mixed(n)) => {
                cfg.mem.contention = c240_mem::ContentionConfig::mixed(n as usize);
            }
            None => {}
        }
        Ok(cfg)
    }
}

/// A sweep point named a machine preset the registry does not know.
///
/// Deliberately *not* a [`ProtocolError`]: the request's shape is valid,
/// the name just fails to resolve — analogous to an unknown kernel
/// number — so the server reports it as a structured `unknown_machine`
/// error row instead of a protocol violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownMachine {
    /// The unresolvable preset name.
    pub name: String,
}

impl fmt::Display for UnknownMachine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown machine preset `{}` (known presets: {})",
            self.name,
            PRESET_NAMES.join(", ")
        )
    }
}

impl Error for UnknownMachine {}

/// The append-only checkpoint journal (schema [`JOURNAL_SCHEMA`]).
///
/// Line 1 is a header object; every further line is either a checkpoint
/// record `{"key":"<16 hex>","row":{…},"sum":"<16 hex>"}` (the `sum` is
/// FNV-1a over `key:row`, so in-place damage to either field is detected
/// rather than resumed as a silently wrong row) or a self-describing metadata
/// row (an object carrying its own `schema` field, e.g. the periodic
/// `c240-metrics/v1` snapshots) appended with [`Journal::meta`]. Records
/// are flushed line-by-line, so a `kill -9` loses at most the rows of
/// in-flight points; a torn final line (the write the crash interrupted)
/// is tolerated by the loader, which also skips metadata rows — resume
/// semantics depend only on checkpoint records.
pub struct Journal {
    writer: LineWriter<File>,
    bytes: u64,
}

impl Journal {
    /// Opens (or creates) a journal for appending, writing the header if
    /// the file is new or empty.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn open_append(path: &Path) -> io::Result<Journal> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        let existing = file.metadata()?.len();
        let mut journal = Journal {
            writer: LineWriter::new(file),
            bytes: existing,
        };
        if existing == 0 {
            journal.write_line(&Json::obj().field("schema", JOURNAL_SCHEMA))?;
        }
        Ok(journal)
    }

    fn write_line(&mut self, value: &Json) -> io::Result<()> {
        let line = value.to_string();
        writeln!(self.writer, "{line}")?;
        self.writer.flush()?;
        self.bytes += line.len() as u64 + 1;
        Ok(())
    }

    /// Total bytes this journal file holds (pre-existing content plus
    /// everything appended through this handle) — the `journal_bytes`
    /// gauge the metrics plane reports.
    pub fn bytes_written(&self) -> u64 {
        self.bytes
    }

    /// Appends one completed point and flushes it to the OS. The record
    /// carries a `sum` field — FNV-1a over `key:row` (the key *and* the
    /// row's canonical rendering, so a flipped byte in either is caught)
    /// — letting the loader tell a *corrupted* record (bytes damaged in
    /// place, which must fail loudly) from a *torn* one (the final line a
    /// `kill -9` interrupted, which is tolerated).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn record(&mut self, key: &str, row: &Json) -> io::Result<()> {
        let sum = format!("{:016x}", fnv1a64(format!("{key}:{row}").as_bytes()));
        self.write_line(
            &Json::obj()
                .field("key", key)
                .field("row", row.clone())
                .field("sum", sum),
        )
    }

    /// Appends a self-describing metadata row (it must carry a `schema`
    /// field so the loader can tell it from a torn checkpoint record).
    ///
    /// # Errors
    ///
    /// Returns `InvalidInput` if `row` has no `schema` field; propagates
    /// filesystem errors.
    pub fn meta(&mut self, row: &Json) -> io::Result<()> {
        if row.get("schema").and_then(Json::as_str).is_none() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "a journal metadata row must carry a schema field",
            ));
        }
        self.write_line(row)
    }

    /// Loads a journal into a key → row map (later records win, though a
    /// well-formed journal never repeats a key). A torn *final* line is
    /// skipped — that is the record a `kill -9` interrupted; corruption
    /// anywhere else is an error.
    ///
    /// # Errors
    ///
    /// Fails on filesystem errors, a missing or foreign header, or a
    /// malformed non-final record.
    pub fn load(path: &Path) -> io::Result<BTreeMap<String, Json>> {
        let bad = |message: String| io::Error::new(io::ErrorKind::InvalidData, message);
        let reader = BufReader::new(File::open(path)?);
        let mut lines = reader.lines();
        let header = lines
            .next()
            .ok_or_else(|| bad("journal is empty (missing header)".into()))??;
        let schema = Json::parse(&header)
            .ok()
            .and_then(|h| h.get("schema").and_then(Json::as_str).map(str::to_string));
        if schema.as_deref() != Some(JOURNAL_SCHEMA) {
            return Err(bad(format!(
                "journal header is not {JOURNAL_SCHEMA}: {header}"
            )));
        }
        let mut rows = BTreeMap::new();
        let mut pending: Option<(String, usize)> = None;
        for (lineno, line) in lines.enumerate() {
            let line = line?;
            if let Some((torn, at)) = pending.take() {
                // A malformed line followed by another line is real
                // corruption, not a torn tail.
                return Err(bad(format!("malformed journal record {at}: {torn}")));
            }
            if line.trim().is_empty() {
                continue;
            }
            match Json::parse(&line).ok() {
                Some(record) => {
                    let checkpoint = record.get("key").and_then(Json::as_str).and_then(|key| {
                        record.get("row").map(|row| (key.to_string(), row.clone()))
                    });
                    if let Some((key, row)) = checkpoint {
                        // Verify the integrity checksum when the record
                        // carries one (pre-checksum journals do not). A
                        // mismatch is damage inside an otherwise
                        // well-formed line — tolerated only as the torn
                        // final line, fatal anywhere else, and never
                        // silently resumed as a wrong row.
                        let sum = record.get("sum").and_then(Json::as_str);
                        let expect = format!("{:016x}", fnv1a64(format!("{key}:{row}").as_bytes()));
                        if sum.is_some() && sum != Some(expect.as_str()) {
                            pending = Some((line, lineno + 2));
                        } else {
                            rows.insert(key, row);
                        }
                    } else if record.get("schema").and_then(Json::as_str).is_some() {
                        // A metadata row (metrics snapshot, …): valid
                        // journal content, irrelevant to resume.
                    } else {
                        pending = Some((line, lineno + 2));
                    }
                }
                None => pending = Some((line, lineno + 2)),
            }
        }
        Ok(rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_request() {
        let p = parse_point(
            r#"{"id":"x","kernel":12,"passes":3,"deadline_ms":250,
                "config":{"chaining":false,"cpus":2,"contention":"mixed:3","banks":16}}"#,
        )
        .unwrap();
        assert_eq!(p.id, "x");
        assert_eq!(p.kernel, 12);
        assert_eq!(p.passes, Some(3));
        assert_eq!(p.deadline_ms, Some(250));
        assert_eq!(p.overrides.chaining, Some(false));
        assert_eq!(p.overrides.cpus, Some(2));
        assert_eq!(p.overrides.banks, Some(16));
        assert_eq!(p.overrides.contention, Some(Contention::Mixed(3)));
    }

    #[test]
    fn strictness_and_shapes() {
        assert!(matches!(
            parse_point("not json"),
            Err(ProtocolError::Parse(_))
        ));
        assert_eq!(parse_point("[1,2]"), Err(ProtocolError::NotAnObject));
        assert_eq!(
            parse_point(r#"{"id":"a"}"#),
            Err(ProtocolError::MissingKernel)
        );
        assert_eq!(
            parse_point(r#"{"kernel":1,"chainning":true}"#),
            Err(ProtocolError::UnknownField {
                field: "chainning".into()
            })
        );
        assert_eq!(
            parse_point(r#"{"kernel":1,"config":{"chainning":true}}"#),
            Err(ProtocolError::UnknownField {
                field: "config.chainning".into()
            })
        );
        assert!(matches!(
            parse_point(r#"{"kernel":1.5}"#),
            Err(ProtocolError::BadField {
                field: "kernel",
                ..
            })
        ));
        assert!(matches!(
            parse_point(r#"{"kernel":1,"config":{"cpus":-2}}"#),
            Err(ProtocolError::BadField {
                field: "config.cpus",
                ..
            })
        ));
        assert!(matches!(
            parse_point(r#"{"kernel":1,"config":{"chaining":"yes"}}"#),
            Err(ProtocolError::BadField {
                field: "config.chaining",
                ..
            })
        ));
        assert!(matches!(
            parse_point(r#"{"kernel":1,"config":{"contention":"heavy"}}"#),
            Err(ProtocolError::BadField {
                field: "config.contention",
                ..
            })
        ));
        assert!(matches!(
            parse_point(r#"{"kernel":1,"inject":"explode"}"#),
            Err(ProtocolError::BadField {
                field: "inject",
                ..
            })
        ));
        assert_eq!(
            parse_point(r#"{"kernel":1,"inject":"panic"}"#)
                .unwrap()
                .inject,
            Some(Fault::Panic)
        );
        assert_eq!(
            parse_point(r#"{"kernel":1,"inject":{"sleep_ms":40}}"#)
                .unwrap()
                .inject,
            Some(Fault::SleepMs(40))
        );
    }

    #[test]
    fn key_ignores_id_and_field_order_but_not_semantics() {
        let a = parse_point(r#"{"id":"a","kernel":1,"config":{"chaining":false}}"#).unwrap();
        let b = parse_point(r#"{"config":{"chaining":false},"kernel":1,"id":"b"}"#).unwrap();
        let c = parse_point(r#"{"id":"a","kernel":1,"config":{"chaining":true}}"#).unwrap();
        let d = parse_point(r#"{"id":"a","kernel":2,"config":{"chaining":false}}"#).unwrap();
        assert_eq!(a.key(), b.key());
        assert_ne!(a.key(), c.key());
        assert_ne!(a.key(), d.key());
        assert_eq!(a.key().len(), 16);
    }

    #[test]
    fn default_id_derives_from_the_key() {
        let p = parse_point(r#"{"kernel":7}"#).unwrap();
        assert_eq!(p.id, format!("p-{}", &p.key()[..12]));
    }

    #[test]
    fn request_lines_round_trip() {
        let p = parse_point(
            r#"{"id":"rt","kernel":9,"passes":2,"inject":{"sleep_ms":5},
               "config":{"refresh":false,"cpus":4,"contention":"lockstep:2"}}"#,
        )
        .unwrap();
        let again = parse_point(&p.request_line()).unwrap();
        assert_eq!(again, p);
        assert_eq!(again.key(), p.key());
    }

    #[test]
    fn overrides_apply_to_the_base_config() {
        let p = parse_point(
            r#"{"kernel":1,"config":{"chaining":false,"refresh":false,"bubbles":false,
               "cpus":2,"banks":16,"bank_busy":4,"words":1024,"max_instructions":99,
               "fast_forward":false,"pair_constraint":false,"contention":"mixed:2"}}"#,
        )
        .unwrap();
        let cfg = p.config(&SimConfig::c240()).unwrap();
        assert!(!cfg.chaining && !cfg.pair_constraint && !cfg.fast_forward);
        assert!(!cfg.mem.refresh_enabled);
        assert_eq!(cfg.cpus, 2);
        assert_eq!(cfg.mem.banks, 16);
        assert_eq!(cfg.mem.bank_busy, 4);
        assert_eq!(cfg.mem.words, 1024);
        assert_eq!(cfg.max_instructions, 99);
        assert!(!cfg.mem.contention.is_idle());
        assert_eq!(cfg.timing.get(c240_isa::timing::TimingClass::Store).b, 0.0);
        assert_eq!(cfg.validate(), Ok(()));
        // Out-of-range overrides apply raw and fail validation instead
        // of panicking.
        let p = parse_point(r#"{"kernel":1,"config":{"cpus":0}}"#).unwrap();
        assert!(p.config(&SimConfig::c240()).unwrap().validate().is_err());
    }

    #[test]
    fn machine_presets_resolve_and_separate_keys() {
        let base = parse_point(r#"{"kernel":1}"#).unwrap();
        let banks64 = parse_point(r#"{"kernel":1,"machine":"c240-64b"}"#).unwrap();
        let dual = parse_point(r#"{"kernel":1,"machine":"dual-port"}"#).unwrap();
        let explicit = parse_point(r#"{"kernel":1,"machine":"c240"}"#).unwrap();
        assert_eq!(banks64.machine.as_deref(), Some("c240-64b"));
        // Same kernel, same config — the machine alone separates keys.
        assert_ne!(base.key(), banks64.key());
        assert_ne!(banks64.key(), dual.key());
        assert_ne!(base.key(), explicit.key(), "naming c240 is semantic too");
        // The resolved configurations reflect the named machine.
        let cfg = banks64.config(&SimConfig::c240()).unwrap();
        assert_eq!(cfg.machine, "c240-64b");
        assert_eq!(cfg.mem.banks, 64);
        let cfg = dual.config(&SimConfig::c240()).unwrap();
        assert_eq!((cfg.ports, cfg.mem.banks), (2, 16));
        assert_eq!(cfg.validate(), Ok(()));
        // Request lines round-trip the machine field.
        let again = parse_point(&banks64.request_line()).unwrap();
        assert_eq!(again, banks64);
        assert_eq!(again.key(), banks64.key());
    }

    #[test]
    fn machine_presets_keep_operational_knobs_and_apply_overrides() {
        let mut base = SimConfig::c240();
        base.fast_forward = false;
        base.max_instructions = 12_345;
        base.trace_cap = 7;
        base.cpus = 2;
        base.mem.contention = c240_mem::ContentionConfig::mixed(3);
        let p = parse_point(r#"{"kernel":1,"machine":"c240-64b","config":{"chaining":false}}"#)
            .unwrap();
        let cfg = p.config(&base).unwrap();
        // Machine half from the preset…
        assert_eq!(cfg.mem.banks, 64);
        assert!(!cfg.chaining, "overrides still apply on top");
        // …operational knobs from the base.
        assert!(!cfg.fast_forward);
        assert_eq!(cfg.max_instructions, 12_345);
        assert_eq!(cfg.trace_cap, 7);
        assert_eq!(cfg.cpus, 2);
        assert!(!cfg.mem.contention.is_idle());
    }

    #[test]
    fn unknown_machine_is_a_typed_resolution_error() {
        let p = parse_point(r#"{"kernel":1,"machine":"cray-2"}"#).unwrap();
        let err = p.config(&SimConfig::c240()).unwrap_err();
        assert_eq!(err.name, "cray-2");
        let message = err.to_string();
        assert!(
            message.contains("cray-2") && message.contains("c240-64b"),
            "{message}"
        );
        // A non-string machine field is a protocol error, though.
        assert!(matches!(
            parse_point(r#"{"kernel":1,"machine":7}"#),
            Err(ProtocolError::BadField {
                field: "machine",
                ..
            })
        ));
    }

    #[test]
    fn journal_appends_resumes_and_tolerates_a_torn_tail() {
        let dir = std::env::temp_dir().join(format!(
            "macs-journal-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal.ndjson");
        let row1 = Json::obj().field("id", "a").field("cycles", 10.0);
        let row2 = Json::obj().field("id", "b").field("cycles", 20.0);
        {
            let mut j = Journal::open_append(&path).unwrap();
            j.record("00000000000000aa", &row1).unwrap();
        }
        {
            // Re-open appends (no second header).
            let mut j = Journal::open_append(&path).unwrap();
            j.record("00000000000000bb", &row2).unwrap();
        }
        let rows = Journal::load(&path).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows["00000000000000aa"], row1);
        assert_eq!(rows["00000000000000bb"], row2);
        // Simulate a kill -9 mid-write: a torn trailing record.
        let mut contents = std::fs::read_to_string(&path).unwrap();
        contents.push_str("{\"key\":\"00000000000000cc\",\"row\":{\"trunc");
        std::fs::write(&path, &contents).unwrap();
        let rows = Journal::load(&path).unwrap();
        assert_eq!(rows.len(), 2, "torn tail is dropped, not fatal");
        // Corruption in the middle is fatal.
        let corrupt = contents.replace(
            "{\"key\":\"00000000000000bb\"",
            "{\"key\":00000000000000bb\"",
        );
        std::fs::write(&path, &corrupt).unwrap();
        assert!(Journal::load(&path).is_err());
        // A foreign header is rejected.
        std::fs::write(&path, "{\"schema\":\"other/v9\"}\n").unwrap();
        assert!(Journal::load(&path).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn journal_metadata_rows_are_skipped_on_load_and_tolerate_torn_tails() {
        let dir = std::env::temp_dir().join(format!(
            "macs-journal-meta-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal.ndjson");
        let row = Json::obj().field("id", "a").field("cycles", 10.0);
        let snapshot = Json::obj()
            .field("schema", "c240-metrics/v1")
            .field("counters", Json::obj().field("macs_points_total", 1.0));
        {
            let mut j = Journal::open_append(&path).unwrap();
            j.record("00000000000000aa", &row).unwrap();
            j.meta(&snapshot).unwrap();
            j.record("00000000000000bb", &row).unwrap();
            j.meta(&snapshot).unwrap();
            // Byte accounting matches the file exactly.
            assert_eq!(
                j.bytes_written(),
                std::fs::metadata(&path).unwrap().len(),
                "bytes_written diverged from the file"
            );
            // A schema-less metadata row is rejected (the loader could
            // not tell it from a torn checkpoint record).
            assert!(j.meta(&Json::obj().field("x", 1.0)).is_err());
        }
        // Metadata rows are invisible to resume.
        let rows = Journal::load(&path).unwrap();
        assert_eq!(rows.len(), 2);
        // Re-opening resumes byte accounting from the existing length.
        {
            let j = Journal::open_append(&path).unwrap();
            assert_eq!(j.bytes_written(), std::fs::metadata(&path).unwrap().len());
        }
        // A kill -9 can tear a metrics snapshot mid-write exactly like a
        // checkpoint record; a torn *final* metadata row is tolerated…
        let contents = std::fs::read_to_string(&path).unwrap();
        let torn = format!("{contents}{{\"schema\":\"c240-metrics/v1\",\"counters\":{{\"mac");
        std::fs::write(&path, &torn).unwrap();
        let rows = Journal::load(&path).unwrap();
        assert_eq!(rows.len(), 2, "torn metadata tail is dropped, not fatal");
        // …but a torn metadata row in the middle is corruption.
        let torn_mid = contents.replacen(
            "{\"key\":\"00000000000000aa\"",
            "{\"schema\":\"c240-metrics/v1\",\"coun\n{\"key\":\"00000000000000aa\"",
            1,
        );
        std::fs::write(&path, &torn_mid).unwrap();
        assert!(Journal::load(&path).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
