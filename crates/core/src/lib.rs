//! The MACS hierarchical performance model — the primary contribution of
//! *"Hierarchical Performance Modeling with MACS: A Case Study of the
//! Convex C-240"* (Boyd & Davidson, ISCA 1993).
//!
//! The model bounds the steady-state time of a vectorized inner loop at
//! three increasingly constrained levels:
//!
//! * **MA** — Machine + Application: operation counts of the high-level
//!   source under perfect compilation ([`macs_compiler::analyze_ma`]),
//! * **MAC** — + Compiler: operation counts of the generated assembly
//!   ([`MacWorkload`]),
//! * **MACS** — + Schedule: the chime structure of the actual instruction
//!   order, with tailgating bubbles and memory refresh
//!   ([`partition_chimes`], [`MacsBound`]),
//!
//! and complements them with **A/X measurements** ([`a_process`],
//! [`x_process`]): running the code with vector floating point (A) or
//! vector memory (X) instructions deleted to localize bottlenecks.
//! [`analyze_kernel`] runs the whole methodology and [`diagnose`]
//! mechanizes the paper's §4.4 gap attribution.
//!
//! # Example
//!
//! The paper's worked LFK1 example (§3.5) end to end:
//!
//! ```
//! use c240_isa::asm::assemble;
//! use macs_core::{ChimeConfig, KernelBounds};
//! use macs_compiler::MaWorkload;
//!
//! let program = assemble("L7:
//!     mov s0,vl
//!     ld.l 40120(a5),v0
//!     mul.d v0,s1,v1
//!     ld.l 40128(a5),v2
//!     mul.d v2,s3,v0
//!     add.d v1,v0,v3
//!     ld.l 32032(a5),v1
//!     mul.d v1,v3,v2
//!     add.d v2,s7,v0
//!     st.l v0,24024(a5)
//!     add.w #1024,a5
//!     sub.w #128,s0
//!     lt.w #0,s0
//!     jbrs.t L7
//!     halt")?;
//! let ma = MaWorkload { f_a: 2, f_m: 3, loads: 2, stores: 1 };
//! let bounds = KernelBounds::compute("LFK1", ma, &program, &ChimeConfig::c240());
//! assert_eq!(bounds.t_ma_cpf(), 0.600);                 // Table 4
//! assert_eq!(bounds.t_mac_cpf(), 0.800);
//! assert!((bounds.t_macs_cpf() - 0.840).abs() < 0.001);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod advisor;
mod analysis;
mod ax;
mod bounds;
mod calibrate;
mod chime;
mod diagnose;
mod measure;
pub mod overhead;
pub mod pool;
mod report;
mod reschedule;
mod roofline;
mod runreport;
pub mod supervise;
pub mod sweep;
mod workload;

pub use advisor::{advise, Action, Advice};
pub use analysis::{analyze_kernel, KernelAnalysis};
pub use ax::{a_process, prime_registers, x_process};
pub use bounds::{hmean_mflops, KernelBounds, MacsBound};
pub use calibrate::{calibrate_all, calibrate_class, CalibrationRow};
pub use chime::{
    body_without_fp, body_without_memory, partition_chimes, BankModel, Chime, ChimeConfig,
    ChimePartition,
};
pub use diagnose::{diagnose, Finding};
pub use measure::{measure, measure_probed, Measurement};
pub use overhead::{analyze_overhead, segmented_macs_cpl, OverheadModel};
pub use pool::{parallel_map, threads};
pub use report::{hierarchy_figure, TextTable};
pub use reschedule::reschedule_for_chimes;
pub use roofline::{
    compiled_intensity, measured_class, operational_intensity, BoundClass, MachineCeilings,
    RooflinePoint, RooflineVerdict, ROOFLINE_SCHEMA,
};
pub use runreport::{RunReport, RUN_REPORT_SCHEMA};
pub use supervise::{
    supervise, supervise_observed, FailureKind, JitterRng, RetryPolicy, SuperviseEvent, Supervised,
};
pub use sweep::{
    parse_point, Contention, Fault, Journal, Overrides, ProtocolError, SweepPoint, JOURNAL_SCHEMA,
    SWEEP_ROW_SCHEMA,
};
pub use workload::MacWorkload;
