//! Rendering helpers: text tables (for the regenerated paper tables),
//! CSV export, and the Figure-1 hierarchy picture.

use std::fmt::Write as _;

use crate::analysis::KernelAnalysis;

/// A simple aligned text table with CSV export — the output format of
/// every regenerated paper table.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TextTable {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        TextTable {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(cells);
        self
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.title);
        let line = |out: &mut String| {
            for w in &widths {
                out.push('+');
                out.extend(std::iter::repeat_n('-', w + 2));
            }
            out.push_str("+\n");
        };
        line(&mut out);
        for (w, h) in widths.iter().zip(&self.headers) {
            let _ = write!(out, "| {h:>w$} ");
        }
        out.push_str("|\n");
        line(&mut out);
        for row in &self.rows {
            for (w, cell) in widths.iter().zip(row) {
                let _ = write!(out, "| {cell:>w$} ");
            }
            out.push_str("|\n");
        }
        line(&mut out);
        out
    }

    /// Renders RFC-4180-ish CSV (quotes cells containing commas).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &str| {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

/// Renders the Figure 1 hierarchy for one kernel with its numbers filled
/// in: measured times above, calculated bounds below, gaps annotated.
pub fn hierarchy_figure(a: &KernelAnalysis) -> String {
    let mut out = String::new();
    let name = &a.bounds.name;
    let _ = writeln!(
        out,
        "Hierarchy of performance models and measurements — {name}"
    );
    let _ = writeln!(out, "(all values in CPL; Figure 1 of the paper)");
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "  MEASURED     t_x = {:>8.3}   t_a = {:>8.3}   == MERGE ==>  t_p    = {:>8.3}",
        a.t_x_cpl(),
        a.t_a_cpl(),
        a.t_p_cpl()
    );
    let _ = writeln!(
        out,
        "  MACS         t^f = {:>8.3}   t^m = {:>8.3}   == MERGE ==>  t_MACS = {:>8.3}",
        a.bounds.macs.f_cpl(),
        a.bounds.macs.m_cpl(),
        a.bounds.t_macs_cpl()
    );
    let _ = writeln!(
        out,
        "  MAC          t'_f= {:>8.3}   t'_m= {:>8.3}   == MAX   ==>  t_MAC  = {:>8.3}",
        a.bounds.mac.t_f(),
        a.bounds.mac.t_m(),
        a.bounds.t_mac_cpl()
    );
    let _ = writeln!(
        out,
        "  MA           t_f = {:>8.3}   t_m = {:>8.3}   == MAX   ==>  t_MA   = {:>8.3}",
        a.bounds.ma.t_f(),
        a.bounds.ma.t_m(),
        a.bounds.t_ma_cpl()
    );
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "  gaps: MA→MAC {:+.3}  MAC→MACS {:+.3}  MACS→measured {:+.3}",
        a.bounds.t_mac_cpl() - a.bounds.t_ma_cpl(),
        a.bounds.t_macs_cpl() - a.bounds.t_mac_cpl(),
        a.t_p_cpl() - a.bounds.t_macs_cpl()
    );
    for finding in a.findings() {
        let _ = writeln!(out, "  * {finding}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new("Table X", &["LFK", "t_MA", "t_p"]);
        t.row(vec!["1".into(), "0.600".into(), "0.852".into()]);
        t.row(vec!["12".into(), "2.000".into(), "3.182".into()]);
        let text = t.render();
        assert!(text.contains("Table X"));
        assert!(text.contains("0.852"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_escapes() {
        let mut t = TextTable::new("t", &["a", "b"]);
        t.row(vec!["x,y".into(), "plain".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.lines().count() == 2);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = TextTable::new("t", &["a", "b"]);
        t.row(vec!["only".into()]);
    }
}
