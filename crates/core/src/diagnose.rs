//! Automated gap diagnosis: the §4.4 reasoning as decision rules.
//!
//! Each [`Finding`] names a specific cause of lost performance, derived
//! from the relative positions of the bounds and measurements in the
//! hierarchy — the paper's per-kernel commentary, mechanized.

use std::fmt;

use crate::analysis::KernelAnalysis;

/// A diagnosed cause of performance loss (or an all-clear).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Finding {
    /// The MACS bound explains ~90% or more of measured time: the
    /// schedule model captures the loop; optimize the workload, not the
    /// model (LFK 1, 3, 7, 8, 9, 10, 12 — the paper's §4.4 counts 86-91%
    /// as "small gap").
    NearBound {
        /// `t_MACS / t_p`.
        explained: f64,
    },
    /// The compiler inserted memory operations beyond the ideal —
    /// typically reloads of shifted reused vectors (LFK 1, 7, 12).
    CompilerInsertedMemOps {
        /// `t'_m − t_m` in CPL.
        extra_cpl: f64,
    },
    /// Vector adds and multiplies do not overlap perfectly into chimes:
    /// `t^f_MACS − t'_f > 1` (LFK 7's ninth chime).
    ImperfectFpOverlap {
        /// `t^f_MACS − t'_f` in CPL.
        gap_cpl: f64,
    },
    /// Scalar memory accesses split potential chimes; `t_MACS` rises
    /// far above `t'_m` and `t'_f` (LFK 8).
    ScalarSplitsChimes {
        /// Number of forced chime boundaries per iteration.
        splits: u32,
        /// Measured memory-port serialization per iteration: cycles the
        /// probed run attributed to [`c240_sim::StallCause::MemPortConflict`],
        /// in CPL.
        mem_port_stall_cpl: f64,
    },
    /// The A- and X-processes overlap poorly:
    /// `t_p` is much greater than `max(t_a, t_x)` (LFK 2, 4, 6, 8).
    PoorAxOverlap {
        /// Overlap quality, 1 = perfect, 0 = fully serialized.
        overlap: f64,
    },
    /// Memory accesses dominate: `t_a ≫ t_x` and `t_p ≈ t_a`.
    MemoryBottleneck {
        /// Measured memory wait per iteration (bank + refresh +
        /// contention), in CPL.
        wait_cpl: f64,
        /// The bank-busy share of `wait_cpl`.
        bank_busy_cpl: f64,
        /// The refresh share of `wait_cpl`.
        refresh_cpl: f64,
        /// The contention share of `wait_cpl`: waits behind banks
        /// claimed by *other* traffic — co-simulated neighbor CPUs
        /// (`c240_sim::Machine`) or synthetic background streams.
        contention_cpl: f64,
    },
    /// Vector reductions interact badly with memory accesses:
    /// execute-only time dominates and the loop carries a reduction
    /// (LFK 4, 6).
    ReductionBottleneck {
        /// Measured post-reduction pipe serialization per iteration:
        /// cycles attributed to
        /// [`c240_sim::StallCause::ReductionDrain`], in CPL.
        drain_cpl: f64,
    },
    /// Much of the measured time is unmodeled (outer-loop overhead,
    /// short vectors, scalar code): `t_MACS` explains little of `t_p`
    /// (LFK 2, 4, 6).
    UnmodeledEffects {
        /// `t_MACS / t_p`.
        explained: f64,
    },
    /// The analytic roofline classification (intensity vs ridge,
    /// DESIGN.md §16) disagrees with the measured stall-taxonomy side —
    /// either the MA intensity misrepresents the compiled code's traffic
    /// or an unmodeled hazard dominates the run.
    RooflineMismatch {
        /// What the intensity-vs-ridge rule concluded.
        analytic: crate::roofline::BoundClass,
        /// What the measured occupancy rollup concluded.
        measured: crate::roofline::BoundClass,
        /// The kernel's operational intensity, in flops per word.
        intensity: f64,
        /// The machine's ridge point, in flops per word.
        ridge: f64,
    },
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Finding::NearBound { explained } => write!(
                f,
                "MACS bound explains {:.1}% of run time; the schedule model captures this loop",
                100.0 * explained
            ),
            Finding::CompilerInsertedMemOps { extra_cpl } => write!(
                f,
                "compiler inserted {extra_cpl:.1} extra memory ops/iteration beyond perfect reuse \
                 (vector reload of shifted reused data)"
            ),
            Finding::ImperfectFpOverlap { gap_cpl } => write!(
                f,
                "adds and multiplies overlap imperfectly into chimes (t^f exceeds t'_f by \
                 {gap_cpl:.2} CPL)"
            ),
            Finding::ScalarSplitsChimes {
                splits,
                mem_port_stall_cpl,
            } => write!(
                f,
                "{splits} scalar memory access(es) per iteration split potential chimes \
                 (measured {mem_port_stall_cpl:.2} CPL of memory-port serialization)"
            ),
            Finding::PoorAxOverlap { overlap } => write!(
                f,
                "access and execute processes overlap poorly (overlap quality {overlap:.2})"
            ),
            Finding::MemoryBottleneck {
                wait_cpl,
                bank_busy_cpl,
                refresh_cpl,
                contention_cpl,
            } => write!(
                f,
                "performance is bottlenecked in the access (memory) process \
                 (measured {wait_cpl:.2} CPL of memory wait: {bank_busy_cpl:.2} bank busy, \
                 {refresh_cpl:.2} refresh, {contention_cpl:.2} contention from other traffic)"
            ),
            Finding::ReductionBottleneck { drain_cpl } => write!(
                f,
                "vector reduction interacts with memory accesses as the chief bottleneck \
                 (measured {drain_cpl:.2} CPL of post-reduction pipe drain)"
            ),
            Finding::UnmodeledEffects { explained } => write!(
                f,
                "unmodeled effects dominate: MACS explains only {:.1}% (outer-loop overhead, \
                 short vectors, scalar code)",
                100.0 * explained
            ),
            Finding::RooflineMismatch {
                analytic,
                measured,
                intensity,
                ridge,
            } => write!(
                f,
                "roofline cross-check disagrees: intensity {intensity:.2} flops/word vs ridge \
                 {ridge:.2} says {analytic}-bound, but the measured stall taxonomy says \
                 {measured}-bound"
            ),
        }
    }
}

/// Applies the §4.4 decision rules to an analysis.
///
/// Where the probed run measured a matching stall category, the finding
/// carries the measured cycles (per iteration, in CPL) so the diagnosis
/// is backed by counters rather than bound arithmetic alone.
pub fn diagnose(a: &KernelAnalysis) -> Vec<Finding> {
    use c240_sim::StallCause;

    let mut findings = Vec::new();
    let explained = a.pct_macs();
    let iters = a.measured.iterations.max(1) as f64;
    let stall_totals = a.telemetry.totals();

    if explained >= 0.88 {
        findings.push(Finding::NearBound { explained });
    } else if explained < 0.75 {
        findings.push(Finding::UnmodeledEffects { explained });
    }

    let extra_mem = a.bounds.mac.t_m() - a.bounds.ma.t_m();
    if extra_mem >= 1.0 {
        findings.push(Finding::CompilerInsertedMemOps {
            extra_cpl: extra_mem,
        });
    }

    let fp_gap = a.bounds.macs.f_cpl() - a.bounds.mac.t_f();
    if fp_gap > 1.0 {
        findings.push(Finding::ImperfectFpOverlap { gap_cpl: fp_gap });
    }

    let splits = a.bounds.macs.full.scalar_splits();
    if splits > 0 {
        findings.push(Finding::ScalarSplitsChimes {
            splits,
            mem_port_stall_cpl: stall_totals.get(StallCause::MemPortConflict) / iters,
        });
    }

    let overlap = a.ax_overlap();
    if overlap < 0.6 {
        findings.push(Finding::PoorAxOverlap { overlap });
    }

    if a.t_a_cpl() > 1.25 * a.t_x_cpl() && a.pct_macs() >= 0.75 {
        let waits = a.measured.stats.memory_waits;
        findings.push(Finding::MemoryBottleneck {
            wait_cpl: waits.total() / iters,
            bank_busy_cpl: waits.bank_busy / iters,
            refresh_cpl: waits.refresh / iters,
            contention_cpl: waits.contention / iters,
        });
    }

    if a.has_reduction && a.t_x_cpl() > 1.1 * a.t_a_cpl() {
        findings.push(Finding::ReductionBottleneck {
            drain_cpl: stall_totals.get(StallCause::ReductionDrain) / iters,
        });
    }

    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze_kernel;
    use crate::chime::ChimeConfig;
    use c240_isa::asm::assemble;
    use c240_sim::SimConfig;
    use macs_compiler::MaWorkload;

    fn analyze(src: &str, ma: MaWorkload, iterations: u64) -> KernelAnalysis {
        let p = assemble(src).unwrap();
        analyze_kernel(
            "test",
            ma,
            &p,
            iterations,
            &|cpu| {
                cpu.set_sreg_fp(1, 2.0);
            },
            &SimConfig::c240(),
            &ChimeConfig::c240(),
        )
        .unwrap()
    }

    #[test]
    fn clean_loop_is_near_bound() {
        let a = analyze(
            "   mov #2560,s0
            L:
                mov s0,vl
                ld.l 0(a1),v0
                mul.d v0,s1,v1
                st.l v1,0(a2)
                add.w #1024,a1
                add.w #1024,a2
                sub.w #128,s0
                lt.w #0,s0
                jbrs.t L
                halt",
            MaWorkload {
                f_a: 0,
                f_m: 1,
                loads: 1,
                stores: 1,
            },
            2560,
        );
        let findings = a.findings();
        assert!(
            findings
                .iter()
                .any(|f| matches!(f, Finding::NearBound { .. })),
            "{findings:?}"
        );
        // Memory-bound loop: t_a >> t_x, and the finding cites the
        // measured wait breakdown.
        let mem = findings
            .iter()
            .find(|f| matches!(f, Finding::MemoryBottleneck { .. }))
            .expect("memory bottleneck diagnosed");
        if let Finding::MemoryBottleneck {
            wait_cpl,
            bank_busy_cpl,
            refresh_cpl,
            contention_cpl,
        } = mem
        {
            assert!(
                (wait_cpl - (bank_busy_cpl + refresh_cpl + contention_cpl)).abs() < 1e-9,
                "breakdown must sum to the total wait"
            );
            assert!(*refresh_cpl > 0.0, "refresh runs on the full machine");
        }
    }

    #[test]
    fn compiler_reloads_are_flagged() {
        // MA says 1 load; the code does 3 (LFK1-style reloads).
        let a = analyze(
            "   mov #2560,s0
            L:
                mov s0,vl
                ld.l 0(a1),v0
                ld.l 8(a1),v1
                ld.l 16(a1),v2
                add.d v0,v1,v3
                add.d v3,v2,v4
                st.l v4,0(a2)
                add.w #1024,a1
                add.w #1024,a2
                sub.w #128,s0
                lt.w #0,s0
                jbrs.t L
                halt",
            MaWorkload {
                f_a: 2,
                f_m: 0,
                loads: 1,
                stores: 1,
            },
            2560,
        );
        assert!(a
            .findings()
            .iter()
            .any(|f| matches!(f, Finding::CompilerInsertedMemOps { .. })));
    }

    #[test]
    fn scalar_splits_are_flagged() {
        let a = analyze(
            "   mov #2560,s0
            L:
                mov s0,vl
                ld.l 0(a1),v0
                ld.w 0(a0),a3
                ld.l 0(a3),v1
                add.d v0,v1,v2
                st.l v2,0(a2)
                add.w #1024,a1
                add.w #1024,a2
                sub.w #128,s0
                lt.w #0,s0
                jbrs.t L
                halt",
            MaWorkload {
                f_a: 1,
                f_m: 0,
                loads: 2,
                stores: 1,
            },
            2560,
        );
        let findings = a.findings();
        let split = findings
            .iter()
            .find(|f| matches!(f, Finding::ScalarSplitsChimes { .. }))
            .expect("scalar split diagnosed");
        if let Finding::ScalarSplitsChimes {
            mem_port_stall_cpl, ..
        } = split
        {
            assert!(
                *mem_port_stall_cpl > 0.0,
                "scalar split must show measured memory-port serialization"
            );
        }
    }

    #[test]
    fn reduction_bottleneck_flagged() {
        let a = analyze(
            "   mov #2560,s0
            L:
                mov s0,vl
                ld.l 0(a1),v0
                mul.d v0,s1,v1
                radd.d v1,s2
                add.w #1024,a1
                sub.w #128,s0
                lt.w #0,s0
                jbrs.t L
                halt",
            MaWorkload {
                f_a: 1,
                f_m: 1,
                loads: 1,
                stores: 0,
            },
            2560,
        );
        assert!(a.has_reduction);
        let findings = a.findings();
        let red = findings
            .iter()
            .find(|f| matches!(f, Finding::ReductionBottleneck { .. }))
            .unwrap_or_else(|| panic!("{findings:?} t_x={} t_a={}", a.t_x_cpl(), a.t_a_cpl()));
        if let Finding::ReductionBottleneck { drain_cpl } = red {
            assert!(
                *drain_cpl > 0.0,
                "reduction loop must show measured pipe drain"
            );
        }
    }

    #[test]
    fn findings_display() {
        for f in [
            Finding::NearBound { explained: 0.95 },
            Finding::CompilerInsertedMemOps { extra_cpl: 1.0 },
            Finding::ImperfectFpOverlap { gap_cpl: 1.1 },
            Finding::ScalarSplitsChimes {
                splits: 8,
                mem_port_stall_cpl: 12.5,
            },
            Finding::PoorAxOverlap { overlap: 0.3 },
            Finding::MemoryBottleneck {
                wait_cpl: 2.0,
                bank_busy_cpl: 1.0,
                refresh_cpl: 0.5,
                contention_cpl: 0.5,
            },
            Finding::ReductionBottleneck { drain_cpl: 40.0 },
            Finding::UnmodeledEffects { explained: 0.4 },
            Finding::RooflineMismatch {
                analytic: crate::roofline::BoundClass::Compute,
                measured: crate::roofline::BoundClass::Memory,
                intensity: 2.4,
                ridge: 2.0,
            },
        ] {
            assert!(!f.to_string().is_empty());
        }
    }
}
