//! Full hierarchical analysis of one kernel: bounds, A/X measurements,
//! and actual performance (Figure 1 of the paper).

use std::fmt;

use c240_isa::Program;
use c240_sim::{CounterProbe, Cpu, SimConfig, SimError};
use macs_compiler::MaWorkload;

use crate::ax::{a_process, prime_registers, x_process};
use crate::bounds::KernelBounds;
use crate::chime::ChimeConfig;
use crate::diagnose::{diagnose, Finding};
use crate::measure::{measure, measure_probed, Measurement};

/// Everything the MACS methodology produces for one kernel: the three
/// calculated bounds, the A/X measurements, and the measured run time.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelAnalysis {
    /// The analytic bounds hierarchy (MA, MAC, MACS).
    pub bounds: KernelBounds,
    /// Measured full-code performance (`t_p`).
    pub measured: Measurement,
    /// Measured access-only performance (`t_a`).
    pub a_process: Measurement,
    /// Measured execute-only performance (`t_x`).
    pub x_process: Measurement,
    /// Whether the compiled loop contains vector reduction instructions
    /// (drives the reduction-bottleneck diagnosis of §4.4).
    pub has_reduction: bool,
    /// Cycle attribution of the full-code run: per-lane busy/stall/idle
    /// accounts and per-pc stall counters (the measured counterpart of
    /// the analytic gap commentary).
    pub telemetry: CounterProbe,
}

impl KernelAnalysis {
    /// `t_p` in CPL.
    pub fn t_p_cpl(&self) -> f64 {
        self.measured.cpl()
    }

    /// `t_a` in CPL.
    pub fn t_a_cpl(&self) -> f64 {
        self.a_process.cpl()
    }

    /// `t_x` in CPL.
    pub fn t_x_cpl(&self) -> f64 {
        self.x_process.cpl()
    }

    /// `t_p` in CPF.
    pub fn t_p_cpf(&self) -> f64 {
        self.measured.cpf()
    }

    /// Fraction of measured run time explained by the MA bound
    /// (`t_MA / t_p`, the paper's "% of MA Bnd").
    pub fn pct_ma(&self) -> f64 {
        self.bounds.t_ma_cpl() / self.t_p_cpl()
    }

    /// `t_MAC / t_p`.
    pub fn pct_mac(&self) -> f64 {
        self.bounds.t_mac_cpl() / self.t_p_cpl()
    }

    /// `t_MACS / t_p`.
    pub fn pct_macs(&self) -> f64 {
        self.bounds.t_macs_cpl() / self.t_p_cpl()
    }

    /// Where `t_p` sits between perfect A/X overlap (`max(t_a, t_x)`)
    /// and none (`t_a + t_x`): 1 is perfect overlap, 0 is fully serial.
    /// Values outside `[0, 1]` indicate measurement effects beyond the
    /// Eq. 18 band.
    pub fn ax_overlap(&self) -> f64 {
        let lo = self.t_a_cpl().max(self.t_x_cpl());
        let hi = self.t_a_cpl() + self.t_x_cpl();
        if hi <= lo {
            return 1.0;
        }
        (hi - self.t_p_cpl()) / (hi - lo)
    }

    /// The §4.4 gap diagnosis.
    pub fn findings(&self) -> Vec<Finding> {
        diagnose(self)
    }
}

impl fmt::Display for KernelAnalysis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "=== {} ===", self.bounds.name)?;
        writeln!(
            f,
            "  bounds    (CPL): t_MA {:>7.3}   t_MAC {:>7.3}   t_MACS {:>7.3}",
            self.bounds.t_ma_cpl(),
            self.bounds.t_mac_cpl(),
            self.bounds.t_macs_cpl()
        )?;
        writeln!(
            f,
            "  components(CPL): t_f  {:>7.3}   t'_f  {:>7.3}   t^f    {:>7.3}",
            self.bounds.ma.t_f(),
            self.bounds.mac.t_f(),
            self.bounds.macs.f_cpl()
        )?;
        writeln!(
            f,
            "                   t_m  {:>7.3}   t'_m  {:>7.3}   t^m    {:>7.3}",
            self.bounds.ma.t_m(),
            self.bounds.mac.t_m(),
            self.bounds.macs.m_cpl()
        )?;
        writeln!(
            f,
            "  measured  (CPL): t_x  {:>7.3}   t_a   {:>7.3}   t_p    {:>7.3}",
            self.t_x_cpl(),
            self.t_a_cpl(),
            self.t_p_cpl()
        )?;
        writeln!(
            f,
            "  explained      : MA {:>5.1}%   MAC {:>5.1}%   MACS {:>5.1}%   A/X overlap {:.2}",
            100.0 * self.pct_ma(),
            100.0 * self.pct_mac(),
            100.0 * self.pct_macs(),
            self.ax_overlap()
        )?;
        for finding in self.findings() {
            writeln!(f, "  - {finding}")?;
        }
        Ok(())
    }
}

/// Runs the complete MACS methodology for one compiled kernel.
///
/// `setup` initializes each fresh CPU (memory contents, registers);
/// it runs before the full, A-process, and X-process measurements.
///
/// # Errors
///
/// Propagates simulator errors from any of the three runs.
#[allow(clippy::too_many_arguments)]
pub fn analyze_kernel(
    name: &str,
    ma: MaWorkload,
    program: &Program,
    iterations: u64,
    setup: &dyn Fn(&mut Cpu),
    sim_config: &SimConfig,
    chime_config: &ChimeConfig,
) -> Result<KernelAnalysis, SimError> {
    let bounds = KernelBounds::compute(name, ma, program, chime_config);
    let flops = bounds.flops;

    let mut cpu = Cpu::new(sim_config.clone());
    setup(&mut cpu);
    let (measured, telemetry) = measure_probed(&mut cpu, program, iterations, flops)?;

    let mut cpu_a = Cpu::new(sim_config.clone());
    setup(&mut cpu_a);
    let a = measure(&mut cpu_a, &a_process(program), iterations, flops)?;

    let mut cpu_x = Cpu::new(sim_config.clone());
    setup(&mut cpu_x);
    prime_registers(&mut cpu_x);
    let x = measure(&mut cpu_x, &x_process(program), iterations, flops)?;

    let has_reduction = program
        .instructions()
        .iter()
        .any(|i| matches!(i.timing_class(), Some(c240_isa::TimingClass::Reduction)));

    Ok(KernelAnalysis {
        bounds,
        measured,
        a_process: a,
        x_process: x,
        has_reduction,
        telemetry,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use c240_isa::asm::assemble;

    fn lfk1_program(n: u64) -> Program {
        assemble(&format!(
            "   mov #{n},s0
            L7:
                mov s0,vl
                ld.l 40120(a5),v0
                mul.d v0,s1,v1
                ld.l 40128(a5),v2
                mul.d v2,s3,v0
                add.d v1,v0,v3
                ld.l 32032(a5),v1
                mul.d v1,v3,v2
                add.d v2,s7,v0
                st.l v0,24024(a5)
                add.w #1024,a5
                sub.w #128,s0
                lt.w #0,s0
                jbrs.t L7
                halt"
        ))
        .unwrap()
    }

    fn lfk1_ma() -> MaWorkload {
        MaWorkload {
            f_a: 2,
            f_m: 3,
            loads: 2,
            stores: 1,
        }
    }

    #[test]
    fn lfk1_analysis_reproduces_table_4_row() {
        let n = 5120; // 40 full strips
        let program = lfk1_program(n);
        let analysis = analyze_kernel(
            "LFK1",
            lfk1_ma(),
            &program,
            n,
            &|cpu| {
                cpu.set_sreg_fp(1, 2.0);
                cpu.set_sreg_fp(3, 3.0);
                cpu.set_sreg_fp(7, 4.0);
            },
            &SimConfig::c240(),
            &ChimeConfig::c240(),
        )
        .unwrap();
        // Paper Table 4 row 1: 0.600 / 0.800 / 0.840 bounds; measured
        // 0.852 CPF with MACS explaining ≥ 95%.
        assert_eq!(analysis.bounds.t_ma_cpf(), 0.600);
        assert_eq!(analysis.bounds.t_mac_cpf(), 0.800);
        assert!((analysis.bounds.t_macs_cpf() - 0.840).abs() < 0.001);
        let t_p = analysis.t_p_cpf();
        assert!(
            (0.840..=0.88).contains(&t_p),
            "measured t_p = {t_p} CPF, paper says 0.852"
        );
        assert!(analysis.pct_macs() > 0.95);
        // Eq. 18 band.
        assert!(analysis.t_p_cpl() >= analysis.t_a_cpl().max(analysis.t_x_cpl()) - 0.01);
        assert!(analysis.t_p_cpl() <= analysis.t_a_cpl() + analysis.t_x_cpl());
        // A-process near t^m bound, X-process near t^f bound (Table 5).
        assert!((analysis.t_a_cpl() - analysis.bounds.macs.m_cpl()).abs() < 0.35);
        assert!((analysis.t_x_cpl() - analysis.bounds.macs.f_cpl()).abs() < 0.35);
        assert!(!analysis.has_reduction);
        let text = analysis.to_string();
        assert!(text.contains("explained"));
    }
}
