//! Model-driven rescheduling: reorder a loop body, dependence-safely,
//! so the chime partition gets denser — the "S" of MACS turned from a
//! diagnosis into a transformation (the paper's §5 vision of a
//! goal-directed optimizing compiler).
//!
//! The transformer is deliberately conservative:
//!
//! * only *vector* instructions move, and only within a contiguous run
//!   of vector instructions (scalar, control and reduction instructions
//!   are immovable fences);
//! * register dependences (RAW, WAR, WAW on vector registers) are
//!   honored;
//! * stores are ordered against every other memory access (no alias
//!   analysis).
//!
//! Within these constraints a greedy list scheduler fills each chime
//! with at most one instruction per pipe, respecting the register-pair
//! port limits.

use c240_isa::{Instruction, Pipe};

use crate::chime::{partition_chimes, ChimeConfig};

/// Reorders `body` to minimize the chime cost; returns the new body and
/// is guaranteed to be a permutation preserving all modeled dependences.
///
/// If the reordering does not improve the partition cost, the original
/// order is returned unchanged.
///
/// # Example
///
/// A loads-first body repacks so each load chains with its consumer:
///
/// ```
/// use c240_isa::asm::assemble;
/// use macs_core::{partition_chimes, reschedule_for_chimes, ChimeConfig};
///
/// let p = assemble("L:
///     ld.l 0(a1),v0
///     ld.l 0(a2),v1
///     ld.l 0(a3),v2
///     mul.d v0,s1,v3
///     mul.d v1,s1,v4      ; second multiply strands in its own chime
///     add.d v3,v2,v5
///     jbrs.t L\n halt")?;
/// let body = p.loop_body(p.innermost_loop().unwrap());
/// let cfg = ChimeConfig::c240();
/// let before = partition_chimes(body, &cfg);
/// let after = partition_chimes(&reschedule_for_chimes(body, &cfg), &cfg);
/// assert!(after.cycles() <= before.cycles());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn reschedule_for_chimes(body: &[Instruction], config: &ChimeConfig) -> Vec<Instruction> {
    let mut out: Vec<Instruction> = Vec::with_capacity(body.len());
    let mut run: Vec<Instruction> = Vec::new();
    for ins in body {
        if movable(ins) {
            run.push(ins.clone());
        } else {
            flush_run(&mut out, &mut run, config);
            out.push(ins.clone());
        }
    }
    flush_run(&mut out, &mut run, config);

    let before = partition_chimes(body, config).cycles();
    let after = partition_chimes(&out, config).cycles();
    if after < before {
        out
    } else {
        body.to_vec()
    }
}

/// Vector instructions that neither touch scalar state nor carry
/// reduction semantics may be reordered.
fn movable(ins: &Instruction) -> bool {
    ins.is_vector()
        && !matches!(
            ins,
            Instruction::VSum { .. } | Instruction::VRAdd { .. } | Instruction::VRSub { .. }
        )
}

fn flush_run(out: &mut Vec<Instruction>, run: &mut Vec<Instruction>, config: &ChimeConfig) {
    if run.is_empty() {
        return;
    }
    let scheduled = schedule_run(run, config);
    out.extend(scheduled);
    run.clear();
}

/// Dependence edges within a run: `deps[j]` lists indices that must
/// precede instruction `j`.
fn dependences(run: &[Instruction]) -> Vec<Vec<usize>> {
    let n = run.len();
    let mut deps = vec![Vec::new(); n];
    for j in 0..n {
        for i in 0..j {
            if depends(&run[i], &run[j]) {
                deps[j].push(i);
            }
        }
    }
    deps
}

/// Whether `later` must stay after `earlier`.
fn depends(earlier: &Instruction, later: &Instruction) -> bool {
    // Register dependences.
    let ew = earlier.vector_write();
    let lw = later.vector_write();
    let raw = ew.is_some_and(|w| later.vector_reads().contains(&w));
    let war = lw.is_some_and(|w| earlier.vector_reads().contains(&w));
    let waw = ew.is_some() && ew == lw;
    if raw || war || waw {
        return true;
    }
    // Memory order: stores fence all memory accesses (no alias info).
    let emem = earlier.is_vector_memory();
    let lmem = later.is_vector_memory();
    let estore = matches!(earlier, Instruction::VStore { .. });
    let lstore = matches!(later, Instruction::VStore { .. });
    emem && lmem && (estore || lstore)
}

fn pipe_slot(p: Pipe) -> usize {
    match p {
        Pipe::LoadStore => 0,
        Pipe::Add => 1,
        Pipe::Multiply => 2,
    }
}

/// Greedy chime-packing list scheduler over one run.
fn schedule_run(run: &[Instruction], config: &ChimeConfig) -> Vec<Instruction> {
    let n = run.len();
    let deps = dependences(run);
    let mut emitted = vec![false; n];
    let mut order = Vec::with_capacity(n);

    // Pipe preference inside a chime: memory first (it anchors the
    // chime), then multiply, then add — matching how the paper's dense
    // schedules look.
    let pipe_rank = |ins: &Instruction| match ins.pipe().expect("vector instruction") {
        Pipe::LoadStore => 0,
        Pipe::Multiply => 1,
        Pipe::Add => 2,
    };

    while order.len() < n {
        // Open a fresh chime.
        let mut pipes = [false; 3];
        let mut reads = [0u8; 4];
        let mut writes = [0u8; 4];
        let mut placed_any = false;
        loop {
            // Candidates: unemitted, all deps emitted, fits the chime.
            let mut best: Option<usize> = None;
            for j in 0..n {
                if emitted[j] || !deps[j].iter().all(|&d| emitted[d]) {
                    continue;
                }
                let ins = &run[j];
                let slot = pipe_slot(ins.pipe().expect("vector instruction"));
                if pipes[slot] {
                    continue;
                }
                if config.pair_constraint {
                    let (r, w) = ins.pair_usage();
                    let fits = (0..4).all(|p| reads[p] + r[p] <= 2 && writes[p] + w[p] <= 1);
                    if !fits {
                        continue;
                    }
                }
                let better = match best {
                    None => true,
                    Some(b) => {
                        let (rb, rj) = (pipe_rank(&run[b]), pipe_rank(ins));
                        rj < rb || (rj == rb && j < b)
                    }
                };
                if better {
                    best = Some(j);
                }
            }
            let Some(j) = best else { break };
            let ins = &run[j];
            let slot = pipe_slot(ins.pipe().expect("vector instruction"));
            pipes[slot] = true;
            let (r, w) = ins.pair_usage();
            for p in 0..4 {
                reads[p] += r[p];
                writes[p] += w[p];
            }
            emitted[j] = true;
            order.push(ins.clone());
            placed_any = true;
        }
        assert!(
            placed_any,
            "scheduler made no progress (cyclic dependence?)"
        );
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use c240_isa::asm::assemble;
    use c240_sim::{Cpu, SimConfig};

    fn body_of(src: &str) -> Vec<Instruction> {
        let p = assemble(src).unwrap();
        let l = p.innermost_loop().unwrap();
        p.loop_body(l).to_vec()
    }

    const LOADS_FIRST: &str = "   mov #1280,s0
    L:
        mov s0,vl
        ld.l 0(a1),v0
        ld.l 0(a2),v2
        mul.d v0,s1,v1
        add.d v1,v2,v3
        st.l v3,0(a3)
        add.w #1024,a1
        add.w #1024,a2
        add.w #1024,a3
        sub.w #128,s0
        lt.w #0,s0
        jbrs.t L
        halt";

    #[test]
    fn packs_loads_first_schedule_tighter() {
        let body = body_of(LOADS_FIRST);
        let config = ChimeConfig::c240();
        let before = partition_chimes(&body, &config);
        let resched = reschedule_for_chimes(&body, &config);
        let after = partition_chimes(&resched, &config);
        assert!(
            after.cycles() <= before.cycles(),
            "{} vs {}",
            after.cycles(),
            before.cycles()
        );
        // The triad packs into 3 memory-anchored chimes.
        assert_eq!(after.chimes().len(), 3);
    }

    #[test]
    fn rescheduled_code_computes_the_same_values() {
        let program = assemble(LOADS_FIRST).unwrap();
        let l = program.innermost_loop().unwrap();
        let config = ChimeConfig::c240();
        let resched = reschedule_for_chimes(program.loop_body(l), &config);
        let program2 = program.with_loop_body(l, resched);

        let run = |p: &c240_isa::Program| {
            let mut cpu = Cpu::new(SimConfig::c240());
            for i in 0..2048u64 {
                cpu.mem_mut().poke(i, (i % 13) as f64 + 0.5);
                cpu.mem_mut().poke(40960 + i, (i % 7) as f64 + 0.25);
            }
            cpu.set_areg(1, 0);
            cpu.set_areg(2, 40960 * 8);
            cpu.set_areg(3, 90000 * 8);
            cpu.set_sreg_fp(1, 1.5);
            cpu.run(p).unwrap();
            (0..1280u64)
                .map(|i| cpu.mem().peek(90000 + i))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(&program), run(&program2));
    }

    #[test]
    fn dependences_are_respected() {
        // mul consumes the load's result: cannot move before it.
        let body = body_of(
            "L:
            ld.l 0(a1),v0
            mul.d v0,s1,v1
            jbrs.t L
            halt",
        );
        let resched = reschedule_for_chimes(&body, &ChimeConfig::c240());
        let ld_pos = resched.iter().position(|i| i.is_vector_memory()).unwrap();
        let mul_pos = resched
            .iter()
            .position(|i| matches!(i, Instruction::VMul { .. }))
            .unwrap();
        assert!(ld_pos < mul_pos);
    }

    #[test]
    fn stores_fence_memory_order() {
        // st then ld of possibly-aliasing memory must not swap.
        let body = body_of(
            "L:
            st.l v0,0(a1)
            ld.l 0(a1),v1
            jbrs.t L
            halt",
        );
        let resched = reschedule_for_chimes(&body, &ChimeConfig::c240());
        assert!(matches!(
            resched.iter().find(|i| i.is_vector_memory()).unwrap(),
            Instruction::VStore { .. }
        ));
    }

    #[test]
    fn reductions_and_scalars_do_not_move() {
        let body = body_of(
            "L:
            ld.l 0(a1),v0
            radd.d v0,s4
            ld.l 0(a2),v1
            jbrs.t L
            halt",
        );
        let resched = reschedule_for_chimes(&body, &ChimeConfig::c240());
        // The reduction stays between the two loads (fences both runs);
        // a cost-neutral result returns the original order.
        let kinds: Vec<bool> = resched
            .iter()
            .map(|i| matches!(i, Instruction::VRAdd { .. }))
            .collect();
        assert_eq!(kinds.iter().filter(|&&k| k).count(), 1);
        assert!(kinds[1], "reduction moved: {resched:?}");
    }

    #[test]
    fn already_good_schedules_are_left_alone() {
        let body = body_of(
            "L:
            ld.l 0(a1),v0
            mul.d v0,s1,v1
            ld.l 0(a2),v2
            add.d v1,v2,v3
            st.l v3,0(a3)
            jbrs.t L
            halt",
        );
        let config = ChimeConfig::c240();
        let resched = reschedule_for_chimes(&body, &config);
        let before = partition_chimes(&body, &config).cycles();
        let after = partition_chimes(&resched, &config).cycles();
        assert!(after <= before);
    }
}
